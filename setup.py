"""Legacy setup shim: this environment's setuptools lacks the ``wheel``
package, so editable installs need the pre-PEP-517 code path
(``pip install -e . --no-build-isolation --no-use-pep517``).
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
