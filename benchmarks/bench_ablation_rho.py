"""Ablation A1: the ADMM penalty rho and slack penalty C (§VI discussion).

The paper: "If rho is set to be high, we put more emphasis on
convergence than the max-margin property"; C trades strict separation
against margin width.  The benchmark sweeps both on the linear
horizontal scheme and checks that accuracy is broadly stable while the
convergence speed moves with rho.
"""

import numpy as np

from repro.experiments.ablation import c_sweep, rho_sweep
from repro.experiments.tables import format_table


def _run(config):
    rho_headers, rho_rows = rho_sweep((1.0, 10.0, 100.0, 1000.0), config)
    print()
    print("rho sweep (linear horizontal, cancer):")
    print(format_table(rho_headers, rho_rows))

    c_headers, c_rows = c_sweep((1.0, 10.0, 50.0, 200.0), config)
    print()
    print("C sweep (linear horizontal, cancer):")
    print(format_table(c_headers, c_rows))

    # Accuracy is robust across the rho sweep (the consensus fixed point
    # does not depend on rho, only the path to it does).
    accs = [row[3] for row in rho_rows]
    assert max(accs) - min(accs) < 0.1
    # All C values stay usable on this easy dataset.
    assert all(row[1] > 0.85 for row in c_rows)
    return rho_rows, c_rows


def test_ablation_a1_rho_and_c(benchmark, bench_config):
    benchmark.pedantic(_run, args=(bench_config,), rounds=1, iterations=1)
