"""Fig. 4(a)-(d): consensus convergence ||z^{t+1} - z^t||^2 per iteration.

Each benchmark regenerates one convergence panel across the three
datasets, prints the series rows, and asserts the qualitative shape the
paper shows: the consensus movement collapses by orders of magnitude
within the plotted horizon, for every dataset and every scheme, while
the trained classifier is simultaneously accurate.
"""

import numpy as np

from repro.experiments.figure4 import format_panel, run_panel

#: Minimum decay factor (first / last z-change) asserted per panel.
#: The paper's panels show 4-10 orders of magnitude; we require >= 2
#: so the assertion is robust across profiles and seeds.
MIN_DECAY = 1e2


def _run_and_check(panel, config):
    result = run_panel(panel, config)
    print()
    print(format_panel(result, every=10))
    for name, series in result.series.items():
        decay = series[0] / max(series[-1], 1e-300)
        assert decay >= MIN_DECAY, (
            f"panel {panel}, dataset {name}: z-change decayed only {decay:.1f}x"
        )
        assert np.all(np.isfinite(series))
    # Convergence must come with a usable classifier (context check).
    assert max(result.final_accuracy.values()) > 0.8
    return result


def test_fig4a(benchmark, bench_config):
    """Linear SVM, horizontally partitioned (paper Fig. 4(a))."""
    benchmark.pedantic(_run_and_check, args=("a", bench_config), rounds=1, iterations=1)


def test_fig4b(benchmark, bench_config):
    """Kernel SVM, horizontally partitioned (paper Fig. 4(b))."""
    benchmark.pedantic(_run_and_check, args=("b", bench_config), rounds=1, iterations=1)


def test_fig4c(benchmark, bench_config):
    """Linear SVM, vertically partitioned (paper Fig. 4(c))."""
    benchmark.pedantic(_run_and_check, args=("c", bench_config), rounds=1, iterations=1)


def test_fig4d(benchmark, bench_config):
    """Kernel SVM, vertically partitioned (paper Fig. 4(d))."""
    benchmark.pedantic(_run_and_check, args=("d", bench_config), rounds=1, iterations=1)
