"""Table S4: accuracy/trust comparison against related-work baselines (§II).

Regenerates the qualitative comparison the paper makes in Section II:
our scheme should match the centralized benchmark while disclosing only
masked sums, beat no-collaboration, and avoid both the shared-secret
requirement of random kernels [21] and the accuracy loss of small-
epsilon differential privacy [7].
"""

from repro.experiments.tables import baseline_comparison_table, format_table


def _run(config):
    headers, rows = baseline_comparison_table(config, max_iter=40)
    print()
    print(format_table(headers, rows))
    acc = {row[0]: row[1] for row in rows}
    ours = acc["this paper (secure consensus)"]
    centralized = acc["centralized SVM (benchmark)"]
    local = acc["local-only (no collaboration)"]
    dp_tight = acc["DP logistic regression eps=0.1 [7]"]

    assert ours >= centralized - 0.05, "consensus should match the pooled benchmark"
    assert ours >= local - 0.02, "collaboration should not lose to isolation"
    assert ours >= dp_tight - 0.02, "tight-epsilon DP pays in accuracy"
    return rows


def test_table_s4_baseline_comparison(benchmark, bench_config):
    benchmark.pedantic(_run, args=(bench_config,), rounds=1, iterations=1)
