"""Table S2: cryptographic overhead of the aggregation strategies (§I/§V).

The paper's core systems claim: privacy costs only "a limited number of
cryptographic operations at the Reduce() procedures", as opposed to
SMC designs that encrypt per-record work.  The benchmark measures, on a
fixed workload:

* plaintext aggregation (no privacy) — the cost floor;
* the paper's fresh-mask protocol;
* the PRG-mask optimization;
* an encrypt-everything Paillier baseline.

Shape assertions: masking adds modest byte overhead over plaintext; the
Paillier baseline's per-iteration wall time dominates the masking
protocol's by a large factor.
"""

from repro.experiments.tables import crypto_overhead_table, format_table


def _run(config):
    headers, rows = crypto_overhead_table(config, max_iter=10)
    print()
    print(format_table(headers, rows))
    by_label = {row[0]: row for row in rows}
    plain = by_label["plaintext"]
    fresh = by_label["masking-fresh (paper)"]
    prg = by_label["masking-prg"]
    paillier = next(row for label, row in by_label.items() if label.startswith("paillier"))

    # Masking moves more bytes than plaintext (the masks), but PRG mode
    # removes the per-round mask traffic.
    assert fresh[1] > plain[1]
    assert prg[1] < fresh[1]
    # The SMC baseline's compute dominates the masking protocol's.
    assert paillier[4] > fresh[4] * 3
    return rows


def test_table_s2_crypto_overhead(benchmark, bench_config):
    benchmark.pedantic(_run, args=(bench_config,), rounds=1, iterations=1)
