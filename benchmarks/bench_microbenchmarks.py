"""Microbenchmarks of the primitive operations (proper pytest-benchmark
timing loops, unlike the one-shot experiment regenerations).

These quantify the per-operation costs behind Table S2: one secure-sum
round, one Paillier encryption, one local dual QP solve, one SMO solve,
one knapsack solve.
"""

import numpy as np
import pytest

from repro.cluster.network import Network
from repro.crypto.fixed_point import FixedPointCodec
from repro.crypto.paillier import PaillierKeyPair
from repro.crypto.secure_sum import SecureSummationProtocol
from repro.data.synthetic import make_blobs
from repro.svm.kernels import LinearKernel, RBFKernel
from repro.svm.knapsack import solve_quadratic_knapsack
from repro.svm.qp import solve_box_qp
from repro.svm.smo import solve_svm_dual


@pytest.fixture(scope="module")
def keypair():
    return PaillierKeyPair.generate(bits=512, seed=0)


def test_secure_sum_round_m4_dim10(benchmark):
    network = Network(keep_log=False)
    participants = [f"m{i}" for i in range(4)]
    protocol = SecureSummationProtocol(network, participants, "r", seed=0)
    rng = np.random.default_rng(0)
    values = {p: rng.normal(size=10) for p in participants}
    result = benchmark(protocol.sum_vectors, values)
    np.testing.assert_allclose(result, sum(values.values()), atol=1e-8)


def test_secure_sum_round_prg_mode(benchmark):
    network = Network(keep_log=False)
    participants = [f"m{i}" for i in range(4)]
    protocol = SecureSummationProtocol(network, participants, "r", mode="prg", seed=0)
    rng = np.random.default_rng(0)
    values = {p: rng.normal(size=10) for p in participants}
    benchmark(protocol.sum_vectors, values)


def test_fixed_point_encode_dim100(benchmark):
    codec = FixedPointCodec()
    values = np.random.default_rng(0).normal(size=100)
    benchmark(codec.encode, values)


def test_paillier_encrypt(benchmark, keypair):
    rng = np.random.default_rng(0)
    benchmark(keypair.public_key.encrypt, 123456789, rng=rng)


def test_paillier_homomorphic_add(benchmark, keypair):
    rng = np.random.default_rng(0)
    a = keypair.public_key.encrypt(111, rng=rng)
    b = keypair.public_key.encrypt(222, rng=rng)
    benchmark(lambda: a + b)


def test_box_qp_n100(benchmark):
    rng = np.random.default_rng(0)
    A = rng.normal(size=(100, 100))
    H = A @ A.T / 100 + np.eye(100)
    d = rng.normal(size=100)
    result = benchmark(solve_box_qp, H, d, 0.0, 50.0)
    assert result.converged


def test_box_qp_warm_start_n100(benchmark):
    rng = np.random.default_rng(0)
    A = rng.normal(size=(100, 100))
    H = A @ A.T / 100 + np.eye(100)
    d = rng.normal(size=100)
    x0 = solve_box_qp(H, d, 0.0, 50.0).x
    # Perturb the linear term slightly — the ADMM-iteration pattern.
    d2 = d + 0.01 * rng.normal(size=100)
    result = benchmark(solve_box_qp, H, d2, 0.0, 50.0, x0=x0)
    assert result.converged


def test_knapsack_n1000(benchmark):
    rng = np.random.default_rng(0)
    n = 1000
    a = np.full(n, 0.04)
    d = rng.normal(size=n)
    c = rng.choice([-1.0, 1.0], size=n)
    result = benchmark(solve_quadratic_knapsack, a, d, c, 0.0, 0.0, 50.0)
    assert result.constraint_residual < 1e-6


def test_smo_linear_n200(benchmark):
    ds = make_blobs(200, 5, delta=2.0, seed=0)
    K = LinearKernel().gram(ds.X)
    result = benchmark(solve_svm_dual, K, ds.y, 50.0)
    assert result.iterations > 0


def test_smo_rbf_n200(benchmark):
    ds = make_blobs(200, 5, delta=2.0, seed=0)
    K = RBFKernel(gamma=0.2).gram(ds.X)
    result = benchmark(solve_svm_dual, K, ds.y, 50.0)
    assert result.iterations > 0


def test_rbf_gram_500x500(benchmark):
    X = np.random.default_rng(0).normal(size=(500, 20))
    benchmark(RBFKernel(gamma=0.1).gram, X)
