"""Shared configuration for the benchmark suite.

Profiles
--------
The benchmarks default to the **quick** profile (reduced HIGGS/OCR
subsets, 60 ADMM iterations) so a full ``pytest benchmarks/
--benchmark-only`` pass finishes in minutes on a laptop.  Set

    REPRO_BENCH_PROFILE=paper

to run the paper-scale sizes (569 / 11,000 / 5,620 samples, 100
iterations).  The difficulty regimes — and hence the curve shapes the
reproduction is judged on — are the same in both profiles; measured
numbers for both are recorded in EXPERIMENTS.md.

Every benchmark prints the regenerated series/table (use ``-s`` to see
them live; they are also written by the top-level ``tee`` run).
"""

import os

import pytest

from repro.experiments.config import ExperimentConfig, PAPER_SIZES, QUICK_SIZES


def _profile() -> str:
    return os.environ.get("REPRO_BENCH_PROFILE", "quick")


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The experiment configuration for this benchmark session."""
    if _profile() == "paper":
        return ExperimentConfig(max_iter=100, sizes=dict(PAPER_SIZES))
    return ExperimentConfig(max_iter=60, sizes=dict(QUICK_SIZES))


@pytest.fixture(scope="session")
def profile_name() -> str:
    return _profile()
