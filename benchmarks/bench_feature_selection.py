"""Future-work benchmark: distributed feature selection (§VI discussion).

The paper attributes the "sudden jumps" in the vertical consensus curve
to redundant features assigned to a learner, and names distributed
feature selection as the (future-work) remedy.  This benchmark plants
known-redundant noise features, runs the selection protocols, and
measures (a) that the distributed selection matches the centralized one
exactly, and (b) what selection does to the downstream training curve
and accuracy, horizontally and vertically.
"""

import numpy as np

from repro.core.feature_selection import (
    correlation_scores,
    secure_feature_selection,
    vertical_feature_selection,
)
from repro.core.partitioning import horizontal_partition, vertical_partition
from repro.core.horizontal_linear import HorizontalLinearSVM
from repro.core.vertical_linear import VerticalLinearSVM
from repro.data.dataset import Dataset
from repro.data.splits import train_test_split
from repro.data.synthetic import make_blobs
from repro.experiments.tables import format_table
from repro.utils.rng import as_rng


def _redundant_dataset(n, n_signal=6, n_noise=10, seed=0):
    rng = as_rng(seed)
    core = make_blobs(n, n_signal, delta=3.0, seed=seed)
    noise = rng.standard_normal((n, n_noise))
    return Dataset(np.hstack([core.X, noise]), core.y, "redundant")


def _run(config):
    ds = _redundant_dataset(600, seed=config.seed)
    train, test = train_test_split(ds, 0.5, seed=0)
    n_signal = 6

    headers = ["setting", "accuracy", "final_z_change", "n_features"]
    rows = []

    # Horizontal: with and without secure selection.
    h_parts = horizontal_partition(train, config.n_learners, seed=config.seed)
    full_h = HorizontalLinearSVM(C=config.C, rho=config.rho, max_iter=40).fit(h_parts)
    rows.append(
        ["horizontal, all features", full_h.score(test.X, test.y),
         float(full_h.history_.z_changes[-1]), train.n_features]
    )
    selection = secure_feature_selection(h_parts, n_signal, seed=config.seed)
    # Correlation screening finds nearly all planted signal features (a
    # signal feature with a tiny weight in the random discriminant
    # direction can legitimately lose to a lucky noise column).
    hits = len(set(selection.selected.tolist()) & set(range(n_signal)))
    assert hits >= n_signal - 1, (
        f"secure selection found only {hits}/{n_signal} signal features"
    )
    np.testing.assert_allclose(
        selection.scores, correlation_scores(train.X, train.y), atol=1e-8
    )
    trimmed_h = HorizontalLinearSVM(C=config.C, rho=config.rho, max_iter=40).fit(
        selection.project(h_parts)
    )
    rows.append(
        ["horizontal, secure top-k", trimmed_h.score(test.X[:, selection.selected], test.y),
         float(trimmed_h.history_.z_changes[-1]), n_signal]
    )

    # Vertical: with and without selection.
    v_part = vertical_partition(train, config.n_learners, seed=config.seed)
    full_v = VerticalLinearSVM(C=config.C, rho=config.rho, max_iter=60).fit(v_part)
    rows.append(
        ["vertical, all features", full_v.score(test.X, test.y),
         float(full_v.history_.z_changes[-1]), train.n_features]
    )
    v_sel = vertical_feature_selection(v_part, n_signal)
    trimmed_v = VerticalLinearSVM(C=config.C, rho=config.rho, max_iter=60).fit(
        v_part.restrict(v_sel.selected)
    )
    rows.append(
        ["vertical, score top-k", trimmed_v.score(test.X[:, v_sel.selected], test.y),
         float(trimmed_v.history_.z_changes[-1]), n_signal]
    )

    print()
    print(format_table(headers, rows))

    # Selection must not hurt accuracy while shrinking the problem.
    assert rows[1][1] >= rows[0][1] - 0.03
    assert rows[3][1] >= rows[2][1] - 0.03
    return rows


def test_feature_selection_experiment(benchmark, bench_config):
    benchmark.pedantic(_run, args=(bench_config,), rounds=1, iterations=1)
