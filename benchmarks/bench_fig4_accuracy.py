"""Fig. 4(e)-(h): correct classification ratio per ADMM iteration.

Each benchmark regenerates one accuracy panel and asserts the paper's
qualitative story: accuracy improves as consensus forms, and the final
correct ratios land in each dataset's regime (cancer easy ~95%, HIGGS
hard ~70%, OCR very easy ~98% — up to the tolerance a synthetic
substitute and reduced subset sizes warrant).
"""

import numpy as np

from repro.experiments.figure4 import format_panel, run_panel

#: Final-accuracy floors per dataset.  The kernel-vertical additive
#: model and the hard HIGGS regime get looser floors; exact measured
#: values are recorded in EXPERIMENTS.md.
FLOORS = {
    "e": {"cancer": 0.88, "higgs": 0.58, "ocr": 0.93},
    "f": {"cancer": 0.85, "higgs": 0.55, "ocr": 0.90},
    "g": {"cancer": 0.88, "higgs": 0.58, "ocr": 0.93},
    "h": {"cancer": 0.85, "higgs": 0.55, "ocr": 0.90},
}


def _run_and_check(panel, config):
    result = run_panel(panel, config)
    print()
    print(format_panel(result, every=10))
    for name, series in result.series.items():
        assert np.all((series >= 0.0) & (series <= 1.0))
        floor = FLOORS[panel][name]
        assert series[-1] >= floor, (
            f"panel {panel}, dataset {name}: final accuracy {series[-1]:.3f} < {floor}"
        )
        # Learning curve: the tail does not collapse relative to the
        # first iteration.  (For the linear horizontal scheme a single
        # local solve is already strong, so the curve may be flat or
        # wobble slightly around its plateau — the paper's higgs curves
        # wobble too.)
        assert series[-1] >= series[0] - 0.05
    return result


def test_fig4e(benchmark, bench_config):
    """Correct ratio, linear horizontal (paper Fig. 4(e))."""
    benchmark.pedantic(_run_and_check, args=("e", bench_config), rounds=1, iterations=1)


def test_fig4f(benchmark, bench_config):
    """Correct ratio, kernel horizontal (paper Fig. 4(f))."""
    benchmark.pedantic(_run_and_check, args=("f", bench_config), rounds=1, iterations=1)


def test_fig4g(benchmark, bench_config):
    """Correct ratio, linear vertical (paper Fig. 4(g))."""
    benchmark.pedantic(_run_and_check, args=("g", bench_config), rounds=1, iterations=1)


def test_fig4h(benchmark, bench_config):
    """Correct ratio, kernel vertical (paper Fig. 4(h))."""
    benchmark.pedantic(_run_and_check, args=("h", bench_config), rounds=1, iterations=1)
