"""Table S1: the paper's centralized-SVM benchmark accuracies (§VI prose).

Paper: 50/50 train/test gives ~95% on cancer, ~70% on HIGGS, ~98% on
OCR.  This benchmark regenerates the table on the synthetic stand-ins
and asserts each lands within its regime — this is the calibration that
makes the other experiments comparable to the paper's.
"""

from repro.experiments.tables import centralized_baseline_table, format_table

#: (lower, upper) acceptance band per dataset around the paper's value.
BANDS = {"cancer": (0.90, 0.99), "higgs": (0.60, 0.78), "ocr": (0.95, 1.00)}


def _run(config):
    headers, rows = centralized_baseline_table(config)
    print()
    print(format_table(headers, rows))
    for row in rows:
        name, acc = row[0], row[3]
        lo, hi = BANDS[name]
        assert lo <= acc <= hi, f"{name}: linear accuracy {acc:.3f} outside [{lo}, {hi}]"
    return rows


def test_table_s1_centralized_baselines(benchmark, bench_config):
    benchmark.pedantic(_run, args=(bench_config,), rounds=1, iterations=1)
