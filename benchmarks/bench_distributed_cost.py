"""Full-system cost profile: per-variant bytes/time on the cluster.

Complements Fig. 4 (which measures the *mathematics*) with the *system*
view the paper argues for in §I: per-iteration communication and wall
time of the complete MapReduce + secure-summation pipeline for each of
the four variants, plus the simulated network-transfer time.

Also prints the trace-derived per-round breakdown for the
horizontal-linear variant and asserts the trace totals reconcile with
the counter registry (see ``docs/OBSERVABILITY.md``).
"""

import time

from repro.core.partitioning import horizontal_partition, vertical_partition
from repro.core.trainer import PrivacyPreservingSVM
from repro.experiments.config import DATASET_GAMMAS
from repro.experiments.datasets import load_benchmark_datasets
from repro.experiments.tables import format_table
from repro.svm.kernels import RBFKernel

VARIANTS = [
    ("horizontal-linear", "horizontal", None),
    ("horizontal-kernel", "horizontal", "rbf"),
    ("vertical-linear", "vertical", None),
    ("vertical-kernel", "vertical", "rbf"),
]


def _run(config, max_iter=15):
    datasets = load_benchmark_datasets(
        {"cancer": config.sizes.get("cancer", 569)}, seed=config.seed
    )
    train, test = datasets["cancer"]
    h_parts = horizontal_partition(train, config.n_learners, seed=config.seed)
    v_part = vertical_partition(train, config.n_learners, seed=config.seed)
    gamma = DATASET_GAMMAS["cancer"]

    headers = [
        "variant",
        "accuracy",
        "bytes_per_iter",
        "msgs_per_iter",
        "seconds_per_iter",
        "simulated_net_s",
        "raw_bytes_moved",
    ]
    rows = []
    breakdown = None
    for label, mode, kernel_name in VARIANTS:
        kernel = RBFKernel(gamma=gamma) if kernel_name else None
        model = PrivacyPreservingSVM(
            mode,
            kernel=kernel,
            C=config.C,
            rho=config.rho,
            n_landmarks=config.n_landmarks,
            max_iter=max_iter,
            seed=config.seed,
        )
        data = h_parts if mode == "horizontal" else v_part
        start = time.perf_counter()
        model.fit(data)
        elapsed = time.perf_counter() - start
        summary = model.communication_summary()
        iters = summary["iterations"]
        rows.append(
            [
                label,
                model.score(test.X, test.y),
                summary["total_bytes"] / iters,
                summary["total_messages"] / iters,
                elapsed / iters,
                summary["simulated_time_s"],
                summary["raw_data_bytes_moved"],
            ]
        )
        if label == "horizontal-linear":
            breakdown = (model.iteration_cost_table(), summary)
    print()
    print(format_table(headers, rows))

    # Trace-derived per-round breakdown for the reference variant; its
    # totals must reconcile with the counter registry exactly.
    (b_headers, b_rows), h_summary = breakdown
    print()
    print("horizontal-linear per-round breakdown (from the trace):")
    print(format_table(b_headers, b_rows))
    total_col = b_headers.index("total_bytes")
    assert sum(row[total_col] for row in b_rows) == h_summary["total_bytes"]

    # Shape assertions: vertical consensus is an N-vector, so it moves
    # more bytes/iter than the k-vector (or l-vector) horizontal ones;
    # data locality holds for every variant.
    by_label = {row[0]: row for row in rows}
    assert by_label["vertical-linear"][2] > by_label["horizontal-linear"][2]
    assert all(row[6] == 0.0 for row in rows)
    assert all(row[1] > 0.85 for row in rows)
    return rows


def test_distributed_cost_profile(benchmark, bench_config):
    benchmark.pedantic(_run, args=(bench_config,), rounds=1, iterations=1)
