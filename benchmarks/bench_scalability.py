"""Table S3: scalability in the number of learners M (§I claims).

The paper motivates the design by big-data scalability: per-iteration
work is local to each learner and the Reducer handles only M small
vectors, so adding learners should not blow up the consensus cost.
Measured columns: accuracy, bytes/iteration, mask messages/iteration
(the O(M^2) term), wall time, and the data-locality invariant (raw
bytes moved must stay 0 at every scale).
"""

from repro.experiments.tables import format_table, scalability_table


def _run(config):
    headers, rows = scalability_table(config, learner_counts=(2, 4, 8, 16), max_iter=15)
    print()
    print(format_table(headers, rows))
    for row in rows:
        assert row[1] > 0.85, f"M={row[0]}: accuracy degraded to {row[1]:.3f}"
        assert row[5] == 0.0, f"M={row[0]}: raw data moved!"
    # Mask messages grow with M (pairwise masking is O(M^2)).
    mask_msgs = [row[3] for row in rows]
    assert mask_msgs == sorted(mask_msgs)
    assert mask_msgs[-1] > mask_msgs[0]
    return rows


def test_table_s3_scalability(benchmark, bench_config):
    benchmark.pedantic(_run, args=(bench_config,), rounds=1, iterations=1)
