"""Perf-regression harness for the vectorized hot paths.

Times the optimized kernels against their legacy scalar counterparts —
the legacy paths are still live behind ``FixedPointCodec(vectorized=
False)``, so both sides run from the same commit — and writes
``BENCH_hotpaths.json`` (one record per measurement, see
``docs/PERFORMANCE.md`` for the schema).

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py            # full run
    PYTHONPATH=src python benchmarks/bench_hotpaths.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_hotpaths.py --smoke --check

``--check`` exits non-zero if any vectorized secure-sum configuration is
slower than its legacy twin — the CI ``perf-smoke`` job runs exactly
that, so a change that silently loses the speedup fails the build.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.cluster.network import Network
from repro.core.partitioning import horizontal_partition
from repro.core.trainer import PrivacyPreservingSVM
from repro.crypto.fixed_point import FixedPointCodec
from repro.crypto.secure_sum import SecureSumAggregator, SecureSummationProtocol
from repro.data.scaling import StandardScaler
from repro.data.splits import train_test_split
from repro.data.synthetic import make_cancer_like, make_linear_task
from repro.svm.qp import solve_box_qp

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_hotpaths.json"


def _training_parts():
    """Standardized horizontal split of the synthetic cancer-like set."""
    dataset = make_cancer_like(240, seed=11)
    train, _ = train_test_split(dataset, 0.5, seed=0)
    train = StandardScaler().fit(train.X).transform_dataset(train)
    return horizontal_partition(train, 4, seed=0)


def _timeit(fn, *, repeats: int) -> float:
    """Best-of-``repeats`` wall seconds for one call of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _record(results: list[dict], op: str, params: dict, wall_s: float, per_iter_bytes: float = 0.0):
    entry = {
        "op": op,
        "params": params,
        "wall_s": wall_s,
        "per_iter_bytes": per_iter_bytes,
    }
    results.append(entry)
    print(f"  {op:<28} {json.dumps(params):<60} {wall_s * 1e3:9.3f} ms")
    return entry


def bench_secure_sum(results: list[dict], *, smoke: bool) -> list[tuple[dict, dict]]:
    """Fresh/prg secure-sum rounds, vectorized vs legacy codec backend.

    Returns (vectorized, legacy) record pairs for the --check gate.
    """
    print("secure summation rounds:")
    configs = [("fresh", 8, 512)]
    if not smoke:
        configs += [("fresh", 8, 2048), ("prg", 8, 512), ("fresh", 16, 512)]
    else:
        configs += [("prg", 8, 512)]
    repeats = 2 if smoke else 5
    pairs = []
    for mode, n_participants, dim in configs:
        pair = []
        for vectorized in (True, False):
            codec = FixedPointCodec(max_terms=n_participants, vectorized=vectorized)
            network = Network(keep_log=False)
            participants = [f"m{i}" for i in range(n_participants)]
            protocol = SecureSummationProtocol(
                network, participants, "reducer", codec=codec, mode=mode, seed=0
            )
            rng = np.random.default_rng(0)
            values = {p: rng.normal(size=dim) for p in participants}
            expected = sum(values.values())
            out = protocol.sum_vectors(values)
            np.testing.assert_allclose(out, expected, atol=1e-8)
            bytes_before = network.bytes_sent()
            wall = _timeit(lambda: protocol.sum_vectors(values), repeats=repeats)
            per_round_bytes = (network.bytes_sent() - bytes_before) / repeats
            entry = _record(
                results,
                "secure_sum.round",
                {
                    "mode": mode,
                    "participants": n_participants,
                    "dim": dim,
                    "backend": "vectorized" if vectorized else "legacy",
                },
                wall,
                per_round_bytes,
            )
            pair.append(entry)
        pairs.append((pair[0], pair[1]))
    return pairs


def bench_codec_kernels(results: list[dict], *, smoke: bool) -> None:
    print("codec kernels:")
    dim = 1024 if smoke else 8192
    repeats = 3 if smoke else 7
    rng = np.random.default_rng(1)
    values = rng.normal(size=dim)
    for vectorized in (True, False):
        codec = FixedPointCodec(vectorized=vectorized)
        backend = "vectorized" if vectorized else "legacy"
        a = codec.random_vector_array(dim, np.random.default_rng(2))
        b = codec.random_vector_array(dim, np.random.default_rng(3))
        _record(
            results,
            "codec.encode",
            {"dim": dim, "backend": backend},
            _timeit(lambda: codec.encode_array(values), repeats=repeats),
        )
        _record(
            results,
            "codec.random_vector",
            {"dim": dim, "backend": backend},
            _timeit(
                lambda: codec.random_vector_array(dim, np.random.default_rng(4)),
                repeats=repeats,
            ),
        )
        _record(
            results,
            "codec.add",
            {"dim": dim, "backend": backend},
            _timeit(lambda: codec.add(a, b), repeats=repeats),
        )
        _record(
            results,
            "codec.decode",
            {"dim": dim, "backend": backend},
            _timeit(lambda: codec.decode(codec.encode_array(values)), repeats=repeats),
        )


def bench_box_qp(results: list[dict], *, smoke: bool) -> None:
    print("box QP sweeps:")
    n = 200 if smoke else 600
    repeats = 3 if smoke else 5
    rng = np.random.default_rng(5)
    A = rng.normal(size=(n, n))
    H = A @ A.T / n + 1e-3 * np.eye(n)
    d = rng.normal(size=n)
    _record(
        results,
        "qp.solve_box_qp",
        {"n": n, "upper": 50.0},
        _timeit(lambda: solve_box_qp(H, d, 0.0, 50.0), repeats=repeats),
    )
    # Warm-started resolve — the dominant shape inside ADMM iterations.
    x0 = solve_box_qp(H, d, 0.0, 50.0).x
    d2 = d + 0.01 * rng.normal(size=n)
    _record(
        results,
        "qp.solve_box_qp_warm",
        {"n": n, "upper": 50.0},
        _timeit(lambda: solve_box_qp(H, d2, 0.0, 50.0, x0=x0), repeats=repeats),
    )


def bench_end_to_end(
    results: list[dict], *, smoke: bool, ledger_dir: Path | None = None
) -> None:
    """Full horizontal-linear secure fit, vectorized vs legacy codec.

    Uses a high-dimensional task (the regime the paper's big-data
    setting targets) so the secure-summation rounds — not the tiny
    per-learner QPs — carry the iteration cost.  When ``ledger_dir`` is
    given, the last fitted model of each backend is persisted to the run
    ledger (``kind="bench"``) so perf runs are queryable alongside
    training runs via ``repro runs``.
    """
    print("end-to-end horizontal linear fit:")
    n_features = 256 if smoke else 512
    dataset = make_linear_task(240, n_features, noise=0.05, seed=7)
    parts = horizontal_partition(dataset, 4, seed=0)
    max_iter = 5 if smoke else 15
    for vectorized in (True, False):
        last_model: list[PrivacyPreservingSVM] = []

        def fit():
            # Fresh aggregator per fit: the adapter caches a protocol
            # bound to one Network, and each fit builds a new one.
            aggregator = SecureSumAggregator(
                codec=FixedPointCodec(max_terms=4, vectorized=vectorized),
                mode="fresh",
                seed=0,
            )
            model = PrivacyPreservingSVM(
                "horizontal",
                C=50.0,
                rho=100.0,
                max_iter=max_iter,
                seed=0,
                aggregator=aggregator,
            ).fit(parts)
            last_model[:] = [model]

        _record(
            results,
            "trainer.horizontal_linear_fit",
            {
                "learners": 4,
                "n_features": n_features,
                "max_iter": max_iter,
                "backend": "vectorized" if vectorized else "legacy",
            },
            _timeit(fit, repeats=1 if smoke else 2),
        )
        if ledger_dir is not None and last_model:
            backend = "vectorized" if vectorized else "legacy"
            run_id = last_model[0].save_run(
                str(ledger_dir), kind="bench", label=f"hotpaths/{backend}"
            )
            print(f"  bench run recorded: {run_id} ({ledger_dir}/)")


def bench_map_wave(results: list[dict], *, smoke: bool) -> None:
    print("parallel map wave:")
    parts = _training_parts()
    max_iter = 5 if smoke else 15
    for workers in (1, 4):
        def fit():
            PrivacyPreservingSVM(
                "horizontal",
                C=50.0,
                rho=100.0,
                max_iter=max_iter,
                seed=0,
                n_map_workers=workers,
            ).fit(parts)

        _record(
            results,
            "twister.map_wave_fit",
            {"learners": 4, "max_iter": max_iter, "n_map_workers": workers},
            _timeit(fit, repeats=1 if smoke else 2),
        )


def check_regressions(pairs: list[tuple[dict, dict]]) -> list[str]:
    """A vectorized secure-sum round must never be slower than legacy."""
    failures = []
    for vec, legacy in pairs:
        if vec["wall_s"] > legacy["wall_s"]:
            failures.append(
                f"secure_sum {vec['params']}: vectorized {vec['wall_s']:.4f}s "
                f"slower than legacy {legacy['wall_s']:.4f}s"
            )
        else:
            speedup = legacy["wall_s"] / max(vec["wall_s"], 1e-12)
            print(f"  ok: {json.dumps(vec['params'])} speedup {speedup:.1f}x")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized problem set (seconds, not minutes)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if vectorized secure-sum is slower than the legacy backend",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="output JSON path"
    )
    parser.add_argument(
        "--ledger",
        nargs="?",
        const=REPO_ROOT / ".repro-runs",
        default=None,
        type=Path,
        metavar="DIR",
        help="persist end-to-end bench fits to the run ledger "
        "(default directory: .repro-runs/)",
    )
    args = parser.parse_args(argv)

    results: list[dict] = []
    pairs = bench_secure_sum(results, smoke=args.smoke)
    bench_codec_kernels(results, smoke=args.smoke)
    bench_box_qp(results, smoke=args.smoke)
    bench_map_wave(results, smoke=args.smoke)
    bench_end_to_end(results, smoke=args.smoke, ledger_dir=args.ledger)

    args.out.write_text(json.dumps(results, indent=1) + "\n")
    print(f"wrote {len(results)} records to {args.out}")

    if args.check:
        failures = check_regressions(pairs)
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
