"""Ablation A2: landmark count l in the horizontal kernel scheme.

Lemma 4.4 discussion: the consensus is approximated in an l-dimensional
landmark space ("because we cannot afford p vectors, we only use l
vectors to approximate w~"); more landmarks buy a better approximation
at l+1 secure-summed floats per learner per iteration.  The benchmark
sweeps l and checks the trade-off is visible and non-degenerate.
"""

from repro.experiments.ablation import landmark_sweep
from repro.experiments.tables import format_table


def _run(config):
    headers, rows = landmark_sweep((5, 10, 20, 40, 80), config)
    print()
    print("landmark sweep (kernel horizontal, cancer):")
    print(format_table(headers, rows))

    accs = [row[1] for row in rows]
    traffic = [row[3] for row in rows]
    # Communication grows linearly with l by construction.
    assert traffic == [6, 11, 21, 41, 81]
    # The largest landmark budget should do at least as well as the
    # smallest (approximation quality is monotone in expectation).
    assert accs[-1] >= accs[0] - 0.03
    # And the whole sweep stays usable.
    assert min(accs) > 0.75
    return rows


def test_ablation_a2_landmarks(benchmark, bench_config):
    benchmark.pedantic(_run, args=(bench_config,), rounds=1, iterations=1)
