"""Tests for the Section V security analyses: adversary views, coalition
attacks, masked-share uniformity, and the kernel linear-system attack."""

import numpy as np
import pytest

from repro.cluster.network import Network
from repro.core.partitioning import horizontal_partition
from repro.core.trainer import PrivacyPreservingSVM
from repro.crypto.fixed_point import FixedPointCodec
from repro.crypto.secure_sum import SecureSummationProtocol
from repro.security.adversary import coalition_view, eavesdropper_view, reducer_view
from repro.security.analysis import (
    coalition_recovery_attempt,
    kernel_linear_system_attack,
    plaintext_leak_check,
    share_uniformity_statistic,
)


@pytest.fixture
def protocol_run(rng):
    """One secure-sum round with known inputs, plus its network."""
    network = Network()
    participants = [f"m{i}" for i in range(4)]
    protocol = SecureSummationProtocol(network, participants, "reducer", seed=3)
    values = {p: rng.normal(size=5) for p in participants}
    total = protocol.sum_vectors(values)
    return network, participants, protocol, values, total


class TestAdversaryViews:
    def test_reducer_view_only_incoming(self, protocol_run):
        network, *_ = protocol_run
        view = reducer_view(network)
        assert all(m.dst == "reducer" for m in view.messages)
        assert all(m.kind == "masked-share" for m in view.messages)

    def test_eavesdropper_sees_everything(self, protocol_run):
        network, *_ = protocol_run
        view = eavesdropper_view(network)
        assert len(view.messages) == len(network.message_log)

    def test_coalition_view_includes_member_traffic(self, protocol_run):
        network, participants, *_ = protocol_run
        view = coalition_view(network, ["m0"])
        assert any(m.src == "m0" and m.kind == "mask" for m in view.messages)
        assert any(m.dst == "m0" and m.kind == "mask" for m in view.messages)

    def test_view_helpers(self, protocol_run):
        network, *_ = protocol_run
        view = eavesdropper_view(network)
        assert len(view.of_kind("masked-share")) == 4
        assert len(view.sent_by("m0", "mask")) == 3
        assert len(view.received_by("reducer")) == 4

    def test_no_log_raises(self):
        network = Network(keep_log=False)
        with pytest.raises(ValueError, match="keep_log"):
            reducer_view(network)


class TestCoalitionRecovery:
    def test_full_coalition_recovers_exactly(self, protocol_run):
        # Reducer + every other mapper corrupted: recovery succeeds (and
        # is unavoidable — the sum minus their own inputs reveals it).
        network, participants, protocol, values, _ = protocol_run
        view = coalition_view(network, ["m1", "m2", "m3"])
        result = coalition_recovery_attempt(view, "m0", participants, protocol.codec)
        assert result.residual_masks_unknown == 0
        np.testing.assert_allclose(result.estimate, values["m0"], atol=1e-9)

    def test_partial_coalition_learns_nothing(self, protocol_run):
        # Two honest mappers remain: the m0<->m1 pads survive and the
        # estimate is one-time-padded garbage.
        network, participants, protocol, values, _ = protocol_run
        view = coalition_view(network, ["m2", "m3"])
        result = coalition_recovery_attempt(view, "m0", participants, protocol.codec)
        assert result.residual_masks_unknown == 2
        assert np.max(np.abs(result.estimate - values["m0"])) > 1e6

    def test_reducer_alone_learns_nothing(self, protocol_run):
        network, participants, protocol, values, _ = protocol_run
        view = reducer_view(network)
        result = coalition_recovery_attempt(view, "m0", participants, protocol.codec)
        assert result.residual_masks_unknown == 6
        assert np.max(np.abs(result.estimate - values["m0"])) > 1e6

    def test_target_must_be_honest(self, protocol_run):
        network, participants, protocol, *_ = protocol_run
        view = coalition_view(network, ["m0"])
        with pytest.raises(ValueError, match="honest"):
            coalition_recovery_attempt(view, "m0", participants, protocol.codec)

    def test_multi_round_attack_targets_chosen_round(self, rng):
        network = Network()
        participants = ["a", "b", "c"]
        protocol = SecureSummationProtocol(network, participants, "reducer", seed=5)
        round_values = []
        for _ in range(3):
            values = {p: rng.normal(size=2) for p in participants}
            round_values.append(values)
            protocol.sum_vectors(values)
        view = coalition_view(network, ["b", "c"])
        for round_index in range(3):
            result = coalition_recovery_attempt(
                view, "a", participants, protocol.codec, round_index=round_index
            )
            np.testing.assert_allclose(
                result.estimate, round_values[round_index]["a"], atol=1e-9
            )


class TestUniformityAndLeak:
    def test_masked_shares_look_uniform(self, protocol_run):
        network, _, protocol, *_ = protocol_run
        stat = share_uniformity_statistic(reducer_view(network), protocol.codec)
        # Chi-squared per dof for 20 residues is noisy but should not be
        # wildly concentrated (a plaintext leak gives values >> 10).
        assert stat < 10.0

    def test_plaintext_aggregation_flagged(self, cancer_split):
        train, _ = cancer_split
        parts = horizontal_partition(train, 4, seed=0)
        model = PrivacyPreservingSVM("horizontal", max_iter=3, secure=False, seed=0).fit(parts)
        workers = model._workers()
        view = reducer_view(model.network_)
        true_values = {
            f"learner-{i}": np.concatenate([np.array([w.b + w.beta]), w.w + w.gamma])
            for i, w in enumerate(workers)
        }
        errors = plaintext_leak_check(view, true_values)
        # The final iteration's plaintext dict is in the reducer's view.
        assert min(errors.values()) < 1e-9

    def test_secure_aggregation_not_flagged(self, cancer_split):
        train, _ = cancer_split
        parts = horizontal_partition(train, 4, seed=0)
        model = PrivacyPreservingSVM("horizontal", max_iter=3, secure=True, seed=0).fit(parts)
        workers = model._workers()
        view = reducer_view(model.network_)
        true_values = {
            f"learner-{i}": np.concatenate([np.array([w.b + w.beta]), w.w + w.gamma])
            for i, w in enumerate(workers)
        }
        errors = plaintext_leak_check(view, true_values)
        assert min(errors.values()) > 1.0

    def test_uniformity_requires_shares(self):
        network = Network()
        network.register("reducer")
        with pytest.raises(ValueError, match="no masked shares"):
            share_uniformity_statistic(reducer_view(network), FixedPointCodec())


class TestKernelAttack:
    def test_exact_recovery_with_enough_samples(self, rng):
        # The [8]/[29] attack: k independent kernel evaluations pin down
        # the secret point exactly.
        k = 6
        secret = rng.normal(size=k)
        known = rng.normal(size=(k + 3, k))
        kernel_row = known @ secret
        recovered = kernel_linear_system_attack(known, kernel_row)
        np.testing.assert_allclose(recovered, secret, atol=1e-8)

    def test_underdetermined_rejected(self, rng):
        with pytest.raises(ValueError, match="at least"):
            kernel_linear_system_attack(rng.normal(size=(3, 6)), rng.normal(size=3))

    def test_attack_does_not_apply_to_our_scheme(self, cancer_split):
        # Our trainers never materialize cross-learner kernel entries:
        # no message kind carrying kernel rows exists on the wire.
        train, _ = cancer_split
        parts = horizontal_partition(train, 4, seed=0)
        model = PrivacyPreservingSVM(
            "horizontal", max_iter=5, seed=0
        ).fit(parts)
        kinds = {m.kind for m in model.network_.message_log}
        assert kinds <= {"broadcast", "mask", "masked-share"}
