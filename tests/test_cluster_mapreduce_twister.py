"""Tests for the one-shot MapReduce job and the iterative Twister driver."""

import numpy as np
import pytest

from repro.cluster.hdfs import SimulatedHdfs
from repro.cluster.mapreduce import MapReduceJob, stable_partition_hash
from repro.cluster.network import Network
from repro.cluster.twister import (
    IterativeMapper,
    IterativeMapReduceDriver,
    IterativeReducer,
    PlaintextAggregator,
)


def word_count_mapper(block):
    for line in block:
        for word in line.split():
            yield word, 1


def sum_reducer(key, values):
    return sum(values)


class TestMapReduceJob:
    def test_word_count(self, cluster):
        _, hdfs = cluster
        hdfs.put("docs", [["a b a"], ["b c"], ["a"]])
        job = MapReduceJob(hdfs, word_count_mapper, sum_reducer)
        assert job.run("docs") == {"a": 3, "b": 2, "c": 1}

    def test_combiner_reduces_shuffle_bytes(self, network):
        def build(with_combiner):
            net = Network()
            hdfs = SimulatedHdfs(net)
            for i in range(3):
                hdfs.add_datanode(f"n{i}")
            hdfs.put("docs", [["a a a a a a"], ["a a a a"], ["a a"]])
            job = MapReduceJob(
                hdfs,
                word_count_mapper,
                sum_reducer,
                combiner=sum_reducer if with_combiner else None,
            )
            result = job.run("docs")
            return result, net.bytes_sent("shuffle")

        plain_result, plain_bytes = build(False)
        combined_result, combined_bytes = build(True)
        assert plain_result == combined_result == {"a": 12}
        assert combined_bytes < plain_bytes

    def test_multiple_reducers_same_answer(self, cluster):
        _, hdfs = cluster
        hdfs.put("docs", [["x y"], ["y z"], ["z z"]])
        job = MapReduceJob(hdfs, word_count_mapper, sum_reducer, n_reducers=3)
        assert job.run("docs") == {"x": 1, "y": 2, "z": 3}

    def test_map_tasks_counted(self, cluster):
        network, hdfs = cluster
        hdfs.put("docs", [["a"], ["b"]])
        MapReduceJob(hdfs, word_count_mapper, sum_reducer).run("docs")
        assert network.metrics.get("mapreduce.map_tasks") == 2

    def test_rejects_zero_reducers(self, cluster):
        _, hdfs = cluster
        with pytest.raises(ValueError):
            MapReduceJob(hdfs, word_count_mapper, sum_reducer, n_reducers=0)

    def test_partition_hash_is_process_independent(self):
        # Regression: the shuffle used builtin hash(), whose str output is
        # salted per process (PYTHONHASHSEED), so key->reducer assignment
        # changed between runs.  The stable digest must yield pinned
        # values that any Python process reproduces.
        assert stable_partition_hash("alpha") == 4228598614
        assert stable_partition_hash(("pair", 3)) == 1508792821
        assert stable_partition_hash("alpha") != stable_partition_hash("beta")

    def test_numeric_aggregation(self, cluster):
        _, hdfs = cluster
        hdfs.put("nums", [list(range(10)), list(range(10, 20))])
        job = MapReduceJob(
            hdfs,
            mapper=lambda block: [("sum", v) for v in block],
            reducer=lambda k, vs: sum(vs),
        )
        assert job.run("nums") == {"sum": sum(range(20))}


class CountingMapper(IterativeMapper):
    """Adds its (static) partition value to the broadcast each round."""

    def configure(self, partition, context):
        self.value = float(partition)
        self.configured_times = getattr(self, "configured_times", 0) + 1

    def map(self, broadcast, context):
        return {"total": np.array([self.value + broadcast["offset"]])}


class AveragingReducer(IterativeReducer):
    def __init__(self, stop_after):
        self.stop_after = stop_after
        self.values = []

    def initial_state(self):
        return {"offset": 0.0}

    def reduce(self, sums, n_mappers, context):
        avg = float(sums["total"][0]) / n_mappers
        self.values.append(avg)
        return {"offset": avg}, len(self.values) >= self.stop_after


class TestIterativeDriver:
    def _driver(self, stop_after=3):
        network = Network()
        hdfs = SimulatedHdfs(network)
        for i in range(3):
            hdfs.add_datanode(f"n{i}")
        hdfs.put("parts", [1.0, 2.0, 3.0], preferred_nodes=["n0", "n1", "n2"])
        reducer = AveragingReducer(stop_after)
        driver = IterativeMapReduceDriver(
            hdfs=hdfs,
            mapper_factory=CountingMapper,
            reducer=reducer,
            aggregator=PlaintextAggregator(),
        )
        return network, driver, reducer

    def test_runs_until_convergence_flag(self):
        _, driver, reducer = self._driver(stop_after=3)
        history = driver.run("parts", max_iterations=50)
        assert len(history) == 3
        assert history[-1].converged

    def test_respects_max_iterations(self):
        _, driver, _ = self._driver(stop_after=100)
        history = driver.run("parts", max_iterations=5)
        assert len(history) == 5
        assert not history[-1].converged

    def test_mappers_configured_exactly_once(self):
        _, driver, _ = self._driver()
        driver.run("parts", max_iterations=3)
        assert all(m.configured_times == 1 for m in driver._mappers.values())

    def test_iteration_math(self):
        # mean(parts) = 2; offsets: 2, 4, 6, ...
        _, driver, reducer = self._driver(stop_after=3)
        driver.run("parts")
        assert reducer.values == [2.0, 4.0, 6.0]

    def test_broadcast_traffic_accounted(self):
        network, driver, _ = self._driver(stop_after=2)
        driver.run("parts")
        # 3 mapper nodes x 2 iterations.
        assert network.messages_sent("broadcast") == 6

    def test_history_byte_deltas_positive(self):
        _, driver, _ = self._driver(stop_after=2)
        history = driver.run("parts")
        assert all(h.bytes_delta > 0 for h in history)

    def test_invalid_max_iterations(self):
        _, driver, _ = self._driver()
        with pytest.raises(ValueError):
            driver.run("parts", max_iterations=0)

    def test_node_side_combining_multiple_blocks_per_node(self):
        network = Network()
        hdfs = SimulatedHdfs(network)
        hdfs.add_datanode("n0")
        hdfs.add_datanode("n1")
        # 4 blocks on 2 nodes -> 2 mappers per node, combined locally.
        hdfs.put("parts", [1.0, 2.0, 3.0, 4.0], preferred_nodes=["n0", "n0", "n1", "n1"])
        reducer = AveragingReducer(1)
        driver = IterativeMapReduceDriver(
            hdfs=hdfs,
            mapper_factory=CountingMapper,
            reducer=reducer,
            aggregator=PlaintextAggregator(),
        )
        driver.run("parts")
        # Sum = 10 over 4 mappers -> average 2.5; only 2 consensus messages.
        assert reducer.values == [2.5]
        assert network.messages_sent("consensus") == 2
