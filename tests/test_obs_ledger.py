"""Run ledger: records, content addressing, drift diffs, `repro runs`.

System-level pins for the persistence layer: a fitted model round-trips
through ``save_run`` / ``RunLedger.load`` with JSON-native types (bools
stay bools, NaN becomes null), run ids are content addresses, and
``diff_runs`` reports **zero metric drift** for same-config/same-seed
runs while surfacing per-iteration deltas across seeds — the property
that makes the ledger usable as a regression oracle.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.partitioning import horizontal_partition
from repro.core.trainer import PrivacyPreservingSVM
from repro.data.splits import train_test_split
from repro.data.synthetic import make_blobs
from repro.obs.ledger import (
    RunLedger,
    RunRecord,
    SCHEMA_VERSION,
    dataset_fingerprint,
    diff_runs,
)


def _fit(seed=0, max_iter=4, data_seed=0, **kwargs):
    train, _ = train_test_split(make_blobs(120, seed=data_seed), seed=0)
    parts = horizontal_partition(train, 3, seed=data_seed)
    return PrivacyPreservingSVM(max_iter=max_iter, seed=seed, **kwargs).fit(parts)


class TestDatasetFingerprint:
    def test_deterministic(self):
        X = np.arange(12.0).reshape(4, 3)
        y = np.array([1.0, -1.0, 1.0, -1.0])
        assert dataset_fingerprint(X, y) == dataset_fingerprint(X.copy(), y.copy())
        assert len(dataset_fingerprint(X, y)) == 16

    def test_sensitive_to_values_shape_and_dtype(self):
        X = np.arange(12.0).reshape(4, 3)
        base = dataset_fingerprint(X)
        assert dataset_fingerprint(X + 1e-9) != base
        assert dataset_fingerprint(X.reshape(3, 4)) != base
        assert dataset_fingerprint(X.astype(np.float32)) != base

    def test_reveals_nothing_but_a_hash(self):
        fingerprint = dataset_fingerprint(np.ones((5, 2)))
        assert isinstance(fingerprint, str)
        int(fingerprint, 16)  # pure hex


class TestRecordRoundTrip:
    @pytest.fixture(scope="class")
    def saved(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("ledger")
        model = _fit(seed=0)
        run_id = model.save_run(str(root), kind="train", label="blobs/horizontal")
        return root, model, run_id

    def test_record_file_is_strict_json(self, saved):
        root, _, run_id = saved
        text = (root / f"{run_id}.json").read_text()
        data = json.loads(text)
        assert data["run_id"] == run_id
        assert data["schema_version"] == SCHEMA_VERSION
        assert "NaN" not in text and "Infinity" not in text

    def test_bools_survive_as_bools(self, saved):
        root, _, run_id = saved
        data = RunLedger(root).load(run_id)
        assert data["audit"]["ok"] is True
        assert data["iterations"][0]["residual_available"] is False

    def test_secure_horizontal_residual_is_null_not_nan(self, saved):
        # The secure Reducer cannot compute the primal residual; the
        # ledger must say "not measured", never a placeholder number.
        root, _, run_id = saved
        for row in RunLedger(root).load(run_id)["iterations"]:
            assert row["primal_residual"] is None
            assert row["residual_available"] is False

    def test_joined_rows_carry_costs_and_metrics(self, saved):
        root, model, run_id = saved
        data = RunLedger(root).load(run_id)
        assert len(data["iterations"]) == len(model.history_)
        row = data["iterations"][0]
        assert row["total_bytes"] > 0
        assert row["total_messages"] > 0
        assert any(k.startswith("crypto.") for k in row["crypto_ops"])
        assert row["z_change_sq"] == pytest.approx(
            model.history_.records[0].z_change_sq
        )
        # The setup row exists only when pre-iteration traffic occurred
        # (this fit keeps the data local, so it may be null) — but the
        # key itself is always part of the schema.
        assert "setup" in data
        assert data["counters"]["network.bytes"] == model.network_.bytes_sent()

    def test_config_dataset_and_environment_blocks(self, saved):
        root, model, run_id = saved
        data = RunLedger(root).load(run_id)
        assert data["config"]["partitioning"] == "horizontal"
        assert data["config"]["secure"] is True
        assert data["seed"] == 0
        assert data["dataset"]["fingerprint"] == model.dataset_fingerprint_["fingerprint"]
        assert data["dataset"]["n_partitions"] == 3
        assert set(data["environment"]) == {"python", "numpy", "platform", "machine"}

    def test_no_raw_data_in_record(self, saved):
        # Aggregates only: no 8-decimal feature matrix dumps, and the
        # dataset block is nothing but the fingerprint hash + counts.
        root, _, run_id = saved
        data = RunLedger(root).load(run_id)
        assert set(data["dataset"]) == {
            "fingerprint", "n_samples", "n_features", "n_partitions",
        }
        assert (root / f"{run_id}.json").stat().st_size < 100_000

    def test_list_runs_summary(self, saved):
        root, model, run_id = saved
        (summary,) = [
            s for s in RunLedger(root).list_runs() if s["run_id"] == run_id
        ]
        assert summary["kind"] == "train"
        assert summary["label"] == "blobs/horizontal"
        assert summary["seed"] == 0
        assert summary["n_iterations"] == len(model.history_)
        assert summary["verdict"] == "healthy"
        assert summary["audit_ok"] is True

    def test_prefix_resolution(self, saved):
        root, _, run_id = saved
        ledger = RunLedger(root)
        assert ledger.load(run_id[:6])["run_id"] == run_id
        with pytest.raises(KeyError, match="no run"):
            ledger.load("zzzz")

    def test_content_addressing(self, saved):
        root, model, run_id = saved
        record = model.run_record(label="blobs/horizontal")
        rerecorded = RunLedger(root).record(record)
        # Identical payload -> identical address -> one file.
        assert rerecorded == run_id
        assert len(list(root.glob("*.json"))) == 1


class TestDiff:
    def test_same_config_same_seed_zero_drift(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ids = [_fit(seed=0).save_run(str(tmp_path)) for _ in range(2)]
        diff = diff_runs(ledger.load(ids[0]), ledger.load(ids[1]))
        assert diff.identical
        assert diff.config_drift == {}
        assert diff.counter_drift == {}
        assert all(not row["differs"] for row in diff.iteration_deltas)

    def test_different_seeds_show_per_iteration_deltas(self, tmp_path):
        # Masking randomness cancels exactly, so the *trainer* seed
        # alone cannot move the trajectory — seed the data too, as the
        # CLI's --seed does.
        ledger = RunLedger(tmp_path)
        id_a = _fit(seed=0).save_run(str(tmp_path))
        id_b = _fit(seed=1, data_seed=1).save_run(str(tmp_path))
        diff = diff_runs(ledger.load(id_a), ledger.load(id_b))
        assert not diff.identical
        assert diff.config_drift == {"seed": (0, 1)}
        differing = [row for row in diff.iteration_deltas if row["differs"]]
        assert differing
        assert any(
            row["z_change_sq"] not in (None, 0.0) for row in differing
        )

    def test_config_change_reported(self, tmp_path):
        ledger = RunLedger(tmp_path)
        id_a = _fit(seed=0).save_run(str(tmp_path))
        id_b = _fit(seed=0, C=25.0).save_run(str(tmp_path))
        diff = diff_runs(ledger.load(id_a), ledger.load(id_b))
        assert diff.config_drift.get("C") == (50.0, 25.0)

    def test_wall_clock_counters_excluded(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ids = [_fit(seed=0).save_run(str(tmp_path)) for _ in range(2)]
        a, b = ledger.load(ids[0]), ledger.load(ids[1])
        # Wall-derived values almost surely differ between the runs...
        assert a["counters"]["network.serialize_s"] != 0.0
        # ...yet never show up as drift.
        assert "network.serialize_s" not in diff_runs(a, b).counter_drift


class TestRunsCli:
    @pytest.fixture(scope="class")
    def populated(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cli-ledger")
        id_a = _fit(seed=0).save_run(str(root), label="seed0")
        id_b = _fit(seed=1, data_seed=1).save_run(str(root), label="seed1")
        return root, id_a, id_b

    def test_list(self, populated, capsys):
        root, id_a, id_b = populated
        assert main(["runs", "--dir", str(root), "list"]) == 0
        out = capsys.readouterr().out
        assert id_a in out and id_b in out
        assert "healthy" in out

    def test_show(self, populated, capsys):
        root, id_a, _ = populated
        assert main(["runs", "--dir", str(root), "show", id_a]) == 0
        out = capsys.readouterr().out
        assert f"run      : {id_a}" in out
        assert "z_change_sq" in out
        assert "audit" in out

    def test_diff_different_seeds(self, populated, capsys):
        root, id_a, id_b = populated
        assert main(["runs", "--dir", str(root), "diff", id_a, id_b]) == 0
        out = capsys.readouterr().out
        assert "config drift:" in out
        assert "seed: 0 -> 1" in out
        assert "differing iteration(s)" in out

    def test_diff_same_run_reports_zero_drift(self, populated, capsys):
        root, id_a, _ = populated
        assert main(["runs", "--dir", str(root), "diff", id_a, id_a]) == 0
        out = capsys.readouterr().out
        assert "zero metric drift" in out

    def test_compare(self, populated, capsys):
        root, id_a, id_b = populated
        assert (
            main(
                [
                    "runs", "--dir", str(root), "compare", id_a, id_b,
                    "--metric", "total_bytes",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "metric: total_bytes" in out
        assert id_a in out and id_b in out

    def test_unknown_id_exits_2(self, populated, capsys):
        root, *_ = populated
        assert main(["runs", "--dir", str(root), "show", "zzzz"]) == 2
        assert "no run" in capsys.readouterr().out

    def test_trace_ledger_flag_records_a_run(self, tmp_path, capsys):
        rc = main(
            [
                "trace", "--iters", "2", "--seed", "0",
                "--ledger", "--ledger-dir", str(tmp_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "run recorded:" in out
        assert len(list(tmp_path.glob("*.json"))) == 1
