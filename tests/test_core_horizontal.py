"""Tests for the horizontal (linear and kernel) consensus SVMs.

The key correctness facts, per the paper's Lemmas 4.1/4.2:
* the consensus solution matches the centralized SVM (Lemma 4.1);
* the iterates converge — z-changes decay monotonically in trend
  (Lemma 4.2);
* each learner's local model agrees with the consensus at convergence.
"""

import numpy as np
import pytest

from repro.core.horizontal_kernel import (
    HorizontalKernelSVM,
    HorizontalKernelWorker,
    sample_landmarks,
)
from repro.core.horizontal_linear import HorizontalLinearSVM, HorizontalLinearWorker
from repro.core.partitioning import horizontal_partition
from repro.data.synthetic import make_xor_task
from repro.svm.kernels import RBFKernel
from repro.svm.model import LinearSVC


@pytest.fixture
def cancer_parts(cancer_split):
    train, test = cancer_split
    return horizontal_partition(train, 4, seed=0), train, test


class TestHorizontalLinearConvergence:
    def test_matches_centralized_solution(self, cancer_parts):
        parts, train, test = cancer_parts
        centralized = LinearSVC(C=50.0).fit(train.X, train.y)
        model = HorizontalLinearSVM(C=50.0, rho=100.0, max_iter=150).fit(parts)
        # Consensus hyperplane close to the centralized one (Lemma 4.1).
        cos = np.dot(model.consensus_weights_, centralized.coef_) / (
            np.linalg.norm(model.consensus_weights_) * np.linalg.norm(centralized.coef_)
        )
        assert cos > 0.99
        assert abs(model.score(test.X, test.y) - centralized.score(test.X, test.y)) < 0.05

    def test_z_changes_decay(self, cancer_parts):
        parts, _, _ = cancer_parts
        model = HorizontalLinearSVM(C=50.0, rho=100.0, max_iter=60).fit(parts)
        z = model.history_.z_changes
        assert z[-1] < z[0] * 1e-2

    def test_local_models_reach_consensus(self, cancer_parts):
        parts, _, _ = cancer_parts
        model = HorizontalLinearSVM(C=50.0, rho=100.0, max_iter=150).fit(parts)
        for worker in model.workers_:
            assert np.linalg.norm(worker.w - model.consensus_weights_) < 0.1

    def test_accuracy_series_recorded(self, cancer_parts):
        parts, _, test = cancer_parts
        model = HorizontalLinearSVM(max_iter=10).fit(parts, eval_set=test)
        accs = model.history_.accuracies
        assert len(accs) == 10
        assert np.all((accs >= 0) & (accs <= 1))

    def test_no_eval_set_gives_nan_accuracy(self, cancer_parts):
        parts, _, _ = cancer_parts
        model = HorizontalLinearSVM(max_iter=5).fit(parts)
        assert np.all(np.isnan(model.history_.accuracies))

    def test_early_stop_on_tol(self, cancer_parts):
        parts, _, _ = cancer_parts
        model = HorizontalLinearSVM(max_iter=200, tol=1e-4).fit(parts)
        assert model.history_.n_iterations < 200

    def test_more_learners_still_converges(self, cancer_split):
        train, test = cancer_split
        parts = horizontal_partition(train, 8, seed=0)
        model = HorizontalLinearSVM(C=50.0, rho=100.0, max_iter=120).fit(parts)
        assert model.score(test.X, test.y) > 0.85

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            HorizontalLinearSVM().predict(np.ones((1, 2)))

    def test_partition_feature_mismatch(self, cancer_parts):
        parts, _, _ = cancer_parts
        bad = parts[0].feature_subset(np.array([0, 1]))
        with pytest.raises(ValueError, match="feature dimension"):
            HorizontalLinearSVM().fit([bad, parts[1]])

    def test_single_partition_rejected(self, cancer_parts):
        parts, _, _ = cancer_parts
        with pytest.raises(ValueError, match="at least 2"):
            HorizontalLinearSVM().fit(parts[:1])


class TestHorizontalLinearWorker:
    def test_step_output_keys_and_shapes(self, cancer_parts):
        parts, _, _ = cancer_parts
        worker = HorizontalLinearWorker(parts[0].X, parts[0].y, n_learners=4)
        out = worker.step(np.zeros(parts[0].n_features), 0.0)
        assert set(out) == {"z_contrib", "s_contrib"}
        assert out["z_contrib"].shape == (parts[0].n_features,)
        assert out["s_contrib"].shape == (1,)

    def test_wrong_consensus_length(self, cancer_parts):
        parts, _, _ = cancer_parts
        worker = HorizontalLinearWorker(parts[0].X, parts[0].y, n_learners=4)
        with pytest.raises(ValueError, match="length"):
            worker.step(np.zeros(3), 0.0)

    def test_dual_variables_update_after_first_step(self, cancer_parts):
        parts, _, _ = cancer_parts
        worker = HorizontalLinearWorker(parts[0].X, parts[0].y, n_learners=4)
        worker.step(np.zeros(parts[0].n_features), 0.0)
        assert np.allclose(worker.gamma, 0.0)  # no consensus seen yet
        worker.step(np.ones(parts[0].n_features), 0.0)
        assert not np.allclose(worker.gamma, 0.0)

    def test_local_decision_function(self, cancer_parts):
        parts, _, test = cancer_parts
        worker = HorizontalLinearWorker(parts[0].X, parts[0].y, n_learners=4)
        worker.step(np.zeros(parts[0].n_features), 0.0)
        scores = worker.local_decision_function(test.X)
        assert scores.shape == (test.n_samples,)


class TestHorizontalKernel:
    def test_solves_xor_where_linear_fails(self):
        ds = make_xor_task(320, seed=2)
        parts = horizontal_partition(ds, 4, seed=0)
        linear = HorizontalLinearSVM(C=50.0, rho=100.0, max_iter=40).fit(parts)
        kernel = HorizontalKernelSVM(
            RBFKernel(gamma=1.0),
            C=50.0,
            rho=100.0,
            n_landmarks=20,
            landmark_scale=1.5,
            max_iter=40,
            seed=0,
        ).fit(parts)
        assert linear.score(ds.X, ds.y) < 0.8
        assert kernel.score(ds.X, ds.y) > 0.95

    def test_convergence_decay(self):
        ds = make_xor_task(200, seed=3)
        parts = horizontal_partition(ds, 4, seed=0)
        model = HorizontalKernelSVM(
            RBFKernel(gamma=1.0), n_landmarks=15, landmark_scale=1.5, max_iter=40, seed=0
        ).fit(parts)
        z = model.history_.z_changes
        assert z[-1] < z[0] * 1e-1

    def test_all_learners_agree_at_convergence(self):
        ds = make_xor_task(240, seed=4)
        parts = horizontal_partition(ds, 4, seed=0)
        model = HorizontalKernelSVM(
            RBFKernel(gamma=1.0), n_landmarks=15, landmark_scale=1.5, max_iter=60, seed=0
        ).fit(parts)
        preds = [
            np.sign(w.local_decision_function(ds.X[:50])) for w in model.workers_
        ]
        agreement = np.mean(preds[0] == preds[1])
        assert agreement > 0.9

    def test_more_landmarks_do_not_hurt(self):
        ds = make_xor_task(240, seed=5)
        parts = horizontal_partition(ds, 4, seed=0)
        accs = {}
        for n_land in (5, 30):
            model = HorizontalKernelSVM(
                RBFKernel(gamma=1.0),
                n_landmarks=n_land,
                landmark_scale=1.5,
                max_iter=40,
                seed=0,
            ).fit(parts)
            accs[n_land] = model.score(ds.X, ds.y)
        assert accs[30] >= accs[5] - 0.05

    def test_explicit_landmarks_accepted(self):
        ds = make_xor_task(160, seed=6)
        parts = horizontal_partition(ds, 2, seed=0)
        landmarks = sample_landmarks(10, 2, scale=1.5, seed=1)
        model = HorizontalKernelSVM(
            RBFKernel(gamma=1.0), landmarks=landmarks, max_iter=20
        ).fit(parts)
        np.testing.assert_array_equal(model.landmarks_, landmarks)

    def test_worker_representer_matches_decision(self):
        ds = make_xor_task(120, seed=7)
        parts = horizontal_partition(ds, 2, seed=0)
        landmarks = sample_landmarks(8, 2, scale=1.5, seed=2)
        worker = HorizontalKernelWorker(
            parts[0].X, parts[0].y, landmarks, kernel=RBFKernel(gamma=1.0), n_learners=2
        )
        worker.step(np.zeros(8), 0.0)
        a, c, b = worker.representer_coefficients()
        kernel = RBFKernel(gamma=1.0)
        manual = kernel(ds.X[:10], parts[0].X) @ a + kernel(ds.X[:10], landmarks) @ c + b
        np.testing.assert_allclose(
            worker.local_decision_function(ds.X[:10]), manual, atol=1e-10
        )

    def test_landmark_dimension_mismatch(self):
        ds = make_xor_task(100, seed=8)
        parts = horizontal_partition(ds, 2, seed=0)
        with pytest.raises(ValueError, match="feature dimension"):
            HorizontalKernelWorker(
                parts[0].X,
                parts[0].y,
                np.zeros((5, 9)),
                kernel=RBFKernel(gamma=1.0),
                n_learners=2,
            )

    def test_sample_landmarks_validation(self):
        with pytest.raises(ValueError):
            sample_landmarks(0, 3)

    def test_eval_learner_out_of_range(self):
        ds = make_xor_task(100, seed=9)
        parts = horizontal_partition(ds, 2, seed=0)
        with pytest.raises(ValueError, match="out of range"):
            HorizontalKernelSVM(
                RBFKernel(gamma=1.0), eval_learner=5, max_iter=2
            ).fit(parts)
