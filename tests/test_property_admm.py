"""Property-based tests of the ADMM trainers' core invariants.

On randomly generated small problems:
* the horizontal-linear consensus matches the centralized SVM direction;
* the consensus trajectory's tail movement is small relative to its head;
* workers' local duals always respect the box constraints;
* the vertical reducer's knapsack dual is always feasible.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.horizontal_linear import HorizontalLinearSVM
from repro.core.partitioning import horizontal_partition, vertical_partition
from repro.core.vertical_linear import VerticalLinearSVM
from repro.data.synthetic import make_blobs
from repro.svm.model import LinearSVC


@st.composite
def blob_problems(draw):
    n = draw(st.integers(40, 90))
    k = draw(st.integers(2, 5))
    delta = draw(st.floats(1.5, 4.0))
    seed = draw(st.integers(0, 10_000))
    return make_blobs(n, k, delta=delta, seed=seed)


class TestHorizontalLinearProperties:
    @given(blob_problems(), st.integers(2, 4))
    @settings(max_examples=10, deadline=None)
    def test_consensus_aligns_with_centralized(self, dataset, n_learners):
        parts = horizontal_partition(dataset, n_learners, seed=0)
        centralized = LinearSVC(C=10.0).fit(dataset.X, dataset.y)
        model = HorizontalLinearSVM(C=10.0, rho=10.0, max_iter=60).fit(parts)
        w_c = centralized.coef_
        w_d = model.consensus_weights_
        cos = float(w_c @ w_d / (np.linalg.norm(w_c) * np.linalg.norm(w_d) + 1e-12))
        assert cos > 0.9

    @given(blob_problems())
    @settings(max_examples=10, deadline=None)
    def test_trajectory_settles(self, dataset):
        parts = horizontal_partition(dataset, 2, seed=0)
        model = HorizontalLinearSVM(C=10.0, rho=10.0, max_iter=50).fit(parts)
        z = model.history_.z_changes
        assert np.mean(z[-5:]) < np.mean(z[:5])

    @given(blob_problems())
    @settings(max_examples=10, deadline=None)
    def test_worker_duals_respect_box(self, dataset):
        parts = horizontal_partition(dataset, 2, seed=0)
        model = HorizontalLinearSVM(C=5.0, rho=10.0, max_iter=10).fit(parts)
        for worker in model.workers_:
            assert np.all(worker._lambda >= -1e-10)
            assert np.all(worker._lambda <= 5.0 + 1e-10)

    @given(blob_problems())
    @settings(max_examples=10, deadline=None)
    def test_dual_balance_identity(self, dataset):
        # In scaled consensus ADMM, sum_m gamma_m stays ~0 (it starts at
        # 0 and each update adds w_m - z whose mean is -mean(gamma)).
        parts = horizontal_partition(dataset, 3, seed=0)
        model = HorizontalLinearSVM(C=10.0, rho=10.0, max_iter=20).fit(parts)
        gamma_mean = np.mean([w.gamma for w in model.workers_], axis=0)
        # Exact identity: z = mean(w) + mean(gamma) by construction.
        mean_w = np.mean([w.w for w in model.workers_], axis=0)
        np.testing.assert_allclose(
            model.consensus_weights_, mean_w + gamma_mean, atol=1e-8
        )


class TestVerticalLinearProperties:
    @given(blob_problems())
    @settings(max_examples=10, deadline=None)
    def test_accuracy_within_reach_of_centralized(self, dataset):
        if dataset.n_features < 2:
            return
        partition = vertical_partition(dataset, 2, seed=0)
        centralized = LinearSVC(C=10.0).fit(dataset.X, dataset.y)
        model = VerticalLinearSVM(C=10.0, rho=10.0, max_iter=80).fit(partition)
        assert model.score(dataset.X, dataset.y) >= centralized.score(dataset.X, dataset.y) - 0.1

    @given(blob_problems())
    @settings(max_examples=10, deadline=None)
    def test_reducer_dual_feasible_every_iteration(self, dataset):
        if dataset.n_features < 2:
            return
        partition = vertical_partition(dataset, 2, seed=0)
        model = VerticalLinearSVM(C=7.0, rho=10.0, max_iter=15).fit(partition)
        # u = -Y lambda / rho  =>  |u_i| <= C / rho.
        reducer = model.reducer_
        assert np.all(np.abs(reducer.u) <= 7.0 / 10.0 + 1e-8)
