"""Tests for vertical feature selection and VerticalPartition.restrict —
the paper's §VI 'sudden jumps from redundant features' remedy."""

import numpy as np
import pytest

from repro.cluster.network import Network
from repro.core.feature_selection import correlation_scores, vertical_feature_selection
from repro.core.partitioning import vertical_partition
from repro.core.vertical_linear import VerticalLinearSVM
from repro.data.dataset import Dataset
from repro.data.synthetic import make_blobs
from repro.utils.rng import as_rng


def redundant_vertical(n=240, n_noise=6, seed=0):
    rng = as_rng(seed)
    core = make_blobs(n, 6, delta=3.5, seed=seed)
    noise = rng.standard_normal((n, n_noise))
    ds = Dataset(np.hstack([core.X, noise]), core.y, "redundant")
    return ds, vertical_partition(ds, 3, seed=1)


class TestVerticalFeatureSelection:
    def test_matches_centralized_scores(self):
        ds, partition = redundant_vertical()
        result = vertical_feature_selection(partition, 6)
        np.testing.assert_allclose(
            result.scores, correlation_scores(ds.X, ds.y), atol=1e-10
        )

    def test_selects_informative_columns(self):
        ds, partition = redundant_vertical()
        result = vertical_feature_selection(partition, 6)
        assert set(result.selected.tolist()) == {0, 1, 2, 3, 4, 5}

    def test_wire_carries_scores_not_columns(self):
        _, partition = redundant_vertical()
        network = Network()
        vertical_feature_selection(partition, 6, network=network)
        for message in network.message_log:
            if message.kind == "feature-scores":
                payload = np.asarray(message.payload)
                # One float per owned column — never N rows of raw data.
                assert payload.ndim == 1
                assert payload.size < partition.n_samples

    def test_k_bounds(self):
        _, partition = redundant_vertical()
        with pytest.raises(ValueError, match="n_features"):
            vertical_feature_selection(partition, 0)
        with pytest.raises(ValueError, match="n_features"):
            vertical_feature_selection(partition, 99)

    def test_type_check(self):
        ds, _ = redundant_vertical()
        with pytest.raises(TypeError):
            vertical_feature_selection([ds], 3)


class TestPartitionRestrict:
    def test_restrict_keeps_selected_columns(self):
        ds, partition = redundant_vertical()
        restricted = partition.restrict([0, 1, 2, 3, 4, 5])
        assert sum(f.size for f in restricted.features) == 6
        # Reassembled blocks equal the original selected columns.
        reassembled = np.zeros((ds.n_samples, 6))
        for feats, block in zip(restricted.features, restricted.blocks):
            reassembled[:, feats] = block
        np.testing.assert_array_equal(reassembled, ds.X[:, :6])

    def test_split_features_consistent_after_restrict(self):
        ds, partition = redundant_vertical()
        selected = [0, 2, 4, 6, 8]
        restricted = partition.restrict(selected)
        test_X = ds.X[:10][:, selected]
        blocks = restricted.split_features(test_X)
        for feats, block in zip(restricted.features, blocks):
            np.testing.assert_array_equal(block, test_X[:, feats])

    def test_restrict_drops_empty_learners_guard(self):
        ds, partition = redundant_vertical()
        # Selecting a single learner's single column leaves < 2 learners.
        only_one = [int(partition.features[0][0])]
        with pytest.raises(ValueError, match="fewer than 2"):
            partition.restrict(only_one)

    @staticmethod
    def _train_test(seed):
        """Row-split one redundant dataset into train/test halves."""
        from repro.data.splits import train_test_split

        ds, _ = redundant_vertical(n=480, seed=seed)
        train, test = train_test_split(ds, 0.5, seed=0)
        return vertical_partition(train, 3, seed=1), test

    def test_training_after_selection_works(self):
        partition, test = self._train_test(seed=2)
        result = vertical_feature_selection(partition, 6)
        restricted = partition.restrict(result.selected)
        model = VerticalLinearSVM(max_iter=60).fit(restricted)
        acc = model.score(test.X[:, result.selected], test.y)
        assert acc > 0.85

    def test_selection_does_not_hurt_accuracy(self):
        partition, test = self._train_test(seed=4)
        full = VerticalLinearSVM(max_iter=60).fit(partition)
        result = vertical_feature_selection(partition, 6)
        trimmed = VerticalLinearSVM(max_iter=60).fit(partition.restrict(result.selected))
        full_acc = full.score(test.X, test.y)
        trimmed_acc = trimmed.score(test.X[:, result.selected], test.y)
        assert trimmed_acc >= full_acc - 0.04
