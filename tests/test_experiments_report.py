"""Tests for the Markdown report generator."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import generate_report

TINY = ExperimentConfig(max_iter=5, sizes={"cancer": 140})


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report(
            TINY,
            panels="cg",
            include_tables=False,
            include_ablation=False,
            progress=False,
        )

    def test_contains_requested_panels(self, report):
        assert "## Fig. 4(c)" in report
        assert "## Fig. 4(g)" in report
        assert "## Fig. 4(a)" not in report

    def test_contains_ascii_charts(self, report):
        assert "```" in report
        assert "|" in report  # plot borders

    def test_configuration_header(self, report):
        assert "M=4" in report
        assert "rho=100.0" in report

    def test_unknown_panel_rejected(self):
        with pytest.raises(ValueError, match="unknown panel"):
            generate_report(TINY, panels="z", include_tables=False, include_ablation=False)

    def test_tables_section(self):
        text = generate_report(
            TINY,
            panels="",
            include_tables=True,
            include_ablation=False,
            progress=False,
        )
        assert "Table S1" in text
        assert "Table S4" in text

    def test_ablation_section(self):
        text = generate_report(
            TINY,
            panels="",
            include_tables=False,
            include_ablation=True,
            progress=False,
        )
        assert "Ablation A1" in text
        assert "Ablation A2" in text
