"""Tests for the one-vs-rest / one-vs-one multiclass reductions."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.svm.kernels import RBFKernel
from repro.svm.model import SVC, LinearSVC
from repro.svm.multiclass import OneVsOneClassifier, OneVsRestClassifier


def make_multiclass(n_per_class=40, n_classes=3, seed=0):
    """Well-separated Gaussian blobs with integer class labels."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=6.0, size=(n_classes, 2))
    X = np.vstack(
        [center + rng.normal(size=(n_per_class, 2)) for center in centers]
    )
    y = np.repeat(np.arange(n_classes, dtype=float), n_per_class)
    perm = rng.permutation(len(y))
    return X[perm], y[perm]


@pytest.fixture
def three_class():
    return make_multiclass(seed=1)


class TestOneVsRest:
    def test_high_accuracy_on_separated_blobs(self, three_class):
        X, y = three_class
        model = OneVsRestClassifier(lambda: LinearSVC(C=10.0)).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_predictions_are_known_classes(self, three_class):
        X, y = three_class
        model = OneVsRestClassifier(lambda: LinearSVC(C=10.0)).fit(X, y)
        assert set(np.unique(model.predict(X))) <= set(np.unique(y))

    def test_one_model_per_class(self, three_class):
        X, y = three_class
        model = OneVsRestClassifier(lambda: LinearSVC(C=10.0)).fit(X, y)
        assert len(model.models_) == 3

    def test_decision_matrix_shape(self, three_class):
        X, y = three_class
        model = OneVsRestClassifier(lambda: LinearSVC(C=10.0)).fit(X, y)
        assert model.decision_matrix(X[:7]).shape == (7, 3)

    def test_kernel_factory(self):
        X, y = make_multiclass(30, 4, seed=2)
        model = OneVsRestClassifier(lambda: SVC(RBFKernel(gamma=0.3), C=10.0)).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_binary_case_consistent_with_plain_svc(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(size=(30, 2)) + 4, rng.normal(size=(30, 2)) - 4])
        y = np.array([1.0] * 30 + [2.0] * 30)
        ovr = OneVsRestClassifier(lambda: LinearSVC(C=10.0)).fit(X, y)
        assert ovr.score(X, y) == 1.0

    def test_single_class_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            OneVsRestClassifier(lambda: LinearSVC()).fit(np.ones((3, 2)), [1, 1, 1])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            OneVsRestClassifier(lambda: LinearSVC()).predict(np.ones((1, 2)))


class TestOneVsOne:
    def test_high_accuracy(self, three_class):
        X, y = three_class
        model = OneVsOneClassifier(lambda: LinearSVC(C=10.0)).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_pair_count(self):
        X, y = make_multiclass(20, 4, seed=3)
        model = OneVsOneClassifier(lambda: LinearSVC(C=10.0)).fit(X, y)
        assert len(model.models_) == 6  # C(4, 2)

    def test_agrees_with_ovr_on_easy_data(self, three_class):
        X, y = three_class
        ovo = OneVsOneClassifier(lambda: LinearSVC(C=10.0)).fit(X, y)
        ovr = OneVsRestClassifier(lambda: LinearSVC(C=10.0)).fit(X, y)
        agreement = np.mean(ovo.predict(X) == ovr.predict(X))
        assert agreement > 0.95

    def test_ocr_like_ten_class_digits(self):
        # A 10-class "digit" task in the OCR spirit: prototype + noise.
        rng = np.random.default_rng(4)
        prototypes = rng.normal(size=(10, 16)) * 3.0
        X = np.vstack([p + rng.normal(size=(15, 16)) for p in prototypes])
        y = np.repeat(np.arange(10.0), 15)
        model = OneVsOneClassifier(lambda: LinearSVC(C=10.0)).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            OneVsOneClassifier(lambda: LinearSVC()).predict(np.ones((1, 2)))


class TestDistributedFactory:
    def test_ovr_over_consensus_trainer(self):
        # The reductions compose with the distributed trainer through a
        # fit/decision_function adapter — multiclass PPML end-to-end.
        from repro.core.horizontal_linear import HorizontalLinearSVM
        from repro.core.partitioning import horizontal_partition

        X, y = make_multiclass(32, 3, seed=5)

        class ConsensusBinary:
            def __init__(self):
                self.model = HorizontalLinearSVM(C=10.0, rho=10.0, max_iter=25)

            def fit(self, X, y):
                ds = Dataset(X, y, "mc")
                self.model.fit(horizontal_partition(ds, 2, seed=0))
                return self

            def decision_function(self, X):
                return self.model.decision_function(X)

        ovr = OneVsRestClassifier(ConsensusBinary).fit(X, y)
        assert ovr.score(X, y) > 0.9
