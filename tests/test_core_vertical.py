"""Tests for the vertical (linear and kernel) consensus SVMs."""

import numpy as np
import pytest

from repro.core.partitioning import vertical_partition
from repro.core.vertical_kernel import VerticalKernelSVM, VerticalKernelWorker
from repro.core.vertical_linear import (
    VerticalConsensusReducer,
    VerticalLinearSVM,
    VerticalLinearWorker,
)
from repro.data.synthetic import make_xor_task
from repro.svm.kernels import RBFKernel
from repro.svm.model import LinearSVC


@pytest.fixture
def cancer_vertical(cancer_split):
    train, test = cancer_split
    return vertical_partition(train, 3, seed=0), train, test


class TestVerticalLinear:
    def test_matches_centralized_accuracy(self, cancer_vertical):
        partition, train, test = cancer_vertical
        centralized = LinearSVC(C=50.0).fit(train.X, train.y)
        model = VerticalLinearSVM(C=50.0, rho=100.0, max_iter=100).fit(partition)
        assert abs(model.score(test.X, test.y) - centralized.score(test.X, test.y)) < 0.06

    def test_joint_weights_close_to_centralized(self, cancer_vertical):
        # ADMM at the paper's rho=100 converges slowly on this problem;
        # a softer penalty reaches the same fixed point much faster
        # (cos -> 1.0 as iterations grow; see the rho ablation benchmark).
        partition, train, _ = cancer_vertical
        centralized = LinearSVC(C=50.0).fit(train.X, train.y)
        model = VerticalLinearSVM(C=50.0, rho=10.0, max_iter=400).fit(partition)
        # Reassemble the joint weight vector from the per-learner blocks.
        joint = np.zeros(train.n_features)
        for worker, features in zip(model.workers_, partition.features):
            joint[features] = worker.w
        cos = np.dot(joint, centralized.coef_) / (
            np.linalg.norm(joint) * np.linalg.norm(centralized.coef_)
        )
        assert cos > 0.97

    def test_z_changes_decay(self, cancer_vertical):
        partition, _, _ = cancer_vertical
        model = VerticalLinearSVM(max_iter=80).fit(partition)
        z = model.history_.z_changes
        assert z[-1] < z[0] * 1e-3

    def test_primal_residual_shrinks(self, cancer_vertical):
        partition, _, _ = cancer_vertical
        model = VerticalLinearSVM(max_iter=80).fit(partition)
        residuals = model.history_.primal_residuals
        assert residuals[-1] < residuals[0]

    def test_accuracy_series(self, cancer_vertical):
        partition, _, test = cancer_vertical
        model = VerticalLinearSVM(max_iter=15).fit(partition, eval_X=test.X, eval_y=test.y)
        accs = model.history_.accuracies
        assert len(accs) == 15
        assert accs[-1] > 0.8

    def test_early_stop(self, cancer_vertical):
        partition, _, _ = cancer_vertical
        model = VerticalLinearSVM(max_iter=500, tol=1e-2).fit(partition)
        assert model.history_.n_iterations < 500

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            VerticalLinearSVM().predict(np.ones((1, 4)))


class TestVerticalLinearWorker:
    def test_share_is_projection_of_weights(self, cancer_vertical):
        partition, _, _ = cancer_vertical
        worker = VerticalLinearWorker(partition.blocks[0], rho=100.0)
        out = worker.step(np.zeros(partition.n_samples))
        np.testing.assert_allclose(out["share"], partition.blocks[0] @ worker.w)

    def test_zero_correction_zero_start_small_weights(self, cancer_vertical):
        partition, _, _ = cancer_vertical
        worker = VerticalLinearWorker(partition.blocks[0], rho=100.0)
        worker.step(np.zeros(partition.n_samples))
        # With zero target the ridge solution is exactly zero.
        np.testing.assert_allclose(worker.w, 0.0, atol=1e-12)

    def test_correction_length_validated(self, cancer_vertical):
        partition, _, _ = cancer_vertical
        worker = VerticalLinearWorker(partition.blocks[0], rho=100.0)
        with pytest.raises(ValueError, match="length"):
            worker.step(np.zeros(3))

    def test_score_share_validates_width(self, cancer_vertical):
        partition, _, _ = cancer_vertical
        worker = VerticalLinearWorker(partition.blocks[0], rho=100.0)
        with pytest.raises(ValueError, match="columns"):
            worker.score_share(np.zeros((2, 99)))


class TestVerticalConsensusReducer:
    def test_bias_recovered(self, cancer_vertical):
        partition, _, test = cancer_vertical
        model = VerticalLinearSVM(max_iter=60).fit(partition)
        assert np.isfinite(model.reducer_.bias)

    def test_knapsack_dual_feasible(self, cancer_vertical):
        partition, _, _ = cancer_vertical
        reducer = VerticalConsensusReducer(partition.y, C=50.0, rho=100.0, n_learners=3)
        rng = np.random.default_rng(0)
        correction, z_change, primal = reducer.step(rng.normal(size=partition.n_samples))
        assert correction.shape == (partition.n_samples,)
        assert z_change >= 0.0
        assert primal >= 0.0

    def test_requires_two_learners(self, cancer_vertical):
        partition, _, _ = cancer_vertical
        with pytest.raises(ValueError):
            VerticalConsensusReducer(partition.y, n_learners=1)

    def test_share_length_validated(self, cancer_vertical):
        partition, _, _ = cancer_vertical
        reducer = VerticalConsensusReducer(partition.y, n_learners=3)
        with pytest.raises(ValueError, match="length"):
            reducer.step(np.zeros(5))


class TestVerticalKernel:
    def test_beats_linear_on_xor_columns(self):
        # XOR needs the interaction of both features; an additive model
        # over single columns cannot express it, but giving one learner
        # both columns (kernelized) can.  Use a 4-feature XOR embedding
        # where features 0,1 are XOR dims and 2,3 are noise.
        rng = np.random.default_rng(0)
        xor = make_xor_task(400, seed=1)
        X = np.column_stack([xor.X, rng.normal(size=(400, 2))])
        from repro.data.dataset import Dataset

        ds = Dataset(X, xor.y, "xor4")
        partition = vertical_partition(ds, 2, seed=3)
        # Find the seed-3 split: check whether features {0,1} are co-located;
        # if not, the additive-kernel model legitimately cannot solve XOR.
        together = any(set([0, 1]) <= set(f.tolist()) for f in partition.features)
        model = VerticalKernelSVM(RBFKernel(gamma=1.0), max_iter=60).fit(partition)
        acc = model.score(ds.X, ds.y)
        if together:
            assert acc > 0.9
        else:
            assert acc < 0.8  # structural limit of the decomposition

    def test_matches_linear_on_linear_task(self, cancer_vertical):
        partition, _, test = cancer_vertical
        linear = VerticalLinearSVM(max_iter=80).fit(partition)
        kernel = VerticalKernelSVM(RBFKernel(gamma=0.1), max_iter=80).fit(partition)
        assert kernel.score(test.X, test.y) > linear.score(test.X, test.y) - 0.08

    def test_worker_share_is_kernel_combination(self, cancer_vertical):
        partition, _, _ = cancer_vertical
        worker = VerticalKernelWorker(partition.blocks[0], kernel=RBFKernel(gamma=0.1), rho=100.0)
        rng = np.random.default_rng(1)
        out = worker.step(rng.normal(size=partition.n_samples))
        np.testing.assert_allclose(out["share"], worker._K @ worker.alpha, atol=1e-10)

    def test_score_share_shape(self, cancer_vertical):
        partition, _, test = cancer_vertical
        worker = VerticalKernelWorker(partition.blocks[0], kernel=RBFKernel(gamma=0.1))
        worker.step(np.zeros(partition.n_samples))
        blocks = partition.split_features(test.X)
        assert worker.score_share(blocks[0]).shape == (test.n_samples,)

    def test_history_recorded(self, cancer_vertical):
        partition, _, test = cancer_vertical
        model = VerticalKernelSVM(RBFKernel(gamma=0.1), max_iter=12).fit(
            partition, eval_X=test.X, eval_y=test.y
        )
        assert model.history_.n_iterations == 12
        assert np.isfinite(model.history_.accuracies[-1])
