"""Tests for the paper's coalition-resistant secure summation protocol."""

import numpy as np
import pytest

from repro.cluster.network import Network
from repro.crypto.fixed_point import FixedPointCodec
from repro.crypto.secure_sum import SecureSumAggregator, SecureSummationProtocol


def make_protocol(n=4, mode="fresh", seed=0):
    network = Network()
    participants = [f"m{i}" for i in range(n)]
    protocol = SecureSummationProtocol(network, participants, "red", mode=mode, seed=seed)
    return network, participants, protocol


class TestCorrectness:
    @pytest.mark.parametrize("mode", ["fresh", "prg"])
    def test_sum_is_exact_up_to_fixed_point(self, mode, rng):
        network, participants, protocol = make_protocol(mode=mode)
        values = {p: rng.normal(size=6) for p in participants}
        result = protocol.sum_vectors(values)
        np.testing.assert_allclose(result, sum(values.values()), atol=1e-9)

    def test_repeated_rounds(self, rng):
        _, participants, protocol = make_protocol()
        for _ in range(5):
            values = {p: rng.normal(size=3) for p in participants}
            result = protocol.sum_vectors(values)
            np.testing.assert_allclose(result, sum(values.values()), atol=1e-9)

    def test_two_participants_minimum(self, rng):
        _, participants, protocol = make_protocol(n=2)
        values = {p: rng.normal(size=4) for p in participants}
        np.testing.assert_allclose(
            protocol.sum_vectors(values), sum(values.values()), atol=1e-9
        )

    def test_negative_and_large_values(self):
        _, participants, protocol = make_protocol()
        values = {p: np.array([-1e6, 1e6, -0.001]) for p in participants}
        np.testing.assert_allclose(
            protocol.sum_vectors(values), 4 * values["m0"], atol=1e-6
        )


class TestProtocolShape:
    def test_fresh_mode_mask_traffic(self):
        network, participants, protocol = make_protocol(n=4)
        values = {p: np.ones(2) for p in participants}
        protocol.sum_vectors(values)
        # M(M-1) mask messages + M shares.
        assert network.messages_sent("mask") == 12
        assert network.messages_sent("masked-share") == 4

    def test_prg_mode_no_mask_traffic_after_setup(self):
        network, participants, protocol = make_protocol(n=4, mode="prg")
        seed_msgs = network.messages_sent("mask-seed")
        assert seed_msgs == 6  # C(4,2) one-time seed exchanges
        for _ in range(3):
            protocol.sum_vectors({p: np.ones(2) for p in participants})
        assert network.messages_sent("mask") == 0
        assert network.messages_sent("mask-seed") == seed_msgs

    def test_reducer_sees_only_shares(self):
        network, participants, protocol = make_protocol()
        protocol.sum_vectors({p: np.ones(2) for p in participants})
        to_reducer = [m for m in network.message_log if m.dst == "red"]
        assert all(m.kind == "masked-share" for m in to_reducer)

    def test_crypto_counters(self):
        network, participants, protocol = make_protocol(n=3)
        protocol.sum_vectors({p: np.ones(2) for p in participants})
        assert network.metrics.get("crypto.masks_generated") == 6
        assert network.metrics.get("crypto.masked_shares_sent") == 3
        assert network.metrics.get("crypto.secure_sum_rounds") == 1


class TestMaskingHidesValues:
    def test_shares_decode_to_garbage(self):
        network, participants, protocol = make_protocol()
        secret = {p: np.full(3, 7.0) for p in participants}
        protocol.sum_vectors(secret)
        codec = protocol.codec
        for message in network.message_log:
            if message.kind == "masked-share":
                decoded = codec.decode([int(v) for v in message.payload])
                # A masked share should decode to astronomically large
                # junk, never to anything near the true value 7.
                assert np.all(np.abs(decoded - 7.0) > 1e6)

    def test_same_input_different_shares_across_rounds(self):
        network, participants, protocol = make_protocol()
        values = {p: np.ones(2) for p in participants}
        protocol.sum_vectors(values)
        protocol.sum_vectors(values)
        shares = [m.payload for m in network.message_log if m.kind == "masked-share"]
        assert shares[0] != shares[4]  # fresh masks each round

    @pytest.mark.parametrize("mode", ["fresh", "prg"])
    def test_protocol_is_reproducible_from_seed(self, mode):
        # Regression: prg-mode pair RNGs were built with
        # np.random.default_rng directly; routing them through
        # repro.utils.rng.as_rng must leave the seeded pad streams (and
        # therefore the exact wire view) byte-for-byte reproducible.
        def wire_view():
            network, participants, protocol = make_protocol(n=3, mode=mode)
            values = {p: np.arange(2, dtype=float) for p in participants}
            total = protocol.sum_vectors(values)
            shares = [
                m.payload for m in network.message_log if m.kind == "masked-share"
            ]
            return total, shares

        total_a, shares_a = wire_view()
        total_b, shares_b = wire_view()
        np.testing.assert_allclose(total_a, total_b)
        assert shares_a == shares_b


class TestValidation:
    def test_needs_two_participants(self):
        with pytest.raises(ValueError, match="at least 2"):
            SecureSummationProtocol(Network(), ["only"], "red")

    def test_duplicate_participants(self):
        with pytest.raises(ValueError, match="unique"):
            SecureSummationProtocol(Network(), ["a", "a"], "red")

    def test_reducer_cannot_participate(self):
        with pytest.raises(ValueError, match="reducer"):
            SecureSummationProtocol(Network(), ["a", "red"], "red")

    def test_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            SecureSummationProtocol(Network(), ["a", "b"], "red", mode="magic")

    def test_wrong_participant_set(self):
        _, participants, protocol = make_protocol()
        with pytest.raises(ValueError, match="cover exactly"):
            protocol.sum_vectors({"m0": np.ones(2)})

    def test_mismatched_lengths(self):
        _, participants, protocol = make_protocol(n=2)
        with pytest.raises(ValueError, match="length"):
            protocol.sum_vectors({"m0": np.ones(2), "m1": np.ones(3)})


class TestAggregator:
    def test_sums_named_outputs(self, rng):
        network = Network()
        network.register("red")
        outputs = {
            f"m{i}": {"w": rng.normal(size=4), "b": np.array([float(i)])} for i in range(3)
        }
        for node in outputs:
            network.register(node)
        aggregator = SecureSumAggregator(seed=0)
        sums = aggregator.aggregate(outputs, "red", network)
        np.testing.assert_allclose(
            sums["w"], sum(o["w"] for o in outputs.values()), atol=1e-9
        )
        assert sums["b"][0] == pytest.approx(3.0, abs=1e-9)

    def test_preserves_shapes(self, rng):
        network = Network()
        outputs = {f"m{i}": {"mat": rng.normal(size=(2, 3))} for i in range(2)}
        aggregator = SecureSumAggregator(seed=0)
        sums = aggregator.aggregate(outputs, "red", network)
        assert sums["mat"].shape == (2, 3)

    def test_rejects_inconsistent_keys(self, rng):
        network = Network()
        outputs = {"m0": {"a": np.ones(2)}, "m1": {"b": np.ones(2)}}
        aggregator = SecureSumAggregator(seed=0)
        with pytest.raises(ValueError, match="keys"):
            aggregator.aggregate(outputs, "red", network)

    def test_custom_codec_used(self, rng):
        network = Network()
        codec = FixedPointCodec(fractional_bits=20, max_terms=8)
        outputs = {f"m{i}": {"v": rng.normal(size=3)} for i in range(2)}
        aggregator = SecureSumAggregator(codec=codec, seed=0)
        sums = aggregator.aggregate(outputs, "red", network)
        expected = sum(o["v"] for o in outputs.values())
        np.testing.assert_allclose(sums["v"], expected, atol=2 * 2.0**-20)
