"""Property-based tests for kernels and data utilities."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.data.dataset import Dataset
from repro.data.splits import train_test_split
from repro.svm.kernels import LinearKernel, PolynomialKernel, RBFKernel

point_arrays = hnp.arrays(
    float,
    st.tuples(st.integers(2, 15), st.integers(1, 5)),
    elements=st.floats(-10, 10, allow_nan=False, allow_infinity=False),
)


class TestKernelProperties:
    @given(point_arrays)
    @settings(max_examples=50, deadline=None)
    def test_gram_matrices_symmetric(self, X):
        for kernel in (LinearKernel(), RBFKernel(0.3), PolynomialKernel(2)):
            K = kernel.gram(X)
            np.testing.assert_allclose(K, K.T, atol=1e-12)

    @given(point_arrays)
    @settings(max_examples=50, deadline=None)
    def test_psd_kernels_have_nonnegative_spectrum(self, X):
        for kernel in (LinearKernel(), RBFKernel(0.3), PolynomialKernel(2, offset=1.0)):
            eigs = np.linalg.eigvalsh(kernel.gram(X))
            assert eigs.min() >= -1e-6 * max(1.0, abs(eigs.max()))

    @given(point_arrays)
    @settings(max_examples=50, deadline=None)
    def test_rbf_cauchy_schwarz(self, X):
        K = RBFKernel(0.5).gram(X)
        n = K.shape[0]
        for i in range(n):
            for j in range(n):
                assert K[i, j] ** 2 <= K[i, i] * K[j, j] + 1e-9

    @given(point_arrays, st.floats(0.1, 3.0))
    @settings(max_examples=40, deadline=None)
    def test_rbf_shift_invariance(self, X, shift):
        kernel = RBFKernel(0.4)
        np.testing.assert_allclose(
            kernel.gram(X), kernel.gram(X + shift), atol=1e-9
        )

    @given(point_arrays)
    @settings(max_examples=40, deadline=None)
    def test_linear_kernel_bilinearity(self, X):
        kernel = LinearKernel()
        K2 = kernel(2.0 * X, X)
        np.testing.assert_allclose(K2, 2.0 * kernel(X, X), atol=1e-9)


@st.composite
def labeled_datasets(draw):
    n = draw(st.integers(8, 40))
    k = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, k))
    y = rng.choice([-1.0, 1.0], size=n)
    y[: n // 2] = 1.0
    y[n // 2 :] = -1.0
    return Dataset(X, y, "prop")


class TestSplitProperties:
    @given(labeled_datasets(), st.floats(0.2, 0.8), st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_split_partitions_samples(self, dataset, fraction, seed):
        train, test = train_test_split(dataset, fraction, seed=seed)
        assert train.n_samples + test.n_samples == dataset.n_samples
        combined = np.vstack([train.X, test.X])
        assert combined.shape == dataset.X.shape

    @given(labeled_datasets(), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_split_no_row_overlap(self, dataset, seed):
        # Attach a unique id column so rows are distinguishable.
        ids = np.arange(dataset.n_samples, dtype=float).reshape(-1, 1)
        tagged = Dataset(np.hstack([dataset.X, ids]), dataset.y, "tagged")
        train, test = train_test_split(tagged, 0.5, seed=seed)
        train_ids = set(train.X[:, -1].astype(int))
        test_ids = set(test.X[:, -1].astype(int))
        assert not train_ids & test_ids
