"""Unit tests for horizontal/vertical partitioning."""

import numpy as np
import pytest

from repro.core.partitioning import horizontal_partition, vertical_partition
from repro.data.synthetic import make_blobs


class TestHorizontalPartition:
    def test_covers_all_rows(self):
        ds = make_blobs(100, 3, seed=0)
        parts = horizontal_partition(ds, 4, seed=0)
        assert sum(p.n_samples for p in parts) == 100

    def test_balanced_sizes(self):
        ds = make_blobs(101, 3, seed=0)
        parts = horizontal_partition(ds, 4, seed=0)
        sizes = [p.n_samples for p in parts]
        assert max(sizes) - min(sizes) <= 2

    def test_every_learner_has_both_classes(self):
        ds = make_blobs(60, 2, balance=0.2, seed=1)
        parts = horizontal_partition(ds, 4, seed=1)
        for p in parts:
            assert set(np.unique(p.y)) == {-1.0, 1.0}

    def test_feature_dimension_preserved(self):
        ds = make_blobs(80, 7, seed=2)
        for p in horizontal_partition(ds, 4, seed=0):
            assert p.n_features == 7

    def test_rows_not_duplicated(self):
        ds = make_blobs(50, 2, seed=3)
        parts = horizontal_partition(ds, 2, seed=0)
        stacked = np.vstack([p.X for p in parts])
        unique_rows = np.unique(stacked, axis=0)
        assert unique_rows.shape[0] == 50

    def test_unbalanced_mode_runs(self):
        ds = make_blobs(400, 2, seed=4)
        parts = horizontal_partition(ds, 4, seed=0, balanced=False)
        assert sum(p.n_samples for p in parts) == 400

    def test_deterministic(self):
        ds = make_blobs(60, 2, seed=5)
        a = horizontal_partition(ds, 3, seed=42)
        b = horizontal_partition(ds, 3, seed=42)
        for pa, pb in zip(a, b):
            np.testing.assert_array_equal(pa.X, pb.X)

    def test_names_annotated(self):
        ds = make_blobs(40, 2, seed=0)
        parts = horizontal_partition(ds, 2, seed=0)
        assert parts[0].name.endswith("/learner0")
        assert parts[1].name.endswith("/learner1")

    def test_too_few_learners(self):
        ds = make_blobs(40, 2, seed=0)
        with pytest.raises(ValueError):
            horizontal_partition(ds, 1)

    def test_too_small_dataset(self):
        ds = make_blobs(6, 2, seed=0)
        with pytest.raises(ValueError):
            horizontal_partition(ds, 4)


class TestVerticalPartition:
    def test_features_partitioned_exactly(self):
        ds = make_blobs(50, 10, seed=0)
        part = vertical_partition(ds, 3, seed=0)
        all_features = np.concatenate(part.features)
        assert sorted(all_features.tolist()) == list(range(10))

    def test_every_learner_nonempty(self):
        ds = make_blobs(40, 5, seed=1)
        part = vertical_partition(ds, 5, seed=0)
        assert all(f.size >= 1 for f in part.features)

    def test_blocks_match_feature_indices(self):
        ds = make_blobs(30, 6, seed=2)
        part = vertical_partition(ds, 2, seed=0)
        for features, block in zip(part.features, part.blocks):
            np.testing.assert_array_equal(block, ds.X[:, features])

    def test_labels_shared(self):
        ds = make_blobs(30, 6, seed=3)
        part = vertical_partition(ds, 2, seed=0)
        np.testing.assert_array_equal(part.y, ds.y)

    def test_split_features_roundtrip(self):
        ds = make_blobs(30, 8, seed=4)
        part = vertical_partition(ds, 3, seed=0)
        test_X = np.arange(16.0).reshape(2, 8)
        blocks = part.split_features(test_X)
        for features, block in zip(part.features, blocks):
            np.testing.assert_array_equal(block, test_X[:, features])

    def test_split_features_wrong_width(self):
        ds = make_blobs(30, 8, seed=4)
        part = vertical_partition(ds, 3, seed=0)
        with pytest.raises(ValueError, match="columns"):
            part.split_features(np.zeros((2, 5)))

    def test_properties(self):
        ds = make_blobs(30, 8, seed=5)
        part = vertical_partition(ds, 4, seed=0)
        assert part.n_learners == 4
        assert part.n_samples == 30

    def test_more_learners_than_features(self):
        ds = make_blobs(30, 3, seed=0)
        with pytest.raises(ValueError, match="too few"):
            vertical_partition(ds, 4)

    def test_deterministic(self):
        ds = make_blobs(30, 9, seed=6)
        a = vertical_partition(ds, 3, seed=7)
        b = vertical_partition(ds, 3, seed=7)
        for fa, fb in zip(a.features, b.features):
            np.testing.assert_array_equal(fa, fb)
