"""Property-based tests (hypothesis) for the QP/knapsack/SMO solvers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.svm.kernels import LinearKernel, RBFKernel
from repro.svm.knapsack import solve_quadratic_knapsack
from repro.svm.qp import solve_box_qp
from repro.svm.smo import solve_svm_dual

finite_floats = st.floats(-5.0, 5.0, allow_nan=False, allow_infinity=False)


@st.composite
def box_qp_problems(draw):
    n = draw(st.integers(2, 8))
    A = draw(
        hnp.arrays(float, (n, n), elements=finite_floats)
    )
    H = A @ A.T + np.eye(n) * draw(st.floats(0.1, 2.0))
    d = draw(hnp.arrays(float, (n,), elements=finite_floats))
    C = draw(st.floats(0.5, 10.0))
    return H, d, C


class TestBoxQPProperties:
    @given(box_qp_problems())
    @settings(max_examples=40, deadline=None)
    def test_solution_in_box_and_kkt(self, problem):
        H, d, C = problem
        result = solve_box_qp(H, d, 0.0, C, tol=1e-8)
        assert np.all(result.x >= -1e-12)
        assert np.all(result.x <= C + 1e-12)
        # Coordinate descent can stall slightly above tol on nearly
        # singular Hessians (condition number ~1e3+); 1e-5 is still far
        # tighter than anything the ADMM loop needs.
        assert result.kkt_residual <= 1e-5

    @given(box_qp_problems())
    @settings(max_examples=25, deadline=None)
    def test_objective_no_worse_than_vertices(self, problem):
        H, d, C = problem
        result = solve_box_qp(H, d, 0.0, C, tol=1e-10)

        def obj(x):
            return 0.5 * x @ H @ x + d @ x

        n = H.shape[0]
        for corner in (np.zeros(n), np.full(n, C)):
            assert result.objective <= obj(corner) + 1e-6

    @given(box_qp_problems(), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_warm_start_reaches_same_objective(self, problem, seed):
        H, d, C = problem
        cold = solve_box_qp(H, d, 0.0, C, tol=1e-10)
        x0 = np.random.default_rng(seed).uniform(0, C, size=H.shape[0])
        warm = solve_box_qp(H, d, 0.0, C, x0=x0, tol=1e-10)
        assert abs(cold.objective - warm.objective) < 1e-5


@st.composite
def knapsack_problems(draw):
    n = draw(st.integers(2, 12))
    a = draw(hnp.arrays(float, (n,), elements=st.floats(0.1, 5.0)))
    d = draw(hnp.arrays(float, (n,), elements=finite_floats))
    c = draw(hnp.arrays(float, (n,), elements=st.sampled_from([-1.0, 1.0])))
    C = draw(st.floats(0.5, 5.0))
    return a, d, c, C


class TestKnapsackProperties:
    @given(knapsack_problems())
    @settings(max_examples=50, deadline=None)
    def test_feasibility(self, problem):
        a, d, c, C = problem
        result = solve_quadratic_knapsack(a, d, c, 0.0, 0.0, C)
        assert result.constraint_residual < 1e-6
        assert np.all(result.x >= -1e-9)
        assert np.all(result.x <= C + 1e-9)

    @given(knapsack_problems())
    @settings(max_examples=30, deadline=None)
    def test_optimality_vs_random_feasible_points(self, problem):
        a, d, c, C = problem
        result = solve_quadratic_knapsack(a, d, c, 0.0, 0.0, C)

        def obj(x):
            return float(0.5 * (a * x) @ x + d @ x)

        # Compare against random feasible perturbations projected back
        # onto the constraint via pairs with opposite signs.
        rng = np.random.default_rng(0)
        best = obj(result.x)
        for _ in range(20):
            x = rng.uniform(0, C, size=len(a))
            # project onto {c'x = 0} then clip (approximately feasible)
            x = x - (c @ x) / (c @ c) * c
            x = np.clip(x, 0.0, C)
            if abs(c @ x) < 1e-9:
                assert best <= obj(x) + 1e-6

    @given(st.integers(2, 10), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_scaling_invariance(self, n, seed):
        # Scaling (a, d) by the same factor leaves the minimizer fixed.
        rng = np.random.default_rng(seed)
        a = rng.uniform(0.5, 2.0, size=n)
        d = rng.normal(size=n)
        c = rng.choice([-1.0, 1.0], size=n)
        base = solve_quadratic_knapsack(a, d, c, 0.0, 0.0, 3.0)
        scaled = solve_quadratic_knapsack(7.0 * a, 7.0 * d, c, 0.0, 0.0, 3.0)
        np.testing.assert_allclose(base.x, scaled.x, atol=1e-6)


@st.composite
def svm_datasets(draw):
    n = draw(st.integers(6, 24))
    k = draw(st.integers(2, 5))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, k))
    y = rng.choice([-1.0, 1.0], size=n)
    # Ensure both classes present.
    y[0], y[1] = 1.0, -1.0
    C = draw(st.floats(0.5, 20.0))
    return X, y, C


class TestSMOProperties:
    @given(svm_datasets())
    @settings(max_examples=40, deadline=None)
    def test_constraints_hold(self, problem):
        X, y, C = problem
        K = LinearKernel().gram(X)
        result = solve_svm_dual(K, y, C, tol=1e-6)
        assert np.all(result.alpha >= -1e-10)
        assert np.all(result.alpha <= C + 1e-10)
        assert abs(float(y @ result.alpha)) < 1e-6

    @given(svm_datasets())
    @settings(max_examples=30, deadline=None)
    def test_dual_objective_nonpositive(self, problem):
        X, y, C = problem
        K = RBFKernel(gamma=0.5).gram(X)
        result = solve_svm_dual(K, y, C, tol=1e-6)
        Q = np.outer(y, y) * K
        obj = 0.5 * result.alpha @ Q @ result.alpha - result.alpha.sum()
        assert obj <= 1e-9

    @given(svm_datasets())
    @settings(max_examples=20, deadline=None)
    def test_kkt_margins_at_convergence(self, problem):
        X, y, C = problem
        K = LinearKernel().gram(X)
        result = solve_svm_dual(K, y, C, tol=1e-8)
        if not result.converged:
            return
        scores = K @ (result.alpha * y) + result.bias
        margins = y * scores
        free = (result.alpha > 1e-6) & (result.alpha < C - 1e-6)
        # Free support vectors sit on the margin.
        if free.any():
            np.testing.assert_allclose(margins[free], 1.0, atol=1e-3)
        # Zero-alpha points are outside or on the margin (up to tol).
        zero = result.alpha <= 1e-10
        if zero.any():
            assert margins[zero].min() > 1.0 - 1e-2
