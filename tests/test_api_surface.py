"""API-surface hygiene: exports resolve, public items are documented.

These tests keep the package honest as it grows: every name in every
``__all__`` must be importable from its module, every public class and
function must carry a docstring, and the top-level package must expose
the documented entry points.
"""

import importlib
import inspect

import pytest

MODULES = [
    "repro",
    "repro.baselines",
    "repro.cli",
    "repro.cluster",
    "repro.cluster.hdfs",
    "repro.cluster.mapreduce",
    "repro.cluster.metrics",
    "repro.cluster.network",
    "repro.cluster.profiling",
    "repro.cluster.scheduler",
    "repro.cluster.tracing",
    "repro.cluster.twister",
    "repro.core",
    "repro.core.feature_selection",
    "repro.core.horizontal_kernel",
    "repro.core.horizontal_linear",
    "repro.core.horizontal_logistic",
    "repro.core.mapreduce_svm",
    "repro.core.partitioning",
    "repro.core.results",
    "repro.core.trainer",
    "repro.core.vertical_kernel",
    "repro.core.vertical_linear",
    "repro.crypto",
    "repro.crypto.dot_product",
    "repro.crypto.fixed_point",
    "repro.crypto.paillier",
    "repro.crypto.secret_sharing",
    "repro.crypto.secure_sum",
    "repro.crypto.threshold_sum",
    "repro.data",
    "repro.data.dataset",
    "repro.data.loaders",
    "repro.data.scaling",
    "repro.data.splits",
    "repro.data.synthetic",
    "repro.experiments",
    "repro.experiments.ablation",
    "repro.experiments.config",
    "repro.experiments.datasets",
    "repro.experiments.figure4",
    "repro.experiments.report",
    "repro.experiments.tables",
    "repro.obs",
    "repro.obs.audit",
    "repro.obs.health",
    "repro.obs.ledger",
    "repro.obs.runs_cli",
    "repro.persistence",
    "repro.security",
    "repro.security.adversary",
    "repro.security.analysis",
    "repro.svm",
    "repro.svm.calibration",
    "repro.svm.grid_search",
    "repro.svm.kernels",
    "repro.svm.knapsack",
    "repro.svm.model",
    "repro.svm.multiclass",
    "repro.svm.qp",
    "repro.svm.smo",
    "repro.utils",
    "repro.utils.plotting",
    "repro.utils.rng",
    "repro.utils.timing",
    "repro.utils.validation",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_imports_and_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{module_name}.{name} lacks a docstring"
            if inspect.isclass(obj):
                for method_name, method in inspect.getmembers(obj, inspect.isfunction):
                    if method_name.startswith("_"):
                        continue
                    if method.__qualname__.split(".")[0] != obj.__name__:
                        continue  # inherited
                    assert method.__doc__, (
                        f"{module_name}.{name}.{method_name} lacks a docstring"
                    )


def test_top_level_exports():
    import repro

    for name in (
        "PrivacyPreservingSVM",
        "HorizontalLinearSVM",
        "HorizontalKernelSVM",
        "VerticalLinearSVM",
        "VerticalKernelSVM",
        "horizontal_partition",
        "vertical_partition",
        "SVC",
        "LinearSVC",
    ):
        assert hasattr(repro, name)
    assert repro.__version__ == "1.0.0"


def test_quickstart_docstring_example_runs():
    # The package docstring's quickstart must actually work.
    from repro import PrivacyPreservingSVM, horizontal_partition
    from repro.data import make_cancer_like, train_test_split

    train, test = train_test_split(make_cancer_like(160, seed=0), seed=0)
    parts = horizontal_partition(train, n_learners=4, seed=0)
    model = PrivacyPreservingSVM(max_iter=10, seed=0).fit(parts)
    assert model.score(test.X, test.y) > 0.8
    assert model.raw_data_bytes_moved() == 0.0
