"""Unit tests for repro.data.dataset, splits, and scaling."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.scaling import StandardScaler
from repro.data.splits import kfold_indices, train_test_split
from repro.data.synthetic import make_blobs


class TestDataset:
    def test_basic_properties(self):
        ds = Dataset([[1.0, 2.0], [3.0, 4.0]], [1, -1], "toy")
        assert ds.n_samples == 2
        assert ds.n_features == 2
        assert ds.name == "toy"
        assert len(ds) == 2

    def test_rejects_label_length_mismatch(self):
        with pytest.raises(ValueError):
            Dataset([[1.0], [2.0]], [1])

    def test_rejects_bad_labels(self):
        with pytest.raises(ValueError):
            Dataset([[1.0]], [0])

    def test_subset_rows(self):
        ds = make_blobs(20, 3, seed=0)
        sub = ds.subset(np.array([0, 5, 7]))
        assert sub.n_samples == 3
        np.testing.assert_array_equal(sub.X[1], ds.X[5])
        assert sub.y[2] == ds.y[7]

    def test_subset_rename(self):
        ds = make_blobs(10, 2, seed=0)
        assert ds.subset([0, 1], "renamed").name == "renamed"

    def test_feature_subset(self):
        ds = make_blobs(10, 4, seed=0)
        sub = ds.feature_subset(np.array([1, 3]))
        assert sub.n_features == 2
        np.testing.assert_array_equal(sub.X[:, 0], ds.X[:, 1])

    def test_class_balance(self):
        ds = Dataset([[0.0], [0.0], [0.0], [0.0]], [1, 1, 1, -1])
        assert ds.class_balance() == pytest.approx(0.75)

    def test_immutability(self):
        ds = make_blobs(10, 2, seed=0)
        with pytest.raises(AttributeError):
            ds.name = "other"


class TestTrainTestSplit:
    def test_covers_all_samples(self):
        ds = make_blobs(101, 2, seed=1)
        train, test = train_test_split(ds, 0.5, seed=0)
        assert train.n_samples + test.n_samples == 101

    def test_default_is_half(self):
        ds = make_blobs(100, 2, seed=1)
        train, test = train_test_split(ds, seed=0)
        assert abs(train.n_samples - 50) <= 1

    def test_stratified_preserves_balance(self):
        ds = make_blobs(200, 2, balance=0.3, seed=2)
        train, test = train_test_split(ds, 0.5, seed=0)
        assert abs(train.class_balance() - 0.3) < 0.05
        assert abs(test.class_balance() - 0.3) < 0.05

    def test_unstratified_mode(self):
        ds = make_blobs(100, 2, seed=2)
        train, test = train_test_split(ds, 0.3, stratify=False, seed=0)
        assert test.n_samples == 30

    def test_deterministic_with_seed(self):
        ds = make_blobs(60, 2, seed=3)
        a_train, _ = train_test_split(ds, seed=9)
        b_train, _ = train_test_split(ds, seed=9)
        np.testing.assert_array_equal(a_train.X, b_train.X)

    def test_rejects_degenerate_fraction(self):
        ds = make_blobs(10, 2, seed=0)
        with pytest.raises(ValueError):
            train_test_split(ds, 0.0)
        with pytest.raises(ValueError):
            train_test_split(ds, 1.0)

    def test_names_annotated(self):
        ds = make_blobs(40, 2, seed=0)
        train, test = train_test_split(ds, seed=0)
        assert train.name.endswith("/train")
        assert test.name.endswith("/test")


class TestKFold:
    def test_folds_partition_everything(self):
        folds = kfold_indices(25, 4, seed=0)
        all_test = np.concatenate([t for _, t in folds])
        assert sorted(all_test.tolist()) == list(range(25))

    def test_train_test_disjoint(self):
        for train, test in kfold_indices(20, 5, seed=1):
            assert not set(train) & set(test)

    def test_rejects_too_few_folds(self):
        with pytest.raises(ValueError):
            kfold_indices(10, 1)

    def test_rejects_more_folds_than_samples(self):
        with pytest.raises(ValueError):
            kfold_indices(3, 4)


class TestStandardScaler:
    def test_zero_mean_unit_std(self, rng):
        X = rng.normal(5.0, 3.0, size=(200, 4))
        Xs = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Xs.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(Xs.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_not_divided_by_zero(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Xs = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Xs))
        np.testing.assert_allclose(Xs[:, 0], 0.0)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_feature_count_mismatch(self):
        scaler = StandardScaler().fit(np.ones((5, 3)))
        with pytest.raises(ValueError):
            scaler.transform(np.ones((5, 2)))

    def test_transform_dataset_keeps_labels(self):
        ds = make_blobs(30, 3, seed=0)
        out = StandardScaler().fit(ds.X).transform_dataset(ds)
        np.testing.assert_array_equal(out.y, ds.y)
        assert out.name == ds.name

    def test_test_data_uses_train_statistics(self, rng):
        train = rng.normal(0.0, 1.0, size=(100, 2))
        test = rng.normal(10.0, 1.0, size=(50, 2))
        scaler = StandardScaler().fit(train)
        assert scaler.transform(test).mean() > 5.0
