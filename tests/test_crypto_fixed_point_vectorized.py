"""Equivalence tests: vectorized residue backend vs the legacy list path.

The vectorized backend (packed ``uint64`` limb arrays, blocked RNG
draws) must be *bit-identical* to the original per-element Python-int
implementation — same residues, same decoded floats, same RNG stream
consumption — for both the default power-of-two modulus and an odd
prime field.  These tests pin that contract; a regression here means
protocol transcripts or training trajectories silently changed.
"""

import pickle

import numpy as np
import pytest
from numpy.random import default_rng

from repro.crypto.fixed_point import (
    FixedPointCodec,
    ResidueVector,
    _blocked_draws_supported,
    _draw_words,
)
from repro.crypto.secret_sharing import MERSENNE_PRIME_127

CODEC_CONFIGS = [
    pytest.param({}, id="pow2-128-default"),
    pytest.param({"modulus_bits": 64, "fractional_bits": 20}, id="pow2-64"),
    pytest.param({"modulus_bits": 96, "fractional_bits": 30}, id="pow2-96"),
    pytest.param({"modulus": 1 << 128}, id="explicit-pow2-128"),
    pytest.param({"modulus": MERSENNE_PRIME_127}, id="mersenne-prime-127"),
]


def legacy_random_vector(codec: FixedPointCodec, n: int, rng) -> list[int]:
    """The original scalar draw, verbatim from the seed implementation."""
    n_words = (codec.modulus_bits + 63) // 64 + 1
    out = []
    for _ in range(n):
        value = 0
        for _ in range(n_words):
            value = (value << 64) | int(rng.integers(0, 2**63)) << 1 | int(rng.integers(0, 2))
        out.append(value % codec.modulus)
    return out


@pytest.fixture(params=CODEC_CONFIGS)
def codec_pair(request):
    """(vectorized, legacy-backend) codecs with identical parameters."""
    kwargs = dict(request.param)
    return FixedPointCodec(**kwargs), FixedPointCodec(**kwargs, vectorized=False)


class TestEncodeDecodeEquivalence:
    def test_encode_array_matches_legacy_list(self, codec_pair, rng):
        codec, legacy = codec_pair
        values = rng.normal(size=257) * min(1.0, codec.max_magnitude / 10)
        values[0] = 0.0
        expected = codec.encode(values)
        assert codec.encode_array(values).to_ints() == expected
        assert legacy.encode_array(values).to_ints() == expected

    def test_decode_matches_legacy_on_small_residues(self, codec_pair, rng):
        codec, legacy = codec_pair
        values = rng.normal(size=129) * min(1.0, codec.max_magnitude / 10)
        residues = codec.encode(values)
        expected = codec.decode(residues)
        assert np.array_equal(codec.decode(codec.encode_array(values)), expected)
        assert np.array_equal(legacy.decode(legacy.encode_array(values)), expected)

    def test_decode_matches_legacy_on_full_range_residues(self, codec_pair):
        # Masked shares are uniform over [0, q): the packed decode must
        # take its exact big-int path, not the single-limb float path.
        codec, _ = codec_pair
        residues = legacy_random_vector(codec, 64, default_rng(5))
        packed = codec._from_ints(residues)
        assert np.array_equal(codec.decode(packed), codec.decode(residues))

    def test_roundtrip_is_exact_for_dyadic_values(self, codec_pair):
        codec, _ = codec_pair
        values = np.array([0.0, 1.0, -1.0, 0.5, -0.25, 3.75, -100.0])
        assert np.array_equal(codec.decode(codec.encode_array(values)), values)


class TestArithmeticEquivalence:
    def test_add_subtract_match_legacy(self, codec_pair):
        codec, legacy = codec_pair
        a = legacy_random_vector(codec, 257, default_rng(1))
        b = legacy_random_vector(codec, 257, default_rng(2))
        add_expected = codec.add(a, b)
        sub_expected = codec.subtract(a, b)
        for c in (codec, legacy):
            va, vb = c._from_ints(a), c._from_ints(b)
            assert c.add(va, vb).to_ints() == add_expected
            assert c.subtract(va, vb).to_ints() == sub_expected

    def test_mask_roundtrip_cancels(self, codec_pair, rng):
        codec, _ = codec_pair
        values = rng.normal(size=40) * min(1.0, codec.max_magnitude / 10)
        encoded = codec.encode_array(values)
        mask = codec.random_vector_array(40, default_rng(3))
        masked = codec.add(encoded, mask)
        unmasked = codec.subtract(masked, mask)
        assert unmasked == encoded
        assert np.array_equal(codec.decode(unmasked), codec.decode(encoded))

    def test_mixed_operand_types(self, codec_pair):
        codec, _ = codec_pair
        ints = legacy_random_vector(codec, 9, default_rng(4))
        packed = codec._from_ints(ints)
        assert codec.add(packed, ints).to_ints() == codec.add(ints, ints)
        assert codec.subtract(ints, packed).to_ints() == [0] * 9

    def test_length_mismatch_rejected(self, codec_pair):
        codec, _ = codec_pair
        with pytest.raises(ValueError, match="length"):
            codec.add(codec.zeros_array(1), codec.zeros_array(2))


class TestRandomVectorStream:
    def test_blocked_draw_matches_scalar_stream(self, codec_pair):
        codec, legacy = codec_pair
        reference, vec_rng, leg_rng = default_rng(7), default_rng(7), default_rng(7)
        # Consecutive calls exercise the bit generator's buffered
        # half-word carrying over between blocks.
        for _ in range(3):
            expected = legacy_random_vector(codec, 33, reference)
            assert codec.random_vector_array(33, vec_rng).to_ints() == expected
            assert legacy.random_vector_array(33, leg_rng).to_ints() == expected
        # The generators must leave the stream in the identical state.
        tail = int(reference.integers(0, 2**63))
        assert int(vec_rng.integers(0, 2**63)) == tail
        assert int(leg_rng.integers(0, 2**63)) == tail

    def test_blocked_draw_after_interleaved_scalar_draws(self, codec_pair):
        # Entering a block with a buffered half-word pending (odd number
        # of prior bit draws) must still reproduce the scalar stream.
        codec, _ = codec_pair
        reference, blocked = default_rng(11), default_rng(11)
        assert int(reference.integers(0, 2)) == int(blocked.integers(0, 2))
        expected = legacy_random_vector(codec, 10, reference)
        assert codec.random_vector_array(10, blocked).to_ints() == expected

    def test_legacy_list_api_unchanged(self, codec_pair):
        codec, _ = codec_pair
        assert codec.random_vector(17, default_rng(13)) == legacy_random_vector(
            codec, 17, default_rng(13)
        )

    def test_values_in_range(self, codec_pair):
        codec, _ = codec_pair
        vec = codec.random_vector_array(100, default_rng(17))
        assert all(0 <= v < codec.modulus for v in vec)

    def test_empty_and_negative(self, codec_pair):
        codec, _ = codec_pair
        assert codec.random_vector_array(0, default_rng(0)).to_ints() == []
        with pytest.raises(ValueError, match="non-negative"):
            codec.random_vector_array(-1, default_rng(0))

    def test_draw_words_probe_passes_on_this_numpy(self):
        # The blocked draw is verified against this numpy at import; if
        # the probe ever fails the codec silently falls back, but we
        # want to *know* (the perf win disappears).
        assert _blocked_draws_supported()

    def test_draw_words_composes_scalar_pairs(self):
        reference, blocked = default_rng(23), default_rng(23)
        expected = [
            (int(reference.integers(0, 2**63)) << 1) | int(reference.integers(0, 2))
            for _ in range(9)
        ]
        assert [int(w) for w in _draw_words(blocked, 9)] == expected
        assert int(reference.integers(0, 2**63)) == int(blocked.integers(0, 2**63))


class TestResidueVectorContainer:
    def test_iter_getitem_len_eq(self, codec_pair):
        codec, legacy = codec_pair
        ints = legacy_random_vector(codec, 12, default_rng(29))
        packed = codec._from_ints(ints)
        other = legacy._from_ints(ints)
        assert len(packed) == 12
        assert [int(v) for v in packed] == ints
        assert [packed[i] for i in range(12)] == ints
        # Equality is value-based, independent of the backing layout.
        assert packed == other
        assert packed != codec._from_ints([(v + 1) % codec.modulus for v in ints])

    def test_pickle_roundtrip(self, codec_pair):
        codec, _ = codec_pair
        vec = codec.random_vector_array(20, default_rng(31))
        restored = pickle.loads(pickle.dumps(vec))
        assert isinstance(restored, ResidueVector)
        assert restored == vec
        assert codec.subtract(restored, vec).to_ints() == [0] * 20
