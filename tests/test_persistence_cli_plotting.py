"""Tests for persistence, the CLI, and ASCII plotting."""

import numpy as np
import pytest

from repro.baselines.dp import DPLogisticRegression
from repro.cli import main as cli_main
from repro.core.horizontal_linear import HorizontalLinearSVM
from repro.core.horizontal_logistic import HorizontalLogisticRegression
from repro.core.partitioning import horizontal_partition
from repro.data.synthetic import make_blobs, make_xor_task
from repro.persistence import load_model, save_model
from repro.svm.kernels import RBFKernel
from repro.svm.model import SVC, LinearSVC
from repro.utils.plotting import ascii_plot


class TestPersistence:
    def test_linear_svc_roundtrip(self, tmp_path):
        ds = make_blobs(60, 3, seed=0)
        model = LinearSVC(C=10.0).fit(ds.X, ds.y)
        path = tmp_path / "m.npz"
        save_model(model, path)
        loaded = load_model(path)
        np.testing.assert_allclose(
            loaded.decision_function(ds.X), model.decision_function(ds.X), atol=1e-10
        )

    def test_kernel_svc_roundtrip(self, tmp_path):
        ds = make_xor_task(150, seed=1)
        model = SVC(RBFKernel(gamma=1.0), C=50.0).fit(ds.X, ds.y)
        path = tmp_path / "k.npz"
        save_model(model, path)
        loaded = load_model(path)
        np.testing.assert_allclose(
            loaded.decision_function(ds.X), model.decision_function(ds.X), atol=1e-8
        )
        assert loaded.kernel.gamma == 1.0

    def test_svc_stores_only_support_vectors(self, tmp_path):
        ds = make_blobs(100, 2, delta=5.0, seed=2)
        model = SVC(C=10.0).fit(ds.X, ds.y)
        path = tmp_path / "sv.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.X_.shape[0] == len(model.support_indices_)
        assert loaded.X_.shape[0] < ds.n_samples

    def test_consensus_model_roundtrip(self, tmp_path, cancer_split):
        train, test = cancer_split
        parts = horizontal_partition(train, 3, seed=0)
        model = HorizontalLinearSVM(max_iter=20).fit(parts)
        path = tmp_path / "c.npz"
        save_model(model, path)
        loaded = load_model(path)
        np.testing.assert_array_equal(loaded.predict(test.X), model.predict(test.X))

    def test_logistic_roundtrip(self, tmp_path, cancer_split):
        train, test = cancer_split
        parts = horizontal_partition(train, 3, seed=0)
        model = HorizontalLogisticRegression(max_iter=15).fit(parts)
        path = tmp_path / "l.npz"
        save_model(model, path)
        loaded = load_model(path)
        np.testing.assert_allclose(
            loaded.predict_proba(test.X), model.predict_proba(test.X), atol=1e-10
        )

    def test_dp_roundtrip(self, tmp_path, cancer_split):
        train, test = cancer_split
        model = DPLogisticRegression(epsilon=1.0, seed=0).fit(train.X, train.y)
        path = tmp_path / "dp.npz"
        save_model(model, path)
        loaded = load_model(path)
        np.testing.assert_array_equal(loaded.predict(test.X), model.predict(test.X))

    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fit before saving"):
            save_model(LinearSVC(), tmp_path / "x.npz")

    def test_unsupported_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_model(object(), tmp_path / "x.npz")


class TestCli:
    def test_train_horizontal(self, capsys):
        code = cli_main(["train", "--dataset", "cancer", "--samples", "200", "--iters", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "test accuracy" in out
        assert "raw data moved     : 0 bytes" in out

    def test_train_vertical_kernel(self, capsys):
        code = cli_main(
            [
                "train", "--dataset", "ocr", "--samples", "200", "--iters", "10",
                "--mode", "vertical", "--kernel", "rbf", "--gamma", "0.002",
            ]
        )
        assert code == 0
        assert "vertical" in capsys.readouterr().out

    def test_train_from_csv(self, tmp_path, capsys):
        from repro.data.loaders import save_csv

        ds = make_blobs(80, 3, seed=0)
        path = tmp_path / "in.csv"
        save_csv(ds, path)
        code = cli_main(["train", "--csv", str(path), "--iters", "8", "--learners", "2"])
        assert code == 0

    def test_train_save_and_reload(self, tmp_path, capsys):
        out_path = tmp_path / "model.npz"
        code = cli_main(
            ["train", "--dataset", "cancer", "--samples", "200", "--iters", "10",
             "--save", str(out_path)]
        )
        assert code == 0
        loaded = load_model(out_path)
        assert loaded.consensus_weights_.shape == (9,)

    def test_save_rejected_for_kernel(self, tmp_path, capsys):
        code = cli_main(
            ["train", "--dataset", "cancer", "--samples", "200", "--iters", "5",
             "--kernel", "rbf", "--save", str(tmp_path / "m.npz")]
        )
        assert code == 2

    def test_protocol_demo(self, capsys):
        assert cli_main(["protocol-demo"]) == 0
        out = capsys.readouterr().out
        assert "reducer obtains" in out

    def test_figure4_single_panel(self, capsys, monkeypatch):
        # Shrink the workload via the config path: run panel c (fast).
        code = cli_main(["figure4", "--panels", "c", "--max-iter", "5"])
        assert code == 0
        assert "Fig. 4(c)" in capsys.readouterr().out


class TestAsciiPlot:
    def test_basic_render(self):
        chart = ascii_plot({"a": np.linspace(0, 1, 20)}, title="t", y_label="v")
        assert "t" in chart
        assert "a" in chart
        assert "|" in chart

    def test_log_scale(self):
        chart = ascii_plot({"conv": np.logspace(0, -8, 30)}, logy=True)
        assert "log10" in chart

    def test_multiple_series_distinct_markers(self):
        chart = ascii_plot({"x": np.ones(5), "y": np.zeros(5)})
        assert "o x" in chart or ("o" in chart and "x" in chart)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({})

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            ascii_plot({"bad": np.array([np.nan, np.nan])})

    def test_log_scale_needs_positive(self):
        with pytest.raises(ValueError, match="positive"):
            ascii_plot({"neg": np.array([-1.0, -2.0])}, logy=True)

    def test_constant_series_ok(self):
        chart = ascii_plot({"c": np.full(10, 3.0)})
        assert "3.000" in chart

    def test_tiny_area_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            ascii_plot({"a": np.ones(3)}, width=5, height=2)
