"""Tests for Platt calibration and cross-validated grid search."""

import numpy as np
import pytest

from repro.data.synthetic import make_blobs, make_xor_task
from repro.data.splits import train_test_split
from repro.svm.calibration import PlattCalibrator
from repro.svm.grid_search import GridSearch
from repro.svm.kernels import RBFKernel
from repro.svm.model import SVC, LinearSVC


@pytest.fixture
def scored_split():
    ds = make_blobs(400, 3, delta=2.0, seed=0)
    train, test = train_test_split(ds, seed=0)
    model = LinearSVC(C=10.0).fit(train.X, train.y)
    return model, train, test


class TestPlattCalibrator:
    def test_probabilities_monotone_in_score(self, scored_split):
        model, train, test = scored_split
        cal = PlattCalibrator().calibrate(model, train.X, train.y)
        scores = model.decision_function(test.X)
        proba = cal.predict_proba(scores)
        order = np.argsort(scores)
        assert np.all(np.diff(proba[order]) >= -1e-12)

    def test_threshold_half_matches_sign(self, scored_split):
        model, train, test = scored_split
        cal = PlattCalibrator().calibrate(model, train.X, train.y)
        proba = cal.predict_proba(model.decision_function(test.X))
        preds_via_proba = np.where(proba >= 0.5, 1.0, -1.0)
        agreement = np.mean(preds_via_proba == model.predict(test.X))
        assert agreement > 0.95

    def test_reliability_on_easy_data(self, scored_split):
        # On well-separated scores the calibrated extremes should be
        # confident and correct.
        model, train, test = scored_split
        cal = PlattCalibrator().calibrate(model, train.X, train.y)
        proba = cal.predict_proba(model.decision_function(test.X))
        confident_pos = proba > 0.9
        if confident_pos.sum() >= 10:
            assert np.mean(test.y[confident_pos] > 0) > 0.8
        confident_neg = proba < 0.1
        if confident_neg.sum() >= 10:
            assert np.mean(test.y[confident_neg] < 0) > 0.8

    def test_slope_negative_for_good_classifier(self, scored_split):
        model, train, _ = scored_split
        cal = PlattCalibrator().calibrate(model, train.X, train.y)
        assert cal.A_ < 0.0  # P(y=1|f) increasing in f requires A < 0

    def test_probabilities_in_unit_interval(self, scored_split):
        model, train, test = scored_split
        cal = PlattCalibrator().calibrate(model, train.X, train.y)
        proba = cal.predict_proba(model.decision_function(test.X))
        assert np.all((proba >= 0.0) & (proba <= 1.0))

    def test_single_class_rejected(self):
        with pytest.raises(ValueError, match="both classes"):
            PlattCalibrator().fit([1.0, 2.0], [1, 1])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PlattCalibrator().predict_proba([0.0])

    def test_regularized_targets_avoid_extremes(self):
        # Even perfectly separable scores yield probabilities strictly
        # inside (0, 1) thanks to Platt's regularized targets.
        scores = np.concatenate([np.full(20, 5.0), np.full(20, -5.0)])
        y = np.concatenate([np.ones(20), -np.ones(20)])
        cal = PlattCalibrator().fit(scores, y)
        proba = cal.predict_proba(scores)
        assert proba.max() < 1.0
        assert proba.min() > 0.0


class TestGridSearch:
    def test_finds_reasonable_c(self):
        ds = make_blobs(200, 2, delta=1.5, seed=1)
        search = GridSearch(
            lambda C: LinearSVC(C=C), {"C": [0.01, 1.0, 100.0]}, n_folds=4, seed=0
        )
        result = search.run(ds.X, ds.y)
        assert result.best_score > 0.7
        assert result.best_params["C"] in (0.01, 1.0, 100.0)

    def test_table_covers_grid_and_is_sorted(self):
        ds = make_blobs(120, 2, seed=2)
        search = GridSearch(
            lambda C: LinearSVC(C=C), {"C": [0.1, 1.0, 10.0]}, n_folds=3, seed=0
        )
        result = search.run(ds.X, ds.y)
        assert len(result.table) == 3
        means = [row[1] for row in result.table]
        assert means == sorted(means, reverse=True)

    def test_multi_parameter_product(self):
        ds = make_xor_task(160, seed=3)
        search = GridSearch(
            lambda C, gamma: SVC(RBFKernel(gamma=gamma), C=C),
            {"C": [1.0, 10.0], "gamma": [0.1, 1.0]},
            n_folds=3,
            seed=0,
        )
        result = search.run(ds.X, ds.y)
        assert len(result.table) == 4
        # XOR needs a reasonably wide RBF: the winner should beat 80%.
        assert result.best_score > 0.8

    def test_rbf_beats_linear_on_xor_via_search(self):
        ds = make_xor_task(200, seed=4)
        rbf = GridSearch(
            lambda gamma: SVC(RBFKernel(gamma=gamma), C=10.0),
            {"gamma": [0.5, 1.0]},
            n_folds=3,
            seed=0,
        ).run(ds.X, ds.y)
        linear = GridSearch(
            lambda C: LinearSVC(C=C), {"C": [1.0, 10.0]}, n_folds=3, seed=0
        ).run(ds.X, ds.y)
        assert rbf.best_score > linear.best_score + 0.1

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            GridSearch(lambda: LinearSVC(), {})
        with pytest.raises(ValueError):
            GridSearch(lambda C: LinearSVC(C=C), {"C": []})

    def test_deterministic_given_seed(self):
        ds = make_blobs(100, 2, seed=5)
        make = lambda: GridSearch(
            lambda C: LinearSVC(C=C), {"C": [0.5, 5.0]}, n_folds=3, seed=7
        )
        a = make().run(ds.X, ds.y)
        b = make().run(ds.X, ds.y)
        assert a.best_params == b.best_params
        assert a.best_score == b.best_score
