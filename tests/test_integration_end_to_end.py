"""End-to-end integration tests across the whole stack.

These run the complete paper pipeline — partition, store privately in
HDFS, iterate Twister rounds with secure summation, classify — and
check the cross-cutting facts no unit test covers.
"""

import numpy as np
import pytest

from repro.core.horizontal_kernel import HorizontalKernelSVM
from repro.core.horizontal_linear import HorizontalLinearSVM
from repro.core.partitioning import horizontal_partition, vertical_partition
from repro.core.trainer import PrivacyPreservingSVM
from repro.core.vertical_kernel import VerticalKernelSVM
from repro.core.vertical_linear import VerticalLinearSVM
from repro.data.dataset import Dataset
from repro.data.scaling import StandardScaler
from repro.data.splits import train_test_split
from repro.data.synthetic import make_cancer_like, make_higgs_like, make_ocr_like
from repro.svm.kernels import RBFKernel
from repro.svm.model import SVC


def prepared(maker, n, seed=0):
    dataset = maker(n, seed=seed)
    train, test = train_test_split(dataset, 0.5, seed=0)
    scaler = StandardScaler().fit(train.X)
    return scaler.transform_dataset(train), scaler.transform_dataset(test)


class TestAllVariantsBeatChance:
    """Every variant, every dataset family: meaningfully above chance and
    in the neighbourhood of the centralized benchmark."""

    @pytest.mark.parametrize(
        "maker,n,floor",
        [(make_cancer_like, 240, 0.85), (make_higgs_like, 300, 0.55), (make_ocr_like, 240, 0.85)],
    )
    def test_horizontal_linear(self, maker, n, floor):
        train, test = prepared(maker, n)
        parts = horizontal_partition(train, 4, seed=0)
        model = HorizontalLinearSVM(max_iter=60).fit(parts)
        assert model.score(test.X, test.y) >= floor

    @pytest.mark.parametrize(
        "maker,n,gamma,floor",
        [(make_cancer_like, 240, 0.02, 0.80), (make_ocr_like, 240, 0.002, 0.80)],
    )
    def test_horizontal_kernel(self, maker, n, gamma, floor):
        train, test = prepared(maker, n)
        parts = horizontal_partition(train, 4, seed=0)
        model = HorizontalKernelSVM(
            RBFKernel(gamma=gamma), n_landmarks=20, max_iter=40, seed=0
        ).fit(parts)
        assert model.score(test.X, test.y) >= floor

    @pytest.mark.parametrize(
        "maker,n,floor",
        [(make_cancer_like, 240, 0.85), (make_ocr_like, 240, 0.85)],
    )
    def test_vertical_linear(self, maker, n, floor):
        train, test = prepared(maker, n)
        partition = vertical_partition(train, 4, seed=0)
        model = VerticalLinearSVM(max_iter=80).fit(partition)
        assert model.score(test.X, test.y) >= floor

    @pytest.mark.parametrize(
        "maker,n,gamma,floor",
        [(make_cancer_like, 240, 0.1, 0.80), (make_ocr_like, 240, 0.015, 0.80)],
    )
    def test_vertical_kernel(self, maker, n, gamma, floor):
        train, test = prepared(maker, n)
        partition = vertical_partition(train, 4, seed=0)
        model = VerticalKernelSVM(RBFKernel(gamma=gamma), max_iter=60).fit(partition)
        assert model.score(test.X, test.y) >= floor


class TestFullSystemParity:
    """Distributed+secure == in-process, for all four variants."""

    def test_horizontal_linear_parity(self):
        train, _ = prepared(make_cancer_like, 200)
        parts = horizontal_partition(train, 4, seed=0)
        ref = HorizontalLinearSVM(max_iter=20).fit(parts)
        dist = PrivacyPreservingSVM("horizontal", max_iter=20, seed=0).fit(parts)
        np.testing.assert_allclose(
            dist.history_.z_changes, ref.history_.z_changes, rtol=1e-4, atol=1e-8
        )

    def test_horizontal_kernel_parity(self):
        train, _ = prepared(make_cancer_like, 200)
        parts = horizontal_partition(train, 4, seed=0)
        ref = HorizontalKernelSVM(
            RBFKernel(gamma=0.1), n_landmarks=10, max_iter=12, seed=0
        ).fit(parts)
        dist = PrivacyPreservingSVM(
            "horizontal", kernel=RBFKernel(gamma=0.1), n_landmarks=10, max_iter=12, seed=0
        ).fit(parts)
        np.testing.assert_allclose(
            dist.history_.z_changes, ref.history_.z_changes, rtol=1e-4, atol=1e-8
        )

    def test_vertical_linear_parity(self):
        train, _ = prepared(make_cancer_like, 200)
        partition = vertical_partition(train, 3, seed=0)
        ref = VerticalLinearSVM(max_iter=25).fit(partition)
        dist = PrivacyPreservingSVM("vertical", max_iter=25, seed=0).fit(partition)
        np.testing.assert_allclose(
            dist.history_.z_changes, ref.history_.z_changes, rtol=1e-3, atol=1e-6
        )

    def test_vertical_kernel_parity(self):
        train, _ = prepared(make_cancer_like, 200)
        partition = vertical_partition(train, 3, seed=0)
        ref = VerticalKernelSVM(RBFKernel(gamma=0.1), max_iter=20).fit(partition)
        dist = PrivacyPreservingSVM(
            "vertical", kernel=RBFKernel(gamma=0.1), max_iter=20, seed=0
        ).fit(partition)
        np.testing.assert_allclose(
            dist.history_.z_changes, ref.history_.z_changes, rtol=1e-3, atol=1e-6
        )


class TestCollaborationGain:
    def test_consensus_beats_isolated_learners_on_scarce_data(self):
        # The paper's motivation: small local shares, big joint gain.
        train, test = prepared(make_higgs_like, 400, seed=4)
        parts = horizontal_partition(train, 8, seed=0)
        consensus = HorizontalLinearSVM(C=1.0, rho=10.0, max_iter=60).fit(parts)
        local_accs = [
            SVC(C=1.0).fit(p.X, p.y).score(test.X, test.y) for p in parts
        ]
        assert consensus.score(test.X, test.y) >= np.mean(local_accs) - 0.02


class TestDifficultyOrderingEndToEnd:
    def test_all_datasets_converge_by_orders_of_magnitude(self):
        # The robust part of the paper's Fig. 4(a) story: every dataset's
        # consensus movement collapses by orders of magnitude within the
        # plotted horizon.  (The paper's *ordering* claim — HIGGS slowest
        # — depends on the real datasets; our measured ordering at each
        # scale is recorded in EXPERIMENTS.md rather than asserted.)
        for maker in (make_cancer_like, make_higgs_like, make_ocr_like):
            train, _ = prepared(maker, 320, seed=2)
            parts = horizontal_partition(train, 4, seed=0)
            model = HorizontalLinearSVM(max_iter=60).fit(parts)
            z = model.history_.z_changes
            assert z[-1] < z[0] * 1e-2


class TestFaultInjection:
    def test_learner_failure_mid_training_surfaces(self):
        train, _ = prepared(make_cancer_like, 160)
        parts = horizontal_partition(train, 4, seed=0)
        model = PrivacyPreservingSVM("horizontal", max_iter=50, seed=0)
        # Train a few iterations, then fail a node and resume: the
        # masking protocol cannot proceed without all participants.
        model.fit(parts)
        model.network_.fail_node("learner-2")
        with pytest.raises(Exception):
            model.driver_.run("training-data", max_iterations=2)
