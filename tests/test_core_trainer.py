"""Tests for the full MapReduce-integrated PrivacyPreservingSVM.

The central claims: (1) the distributed secure run computes the *same*
numbers as the in-process trainer (up to fixed-point rounding);
(2) raw training data never crosses the network; (3) the Reducer's wire
view contains only masked shares.
"""

import numpy as np
import pytest

from repro.core.horizontal_linear import HorizontalLinearSVM
from repro.core.partitioning import horizontal_partition, vertical_partition
from repro.core.trainer import PrivacyPreservingSVM
from repro.core.vertical_linear import VerticalLinearSVM
from repro.svm.kernels import RBFKernel


@pytest.fixture
def cancer_parts(cancer_split):
    train, test = cancer_split
    return horizontal_partition(train, 4, seed=0), train, test


class TestHorizontalTrainer:
    def test_matches_in_process_reference(self, cancer_parts):
        parts, _, _ = cancer_parts
        reference = HorizontalLinearSVM(C=50.0, rho=100.0, max_iter=25).fit(parts)
        distributed = PrivacyPreservingSVM(
            "horizontal", C=50.0, rho=100.0, max_iter=25, seed=0
        ).fit(parts)
        np.testing.assert_allclose(
            distributed._reducer.z, reference.consensus_weights_, atol=1e-7
        )
        np.testing.assert_allclose(
            distributed.history_.z_changes, reference.history_.z_changes, atol=1e-6
        )

    def test_accuracy_reasonable(self, cancer_parts):
        parts, _, test = cancer_parts
        model = PrivacyPreservingSVM("horizontal", max_iter=40, seed=0).fit(parts)
        assert model.score(test.X, test.y) > 0.88

    def test_plaintext_and_secure_agree(self, cancer_parts):
        parts, _, _ = cancer_parts
        secure = PrivacyPreservingSVM("horizontal", max_iter=15, secure=True, seed=0).fit(parts)
        plain = PrivacyPreservingSVM("horizontal", max_iter=15, secure=False, seed=0).fit(parts)
        np.testing.assert_allclose(secure._reducer.z, plain._reducer.z, atol=1e-7)

    def test_prg_mode_agrees_with_fresh(self, cancer_parts):
        parts, _, _ = cancer_parts
        fresh = PrivacyPreservingSVM(
            "horizontal", max_iter=10, mask_mode="fresh", seed=0
        ).fit(parts)
        prg = PrivacyPreservingSVM("horizontal", max_iter=10, mask_mode="prg", seed=0).fit(parts)
        np.testing.assert_allclose(fresh._reducer.z, prg._reducer.z, atol=1e-7)

    def test_kernel_variant_runs(self, cancer_parts):
        parts, _, test = cancer_parts
        model = PrivacyPreservingSVM(
            "horizontal",
            kernel=RBFKernel(gamma=0.1),
            n_landmarks=10,
            max_iter=15,
            seed=0,
        ).fit(parts)
        assert model.score(test.X, test.y) > 0.8

    def test_wrong_input_type(self, cancer_split):
        train, _ = cancer_split
        partition = vertical_partition(train, 3, seed=0)
        with pytest.raises(TypeError, match="list of Dataset"):
            PrivacyPreservingSVM("horizontal").fit(partition)


class TestVerticalTrainer:
    def test_matches_in_process_reference(self, cancer_split):
        train, _ = cancer_split
        partition = vertical_partition(train, 3, seed=0)
        reference = VerticalLinearSVM(C=50.0, rho=100.0, max_iter=30).fit(partition)
        distributed = PrivacyPreservingSVM(
            "vertical", C=50.0, rho=100.0, max_iter=30, seed=0
        ).fit(partition)
        np.testing.assert_allclose(
            distributed.history_.z_changes, reference.history_.z_changes, atol=1e-4
        )
        np.testing.assert_allclose(
            distributed._reducer.logic.zbar, reference.reducer_.zbar, atol=1e-7
        )

    def test_prediction_path(self, cancer_split):
        train, test = cancer_split
        partition = vertical_partition(train, 3, seed=0)
        model = PrivacyPreservingSVM("vertical", max_iter=60, seed=0).fit(partition)
        assert model.score(test.X, test.y) > 0.85

    def test_kernel_vertical(self, cancer_split):
        train, test = cancer_split
        partition = vertical_partition(train, 3, seed=0)
        model = PrivacyPreservingSVM(
            "vertical", kernel=RBFKernel(gamma=0.1), max_iter=40, seed=0
        ).fit(partition)
        assert model.score(test.X, test.y) > 0.8

    def test_wrong_input_type(self, cancer_parts):
        parts, _, _ = cancer_parts
        with pytest.raises(TypeError, match="VerticalPartition"):
            PrivacyPreservingSVM("vertical").fit(parts)


class TestPrivacyInvariants:
    def test_raw_data_never_moves(self, cancer_parts):
        parts, _, _ = cancer_parts
        model = PrivacyPreservingSVM("horizontal", max_iter=10, seed=0).fit(parts)
        assert model.raw_data_bytes_moved() == 0.0

    def test_reducer_inbox_is_masked_shares_only(self, cancer_parts):
        parts, _, _ = cancer_parts
        model = PrivacyPreservingSVM("horizontal", max_iter=5, seed=0).fit(parts)
        to_reducer = [m for m in model.network_.message_log if m.dst == "reducer"]
        assert to_reducer
        assert all(m.kind == "masked-share" for m in to_reducer)

    def test_plaintext_mode_leaks_by_design(self, cancer_parts):
        parts, _, _ = cancer_parts
        model = PrivacyPreservingSVM("horizontal", max_iter=5, secure=False, seed=0).fit(parts)
        kinds = {m.kind for m in model.network_.message_log if m.dst == "reducer"}
        assert "consensus" in kinds

    def test_tasks_all_data_local(self, cancer_parts):
        parts, _, _ = cancer_parts
        model = PrivacyPreservingSVM("horizontal", max_iter=5, seed=0).fit(parts)
        metrics = model.network_.metrics
        assert metrics.get("scheduler.local_tasks") == 4.0
        assert metrics.get("scheduler.remote_tasks") == 0.0


class TestAccounting:
    def test_communication_summary_keys(self, cancer_parts):
        parts, _, _ = cancer_parts
        model = PrivacyPreservingSVM("horizontal", max_iter=8, seed=0).fit(parts)
        summary = model.communication_summary()
        assert summary["iterations"] == 8.0
        assert summary["total_bytes"] > 0
        assert summary["mask_bytes"] > 0
        assert summary["masked_share_bytes"] > 0
        assert summary["plaintext_consensus_bytes"] == 0.0
        assert summary["secure_sum_rounds"] == 8.0

    def test_secure_costs_more_than_plaintext(self, cancer_parts):
        parts, _, _ = cancer_parts
        secure = PrivacyPreservingSVM("horizontal", max_iter=10, seed=0).fit(parts)
        plain = PrivacyPreservingSVM("horizontal", max_iter=10, secure=False, seed=0).fit(parts)
        assert (
            secure.communication_summary()["total_bytes"]
            > plain.communication_summary()["total_bytes"]
        )

    def test_prg_mode_cheaper_than_fresh(self, cancer_parts):
        parts, _, _ = cancer_parts
        fresh = PrivacyPreservingSVM("horizontal", max_iter=10, mask_mode="fresh", seed=0).fit(
            parts
        )
        prg = PrivacyPreservingSVM("horizontal", max_iter=10, mask_mode="prg", seed=0).fit(parts)
        assert (
            prg.communication_summary()["total_bytes"]
            < fresh.communication_summary()["total_bytes"]
        )

    def test_unfitted_accessors_raise(self):
        model = PrivacyPreservingSVM("horizontal")
        with pytest.raises(RuntimeError):
            model.communication_summary()
        with pytest.raises(RuntimeError):
            model.decision_function(np.ones((1, 2)))


class TestValidation:
    def test_bad_partitioning_string(self):
        with pytest.raises(ValueError, match="horizontal"):
            PrivacyPreservingSVM("diagonal")

    def test_early_stopping_tol(self, cancer_parts):
        parts, _, _ = cancer_parts
        model = PrivacyPreservingSVM("horizontal", max_iter=100, tol=1e-2, seed=0).fit(parts)
        assert len(model.history_) < 100
