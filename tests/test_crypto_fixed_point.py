"""Unit tests for the fixed-point codec."""

import numpy as np
import pytest

from repro.crypto.fixed_point import FixedPointCodec


class TestRoundTrip:
    def test_exact_for_dyadic_values(self):
        codec = FixedPointCodec(fractional_bits=8)
        values = np.array([1.5, -2.25, 0.0, 100.0078125])
        np.testing.assert_array_equal(codec.decode(codec.encode(values)), values)

    def test_rounding_error_bounded(self, rng):
        codec = FixedPointCodec(fractional_bits=40)
        values = rng.normal(size=50)
        decoded = codec.decode(codec.encode(values))
        assert np.max(np.abs(decoded - values)) <= 2.0**-40

    def test_negative_values_centered_lift(self):
        codec = FixedPointCodec()
        out = codec.decode(codec.encode([-123.456]))
        assert out[0] == pytest.approx(-123.456, abs=1e-9)

    def test_empty_vector(self):
        codec = FixedPointCodec()
        assert codec.encode([]) == []
        assert codec.decode([]).shape == (0,)


class TestArithmetic:
    def test_add_matches_real_addition(self, rng):
        codec = FixedPointCodec()
        a, b = rng.normal(size=10), rng.normal(size=10)
        total = codec.decode(codec.add(codec.encode(a), codec.encode(b)))
        np.testing.assert_allclose(total, a + b, atol=1e-9)

    def test_subtract_matches(self, rng):
        codec = FixedPointCodec()
        a, b = rng.normal(size=10), rng.normal(size=10)
        diff = codec.decode(codec.subtract(codec.encode(a), codec.encode(b)))
        np.testing.assert_allclose(diff, a - b, atol=1e-9)

    def test_mask_cancellation(self, rng):
        # The secure-sum identity: x + m - m decodes to x exactly.
        codec = FixedPointCodec()
        x = codec.encode([3.14159])
        mask = codec.random_vector(1, rng)
        masked = codec.add(x, mask)
        unmasked = codec.subtract(masked, mask)
        assert unmasked == x

    def test_many_term_sum_no_overflow(self, rng):
        codec = FixedPointCodec(max_terms=64)
        values = [rng.uniform(-100, 100, size=5) for _ in range(64)]
        total = [0] * 5
        for v in values:
            total = codec.add(total, codec.encode(v))
        np.testing.assert_allclose(codec.decode(total), np.sum(values, axis=0), atol=1e-6)

    def test_length_mismatch(self):
        codec = FixedPointCodec()
        with pytest.raises(ValueError):
            codec.add([1], [1, 2])


class TestGuards:
    def test_overflow_guard(self):
        codec = FixedPointCodec(fractional_bits=40, modulus_bits=64, max_terms=4)
        with pytest.raises(OverflowError, match="overflow-safe bound"):
            codec.encode([1e9])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            FixedPointCodec().encode([np.nan])

    def test_modulus_must_exceed_fraction(self):
        with pytest.raises(ValueError):
            FixedPointCodec(fractional_bits=40, modulus_bits=41)

    def test_invalid_max_terms(self):
        with pytest.raises(ValueError):
            FixedPointCodec(max_terms=0)


class TestRandomVector:
    def test_values_in_group(self, rng):
        codec = FixedPointCodec(modulus_bits=96)
        vec = codec.random_vector(20, rng)
        assert all(0 <= v < codec.modulus for v in vec)

    def test_looks_uniform_top_bit(self, rng):
        codec = FixedPointCodec(modulus_bits=128)
        vec = codec.random_vector(2000, rng)
        top_bits = [v >> 127 for v in vec]
        assert 0.4 < np.mean(top_bits) < 0.6

    def test_negative_length_rejected(self, rng):
        with pytest.raises(ValueError):
            FixedPointCodec().random_vector(-1, rng)
