"""Unit tests for repro.utils.rng and repro.utils.timing."""

import time

import numpy as np
import pytest

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.timing import Stopwatch


class TestAsRng:
    def test_from_int_is_deterministic(self):
        a = as_rng(42).integers(0, 1000, size=5)
        b = as_rng(42).integers(0, 1000, size=5)
        np.testing.assert_array_equal(a, b)

    def test_from_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_passes_generator_through(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_children(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent_streams(self):
        children = spawn_rngs(7, 3)
        draws = [c.integers(0, 2**31, size=4).tolist() for c in children]
        assert draws[0] != draws[1]
        assert draws[1] != draws[2]

    def test_deterministic_given_seed(self):
        a = [c.integers(0, 100) for c in spawn_rngs(9, 3)]
        b = [c.integers(0, 100) for c in spawn_rngs(9, 3)]
        assert a == b


class TestStopwatch:
    def test_accumulates_time(self):
        sw = Stopwatch()
        with sw.lap("work"):
            time.sleep(0.01)
        assert sw.total("work") >= 0.005

    def test_counts_laps(self):
        sw = Stopwatch()
        for _ in range(3):
            with sw.lap("x"):
                pass
        assert sw.count("x") == 3

    def test_unknown_lap_is_zero(self):
        sw = Stopwatch()
        assert sw.total("nope") == 0.0
        assert sw.count("nope") == 0

    def test_as_dict_snapshot(self):
        sw = Stopwatch()
        sw.record("a", 1.5)
        sw.record("a", 0.5)
        sw.record("b", 2.0)
        snap = sw.as_dict()
        assert snap["a"] == pytest.approx(2.0)
        assert snap["b"] == pytest.approx(2.0)
