"""Unit tests for the simulated HDFS and the locality scheduler."""

import pytest

from repro.cluster.hdfs import HdfsError, SimulatedHdfs
from repro.cluster.network import Network
from repro.cluster.scheduler import LocalityScheduler


class TestHdfsPut:
    def test_blocks_land_on_preferred_nodes(self, cluster):
        _, hdfs = cluster
        hdfs.put("f", ["b0", "b1"], preferred_nodes=["node1", "node3"])
        assert hdfs.locations("f") == [["node1"], ["node3"]]
        assert "f#0" in hdfs.blocks_on("node1")
        assert "f#1" in hdfs.blocks_on("node3")

    def test_round_robin_default_placement(self, cluster):
        _, hdfs = cluster
        hdfs.put("f", ["a", "b", "c", "d", "e"])
        primaries = [loc[0] for loc in hdfs.locations("f")]
        assert primaries == ["node0", "node1", "node2", "node3", "node0"]

    def test_duplicate_file_rejected(self, cluster):
        _, hdfs = cluster
        hdfs.put("f", ["x"])
        with pytest.raises(HdfsError, match="already exists"):
            hdfs.put("f", ["y"])

    def test_empty_file_rejected(self, cluster):
        _, hdfs = cluster
        with pytest.raises(HdfsError, match="empty"):
            hdfs.put("f", [])

    def test_unknown_preferred_node(self, cluster):
        _, hdfs = cluster
        with pytest.raises(HdfsError, match="unknown data node"):
            hdfs.put("f", ["x"], preferred_nodes=["nowhere"])

    def test_placement_length_mismatch(self, cluster):
        _, hdfs = cluster
        with pytest.raises(HdfsError, match="one preferred node per block"):
            hdfs.put("f", ["x", "y"], preferred_nodes=["node0"])

    def test_no_datanodes(self):
        hdfs = SimulatedHdfs(Network())
        with pytest.raises(HdfsError, match="no data nodes"):
            hdfs.put("f", ["x"])


class TestReplication:
    def test_replicas_copied_over_network(self, cluster):
        network, hdfs = cluster
        hdfs.put("f", ["payload"], preferred_nodes=["node0"], replication=3)
        assert len(hdfs.locations("f")[0]) == 3
        assert network.bytes_sent("hdfs-replication") > 0
        assert network.messages_sent("hdfs-replication") == 2

    def test_replication_exceeding_cluster(self, cluster):
        _, hdfs = cluster
        with pytest.raises(HdfsError, match="exceeds cluster size"):
            hdfs.put("f", ["x"], replication=9)

    def test_private_files_never_replicate(self, cluster):
        network, hdfs = cluster
        hdfs = SimulatedHdfs(network, replication=3)
        for i in range(4):
            hdfs.add_datanode(f"n{i}")
        hdfs.put("secret", ["data"], preferred_nodes=["n0"], private=True)
        assert hdfs.locations("secret") == [["n0"]]
        assert network.bytes_sent("hdfs-replication") == 0.0


class TestReads:
    def test_local_read_is_free(self, cluster):
        network, hdfs = cluster
        hdfs.put("f", ["v"], preferred_nodes=["node2"])
        before = network.bytes_sent()
        assert hdfs.read_block("node2", "f", 0) == "v"
        assert network.bytes_sent() == before
        assert network.metrics.get("hdfs.local_reads") == 1

    def test_remote_read_moves_bytes(self, cluster):
        network, hdfs = cluster
        hdfs.put("f", ["v"], preferred_nodes=["node0"])
        assert hdfs.read_block("node3", "f", 0) == "v"
        assert network.bytes_sent("hdfs-remote-read") > 0
        assert network.metrics.get("hdfs.remote_reads") == 1

    def test_private_remote_read_refused(self, cluster):
        _, hdfs = cluster
        hdfs.put("secret", ["v"], preferred_nodes=["node0"], private=True)
        with pytest.raises(HdfsError, match="raw training data"):
            hdfs.read_block("node1", "secret", 0)

    def test_private_local_read_allowed(self, cluster):
        _, hdfs = cluster
        hdfs.put("secret", ["v"], preferred_nodes=["node0"], private=True)
        assert hdfs.read_block("node0", "secret", 0) == "v"

    def test_missing_file(self, cluster):
        _, hdfs = cluster
        with pytest.raises(HdfsError, match="no such file"):
            hdfs.read_block("node0", "ghost", 0)

    def test_missing_block_index(self, cluster):
        _, hdfs = cluster
        hdfs.put("f", ["v"])
        with pytest.raises(HdfsError, match="no block 5"):
            hdfs.read_block("node0", "f", 5)

    def test_exists_and_metadata(self, cluster):
        _, hdfs = cluster
        hdfs.put("f", ["a", "b"])
        assert hdfs.exists("f")
        assert not hdfs.exists("g")
        assert hdfs.n_blocks("f") == 2
        assert not hdfs.is_private("f")


class TestLocalityScheduler:
    def test_all_tasks_data_local(self, cluster):
        _, hdfs = cluster
        hdfs.put("f", ["a", "b", "c", "d"], preferred_nodes=["node0", "node1", "node2", "node3"])
        assignments = LocalityScheduler(hdfs).assign("f")
        assert all(t.data_local for t in assignments)
        assert [t.node_id for t in assignments] == ["node0", "node1", "node2", "node3"]

    def test_load_balancing_across_replicas(self, cluster):
        network, hdfs = cluster
        hdfs = SimulatedHdfs(network, replication=2)
        for i in range(2):
            hdfs.add_datanode(f"n{i}")
        hdfs.put("f", ["a", "b"], preferred_nodes=["n0", "n0"])
        assignments = LocalityScheduler(hdfs).assign("f")
        # Second task should prefer the replica holder n1 over loaded n0.
        assert {t.node_id for t in assignments} == {"n0", "n1"}

    def test_local_task_counter(self, cluster):
        network, hdfs = cluster
        hdfs.put("f", ["a", "b"])
        LocalityScheduler(hdfs).assign("f")
        assert network.metrics.get("scheduler.local_tasks") == 2

    def test_private_file_never_spills(self, cluster):
        _, hdfs = cluster
        hdfs.put("p", ["a", "b", "c"], preferred_nodes=["node0"] * 3, private=True)
        assignments = LocalityScheduler(hdfs, max_tasks_per_node=1).assign("p")
        assert all(t.node_id == "node0" for t in assignments)
        assert all(t.data_local for t in assignments)
