"""Unit tests for the simulated network and metric registry."""

import numpy as np
import pytest

from repro.cluster.metrics import MetricRegistry
from repro.cluster.network import LatencyModel, Message, Network, NetworkError


class TestMetricRegistry:
    def test_missing_counter_is_zero(self):
        assert MetricRegistry().get("nope") == 0.0

    def test_increment_accumulates(self):
        m = MetricRegistry()
        m.increment("a", 2)
        m.increment("a", 3)
        assert m.get("a") == 5.0

    def test_default_increment_is_one(self):
        m = MetricRegistry()
        m.increment("x")
        assert m.get("x") == 1.0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="monotonic"):
            MetricRegistry().increment("a", -1)

    def test_prefix_filter(self):
        m = MetricRegistry()
        m.increment("net.bytes", 10)
        m.increment("net.msgs", 2)
        m.increment("other", 1)
        assert set(m.with_prefix("net.")) == {"net.bytes", "net.msgs"}

    def test_reset(self):
        m = MetricRegistry()
        m.increment("a", 5)
        m.reset()
        assert m.get("a") == 0.0


class TestNetworkBasics:
    def test_send_receive_roundtrip(self, network):
        network.register("a")
        network.register("b")
        network.send("a", "b", {"v": 1})
        assert network.receive("b") == {"v": 1}

    def test_fifo_order_per_kind(self, network):
        network.register("a")
        network.register("b")
        for i in range(3):
            network.send("a", "b", i, kind="k")
        assert [network.receive("b", "k") for _ in range(3)] == [0, 1, 2]

    def test_kinds_are_separate_queues(self, network):
        network.register("a")
        network.register("b")
        network.send("a", "b", "first", kind="x")
        network.send("a", "b", "second", kind="y")
        assert network.receive("b", "y") == "second"
        assert network.receive("b", "x") == "first"

    def test_unknown_sender_rejected(self, network):
        network.register("b")
        with pytest.raises(NetworkError, match="unknown node"):
            network.send("ghost", "b", 1)

    def test_unknown_receiver_rejected(self, network):
        network.register("a")
        with pytest.raises(NetworkError, match="unknown node"):
            network.send("a", "ghost", 1)

    def test_self_send_rejected(self, network):
        network.register("a")
        with pytest.raises(NetworkError, match="itself"):
            network.send("a", "a", 1)

    def test_empty_inbox_raises(self, network):
        network.register("a")
        with pytest.raises(NetworkError, match="no pending"):
            network.receive("a")

    def test_pending_counts(self, network):
        network.register("a")
        network.register("b")
        network.send("a", "b", 1)
        network.send("a", "b", 2)
        assert network.pending("b") == 2
        network.receive("b")
        assert network.pending("b") == 1

    def test_payload_isolation_deep_copy(self, network):
        network.register("a")
        network.register("b")
        payload = {"arr": np.zeros(3)}
        network.send("a", "b", payload)
        payload["arr"][0] = 99.0  # sender mutates after send
        received = network.receive("b")
        assert received["arr"][0] == 0.0

    def test_broadcast_excludes_sender(self, network):
        for n in ("a", "b", "c"):
            network.register(n)
        network.broadcast("a", ["a", "b", "c"], "hi", kind="bc")
        assert network.pending("a", "bc") == 0
        assert network.pending("b", "bc") == 1
        assert network.pending("c", "bc") == 1


class TestNetworkAccounting:
    def test_byte_counters_by_kind(self, network):
        network.register("a")
        network.register("b")
        msg = network.send("a", "b", list(range(100)), kind="big")
        assert msg.size_bytes > 100
        assert network.bytes_sent("big") == msg.size_bytes
        assert network.bytes_sent() == msg.size_bytes
        assert network.bytes_sent("other") == 0.0

    def test_message_counters(self, network):
        network.register("a")
        network.register("b")
        network.send("a", "b", 1, kind="x")
        network.send("a", "b", 2, kind="x")
        network.send("a", "b", 3, kind="y")
        assert network.messages_sent() == 3
        assert network.messages_sent("x") == 2

    def test_message_log_records_everything(self, network):
        network.register("a")
        network.register("b")
        network.send("a", "b", "secret", kind="k")
        assert len(network.message_log) == 1
        logged = network.message_log[0]
        assert (logged.src, logged.dst, logged.kind, logged.payload) == ("a", "b", "k", "secret")

    def test_keep_log_false_disables_log(self):
        net = Network(keep_log=False)
        net.register("a")
        net.register("b")
        net.send("a", "b", 1)
        assert net.message_log == []
        assert net.bytes_sent() > 0  # accounting still works

    def test_simulated_clock_advances(self, network):
        network.register("a")
        network.register("b")
        before = network.simulated_time_s
        network.send("a", "b", list(range(1000)))
        assert network.simulated_time_s > before

    def test_sequence_numbers_monotone(self, network):
        network.register("a")
        network.register("b")
        m1 = network.send("a", "b", 1)
        m2 = network.send("a", "b", 2)
        assert m2.seq == m1.seq + 1


class TestLatencyModel:
    def _msg(self, size):
        return Message(seq=0, src="a", dst="b", kind="k", payload=None, size_bytes=size)

    def test_latency_floor(self):
        model = LatencyModel(latency_s=1e-3, bandwidth_bytes_per_s=1e9)
        assert model.transfer_time(self._msg(0)) == pytest.approx(1e-3)

    def test_bandwidth_term(self):
        model = LatencyModel(latency_s=0.0, bandwidth_bytes_per_s=100.0)
        assert model.transfer_time(self._msg(200)) == pytest.approx(2.0)

    def test_straggler_multiplier(self):
        model = LatencyModel(
            latency_s=1.0,
            bandwidth_bytes_per_s=1e9,
            straggler_factor=10.0,
            stragglers=frozenset({"a"}),
        )
        assert model.transfer_time(self._msg(0)) == pytest.approx(10.0)


class TestFaultInjection:
    def test_failed_node_cannot_send(self, network):
        network.register("a")
        network.register("b")
        network.fail_node("a")
        with pytest.raises(NetworkError, match="failed"):
            network.send("a", "b", 1)

    def test_failed_node_cannot_receive_new_messages(self, network):
        network.register("a")
        network.register("b")
        network.fail_node("b")
        with pytest.raises(NetworkError, match="failed"):
            network.send("a", "b", 1)

    def test_recovery(self, network):
        network.register("a")
        network.register("b")
        network.fail_node("a")
        network.recover_node("a")
        network.send("a", "b", 1)
        assert network.receive("b") == 1
