"""Unit tests for the box-QP and quadratic-knapsack solvers."""

import numpy as np
import pytest

from repro.svm.knapsack import solve_quadratic_knapsack
from repro.svm.qp import projected_gradient_residual, solve_box_qp


def random_psd(rng, n, rank=None):
    rank = rank if rank is not None else n
    A = rng.normal(size=(n, rank))
    return A @ A.T


class TestSolveBoxQP:
    def test_unconstrained_interior_solution(self, rng):
        # Strongly convex with minimizer well inside the box.
        H = random_psd(rng, 5) + 5.0 * np.eye(5)
        x_star = rng.uniform(0.3, 0.7, size=5)
        d = -H @ x_star
        result = solve_box_qp(H, d, 0.0, 1.0)
        assert result.converged
        np.testing.assert_allclose(result.x, x_star, atol=1e-6)

    def test_active_bounds(self):
        # min (x-2)^2 on [0, 1] -> x = 1; min (x+3)^2 -> x = 0.
        H = np.eye(2) * 2.0
        d = np.array([-4.0, 6.0])
        result = solve_box_qp(H, d, 0.0, 1.0)
        np.testing.assert_allclose(result.x, [1.0, 0.0], atol=1e-10)

    def test_kkt_residual_reported(self, rng):
        H = random_psd(rng, 8) + np.eye(8)
        d = rng.normal(size=8)
        result = solve_box_qp(H, d, 0.0, 10.0, tol=1e-10)
        assert result.kkt_residual <= 1e-10

    def test_warm_start_converges_faster(self, rng):
        H = random_psd(rng, 30) + 0.1 * np.eye(30)
        d = rng.normal(size=30)
        cold = solve_box_qp(H, d, 0.0, 5.0)
        warm = solve_box_qp(H, d, 0.0, 5.0, x0=cold.x)
        assert warm.iterations <= cold.iterations
        np.testing.assert_allclose(warm.x, cold.x, atol=1e-6)

    def test_degenerate_zero_diagonal_linear_coordinate(self):
        # Coordinate with H_ii = 0: objective linear, pushes to a bound.
        H = np.zeros((2, 2))
        H[0, 0] = 2.0
        d = np.array([0.0, -3.0])  # second coordinate wants upper bound
        result = solve_box_qp(H, d, 0.0, 4.0)
        assert result.x[1] == pytest.approx(4.0)

    def test_matches_brute_force_on_small_grid(self, rng):
        H = random_psd(rng, 2) + np.eye(2)
        d = rng.normal(size=2)
        result = solve_box_qp(H, d, 0.0, 1.0, tol=1e-12)
        grid = np.linspace(0, 1, 201)
        best = min(
            0.5 * np.array([a, b]) @ H @ np.array([a, b]) + d @ np.array([a, b])
            for a in grid
            for b in grid
        )
        assert result.objective <= best + 1e-6

    def test_rejects_nonsquare(self, rng):
        with pytest.raises(ValueError, match="square"):
            solve_box_qp(rng.normal(size=(3, 2)), np.zeros(3))

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError, match="lower bound exceeds"):
            solve_box_qp(np.eye(2), np.zeros(2), 1.0, 0.0)

    def test_per_coordinate_bounds(self):
        H = np.eye(2) * 2.0
        d = np.array([-10.0, -10.0])
        result = solve_box_qp(H, d, np.array([0.0, 0.0]), np.array([1.0, 3.0]))
        np.testing.assert_allclose(result.x, [1.0, 3.0])

    def test_x0_projected_into_box(self):
        result = solve_box_qp(np.eye(2), np.zeros(2), 0.0, 1.0, x0=[5.0, -5.0])
        assert np.all(result.x >= 0.0) and np.all(result.x <= 1.0)


class TestProjectedGradientResidual:
    def test_zero_at_interior_stationary_point(self):
        grad = np.zeros(3)
        assert projected_gradient_residual(grad, np.ones(3) * 0.5, np.zeros(3), np.ones(3)) == 0.0

    def test_ignores_gradient_pushing_into_active_bound(self):
        grad = np.array([2.0])  # pushing down while at lower bound
        x, lo, hi = np.array([0.0]), np.array([0.0]), np.array([1.0])
        assert projected_gradient_residual(grad, x, lo, hi) == 0.0

    def test_flags_gradient_pulling_off_bound(self):
        grad = np.array([-2.0])  # wants to increase from lower bound
        x, lo, hi = np.array([0.0]), np.array([0.0]), np.array([1.0])
        assert projected_gradient_residual(grad, x, lo, hi) == 2.0


class TestQuadraticKnapsack:
    def test_satisfies_equality_constraint(self, rng):
        n = 20
        a = rng.uniform(0.5, 2.0, size=n)
        d = rng.normal(size=n)
        c = rng.choice([-1.0, 1.0], size=n)
        result = solve_quadratic_knapsack(a, d, c, 0.0, 0.0, 5.0)
        assert result.constraint_residual < 1e-8

    def test_respects_box(self, rng):
        n = 15
        result = solve_quadratic_knapsack(
            np.ones(n), rng.normal(size=n), rng.choice([-1.0, 1.0], size=n), 0.0, 0.0, 2.0
        )
        assert np.all(result.x >= -1e-12) and np.all(result.x <= 2.0 + 1e-12)

    def test_matches_generic_qp_solution(self, rng):
        # Cross-check against an equality-eliminated closed form on n=2:
        # min a1/2 x1^2 + d1 x1 + a2/2 x2^2 + d2 x2 s.t. x1 - x2 = 0.
        a = np.array([2.0, 3.0])
        d = np.array([-4.0, 1.0])
        c = np.array([1.0, -1.0])
        result = solve_quadratic_knapsack(a, d, c, 0.0, -10.0, 10.0)
        # With x1 = x2 = t: minimize (a1+a2)/2 t^2 + (d1+d2) t.
        t = -(d.sum()) / a.sum()
        np.testing.assert_allclose(result.x, [t, t], atol=1e-8)

    def test_nonzero_rhs(self):
        # min sum x_i^2 / 2 s.t. x1 + x2 = 3, 0 <= x <= 2 -> (1.5, 1.5).
        result = solve_quadratic_knapsack(
            np.ones(2), np.zeros(2), np.ones(2), 3.0, 0.0, 2.0
        )
        np.testing.assert_allclose(result.x, [1.5, 1.5], atol=1e-8)

    def test_infeasible_raises(self):
        with pytest.raises(ValueError, match="infeasible"):
            solve_quadratic_knapsack(np.ones(2), np.zeros(2), np.ones(2), 100.0, 0.0, 1.0)

    def test_rejects_nonpositive_hessian(self):
        with pytest.raises(ValueError, match="strictly positive"):
            solve_quadratic_knapsack(np.array([1.0, 0.0]), np.zeros(2), np.ones(2))

    def test_kkt_structure(self, rng):
        # Interior coordinates must satisfy a_i x_i + d_i + nu c_i = 0.
        n = 30
        a = rng.uniform(1.0, 2.0, size=n)
        d = rng.normal(size=n)
        c = rng.choice([-1.0, 1.0], size=n)
        result = solve_quadratic_knapsack(a, d, c, 0.0, 0.0, 1.0)
        interior = (result.x > 1e-6) & (result.x < 1.0 - 1e-6)
        if interior.any():
            stationarity = a[interior] * result.x[interior] + d[interior] + result.nu * c[interior]
            np.testing.assert_allclose(stationarity, 0.0, atol=1e-6)
