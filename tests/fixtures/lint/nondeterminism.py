"""Known-nondeterministic fixture."""
import time

import numpy as np


def wall_clock():
    return time.time()


def implicit_rng():
    return np.random.rand(4)


def unseeded():
    return np.random.default_rng()


def set_order():
    return [n for n in {"a", "b", "c"}]


def walk(path):
    return [p for p in path.glob("*.py")]


def salted(key, n):
    return hash(key) % n
