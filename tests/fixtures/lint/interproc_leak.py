"""Known-leaky fixture: raw data escapes only through multi-hop call chains."""


def fetch_rows(dataset):
    return dataset.X


def collect(dataset):
    return fetch_rows(dataset)


def publish(network, node, dataset):
    network.send(node, "reducer", collect(dataset), kind="grad")


def ship(network, node, payload):
    network.send(node, "reducer", payload, kind="grad")


def relay(network, node, dataset):
    ship(network, node, dataset.y)
