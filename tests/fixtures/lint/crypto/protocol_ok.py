"""Well-formed masking protocol: balanced masks, exchanged seeds, floor guard."""


class BalancedSummationProtocol:
    def __init__(self, network, participant_ids, reducer_id, codec, rngs):
        if len(participant_ids) < 2:
            raise ValueError("secure summation needs at least 2 participants")
        self.network = network
        self.participants = list(participant_ids)
        self.reducer_id = reducer_id
        self.codec = codec
        self._rngs = rngs
        self._pair_rngs = {}

    def _exchange_pairwise_seeds(self):
        for i, a in enumerate(self.participants):
            for b in self.participants[i + 1 :]:
                seed = int(self._rngs[a].integers(0, 2**63 - 1))
                self.network.send(a, b, seed, kind="mask-seed")
                received = self.network.receive(b, kind="mask-seed")
                self._pair_rngs[(a, b)] = self.codec.stream(received)

    def sum_vectors(self, values):
        n = len(values[self.participants[0]])
        net_mask = {p: [0] * n for p in self.participants}
        for sender in self.participants:
            for receiver in self.participants:
                if receiver == sender:
                    continue
                mask = self.codec.random_vector(n, self._rngs[sender])
                self.network.send(sender, receiver, mask, kind="mask")
                net_mask[sender] = self.codec.add(net_mask[sender], mask)
        for receiver in self.participants:
            for _ in range(len(self.participants) - 1):
                mask = self.network.receive(receiver, kind="mask")
                net_mask[receiver] = self.codec.subtract(net_mask[receiver], mask)
        for p in self.participants:
            share = self.codec.add(values[p], net_mask[p])
            self.network.send(p, self.reducer_id, share, kind="masked-share")
