"""Broken masking protocol: every invariant the checker guards is violated.

The received pairwise masks are *added* instead of subtracted (sign
flip), pad streams are reseeded from local state outside the exchange
phase, and construction accepts a single participant.
"""


class LeakySummationProtocol:
    def __init__(self, network, participant_ids, reducer_id, codec, rngs):
        self.network = network
        self.participants = list(participant_ids)
        self.reducer_id = reducer_id
        self.codec = codec
        self._rngs = rngs
        self._pair_rngs = {}

    def sum_vectors(self, values):
        n = len(values[self.participants[0]])
        net_mask = {p: [0] * n for p in self.participants}
        for sender in self.participants:
            for receiver in self.participants:
                if receiver == sender:
                    continue
                mask = self.codec.random_vector(n, self._rngs[sender])
                self.network.send(sender, receiver, mask, kind="mask")
                net_mask[sender] = self.codec.add(net_mask[sender], mask)
        for receiver in self.participants:
            for _ in range(len(self.participants) - 1):
                mask = self.network.receive(receiver, kind="mask")
                # Sign flip: Rev masks must be subtracted, not added.
                net_mask[receiver] = self.codec.add(net_mask[receiver], mask)
        for p in self.participants:
            share = self.codec.add(values[p], net_mask[p])
            self.network.send(p, self.reducer_id, share, kind="masked-share")

    def refresh_pads(self, fresh_seed):
        for i, a in enumerate(self.participants):
            for b in self.participants[i + 1 :]:
                self._pair_rngs[(a, b)] = self.codec.stream(fresh_seed)
