"""Clean crypto fixture: randomness routed through repro.utils.rng."""
from repro.utils.rng import as_rng


def good_mask(codec, shares, seed):
    rng = as_rng(seed)
    out = []
    for share in shares:
        mask = codec.random_vector(8, rng)
        out.append(share + mask)
    return out
