"""Known-bad crypto fixture (crypto scope via the directory name)."""
import random

import numpy as np


def bad_rng():
    return np.random.default_rng(1234)


def bad_float(codec, values):
    encoded = codec.encode(values)
    return encoded / 2


def bad_mask_reuse(codec, rng, shares):
    mask = codec.random_vector(8, rng)
    out = []
    for share in shares:
        out.append(share + mask)
    return out
