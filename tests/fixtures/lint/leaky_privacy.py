"""Known-leaky fixture: raw data reaching network/storage/serialization."""
import pickle


def leak_attribute(network, node, data):
    network.send(node, "reducer", data.X, kind="grad")


def leak_via_alias(network, node, dataset):
    features = dataset.X
    batch = []
    batch.append(features)
    network.broadcast(node, ["a", "b"], batch, kind="blast")


def leak_to_storage(hdfs, partition):
    rows = partition["X"]
    hdfs.put("shared.bin", rows)


def leak_serialized(block):
    return pickle.dumps(block.payload)
