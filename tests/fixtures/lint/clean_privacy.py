"""Clean fixture: only sanctioned or declassified values touch the wire."""


def send_masked(network, node, codec, data):
    masked = codec.encode(data.X)
    network.send(node, "reducer", masked, kind="masked-share")


def send_metadata(network, node, data):
    network.send(node, "reducer", data.shape, kind="meta")


def send_aggregate(network, node, protocol, values):
    total = protocol.sum_vectors(values)
    network.send(node, "reducer", total, kind="sum")


def store_private(hdfs, partition):
    hdfs.put("local.bin", partition["X"], private=True)
