"""Fixture: findings silenced by pragmas."""


def silenced(network, node, data):
    network.send(node, "reducer", data.X)  # repro-lint: disable=privacy.raw-data-to-network


def silenced_next_line(key, n):
    # repro-lint: disable=determinism.salted-hash -- process-local only
    return hash(key) % n


def silenced_all(network, node, data):
    network.send(node, "reducer", data.y)  # repro-lint: disable=all
