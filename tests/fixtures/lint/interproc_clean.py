"""Clean fixture: cross-function flows that are sanitized or metadata-only."""


def masked_rows(codec, dataset):
    return codec.encode(dataset.X)


def describe(dataset):
    return dataset.shape


def publish_masked(network, node, codec, dataset):
    network.send(node, "reducer", masked_rows(codec, dataset), kind="masked-share")


def publish_meta(network, node, dataset):
    network.send(node, "reducer", describe(dataset), kind="meta")


def summed(network, node, protocol, values):
    total = protocol.sum_vectors(values)
    network.send(node, "reducer", total, kind="sum")
