"""Parallel map wave: bit-identical trajectories across worker counts.

The threaded map wave (``n_map_workers > 1``) must not change a single
bit of any training trajectory: futures are collected in mapper
insertion order, so the reducer sees the exact same merge sequence as
the sequential loop.  These tests fit all four trainer variants at
``n_map_workers`` ∈ {1, 4} and demand *exact* equality of every
:class:`~repro.core.results.IterationRecord`, the consensus state, and
the fitted decision function — not tolerance-based closeness.
"""

import numpy as np
import pytest

from repro.core.partitioning import horizontal_partition, vertical_partition
from repro.core.trainer import PrivacyPreservingSVM
from repro.svm.kernels import RBFKernel


def record_key(record):
    # ``repr`` of a float is its shortest exact round-trip, so equal keys
    # mean bit-identical values; it also makes NaN accuracies (no eval
    # set) comparable, which raw ``==`` would not.
    return (
        record.iteration,
        repr(record.z_change_sq),
        repr(record.primal_residual),
        repr(record.accuracy),
    )


def assert_bit_identical(baseline, candidate, X_eval):
    base_records = [record_key(r) for r in baseline.history_.records]
    cand_records = [record_key(r) for r in candidate.history_.records]
    assert base_records == cand_records
    assert np.array_equal(
        baseline.decision_function(X_eval), candidate.decision_function(X_eval)
    )


VARIANTS = {
    "horizontal-linear": dict(C=50.0, rho=100.0, max_iter=15),
    "horizontal-kernel": dict(kernel=RBFKernel(gamma=0.1), n_landmarks=10, max_iter=10),
    "vertical-linear": dict(C=50.0, rho=100.0, max_iter=20),
    "vertical-kernel": dict(kernel=RBFKernel(gamma=0.1), max_iter=15),
}


def fit_variant(name, cancer_split, n_map_workers):
    train, test = cancer_split
    scheme = name.split("-")[0]
    if scheme == "horizontal":
        data = horizontal_partition(train, 4, seed=0)
    else:
        data = vertical_partition(train, 3, seed=0)
    model = PrivacyPreservingSVM(
        scheme, seed=0, n_map_workers=n_map_workers, **VARIANTS[name]
    ).fit(data)
    return model, test.X


class TestBitIdenticalTrajectories:
    @pytest.mark.parametrize("name", sorted(VARIANTS))
    def test_parallel_matches_sequential(self, name, cancer_split):
        sequential, X_eval = fit_variant(name, cancer_split, n_map_workers=1)
        parallel, _ = fit_variant(name, cancer_split, n_map_workers=4)
        assert len(sequential.history_) > 0
        assert_bit_identical(sequential, parallel, X_eval)

    def test_explicit_one_worker_matches_default(self, cancer_split):
        default, X_eval = fit_variant("horizontal-linear", cancer_split, 1)
        explicit = PrivacyPreservingSVM(
            "horizontal", seed=0, **VARIANTS["horizontal-linear"]
        ).fit(horizontal_partition(cancer_split[0], 4, seed=0))
        assert_bit_identical(default, explicit, X_eval)

    def test_horizontal_consensus_state_identical(self, cancer_split):
        sequential, _ = fit_variant("horizontal-linear", cancer_split, 1)
        parallel, _ = fit_variant("horizontal-linear", cancer_split, 4)
        assert np.array_equal(sequential._reducer.z, parallel._reducer.z)

    def test_vertical_consensus_state_identical(self, cancer_split):
        sequential, _ = fit_variant("vertical-linear", cancer_split, 1)
        parallel, _ = fit_variant("vertical-linear", cancer_split, 4)
        assert np.array_equal(
            sequential._reducer.logic.zbar, parallel._reducer.logic.zbar
        )


class TestDriverPlumbing:
    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError, match="n_map_workers"):
            PrivacyPreservingSVM("horizontal", n_map_workers=0)

    def test_mappers_accessor_sorted_and_used_by_trainer(self, cancer_split):
        model, _ = fit_variant("horizontal-linear", cancer_split, 1)
        driver = model.driver_
        keys = sorted(driver._mappers)
        assert driver.mappers() == [driver._mappers[key] for key in keys]
        assert model._workers() == [m.worker for m in driver.mappers()]

    def test_map_wave_span_reports_parallelism(self, cancer_split):
        model, _ = fit_variant("horizontal-linear", cancer_split, 4)
        waves = [s for s in model.network_.tracer.spans if s.name == "twister.map_wave"]
        assert waves
        for span in waves:
            assert span.attrs["n_mappers"] == 4
            assert span.attrs["n_parallel"] == 4

    def test_parallelism_capped_by_mapper_count(self, cancer_split):
        model, _ = fit_variant("horizontal-linear", cancer_split, 32)
        waves = [s for s in model.network_.tracer.spans if s.name == "twister.map_wave"]
        assert waves and all(s.attrs["n_parallel"] == 4 for s in waves)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_worker_spans_adopt_map_wave_parent(self, cancer_split, workers):
        # Threaded mappers start with an empty span stack; ``adopt``
        # must re-home their spans under the wave so the trace tree has
        # no orphans regardless of worker count.
        model, _ = fit_variant("horizontal-linear", cancer_split, workers)
        tracer = model.network_.tracer
        wave_ids = {s.span_id for s in tracer.spans if s.name == "twister.map_wave"}
        locals_ = [s for s in tracer.spans if s.name == "admm.local_step"]
        assert locals_
        assert all(s.parent_id in wave_ids for s in locals_)

    def test_serialize_counter_accumulates(self, cancer_split):
        model, _ = fit_variant("horizontal-linear", cancer_split, 1)
        assert model.network_.metrics.get("network.serialize_s") > 0.0
