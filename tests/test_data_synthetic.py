"""Tests for the synthetic dataset generators, including their
paper-calibration targets (shape and achievable accuracy)."""

import numpy as np
import pytest

from repro.data.splits import train_test_split
from repro.data.scaling import StandardScaler
from repro.data.synthetic import (
    make_blobs,
    make_cancer_like,
    make_higgs_like,
    make_linear_task,
    make_ocr_like,
    make_xor_task,
)
from repro.svm.model import LinearSVC


class TestShapes:
    def test_cancer_shape(self):
        ds = make_cancer_like()
        assert ds.X.shape == (569, 9)
        assert ds.name == "cancer"

    def test_higgs_shape(self):
        ds = make_higgs_like(500)
        assert ds.X.shape == (500, 28)
        assert ds.name == "higgs"

    def test_ocr_shape(self):
        ds = make_ocr_like(400)
        assert ds.X.shape == (400, 64)
        assert ds.name == "ocr"

    def test_higgs_default_matches_paper_subset(self):
        # The paper uses 11,000 of the 11M HIGGS rows.
        ds = make_higgs_like()
        assert ds.n_samples == 11_000

    def test_ocr_default_matches_paper(self):
        assert make_ocr_like().n_samples == 5_620


class TestDeterminism:
    @pytest.mark.parametrize("maker", [make_cancer_like, make_higgs_like, make_ocr_like])
    def test_seeded_generators_reproduce(self, maker):
        a = maker(200, seed=5)
        b = maker(200, seed=5)
        np.testing.assert_array_equal(a.X, b.X)
        np.testing.assert_array_equal(a.y, b.y)

    def test_different_seeds_differ(self):
        a = make_cancer_like(100, seed=1)
        b = make_cancer_like(100, seed=2)
        assert not np.array_equal(a.X, b.X)


class TestDifficultyCalibration:
    """The generators must land in the paper's accuracy regimes."""

    @staticmethod
    def _centralized_accuracy(dataset, C=50.0):
        train, test = train_test_split(dataset, 0.5, seed=0)
        scaler = StandardScaler().fit(train.X)
        model = LinearSVC(C=C).fit(scaler.transform(train.X), train.y)
        return model.score(scaler.transform(test.X), test.y)

    def test_cancer_is_easy(self):
        acc = self._centralized_accuracy(make_cancer_like(seed=0))
        assert 0.90 <= acc <= 0.99  # paper: ~95%

    def test_higgs_is_hard(self):
        acc = self._centralized_accuracy(make_higgs_like(2000, seed=0))
        assert 0.60 <= acc <= 0.78  # paper: ~70%

    def test_ocr_is_very_easy(self):
        acc = self._centralized_accuracy(make_ocr_like(1200, seed=0))
        assert acc >= 0.95  # paper: ~98%

    def test_difficulty_ordering(self):
        cancer = self._centralized_accuracy(make_cancer_like(seed=1))
        higgs = self._centralized_accuracy(make_higgs_like(2000, seed=1))
        ocr = self._centralized_accuracy(make_ocr_like(1200, seed=1))
        assert higgs < cancer <= ocr + 0.02


class TestOcrCorrelationStructure:
    def test_features_are_highly_correlated(self):
        ds = make_ocr_like(800, seed=0)
        corr = np.corrcoef(ds.X.T)
        off_diag = np.abs(corr[~np.eye(64, dtype=bool)])
        # The paper picked OCR for strongly correlated features.
        assert np.mean(off_diag) > 0.15

    def test_more_correlated_than_cancer(self):
        ocr = make_ocr_like(800, seed=0)
        cancer = make_cancer_like(569, seed=0)
        mean_abs = lambda ds: np.mean(
            np.abs(np.corrcoef(ds.X.T)[~np.eye(ds.n_features, dtype=bool)])
        )
        assert mean_abs(ocr) > mean_abs(cancer)


class TestHelpers:
    def test_linear_task_is_separable(self):
        ds = make_linear_task(150, 4, margin=0.5, seed=0)
        model = LinearSVC(C=1000.0).fit(ds.X, ds.y)
        assert model.score(ds.X, ds.y) == 1.0

    def test_linear_task_noise_flips_labels(self):
        clean = make_linear_task(300, 4, noise=0.0, seed=2)
        noisy = make_linear_task(300, 4, noise=0.2, seed=2)
        assert np.mean(clean.y != noisy.y) == pytest.approx(0.2, abs=0.07)

    def test_xor_not_linearly_separable(self):
        ds = make_xor_task(400, seed=0)
        model = LinearSVC(C=50.0).fit(ds.X, ds.y)
        assert model.score(ds.X, ds.y) < 0.8

    def test_blobs_balance(self):
        ds = make_blobs(200, 2, balance=0.25, seed=0)
        assert ds.class_balance() == pytest.approx(0.25, abs=0.01)

    def test_blobs_separation_scales_with_delta(self):
        near = make_blobs(400, 3, delta=0.5, seed=0)
        far = make_blobs(400, 3, delta=6.0, seed=0)
        acc_near = LinearSVC(C=1.0).fit(near.X, near.y).score(near.X, near.y)
        acc_far = LinearSVC(C=1.0).fit(far.X, far.y).score(far.X, far.y)
        assert acc_far > acc_near
