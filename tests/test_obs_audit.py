"""Runtime protocol auditor: invariant checks over live executions.

Unit tests drive :class:`~repro.obs.audit.ProtocolAuditLog` directly
with hand-crafted round feeds; integration tests attach it to the real
secure-summation and threshold-summation protocols — including the
fault-injection hook (``_audit_fault``) that makes a receiver silently
skip netting one pairwise mask, which must corrupt the sum *and* be
pinned by the auditor to the exact offending round.
"""

import numpy as np
import pytest

from repro.cluster.network import Network
from repro.cluster.profiling import Profiler
from repro.core.partitioning import horizontal_partition
from repro.core.trainer import PrivacyPreservingSVM
from repro.crypto.secure_sum import SecureSummationProtocol
from repro.crypto.threshold_sum import ThresholdSummationProtocol
from repro.data.splits import train_test_split
from repro.data.synthetic import make_blobs
from repro.obs.audit import AuditViolation, ProtocolAuditError, ProtocolAuditLog


def _clean_masked_round(log, participants=("m0", "m1", "m2")):
    """Feed one well-formed fresh-mode secure-sum round."""
    log.begin_round("secure-sum", list(participants))
    for sender in participants:
        for receiver in participants:
            if sender == receiver:
                continue
            log.mask_applied(sender, receiver)
            log.mask_removed(receiver, sender)
    for p in participants:
        log.share_sent(p)
        log.share_received(p)
    return log.end_round()


class TestRoundFeed:
    def test_clean_round_is_ok(self):
        log = ProtocolAuditLog()
        record = _clean_masked_round(log)
        assert record.ok
        assert log.ok
        assert record.round_index == 0

    def test_mask_imbalance_detected(self):
        log = ProtocolAuditLog()
        log.begin_round("secure-sum", ["m0", "m1"])
        log.mask_applied("m0", "m1")
        # m1 never nets the mask off.
        log.share_sent("m0")
        log.share_sent("m1")
        log.share_received("m0")
        log.share_received("m1")
        record = log.end_round()
        rules = {v.rule for v in record.violations}
        assert "mask-balance" in rules

    def test_pair_seed_requires_agreement(self):
        log = ProtocolAuditLog()
        log.seed_agreed("m0", "m1")
        log.begin_round("secure-sum", ["m0", "m1", "m2"])
        log.pad_derived("m0", "m1")
        log.pad_derived("m1", "m2")  # never agreed
        for p in ("m0", "m1", "m2"):
            log.share_sent(p)
            log.share_received(p)
        record = log.end_round()
        assert any(
            v.rule == "pair-seed" and "m2" in v.message for v in record.violations
        )

    def test_share_count_missing_sender(self):
        log = ProtocolAuditLog()
        log.begin_round("secure-sum", ["m0", "m1", "m2"])
        for p in ("m0", "m1"):  # m2 never sends
            log.share_sent(p)
            log.share_received(p)
        record = log.end_round()
        assert any(v.rule == "share-count" for v in record.violations)

    def test_participant_floor(self):
        log = ProtocolAuditLog(participant_floor=2)
        log.begin_round("secure-sum", ["only"])
        log.share_sent("only")
        log.share_received("only")
        record = log.end_round()
        assert any(v.rule == "participant-floor" for v in record.violations)

    def test_reconstruction_below_threshold(self):
        log = ProtocolAuditLog()
        log.begin_round(
            "threshold-sum",
            ["m0", "m1", "m2"],
            threshold=3,
            expected_senders=["m0", "m1"],
        )
        for p in ("m0", "m1"):
            log.share_sent(p)
            log.share_received(p)
        log.reconstruction(2, ok=True)
        record = log.end_round()
        assert any(v.rule == "reconstruction" for v in record.violations)

    def test_on_violation_raise(self):
        log = ProtocolAuditLog(on_violation="raise")
        log.begin_round("secure-sum", ["only"])
        log.share_sent("only")
        log.share_received("only")
        with pytest.raises(ProtocolAuditError, match="participant-floor|participant"):
            log.end_round()

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="on_violation"):
            ProtocolAuditLog(on_violation="shrug")

    def test_unclosed_round_rejected(self):
        log = ProtocolAuditLog()
        log.begin_round("secure-sum", ["m0", "m1"])
        with pytest.raises(RuntimeError, match="never closed"):
            log.begin_round("secure-sum", ["m0", "m1"])

    def test_counters_and_events_emitted(self):
        profiler = Profiler()
        log = ProtocolAuditLog(metrics=profiler, tracer=profiler.tracer)
        _clean_masked_round(log)
        log.begin_round("secure-sum", ["solo"])
        log.share_sent("solo")
        log.share_received("solo")
        log.end_round()
        assert profiler.get("audit.rounds") == 2.0
        assert profiler.get("audit.violations") == 1.0
        names = [e.name for e in profiler.tracer.events]
        assert names.count("audit.round") == 2
        assert names.count("audit.violation") == 1

    def test_summary_is_ledger_ready(self):
        log = ProtocolAuditLog()
        _clean_masked_round(log)
        summary = log.summary()
        assert summary["ok"] is True
        assert summary["n_rounds"] == 1
        assert summary["n_violations"] == 0
        round_summary = summary["rounds"][0]
        assert round_summary["protocol"] == "secure-sum"
        assert round_summary["masks_applied"] == round_summary["masks_removed"] == 6

    def test_violation_record_shape(self):
        violation = AuditViolation(3, "secure-sum", "mask-balance", "m0->m1")
        assert violation.round_index == 3
        with pytest.raises(AttributeError):
            violation.rule = "other"  # frozen


def _protocol(mode, audit, n=3, seed=0):
    network = Network(keep_log=False)
    participants = [f"m{i}" for i in range(n)]
    protocol = SecureSummationProtocol(
        network, participants, "reducer", mode=mode, seed=seed, audit=audit
    )
    rng = np.random.default_rng(seed)
    values = {p: rng.normal(size=8) for p in participants}
    return protocol, values


class TestSecureSumIntegration:
    @pytest.mark.parametrize("mode", ["fresh", "prg"])
    def test_clean_rounds_audit_clean(self, mode):
        audit = ProtocolAuditLog()
        protocol, values = _protocol(mode, audit)
        expected = sum(values.values())
        for _ in range(3):
            out = protocol.sum_vectors(values)
            np.testing.assert_allclose(out, expected, atol=1e-8)
        assert len(audit.rounds) == 3
        assert audit.ok
        assert all(r.ok for r in audit.rounds)

    def test_injected_mask_fault_caught_at_offending_round(self):
        audit = ProtocolAuditLog()
        protocol, values = _protocol("fresh", audit)
        expected = sum(values.values())

        out = protocol.sum_vectors(values)  # round 0: clean
        np.testing.assert_allclose(out, expected, atol=1e-8)

        protocol._audit_fault = ("m0", "m1")  # m1 drops m0's mask
        corrupted = protocol.sum_vectors(values)  # round 1: corrupted
        protocol._audit_fault = None
        assert not np.allclose(corrupted, expected, atol=1e-6)

        out = protocol.sum_vectors(values)  # round 2: clean again
        np.testing.assert_allclose(out, expected, atol=1e-8)

        assert [r.ok for r in audit.rounds] == [True, False, True]
        bad = audit.rounds[1]
        assert bad.round_index == 1
        assert {v.rule for v in bad.violations} == {"mask-balance"}
        assert any("m0" in v.message and "m1" in v.message for v in bad.violations)

    def test_prg_pad_discipline_holds_across_rounds(self):
        audit = ProtocolAuditLog()
        protocol, values = _protocol("prg", audit)
        for _ in range(2):
            protocol.sum_vectors(values)
        n_pairs = 3 * 2 // 2
        for record in audit.rounds:
            assert record.ok
            assert sum(record.pads_derived.values()) == n_pairs
            assert all(count == 1 for count in record.pads_derived.values())


class TestThresholdSumIntegration:
    def test_reconstruction_audited_with_dropouts(self):
        network = Network(keep_log=False)
        participants = [f"m{i}" for i in range(4)]
        audit = ProtocolAuditLog()
        protocol = ThresholdSummationProtocol(
            network, participants, "reducer", threshold=2, seed=0, audit=audit
        )
        rng = np.random.default_rng(0)
        values = {p: rng.normal(size=6) for p in participants}
        out = protocol.sum_vectors(values, dropouts={"m3"})
        np.testing.assert_allclose(out, sum(values.values()), atol=1e-8)
        record = audit.rounds[0]
        assert record.ok
        assert record.protocol == "threshold-sum"
        assert record.expected_senders == ("m0", "m1", "m2")
        assert record.reconstruction_shares == 2
        assert record.reconstruction_ok is True


class TestTrainerIntegration:
    def test_secure_fit_audits_every_aggregation_round(self):
        train, _ = train_test_split(make_blobs(120, seed=0), seed=0)
        parts = horizontal_partition(train, 3, seed=0)
        model = PrivacyPreservingSVM(max_iter=5, seed=0).fit(parts)
        audit = model.audit_log_
        assert audit is not None
        assert audit.ok
        assert len(audit.rounds) == len(model.history_)
        assert all(r.protocol == "secure-sum" for r in audit.rounds)
        assert model.profiler_.get("audit.rounds") == len(audit.rounds)
        assert model.profiler_.get("audit.violations") == 0.0

    def test_insecure_fit_has_no_audit_rounds(self):
        train, _ = train_test_split(make_blobs(120, seed=0), seed=0)
        parts = horizontal_partition(train, 3, seed=0)
        model = PrivacyPreservingSVM(max_iter=3, seed=0, secure=False).fit(parts)
        assert model.audit_log_ is not None
        assert model.audit_log_.rounds == []
