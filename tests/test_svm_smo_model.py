"""Tests for the SMO solver and the centralized SVC/LinearSVC models."""

import numpy as np
import pytest

from repro.data.synthetic import make_blobs, make_linear_task, make_xor_task
from repro.svm.kernels import LinearKernel, RBFKernel
from repro.svm.model import SVC, LinearSVC, accuracy
from repro.svm.smo import solve_svm_dual


class TestSolveSvmDual:
    def test_respects_box_and_equality(self, rng):
        ds = make_blobs(60, 2, delta=3.0, seed=2)
        K = LinearKernel().gram(ds.X)
        result = solve_svm_dual(K, ds.y, C=10.0)
        assert result.converged
        assert np.all(result.alpha >= -1e-12)
        assert np.all(result.alpha <= 10.0 + 1e-12)
        assert abs(float(ds.y @ result.alpha)) < 1e-6

    def test_matches_cvx_style_reference_on_tiny_problem(self):
        # 4-point separable problem with a known solution structure:
        # two support vectors at the margin, alpha equal by symmetry.
        X = np.array([[1.0, 0.0], [2.0, 0.0], [-1.0, 0.0], [-2.0, 0.0]])
        y = np.array([1.0, 1.0, -1.0, -1.0])
        K = LinearKernel().gram(X)
        result = solve_svm_dual(K, y, C=100.0, tol=1e-8)
        w = (result.alpha * y) @ X
        # Optimal separator: w = (1, 0), b = 0 (margin 1 at x = +-1).
        np.testing.assert_allclose(w, [1.0, 0.0], atol=1e-5)
        assert result.bias == pytest.approx(0.0, abs=1e-5)

    def test_separable_margin_constraints_hold(self):
        ds = make_linear_task(100, 3, margin=0.6, seed=1)
        K = LinearKernel().gram(ds.X)
        result = solve_svm_dual(K, ds.y, C=1e4, tol=1e-6)
        w = (result.alpha * ds.y) @ ds.X
        margins = ds.y * (ds.X @ w + result.bias)
        assert margins.min() > 0.99

    def test_bounded_support_vectors_at_C_for_noisy_data(self):
        ds = make_blobs(80, 2, delta=0.5, seed=3)  # heavy overlap
        K = LinearKernel().gram(ds.X)
        result = solve_svm_dual(K, ds.y, C=1.0)
        assert np.sum(result.alpha >= 1.0 - 1e-8) > 0

    def test_dual_objective_decreases_vs_zero(self, rng):
        ds = make_blobs(40, 2, seed=4)
        K = LinearKernel().gram(ds.X)
        result = solve_svm_dual(K, ds.y, C=5.0)
        Q = np.outer(ds.y, ds.y) * K
        obj = 0.5 * result.alpha @ Q @ result.alpha - result.alpha.sum()
        assert obj < 0.0  # alpha = 0 has objective 0

    def test_iteration_budget_respected(self):
        ds = make_blobs(60, 2, delta=0.3, seed=5)
        K = LinearKernel().gram(ds.X)
        result = solve_svm_dual(K, ds.y, C=100.0, max_iter=10)
        assert result.iterations <= 10
        assert not result.converged

    def test_rejects_nonsquare_gram(self, rng):
        with pytest.raises(ValueError, match="square"):
            solve_svm_dual(rng.normal(size=(3, 2)), [1, -1, 1], C=1.0)

    def test_support_indices(self):
        ds = make_blobs(50, 2, delta=4.0, seed=6)
        K = LinearKernel().gram(ds.X)
        result = solve_svm_dual(K, ds.y, C=10.0)
        sv = result.support_indices
        assert 0 < len(sv) < len(ds.y)  # sparse solution on separable data


class TestSVC:
    def test_perfect_on_separable(self):
        ds = make_linear_task(120, 4, seed=0)
        model = SVC(C=100.0).fit(ds.X, ds.y)
        assert model.score(ds.X, ds.y) == 1.0

    def test_rbf_solves_xor(self):
        ds = make_xor_task(300, seed=1)
        model = SVC(RBFKernel(gamma=1.0), C=50.0).fit(ds.X, ds.y)
        assert model.score(ds.X, ds.y) > 0.97

    def test_linear_fails_xor(self):
        ds = make_xor_task(300, seed=1)
        model = SVC(C=50.0).fit(ds.X, ds.y)
        assert model.score(ds.X, ds.y) < 0.8

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            SVC().predict(np.ones((1, 2)))

    def test_predict_returns_plus_minus_one(self):
        ds = make_blobs(40, 2, seed=0)
        preds = SVC(C=10.0).fit(ds.X, ds.y).predict(ds.X)
        assert set(np.unique(preds)) <= {-1.0, 1.0}

    def test_decision_function_sign_matches_predict(self):
        ds = make_blobs(40, 2, seed=0)
        model = SVC(C=10.0).fit(ds.X, ds.y)
        scores = model.decision_function(ds.X)
        preds = model.predict(ds.X)
        assert np.all((scores >= 0) == (preds > 0))

    def test_rejects_invalid_C(self):
        with pytest.raises(ValueError):
            SVC(C=-1.0)

    def test_support_vectors_subset(self):
        ds = make_blobs(60, 2, delta=4.0, seed=2)
        model = SVC(C=10.0).fit(ds.X, ds.y)
        assert len(model.support_indices_) < ds.n_samples


class TestLinearSVC:
    def test_coef_reproduces_decision_function(self):
        ds = make_blobs(60, 3, seed=1)
        model = LinearSVC(C=10.0).fit(ds.X, ds.y)
        kernel_scores = (
            LinearKernel()(ds.X, model.X_) @ (model.alpha_ * model.y_) + model.bias_
        )
        np.testing.assert_allclose(model.decision_function(ds.X), kernel_scores, atol=1e-8)

    def test_feature_mismatch_raises(self):
        ds = make_blobs(30, 3, seed=1)
        model = LinearSVC().fit(ds.X, ds.y)
        with pytest.raises(ValueError, match="features"):
            model.decision_function(np.ones((2, 5)))

    def test_larger_C_shrinks_training_error(self):
        ds = make_blobs(200, 2, delta=1.5, seed=3)
        soft = LinearSVC(C=0.01).fit(ds.X, ds.y)
        hard = LinearSVC(C=100.0).fit(ds.X, ds.y)
        assert hard.score(ds.X, ds.y) >= soft.score(ds.X, ds.y) - 1e-9


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([1, -1], [1, -1]) == 1.0

    def test_half(self):
        assert accuracy([1, -1], [1, 1]) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy([1, -1], [1])
