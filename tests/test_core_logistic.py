"""Tests for consensus logistic regression (the framework extension)."""

import numpy as np
import pytest

from repro.baselines.dp import DPLogisticRegression
from repro.core.horizontal_logistic import HorizontalLogisticRegression, LogisticWorker
from repro.core.partitioning import horizontal_partition
from repro.data.synthetic import make_blobs


@pytest.fixture
def parts_and_test(cancer_split):
    train, test = cancer_split
    return horizontal_partition(train, 4, seed=0), train, test


class TestHorizontalLogistic:
    def test_accuracy_near_centralized_lr(self, parts_and_test):
        parts, train, test = parts_and_test
        centralized = DPLogisticRegression(epsilon=np.inf, lam=0.01, seed=0).fit(
            train.X, train.y
        )
        consensus = HorizontalLogisticRegression(lam=1.0, rho=10.0, max_iter=40).fit(parts)
        assert abs(consensus.score(test.X, test.y) - centralized.score(test.X, test.y)) < 0.05

    def test_z_changes_decay(self, parts_and_test):
        parts, _, _ = parts_and_test
        model = HorizontalLogisticRegression(max_iter=40).fit(parts)
        z = model.history_.z_changes
        assert z[-1] < z[0] * 1e-2

    def test_local_models_reach_consensus(self, parts_and_test):
        parts, _, _ = parts_and_test
        model = HorizontalLogisticRegression(lam=1.0, rho=10.0, max_iter=80).fit(parts)
        for worker in model.workers_:
            assert np.linalg.norm(worker.w - model.consensus_weights_) < 0.15

    def test_probabilities_valid(self, parts_and_test):
        parts, _, test = parts_and_test
        model = HorizontalLogisticRegression(max_iter=20).fit(parts)
        proba = model.predict_proba(test.X)
        assert np.all((proba >= 0.0) & (proba <= 1.0))
        preds = model.predict(test.X)
        np.testing.assert_array_equal(preds, np.where(proba >= 0.5, 1.0, -1.0))

    def test_regularization_shrinks_consensus(self, parts_and_test):
        parts, _, _ = parts_and_test
        light = HorizontalLogisticRegression(lam=0.1, rho=10.0, max_iter=40).fit(parts)
        heavy = HorizontalLogisticRegression(lam=100.0, rho=10.0, max_iter=40).fit(parts)
        assert np.linalg.norm(heavy.consensus_weights_) < np.linalg.norm(
            light.consensus_weights_
        )

    def test_accuracy_series(self, parts_and_test):
        parts, _, test = parts_and_test
        model = HorizontalLogisticRegression(max_iter=10).fit(parts, eval_set=test)
        assert len(model.history_.accuracies) == 10
        assert model.history_.final_accuracy() > 0.8

    def test_early_stop(self, parts_and_test):
        parts, _, _ = parts_and_test
        model = HorizontalLogisticRegression(max_iter=200, tol=1e-6).fit(parts)
        assert model.history_.n_iterations < 200

    def test_single_partition_rejected(self, parts_and_test):
        parts, _, _ = parts_and_test
        with pytest.raises(ValueError, match="at least 2"):
            HorizontalLogisticRegression().fit(parts[:1])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            HorizontalLogisticRegression().predict(np.ones((1, 2)))


class TestLogisticWorker:
    def test_step_output_contract_matches_svm_workers(self):
        # The worker emits the same summand keys as the SVM workers, so
        # the same reducer / secure aggregator applies.
        ds = make_blobs(60, 3, seed=0)
        worker = LogisticWorker(ds.X, ds.y, rho=10.0)
        out = worker.step(np.zeros(3), 0.0)
        assert set(out) == {"z_contrib", "s_contrib"}

    def test_newton_solves_local_problem(self):
        # With a strong pull (rho large), the local solution approaches
        # the target.
        ds = make_blobs(60, 3, seed=1)
        worker = LogisticWorker(ds.X, ds.y, rho=1e6)
        target = np.array([0.5, -0.25, 1.0])
        worker.step(target, 0.3)
        np.testing.assert_allclose(worker.w, target, atol=1e-3)
        assert worker.b == pytest.approx(0.3, abs=1e-3)

    def test_wrong_consensus_length(self):
        ds = make_blobs(20, 3, seed=2)
        worker = LogisticWorker(ds.X, ds.y)
        with pytest.raises(ValueError, match="length"):
            worker.step(np.zeros(5), 0.0)
