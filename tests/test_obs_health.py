"""Convergence health monitors: detectors, verdicts, trainer policy.

Unit-level coverage of every :class:`~repro.obs.health.HealthMonitor`
detector on hand-built series, the verdict window/priority rules, the
counter/event emission contract, and the system-level behavior: a
deliberately divergent ADMM configuration (huge ``C``, tiny ``rho``)
must end with a ``diverging`` verdict in the fitted model *and* in its
persisted run record, and ``on_health`` must select between warning,
raising :class:`~repro.obs.health.HealthPolicyError`, and silence.
"""

import warnings

import pytest

from repro.cluster.profiling import Profiler
from repro.core.partitioning import horizontal_partition
from repro.core.trainer import PrivacyPreservingSVM
from repro.data.splits import train_test_split
from repro.data.synthetic import make_blobs
from repro.obs.health import HealthMonitor, HealthPolicyError, HealthSignal
from repro.obs.ledger import RunLedger


def feed(monitor, series, bytes_deltas=None):
    """Stream a plain series into the monitor; returns all fired signals."""
    fired = []
    for i, value in enumerate(series):
        delta = bytes_deltas[i] if bytes_deltas is not None else 0.0
        fired.extend(monitor.observe(i, z_change_sq=value, bytes_delta=delta))
    return fired


class TestDetectors:
    def test_divergence_fires_on_monotone_growth(self):
        monitor = HealthMonitor(divergence_window=3, divergence_factor=2.0)
        fired = feed(monitor, [0.1, 0.4, 1.9])
        assert [s.detector for s in fired] == ["divergence"]
        assert fired[0].iteration == 2
        assert monitor.verdict() == "diverging"

    def test_healthy_decay_fires_nothing(self):
        monitor = HealthMonitor()
        assert feed(monitor, [1.0 * 0.5**i for i in range(12)]) == []
        assert monitor.verdict() == "healthy"

    def test_divergence_ignores_converged_noise(self):
        # Strictly growing but far below the activity floor: converged.
        monitor = HealthMonitor(divergence_window=3, activity_floor=1e-12)
        assert feed(monitor, [1e-16, 2e-16, 5e-16]) == []

    def test_stall_fires_on_plateau(self):
        monitor = HealthMonitor(stall_window=5, stall_rel_band=0.05)
        fired = feed(monitor, [1.0, 0.99, 1.0, 0.98, 1.0])
        assert "stall" in {s.detector for s in fired}
        assert monitor.verdict() == "stalled"

    def test_converged_plateau_is_not_a_stall(self):
        # Flat, but below stall_floor — that's convergence, not a stall.
        monitor = HealthMonitor(stall_window=5, stall_floor=1e-10)
        assert feed(monitor, [1e-13] * 8) == []

    def test_oscillation_fires_on_alternation(self):
        monitor = HealthMonitor(
            oscillation_window=6, oscillation_flips=4, oscillation_amplitude=3.0,
            stall_window=50,  # keep the stall detector out of the way
        )
        fired = feed(monitor, [1.0, 4.0, 1.0, 4.0, 1.0, 4.0])
        assert "oscillation" in {s.detector for s in fired}
        assert monitor.verdict() == "oscillating"

    def test_byte_blowup_compares_against_median(self):
        monitor = HealthMonitor(byte_blowup_factor=4.0, stall_window=50)
        fired = feed(
            monitor,
            [1.0, 1.0, 1.0, 1.0],
            bytes_deltas=[1000.0, 1000.0, 1000.0, 8000.0],
        )
        blowups = [s for s in fired if s.detector == "byte_blowup"]
        assert len(blowups) == 1
        assert blowups[0].iteration == 3
        assert blowups[0].value == 8000.0
        assert monitor.verdict() == "byte-blowup"

    def test_non_finite_series_value_counts_as_divergence_evidence(self):
        monitor = HealthMonitor(divergence_window=3)
        fired = feed(monitor, [1.0, 10.0, float("inf")])
        assert "divergence" in {s.detector for s in fired}

    def test_primal_residual_preferred_when_available(self):
        monitor = HealthMonitor(divergence_window=3)
        # z_change says diverging, the (available) residual says fine.
        for i, (z, r) in enumerate(zip([0.1, 0.4, 1.9], [0.9, 0.5, 0.2])):
            monitor.observe(
                i, z_change_sq=z, primal_residual=r, residual_available=True
            )
        assert monitor.signals == []

    def test_nan_residual_falls_back_to_z_change(self):
        monitor = HealthMonitor(divergence_window=3)
        for i, z in enumerate([0.1, 0.4, 1.9]):
            monitor.observe(
                i,
                z_change_sq=z,
                primal_residual=float("nan"),
                residual_available=True,
            )
        assert [s.detector for s in monitor.signals] == ["divergence"]


class TestVerdict:
    def test_verdict_window_forgives_early_transients(self):
        monitor = HealthMonitor(divergence_window=3, verdict_window=8)
        series = [0.1, 0.4, 1.9] + [1.9 * 0.3**i for i in range(1, 20)]
        feed(monitor, series)
        assert any(s.detector == "divergence" for s in monitor.signals)
        assert monitor.verdict() == "healthy"

    def test_priority_divergence_beats_stall(self):
        monitor = HealthMonitor()
        monitor.signals.append(HealthSignal(0, "stall", 1.0, 1.0, "stall"))
        monitor.signals.append(HealthSignal(0, "divergence", 1.0, 1.0, "div"))
        monitor._series = [1.0]
        assert monitor.verdict() == "diverging"

    def test_finalize_freezes_and_emits_event(self):
        profiler = Profiler()
        monitor = HealthMonitor(
            divergence_window=3, metrics=profiler, tracer=profiler.tracer
        )
        feed(monitor, [0.1, 0.4, 1.9])
        assert profiler.get("health.signals") == 1.0
        assert monitor.finalize() == "diverging"
        # frozen: later healthy iterations no longer change it
        feed(monitor, [0.01] * 10)
        assert monitor.finalize() == "diverging"
        events = {e.name for e in profiler.tracer.events}
        assert {"health.divergence", "health.verdict"} <= events

    def test_summary_shape(self):
        monitor = HealthMonitor(divergence_window=3)
        feed(monitor, [0.1, 0.4, 1.9])
        summary = monitor.summary()
        assert summary["verdict"] == "diverging"
        assert summary["n_signals"] == 1
        assert summary["n_iterations"] == 3
        assert summary["signals"][0]["detector"] == "divergence"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"divergence_window": 1},
            {"stall_window": 1},
            {"oscillation_window": 2},
        ],
    )
    def test_window_validation(self, kwargs):
        with pytest.raises(ValueError):
            HealthMonitor(**kwargs)


@pytest.fixture()
def divergent_setup():
    """Partitions plus an ADMM config that provably diverges.

    Huge slack penalty with a tiny consensus penalty makes the local
    solutions overshoot the consensus every round — the residual series
    grows geometrically within a handful of iterations.
    """
    train, _ = train_test_split(make_blobs(120, seed=0), seed=0)
    parts = horizontal_partition(train, 3, seed=0)
    config = dict(C=1e4, rho=1e-3, max_iter=6, seed=0)
    return parts, config


class TestTrainerPolicy:
    def test_divergent_run_gets_diverging_verdict(self, divergent_setup):
        parts, config = divergent_setup
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            model = PrivacyPreservingSVM("horizontal", **config).fit(parts)
        assert model.health_monitor_.verdict() == "diverging"
        assert any(
            s.detector == "divergence" for s in model.health_monitor_.signals
        )

    def test_diverging_verdict_persisted_to_ledger(self, divergent_setup, tmp_path):
        parts, config = divergent_setup
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            model = PrivacyPreservingSVM(
                "horizontal", on_health="ignore", **config
            ).fit(parts)
        run_id = model.save_run(str(tmp_path))
        record = RunLedger(tmp_path).load(run_id)
        assert record["health"]["verdict"] == "diverging"

    def test_on_health_warn_issues_runtime_warning(self, divergent_setup):
        parts, config = divergent_setup
        with pytest.warns(RuntimeWarning, match="divergence|grew"):
            PrivacyPreservingSVM("horizontal", on_health="warn", **config).fit(parts)

    def test_on_health_raise_aborts_but_stays_inspectable(self, divergent_setup):
        parts, config = divergent_setup
        model = PrivacyPreservingSVM("horizontal", on_health="raise", **config)
        with pytest.raises(HealthPolicyError):
            model.fit(parts)
        # The partial run is still attached for post-mortem.
        assert model.health_monitor_ is not None
        assert model.health_monitor_.signals
        assert len(model.history_) >= 1

    def test_on_health_ignore_is_silent(self, divergent_setup):
        parts, config = divergent_setup
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            model = PrivacyPreservingSVM(
                "horizontal", on_health="ignore", **config
            ).fit(parts)
        assert model.health_monitor_.signals  # recorded, not enforced

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="on_health"):
            PrivacyPreservingSVM("horizontal", on_health="explode")

    def test_healthy_run_verdict(self):
        train, _ = train_test_split(make_blobs(120, seed=0), seed=0)
        parts = horizontal_partition(train, 3, seed=0)
        model = PrivacyPreservingSVM(max_iter=5, seed=0).fit(parts)
        assert model.health_monitor_.verdict() == "healthy"
        assert model.profiler_.get("health.signals") == 0.0

    def test_custom_monitor_injection(self, divergent_setup):
        parts, config = divergent_setup
        monitor = HealthMonitor(divergence_window=2, divergence_factor=1.5)
        model = PrivacyPreservingSVM(
            "horizontal", on_health="ignore", health_monitor=monitor, **config
        ).fit(parts)
        assert model.health_monitor_ is monitor
        assert monitor.metrics is model.profiler_
