"""Tests for the related-work baseline comparators."""

import numpy as np
import pytest

from repro.baselines.dp import DPLogisticRegression
from repro.baselines.local_only import LocalOnlySVM
from repro.baselines.random_kernel import RandomKernelSVM
from repro.core.partitioning import horizontal_partition
from repro.data.synthetic import make_blobs
from repro.svm.model import SVC


@pytest.fixture
def cancer_parts(cancer_split):
    train, test = cancer_split
    return horizontal_partition(train, 4, seed=0), train, test


class TestLocalOnly:
    def test_fits_and_scores(self, cancer_parts):
        parts, _, test = cancer_parts
        model = LocalOnlySVM(C=50.0).fit(parts)
        assert 0.5 < model.score(test.X, test.y) <= 1.0

    def test_score_all_covers_learners(self, cancer_parts):
        parts, _, test = cancer_parts
        scores = LocalOnlySVM(C=50.0).fit(parts).score_all(test.X, test.y)
        assert set(scores) == {"learner0", "learner1", "learner2", "learner3", "mean"}

    def test_local_worse_than_pooled_on_scarce_data(self):
        # With very few samples per learner, local models lag pooled.
        ds = make_blobs(64, 10, delta=1.8, seed=2)
        test = make_blobs(400, 10, delta=1.8, seed=3)
        parts = horizontal_partition(ds, 8, seed=0)
        local = LocalOnlySVM(C=1.0).fit(parts)
        pooled = SVC(C=1.0).fit(ds.X, ds.y)
        assert pooled.score(test.X, test.y) >= local.score_all(test.X, test.y)["mean"]

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LocalOnlySVM().predict(np.ones((1, 2)))

    def test_eval_learner_bounds(self, cancer_parts):
        parts, _, _ = cancer_parts
        with pytest.raises(ValueError):
            LocalOnlySVM(eval_learner=10).fit(parts)


class TestRandomKernel:
    def test_accuracy_close_to_plain_svm(self, cancer_parts):
        parts, train, test = cancer_parts
        plain = SVC(C=50.0).fit(train.X, train.y)
        projected = RandomKernelSVM(n_components=6, C=50.0, seed=0).fit(parts)
        assert projected.score(test.X, test.y) > plain.score(test.X, test.y) - 0.1

    def test_server_never_sees_raw_features(self, cancer_parts):
        parts, train, _ = cancer_parts
        model = RandomKernelSVM(n_components=4, C=50.0, seed=0).fit(parts)
        view = model.published_view(parts)
        assert view.shape[1] == 4  # fewer dims than the 9 raw features
        # The projection is not invertible: rank < k.
        assert np.linalg.matrix_rank(model.projection_) == 4

    def test_default_component_count(self, cancer_parts):
        parts, _, _ = cancer_parts
        model = RandomKernelSVM(C=50.0, seed=0).fit(parts)
        assert model.projection_.shape == (9, 4)

    def test_too_many_components_rejected(self, cancer_parts):
        parts, _, _ = cancer_parts
        with pytest.raises(ValueError):
            RandomKernelSVM(n_components=20).fit(parts)

    def test_predict_dimension_check(self, cancer_parts):
        parts, _, _ = cancer_parts
        model = RandomKernelSVM(n_components=4, seed=0).fit(parts)
        with pytest.raises(ValueError):
            model.predict(np.ones((2, 5)))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomKernelSVM().predict(np.ones((1, 2)))


class TestDPLogisticRegression:
    def test_infinite_epsilon_is_noiseless(self, cancer_split):
        train, test = cancer_split
        model = DPLogisticRegression(epsilon=np.inf, lam=0.01, seed=0).fit(train.X, train.y)
        np.testing.assert_array_equal(model.coef_, model.noiseless_coef_)
        assert model.score(test.X, test.y) > 0.85

    def test_noise_added_for_finite_epsilon(self, cancer_split):
        train, _ = cancer_split
        model = DPLogisticRegression(epsilon=1.0, lam=0.01, seed=0).fit(train.X, train.y)
        assert not np.allclose(model.coef_, model.noiseless_coef_)

    def test_privacy_utility_tradeoff(self, cancer_split):
        # Averaged over seeds, smaller epsilon => no better accuracy.
        train, test = cancer_split
        def mean_acc(eps):
            return np.mean(
                [
                    DPLogisticRegression(epsilon=eps, lam=0.01, seed=s)
                    .fit(train.X, train.y)
                    .score(test.X, test.y)
                    for s in range(5)
                ]
            )
        assert mean_acc(10.0) >= mean_acc(0.01) - 0.05

    def test_noise_scales_with_sensitivity(self, cancer_split):
        train, _ = cancer_split
        tight = DPLogisticRegression(epsilon=0.1, lam=0.001, seed=1).fit(train.X, train.y)
        loose = DPLogisticRegression(epsilon=0.1, lam=1.0, seed=1).fit(train.X, train.y)
        noise_tight = np.linalg.norm(tight.coef_ - tight.noiseless_coef_)
        noise_loose = np.linalg.norm(loose.coef_ - loose.noiseless_coef_)
        assert noise_tight > noise_loose

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            DPLogisticRegression(epsilon=0.0)

    def test_deterministic_given_seed(self, cancer_split):
        train, _ = cancer_split
        a = DPLogisticRegression(epsilon=1.0, seed=7).fit(train.X, train.y)
        b = DPLogisticRegression(epsilon=1.0, seed=7).fit(train.X, train.y)
        np.testing.assert_array_equal(a.coef_, b.coef_)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DPLogisticRegression().predict(np.ones((1, 2)))
