"""Tests for Paillier, secret sharing, and the secure dot product."""

import numpy as np
import pytest

from repro.cluster.network import Network
from repro.crypto.dot_product import secure_dot_product
from repro.crypto.paillier import PaillierKeyPair, is_probable_prime
from repro.crypto.secret_sharing import (
    MERSENNE_PRIME_127,
    additive_reconstruct,
    additive_share,
    shamir_reconstruct,
    shamir_share,
)


@pytest.fixture(scope="module")
def keypair():
    return PaillierKeyPair.generate(bits=256, seed=99)


class TestPrimality:
    def test_known_primes(self, rng):
        for p in (2, 3, 101, 7919, 104729, (1 << 61) - 1):
            assert is_probable_prime(p, rng)

    def test_known_composites(self, rng):
        for c in (1, 4, 100, 7917, 561, 341550071728321 * 3):
            assert not is_probable_prime(c, rng)

    def test_carmichael_numbers_rejected(self, rng):
        for c in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_probable_prime(c, rng)


class TestPaillier:
    def test_encrypt_decrypt_roundtrip(self, keypair, rng):
        for m in (0, 1, -1, 123456789, -987654321):
            assert keypair.decrypt(keypair.public_key.encrypt(m, rng=rng)) == m

    def test_homomorphic_addition(self, keypair, rng):
        pk = keypair.public_key
        c = pk.encrypt(1234, rng=rng) + pk.encrypt(-234, rng=rng)
        assert keypair.decrypt(c) == 1000

    def test_plaintext_constant_addition(self, keypair, rng):
        c = keypair.public_key.encrypt(10, rng=rng) + 32
        assert keypair.decrypt(c) == 42

    def test_scalar_multiplication(self, keypair, rng):
        c = keypair.public_key.encrypt(-7, rng=rng) * 6
        assert keypair.decrypt(c) == -42

    def test_linear_combination(self, keypair, rng):
        pk = keypair.public_key
        c = pk.encrypt(3, rng=rng) * 5 + pk.encrypt(4, rng=rng) * -2
        assert keypair.decrypt(c) == 7

    def test_randomized_ciphertexts_differ(self, keypair, rng):
        pk = keypair.public_key
        assert pk.encrypt(5, rng=rng).value != pk.encrypt(5, rng=rng).value

    def test_vector_helpers(self, keypair, rng):
        values = [1, -2, 3]
        encrypted = keypair.public_key.encrypt_vector(values, rng=rng)
        assert keypair.decrypt_vector(encrypted) == values

    def test_cross_key_addition_rejected(self, keypair, rng):
        other = PaillierKeyPair.generate(bits=128, seed=1)
        with pytest.raises(ValueError, match="different keys"):
            _ = keypair.public_key.encrypt(1, rng=rng) + other.public_key.encrypt(1, rng=rng)

    def test_cross_key_decryption_rejected(self, keypair, rng):
        other = PaillierKeyPair.generate(bits=128, seed=2)
        with pytest.raises(ValueError, match="different key"):
            keypair.decrypt(other.public_key.encrypt(1, rng=rng))

    def test_plaintext_magnitude_guard(self, keypair):
        with pytest.raises(OverflowError):
            keypair.public_key.encode_signed(keypair.public_key.n)

    def test_key_generation_rejects_tiny_keys(self):
        with pytest.raises(ValueError):
            PaillierKeyPair.generate(bits=32)


class TestAdditiveSharing:
    def test_reconstruction(self, rng):
        secret = 123456789
        shares = additive_share(secret, 5, rng=rng)
        assert additive_reconstruct(shares) == secret

    def test_negative_secret_mod_group(self, rng):
        modulus = 1 << 64
        shares = additive_share(-5, 3, modulus=modulus, rng=rng)
        assert additive_reconstruct(shares, modulus=modulus) == (-5) % modulus

    def test_single_share_uninformative_shape(self, rng):
        # All proper subsets are uniform: different secrets can yield the
        # same first n-1 shares under suitable last shares.
        shares_a = additive_share(1, 3, rng=np.random.default_rng(0))
        shares_b = additive_share(10**18, 3, rng=np.random.default_rng(0))
        assert shares_a[:2] == shares_b[:2]  # same rng -> same masks
        assert shares_a[2] != shares_b[2]

    def test_needs_two_shares(self):
        with pytest.raises(ValueError):
            additive_share(1, 1)

    def test_empty_reconstruct_rejected(self):
        with pytest.raises(ValueError):
            additive_reconstruct([])


class TestShamir:
    def test_exact_threshold_reconstructs(self, rng):
        secret = 42424242
        shares = shamir_share(secret, 5, 3, rng=rng)
        assert shamir_reconstruct(shares[:3]) == secret

    def test_any_subset_of_threshold_size(self, rng):
        secret = 777
        shares = shamir_share(secret, 6, 3, rng=rng)
        for subset in ([0, 2, 4], [1, 3, 5], [0, 4, 5]):
            assert shamir_reconstruct([shares[i] for i in subset]) == secret

    def test_below_threshold_gives_wrong_answer(self, rng):
        secret = 999
        shares = shamir_share(secret, 5, 3, rng=rng)
        # 2 shares interpolate a line — almost surely not the secret.
        assert shamir_reconstruct(shares[:2]) != secret

    def test_threshold_one_is_replication(self, rng):
        shares = shamir_share(31337, 4, 1, rng=rng)
        assert all(value == 31337 for _, value in shares)

    def test_large_secret_in_field(self, rng):
        secret = MERSENNE_PRIME_127 - 2
        shares = shamir_share(secret, 3, 2, rng=rng)
        assert shamir_reconstruct(shares[:2]) == secret

    def test_duplicate_indices_rejected(self, rng):
        shares = shamir_share(5, 3, 2, rng=rng)
        with pytest.raises(ValueError, match="duplicate"):
            shamir_reconstruct([shares[0], shares[0]])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            shamir_share(1, 2, 3)
        with pytest.raises(ValueError):
            shamir_share(1, 3, 0)


class TestSecureDotProduct:
    def test_shares_sum_to_dot_product(self, keypair, rng):
        a = [3, -4, 5, 0]
        b = [10, 2, -7, 9]
        result = secure_dot_product(a, b, keypair=keypair, seed=rng)
        assert result.total == int(np.dot(a, b))

    def test_individual_shares_hide_result(self, keypair, rng):
        result = secure_dot_product([1, 2], [3, 4], keypair=keypair, seed=rng, mask_bits=80)
        assert abs(result.alice_share) > 2**60  # masked by ~80-bit r
        assert result.total == 11

    def test_network_accounting(self, keypair):
        network = Network()
        secure_dot_product([1, 2, 3], [4, 5, 6], keypair=keypair, network=network, seed=0)
        assert network.messages_sent("secure-dot-product") == 2
        assert network.metrics.get("crypto.secure_dot_products") == 1
        assert network.metrics.get("crypto.paillier_ops") > 0

    def test_length_mismatch(self, keypair):
        with pytest.raises(ValueError):
            secure_dot_product([1], [1, 2], keypair=keypair)

    def test_empty_vectors_rejected(self, keypair):
        with pytest.raises(ValueError):
            secure_dot_product([], [], keypair=keypair)

    def test_zero_vector(self, keypair, rng):
        result = secure_dot_product([0, 0], [5, 7], keypair=keypair, seed=rng)
        assert result.total == 0
