"""Property-based tests (hypothesis) for the cryptographic substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.cluster.network import Network
from repro.crypto.fixed_point import FixedPointCodec
from repro.crypto.paillier import PaillierKeyPair
from repro.crypto.secret_sharing import (
    additive_reconstruct,
    additive_share,
    shamir_reconstruct,
    shamir_share,
)
from repro.crypto.secure_sum import SecureSummationProtocol

bounded_floats = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)

# One module-level key pair: generation is the slow part.
_KEYPAIR = PaillierKeyPair.generate(bits=192, seed=1234)


class TestFixedPointProperties:
    @given(hnp.arrays(float, st.integers(1, 30), elements=bounded_floats))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_error_bound(self, values):
        codec = FixedPointCodec(fractional_bits=40)
        decoded = codec.decode(codec.encode(values))
        assert np.max(np.abs(decoded - values)) <= 2.0**-40 + 1e-12

    @given(
        hnp.arrays(float, 6, elements=bounded_floats),
        hnp.arrays(float, 6, elements=bounded_floats),
    )
    @settings(max_examples=60, deadline=None)
    def test_homomorphic_add(self, a, b):
        codec = FixedPointCodec()
        out = codec.decode(codec.add(codec.encode(a), codec.encode(b)))
        np.testing.assert_allclose(out, a + b, atol=1e-9)

    @given(hnp.arrays(float, 5, elements=bounded_floats), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_masking_is_invertible(self, values, seed):
        codec = FixedPointCodec()
        rng = np.random.default_rng(seed)
        mask = codec.random_vector(5, rng)
        encoded = codec.encode(values)
        assert codec.subtract(codec.add(encoded, mask), mask) == encoded


class TestSecureSumProperties:
    @given(
        st.integers(2, 6),
        st.integers(1, 8),
        st.integers(0, 2**31 - 1),
        st.sampled_from(["fresh", "prg"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_sum_always_correct(self, n_parties, dim, seed, mode):
        rng = np.random.default_rng(seed)
        network = Network(keep_log=False)
        participants = [f"p{i}" for i in range(n_parties)]
        protocol = SecureSummationProtocol(
            network, participants, "agg", mode=mode, seed=seed
        )
        values = {p: rng.uniform(-1e3, 1e3, size=dim) for p in participants}
        result = protocol.sum_vectors(values)
        np.testing.assert_allclose(result, sum(values.values()), atol=1e-8)


class TestSecretSharingProperties:
    @given(st.integers(0, 2**100), st.integers(2, 10), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_additive_roundtrip(self, secret, n_shares, seed):
        rng = np.random.default_rng(seed)
        shares = additive_share(secret, n_shares, rng=rng)
        assert additive_reconstruct(shares) == secret % (1 << 128)

    @given(st.integers(0, 2**100), st.integers(1, 6), st.integers(0, 6), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_shamir_roundtrip_any_threshold_subset(self, secret, threshold, extra, seed):
        rng = np.random.default_rng(seed)
        n_shares = threshold + extra
        shares = shamir_share(secret, n_shares, threshold, rng=rng)
        chosen = list(rng.choice(n_shares, size=threshold, replace=False))
        assert shamir_reconstruct([shares[i] for i in chosen]) == secret


class TestPaillierProperties:
    @given(st.integers(-(2**60), 2**60), st.integers(-(2**60), 2**60))
    @settings(max_examples=30, deadline=None)
    def test_additive_homomorphism(self, a, b):
        pk = _KEYPAIR.public_key
        rng = np.random.default_rng(abs(a + b) % (2**31))
        c = pk.encrypt(a, rng=rng) + pk.encrypt(b, rng=rng)
        assert _KEYPAIR.decrypt(c) == a + b

    @given(st.integers(-(2**40), 2**40), st.integers(-(2**15), 2**15))
    @settings(max_examples=30, deadline=None)
    def test_scalar_homomorphism(self, m, k):
        pk = _KEYPAIR.public_key
        rng = np.random.default_rng(abs(m) % (2**31))
        assert _KEYPAIR.decrypt(pk.encrypt(m, rng=rng) * k) == m * k
