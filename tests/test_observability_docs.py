"""docs/OBSERVABILITY.md must cover every counter the code emits.

The extraction lives in the static-analysis suite
(``repro.analysis.checkers.docs``); ``tools/check_observability_docs.py``
is a compatibility shim over it.  Both are exercised here, so a new
``metrics.increment("new.counter", ...)`` call site fails the suite
until the counter is documented.
"""

import importlib.util
import sys
from pathlib import Path

from repro.analysis import Project, run_lint
from repro.analysis.checkers.docs import CounterDocsChecker
from repro.analysis.source import ModuleSource

ROOT = Path(__file__).resolve().parent.parent


def _load_lint():
    spec = importlib.util.spec_from_file_location(
        "check_observability_docs", ROOT / "tools" / "check_observability_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_every_emitted_counter_documented():
    lint = _load_lint()
    names = lint.counter_names()
    # Extraction sanity: the well-known counters must be found...
    assert "network.bytes.<kind>" in names
    assert "crypto.secure_sum_rounds" in names
    assert "scheduler.remote_tasks" in names  # conditional-expression call site
    # ...and every found name must appear in the doc.
    doc = (ROOT / "docs" / "OBSERVABILITY.md").read_text()
    missing = sorted(name for name in names if name not in doc)
    assert not missing, f"undocumented counters: {missing}"


def test_lint_script_exit_code():
    lint = _load_lint()
    assert lint.main() == 0


def test_lint_detects_missing_name(monkeypatch, tmp_path, capsys):
    lint = _load_lint()
    doc = tmp_path / "OBSERVABILITY.md"
    doc.write_text("nothing documented here")
    monkeypatch.setattr(lint, "DOC", doc)
    assert lint.main() == 1
    out = capsys.readouterr().out
    assert "missing from" in out


def test_docs_checker_flags_undocumented_counter(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "OBSERVABILITY.md").write_text("`known.counter`\n")
    src = tmp_path / "mod.py"
    src.write_text(
        'metrics.increment("known.counter", 1)\n'
        'metrics.increment("rogue.counter", 1)\n'
    )
    project = Project(root=tmp_path, modules=[ModuleSource.load(src, tmp_path)])
    findings = list(CounterDocsChecker().check(project))
    assert [(f.rule, f.line) for f in findings] == [("docs.undocumented-counter", 2)]
    assert "rogue.counter" in findings[0].message


def test_docs_checker_part_of_default_lint(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "OBSERVABILITY.md").write_text("registry\n")
    src_dir = tmp_path / "src"
    src_dir.mkdir()
    (src_dir / "mod.py").write_text('metrics.increment("ghost.counter", 1)\n')
    report = run_lint(tmp_path)
    assert [f.rule for f in report.findings] == ["docs.undocumented-counter"]
    assert report.exit_code() == 1


if __name__ == "__main__":
    sys.exit(0)
