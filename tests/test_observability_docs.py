"""docs/OBSERVABILITY.md must cover every counter the code emits.

Runs the same extraction as ``tools/check_observability_docs.py`` (the
CI lint) in-process, so a new ``metrics.increment("new.counter", ...)``
call site fails the suite until the counter is documented.
"""

import importlib.util
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _load_lint():
    spec = importlib.util.spec_from_file_location(
        "check_observability_docs", ROOT / "tools" / "check_observability_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_every_emitted_counter_documented():
    lint = _load_lint()
    names = lint.counter_names()
    # Extraction sanity: the well-known counters must be found...
    assert "network.bytes.<kind>" in names
    assert "crypto.secure_sum_rounds" in names
    assert "scheduler.remote_tasks" in names  # conditional-expression call site
    # ...and every found name must appear in the doc.
    doc = (ROOT / "docs" / "OBSERVABILITY.md").read_text()
    missing = sorted(name for name in names if name not in doc)
    assert not missing, f"undocumented counters: {missing}"


def test_lint_script_exit_code():
    lint = _load_lint()
    assert lint.main() == 0


def test_lint_detects_missing_name(monkeypatch, tmp_path, capsys):
    lint = _load_lint()
    doc = tmp_path / "OBSERVABILITY.md"
    doc.write_text("nothing documented here")
    monkeypatch.setattr(lint, "DOC", doc)
    assert lint.main() == 1
    out = capsys.readouterr().out
    assert "missing from" in out


if __name__ == "__main__":
    sys.exit(0)
