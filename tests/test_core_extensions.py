"""Tests for the future-work extensions: secure feature selection,
partial participation, and dropout-robust training."""

import numpy as np
import pytest

from repro.cluster.network import Network
from repro.core.feature_selection import (
    correlation_scores,
    secure_feature_selection,
)
from repro.core.horizontal_linear import HorizontalLinearSVM
from repro.core.partitioning import horizontal_partition
from repro.core.trainer import PrivacyPreservingSVM
from repro.crypto.threshold_sum import ThresholdSumAggregator
from repro.data.dataset import Dataset
from repro.data.synthetic import make_blobs, make_cancer_like
from repro.utils.rng import as_rng


def redundant_dataset(n=240, seed=0):
    """A dataset whose last 4 features are pure noise (irrelevant)."""
    rng = as_rng(seed)
    core = make_blobs(n, 5, delta=3.5, seed=seed)
    noise = rng.standard_normal((n, 4))
    return Dataset(np.hstack([core.X, noise]), core.y, "redundant")


class TestCorrelationScores:
    def test_informative_features_score_higher(self):
        ds = redundant_dataset()
        scores = correlation_scores(ds.X, ds.y)
        assert scores[:5].min() > scores[5:].max()

    def test_constant_feature_scores_zero(self):
        X = np.column_stack([np.ones(20), np.arange(20.0)])
        y = np.array([1.0, -1.0] * 10)
        scores = correlation_scores(X, y)
        assert scores[0] == 0.0

    def test_scores_in_unit_interval(self, rng):
        X = rng.normal(size=(50, 6))
        y = np.sign(X[:, 0] + 0.1 * rng.normal(size=50))
        y[y == 0] = 1.0
        scores = correlation_scores(X, y)
        assert np.all((scores >= 0.0) & (scores <= 1.0))


class TestSecureFeatureSelection:
    def test_matches_centralized_exactly(self):
        ds = redundant_dataset()
        parts = horizontal_partition(ds, 4, seed=0)
        result = secure_feature_selection(parts, 5, seed=0)
        pooled_scores = correlation_scores(ds.X, ds.y)
        np.testing.assert_allclose(result.scores, pooled_scores, atol=1e-8)
        expected = np.sort(np.argsort(pooled_scores)[::-1][:5])
        np.testing.assert_array_equal(result.selected, expected)

    def test_selects_the_informative_features(self):
        ds = redundant_dataset()
        parts = horizontal_partition(ds, 3, seed=0)
        result = secure_feature_selection(parts, 5, seed=0)
        assert set(result.selected.tolist()) == {0, 1, 2, 3, 4}

    def test_projection_applies_to_all_learners(self):
        ds = redundant_dataset()
        parts = horizontal_partition(ds, 3, seed=0)
        result = secure_feature_selection(parts, 5, seed=0)
        projected = result.project(parts)
        assert all(p.n_features == 5 for p in projected)
        assert sum(p.n_samples for p in projected) == ds.n_samples

    def test_wire_is_masked(self):
        ds = redundant_dataset()
        parts = horizontal_partition(ds, 3, seed=0)
        network = Network()
        secure_feature_selection(parts, 5, network=network, seed=0)
        to_reducer = [m for m in network.message_log if m.dst == "fs-reducer"]
        assert to_reducer
        assert all(m.kind == "masked-share" for m in to_reducer)

    def test_selection_improves_downstream_training(self):
        from repro.data.splits import train_test_split

        ds = redundant_dataset(n=480, seed=3)
        train, test = train_test_split(ds, 0.5, seed=0)
        parts = horizontal_partition(train, 4, seed=0)
        result = secure_feature_selection(parts, 5, seed=0)
        trimmed = result.project(parts)
        full_model = HorizontalLinearSVM(max_iter=30).fit(parts)
        trimmed_model = HorizontalLinearSVM(max_iter=30).fit(trimmed)
        full_acc = full_model.score(test.X, test.y)
        trimmed_acc = trimmed_model.score(test.X[:, result.selected], test.y)
        assert trimmed_acc >= full_acc - 0.03

    def test_k_bounds(self):
        ds = redundant_dataset()
        parts = horizontal_partition(ds, 2, seed=0)
        with pytest.raises(ValueError, match="n_features"):
            secure_feature_selection(parts, 0)
        with pytest.raises(ValueError, match="n_features"):
            secure_feature_selection(parts, 99)

    def test_needs_two_learners(self):
        ds = redundant_dataset()
        with pytest.raises(ValueError, match="at least 2"):
            secure_feature_selection([ds], 3)


class TestPartialParticipation:
    @pytest.fixture
    def parts_and_test(self, cancer_split):
        train, test = cancer_split
        return horizontal_partition(train, 4, seed=0), test

    def test_full_participation_unchanged(self, parts_and_test):
        parts, _ = parts_and_test
        default = HorizontalLinearSVM(max_iter=15).fit(parts)
        explicit = HorizontalLinearSVM(max_iter=15, participation=1.0).fit(parts)
        np.testing.assert_array_equal(
            default.consensus_weights_, explicit.consensus_weights_
        )

    def test_half_participation_still_accurate(self, parts_and_test):
        parts, test = parts_and_test
        model = HorizontalLinearSVM(max_iter=80, participation=0.5, seed=0).fit(parts)
        assert model.score(test.X, test.y) > 0.88

    def test_quarter_participation_converges(self, parts_and_test):
        parts, _ = parts_and_test
        model = HorizontalLinearSVM(max_iter=80, participation=0.25, seed=0).fit(parts)
        z = model.history_.z_changes
        assert z[-1] < z[0] * 1e-2

    def test_first_iteration_everyone_participates(self, parts_and_test):
        parts, _ = parts_and_test
        model = HorizontalLinearSVM(max_iter=1, participation=0.25, seed=0).fit(parts)
        assert all(w.last_output is not None for w in model.workers_)

    def test_invalid_participation(self):
        with pytest.raises(ValueError, match="participation"):
            HorizontalLinearSVM(participation=0.0)
        with pytest.raises(ValueError, match="participation"):
            HorizontalLinearSVM(participation=1.5)


class TestThresholdAggregatorTraining:
    def test_matches_masking_aggregation(self, cancer_split):
        train, _ = cancer_split
        parts = horizontal_partition(train, 4, seed=0)
        masked = PrivacyPreservingSVM("horizontal", max_iter=8, seed=0).fit(parts)
        robust = PrivacyPreservingSVM(
            "horizontal",
            max_iter=8,
            seed=0,
            aggregator=ThresholdSumAggregator(threshold=3, seed=0),
        ).fit(parts)
        np.testing.assert_allclose(masked._reducer.z, robust._reducer.z, atol=1e-8)

    def test_training_survives_scheduled_dropout(self, cancer_split):
        # One mapper crashes (after sharing) on iterations 3 and 5 — the
        # consensus still forms from the surviving aggregated shares.
        train, test = cancer_split
        parts = horizontal_partition(train, 4, seed=0)
        schedule = {3: {"learner-1"}, 5: {"learner-2"}}
        model = PrivacyPreservingSVM(
            "horizontal",
            max_iter=10,
            seed=0,
            aggregator=ThresholdSumAggregator(threshold=3, seed=0, dropout_schedule=schedule),
        ).fit(parts)
        reference = PrivacyPreservingSVM("horizontal", max_iter=10, seed=0).fit(parts)
        np.testing.assert_allclose(model._reducer.z, reference._reducer.z, atol=1e-8)
        assert model.score(test.X, test.y) > 0.85
