"""Shared fixtures for the test suite.

Datasets are small and seeded; cluster fixtures give each test an
isolated network/HDFS pair.  Anything slow (full paper-scale runs)
lives in ``benchmarks/``, not here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.hdfs import SimulatedHdfs
from repro.cluster.network import Network
from repro.data.dataset import Dataset
from repro.data.scaling import StandardScaler
from repro.data.splits import train_test_split
from repro.data.synthetic import make_blobs, make_cancer_like, make_linear_task, make_xor_task


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def blobs() -> Dataset:
    """Well-separated 2-D blobs: 120 points."""
    return make_blobs(120, 2, delta=4.0, seed=7)


@pytest.fixture
def linear_task() -> Dataset:
    """Separable 5-feature linear task: 200 points."""
    return make_linear_task(200, 5, margin=0.5, seed=3)


@pytest.fixture
def xor_task() -> Dataset:
    """The linearly inseparable XOR task: 240 points."""
    return make_xor_task(240, noise=0.15, seed=5)


@pytest.fixture
def cancer_split() -> tuple[Dataset, Dataset]:
    """Standardized 50/50 split of a 240-sample cancer-like set."""
    dataset = make_cancer_like(240, seed=11)
    train, test = train_test_split(dataset, 0.5, seed=0)
    scaler = StandardScaler().fit(train.X)
    return scaler.transform_dataset(train), scaler.transform_dataset(test)


@pytest.fixture
def network() -> Network:
    return Network()


@pytest.fixture
def cluster(network: Network) -> tuple[Network, SimulatedHdfs]:
    """A 4-datanode cluster."""
    hdfs = SimulatedHdfs(network)
    for i in range(4):
        hdfs.add_datanode(f"node{i}")
    return network, hdfs
