"""Tests for the dropout-robust (Shamir-based) secure summation."""

import numpy as np
import pytest

from repro.cluster.network import Network
from repro.crypto.fixed_point import FixedPointCodec
from repro.crypto.secret_sharing import MERSENNE_PRIME_127
from repro.crypto.secure_sum import SecureSummationProtocol
from repro.crypto.threshold_sum import ThresholdSummationProtocol


def make_protocol(n=5, threshold=3, seed=0):
    network = Network()
    participants = [f"m{i}" for i in range(n)]
    protocol = ThresholdSummationProtocol(
        network, participants, "red", threshold=threshold, seed=seed
    )
    return network, participants, protocol


class TestCorrectness:
    def test_sum_without_dropouts(self, rng):
        _, participants, protocol = make_protocol()
        values = {p: rng.normal(size=6) for p in participants}
        result = protocol.sum_vectors(values)
        np.testing.assert_allclose(result, sum(values.values()), atol=1e-8)

    def test_sum_survives_dropouts(self, rng):
        _, participants, protocol = make_protocol(n=5, threshold=3)
        values = {p: rng.normal(size=4) for p in participants}
        result = protocol.sum_vectors(values, dropouts={"m0", "m4"})
        # Dropped mappers' inputs are STILL included (they shared first).
        np.testing.assert_allclose(result, sum(values.values()), atol=1e-8)

    def test_masking_protocol_cannot_survive_dropout(self, rng):
        # The contrast motivating this extension: simulate the paper's
        # protocol losing one masked share — the pads no longer cancel.
        network = Network()
        participants = [f"m{i}" for i in range(3)]
        protocol = SecureSummationProtocol(network, participants, "red", seed=0)
        values = {p: rng.normal(size=3) for p in participants}
        protocol.sum_vectors(values)
        shares = [m.payload for m in network.message_log if m.kind == "masked-share"]
        partial = [0] * 3
        for share in shares[:-1]:  # one mapper crashed before sending
            partial = protocol.codec.add(partial, share)
        decoded = protocol.codec.decode(partial)
        assert np.max(np.abs(decoded - sum(values.values()))) > 1e6

    def test_repeated_rounds(self, rng):
        _, participants, protocol = make_protocol()
        for round_idx in range(3):
            values = {p: rng.normal(size=3) for p in participants}
            result = protocol.sum_vectors(values)
            np.testing.assert_allclose(result, sum(values.values()), atol=1e-8)

    def test_default_threshold_majority(self):
        _, _, protocol = make_protocol(n=6, threshold=None)
        assert protocol.threshold == 4


class TestRobustnessLimits:
    def test_too_many_dropouts_rejected(self, rng):
        _, participants, protocol = make_protocol(n=5, threshold=4)
        values = {p: rng.normal(size=2) for p in participants}
        with pytest.raises(ValueError, match="threshold"):
            protocol.sum_vectors(values, dropouts={"m0", "m1"})

    def test_unknown_dropout_rejected(self, rng):
        _, participants, protocol = make_protocol()
        values = {p: rng.normal(size=2) for p in participants}
        with pytest.raises(ValueError, match="unknown dropout"):
            protocol.sum_vectors(values, dropouts={"ghost"})

    def test_invalid_threshold(self):
        network = Network()
        with pytest.raises(ValueError, match="threshold"):
            ThresholdSummationProtocol(network, ["a", "b", "c"], "r", threshold=5)

    def test_reducer_not_participant(self):
        with pytest.raises(ValueError, match="reducer"):
            ThresholdSummationProtocol(Network(), ["a", "r"], "r", threshold=2)

    def test_codec_field_mismatch(self):
        codec = FixedPointCodec()  # power-of-two modulus, not the prime
        with pytest.raises(ValueError, match="field"):
            ThresholdSummationProtocol(
                Network(), ["a", "b"], "r", threshold=2, codec=codec
            )


class TestPrivacyShape:
    def test_reducer_sees_only_aggregated_shares(self, rng):
        network, participants, protocol = make_protocol()
        values = {p: rng.normal(size=3) for p in participants}
        protocol.sum_vectors(values)
        to_reducer = [m for m in network.message_log if m.dst == "red"]
        assert all(m.kind == "threshold-agg-share" for m in to_reducer)

    def test_individual_shares_look_uniform(self, rng):
        network, participants, protocol = make_protocol()
        values = {p: np.full(3, 5.0) for p in participants}
        protocol.sum_vectors(values)
        # A single peer-to-peer share decodes to garbage.
        peer_shares = [m for m in network.message_log if m.kind == "threshold-share"]
        decoded = protocol.codec.decode([int(v) for v in peer_shares[0].payload])
        assert np.max(np.abs(decoded - 5.0)) > 1e6

    def test_below_threshold_shares_insufficient(self, rng):
        # threshold-1 aggregated shares interpolate the wrong value.
        network, participants, protocol = make_protocol(n=4, threshold=3)
        values = {p: rng.normal(size=1) for p in participants}
        expected = float(sum(values.values())[0])
        protocol.sum_vectors(values)
        agg = [m.payload for m in network.message_log if m.kind == "threshold-agg-share"]
        from repro.crypto.secret_sharing import shamir_reconstruct

        points = [(x, shares[0]) for x, shares in agg[:2]]  # only 2 of 3
        wrong = protocol.codec.decode([shamir_reconstruct(points, prime=protocol.prime)])
        assert abs(float(wrong[0]) - expected) > 1e-6


class TestCost:
    def test_share_traffic_quadratic_in_m(self, rng):
        costs = {}
        for n in (3, 6):
            network, participants, protocol = make_protocol(n=n, threshold=2)
            values = {p: rng.normal(size=2) for p in participants}
            protocol.sum_vectors(values)
            costs[n] = network.messages_sent("threshold-share")
        assert costs[3] == 3 * 2
        assert costs[6] == 6 * 5
