"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_labels,
    check_matrix,
    check_positive,
    check_probability,
    check_vector,
)


class TestCheckMatrix:
    def test_passes_through_2d(self):
        X = np.arange(6.0).reshape(2, 3)
        out = check_matrix(X)
        assert out.shape == (2, 3)
        np.testing.assert_array_equal(out, X)

    def test_promotes_1d_to_column(self):
        out = check_matrix([1.0, 2.0, 3.0])
        assert out.shape == (3, 1)

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_matrix(np.zeros((2, 2, 2)))

    def test_rejects_empty_by_default(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_matrix(np.zeros((0, 3)))

    def test_allow_empty_flag(self):
        out = check_matrix(np.zeros((0, 3)), allow_empty=True)
        assert out.shape == (0, 3)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN or infinite"):
            check_matrix([[1.0, np.nan]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="NaN or infinite"):
            check_matrix([[np.inf, 1.0]])

    def test_coerces_int_dtype_to_float(self):
        out = check_matrix(np.array([[1, 2]], dtype=int))
        assert out.dtype == float

    def test_name_appears_in_error(self):
        with pytest.raises(ValueError, match="mymatrix"):
            check_matrix(np.zeros((2, 2, 2)), "mymatrix")


class TestCheckVector:
    def test_flattens(self):
        out = check_vector([[1.0], [2.0]])
        assert out.shape == (2,)

    def test_length_enforced(self):
        with pytest.raises(ValueError, match="length 3"):
            check_vector([1.0, 2.0], length=3)

    def test_length_ok(self):
        out = check_vector([1.0, 2.0], length=2)
        assert out.tolist() == [1.0, 2.0]

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_vector([np.nan])


class TestCheckLabels:
    def test_accepts_plus_minus_one(self):
        out = check_labels([1, -1, 1])
        assert set(out) == {-1.0, 1.0}

    def test_accepts_single_class(self):
        out = check_labels([1, 1])
        assert out.tolist() == [1.0, 1.0]

    def test_rejects_zero_one_labels(self):
        with pytest.raises(ValueError, match="-1/\\+1"):
            check_labels([0, 1])

    def test_rejects_arbitrary_values(self):
        with pytest.raises(ValueError):
            check_labels([2.0, -1.0])

    def test_length_enforced(self):
        with pytest.raises(ValueError):
            check_labels([1, -1], length=3)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5) == 2.5

    def test_rejects_zero_strict(self):
        with pytest.raises(ValueError, match="> 0"):
            check_positive(0.0)

    def test_accepts_zero_nonstrict(self):
        assert check_positive(0.0, strict=False) == 0.0

    def test_rejects_negative_nonstrict(self):
        with pytest.raises(ValueError, match=">= 0"):
            check_positive(-1.0, strict=False)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive(True)

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_positive("3")

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            check_positive(float("nan"))

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            check_positive(float("inf"))


class TestCheckProbability:
    def test_bounds_inclusive(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_probability(1.01)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_probability(-0.01)

    def test_rejects_non_numeric(self):
        with pytest.raises(TypeError):
            check_probability(None)
