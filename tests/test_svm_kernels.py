"""Unit tests for repro.svm.kernels."""

import numpy as np
import pytest

from repro.svm.kernels import (
    LinearKernel,
    PolynomialKernel,
    RBFKernel,
    SigmoidKernel,
    kernel_by_name,
)


@pytest.fixture
def points(rng):
    return rng.normal(size=(12, 4)), rng.normal(size=(7, 4))


class TestLinearKernel:
    def test_matches_inner_products(self, points):
        A, B = points
        np.testing.assert_allclose(LinearKernel()(A, B), A @ B.T)

    def test_gram_symmetric(self, points):
        A, _ = points
        K = LinearKernel().gram(A)
        np.testing.assert_array_equal(K, K.T)

    def test_feature_dim_mismatch(self, rng):
        with pytest.raises(ValueError, match="feature dimension"):
            LinearKernel()(rng.normal(size=(3, 2)), rng.normal(size=(3, 5)))

    def test_equality_and_hash(self):
        assert LinearKernel() == LinearKernel()
        assert hash(LinearKernel()) == hash(LinearKernel())


class TestPolynomialKernel:
    def test_degree_one_is_affine_linear(self, points):
        A, B = points
        k = PolynomialKernel(degree=1, scale=2.0, offset=3.0)
        np.testing.assert_allclose(k(A, B), 2.0 * (A @ B.T) + 3.0)

    def test_matches_explicit_feature_map_degree2(self, rng):
        # (x.z)^2 equals the inner product of degree-2 monomial features.
        A = rng.normal(size=(5, 3))
        B = rng.normal(size=(4, 3))
        k = PolynomialKernel(degree=2, scale=1.0, offset=0.0)

        def feats(X):
            return np.stack([np.outer(x, x).ravel() for x in X])

        np.testing.assert_allclose(k(A, B), feats(A) @ feats(B).T, rtol=1e-10)

    def test_rejects_zero_degree(self):
        with pytest.raises(ValueError):
            PolynomialKernel(degree=0)

    def test_gram_psd(self, rng):
        X = rng.normal(size=(20, 3))
        eigs = np.linalg.eigvalsh(PolynomialKernel(degree=3).gram(X))
        assert eigs.min() > -1e-8


class TestRBFKernel:
    def test_self_similarity_is_one(self, rng):
        X = rng.normal(size=(6, 3))
        K = RBFKernel(gamma=0.7).gram(X)
        np.testing.assert_allclose(np.diag(K), 1.0)

    def test_matches_pairwise_formula(self, rng):
        A = rng.normal(size=(5, 2))
        B = rng.normal(size=(4, 2))
        gamma = 0.3
        K = RBFKernel(gamma=gamma)(A, B)
        for i in range(5):
            for j in range(4):
                expected = np.exp(-gamma * np.sum((A[i] - B[j]) ** 2))
                assert K[i, j] == pytest.approx(expected, rel=1e-12)

    def test_values_in_unit_interval(self, rng):
        K = RBFKernel(gamma=1.0)(rng.normal(size=(8, 3)), rng.normal(size=(8, 3)))
        assert np.all(K > 0.0) and np.all(K <= 1.0)

    def test_gram_psd(self, rng):
        X = rng.normal(size=(25, 4))
        eigs = np.linalg.eigvalsh(RBFKernel(gamma=0.5).gram(X))
        assert eigs.min() > -1e-10

    def test_rejects_nonpositive_gamma(self):
        with pytest.raises(ValueError):
            RBFKernel(gamma=0.0)

    def test_diagonal_shortcut(self, rng):
        X = rng.normal(size=(9, 3))
        np.testing.assert_allclose(RBFKernel(0.4).diagonal(X), 1.0)


class TestSigmoidKernel:
    def test_matches_formula(self, rng):
        A = rng.normal(size=(3, 2))
        B = rng.normal(size=(3, 2))
        K = SigmoidKernel(scale=0.5, offset=-0.1)(A, B)
        np.testing.assert_allclose(K, np.tanh(0.5 * (A @ B.T) - 0.1))

    def test_bounded(self, rng):
        K = SigmoidKernel()(rng.normal(size=(10, 3)) * 10, rng.normal(size=(10, 3)) * 10)
        assert np.all(np.abs(K) <= 1.0)


class TestKernelByName:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("linear", LinearKernel),
            ("poly", PolynomialKernel),
            ("polynomial", PolynomialKernel),
            ("rbf", RBFKernel),
            ("sigmoid", SigmoidKernel),
        ],
    )
    def test_dispatch(self, name, cls):
        assert isinstance(kernel_by_name(name), cls)

    def test_params_forwarded(self):
        k = kernel_by_name("rbf", gamma=2.5)
        assert k.gamma == 2.5

    def test_case_insensitive(self):
        assert isinstance(kernel_by_name("  RBF "), RBFKernel)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            kernel_by_name("laplacian")
