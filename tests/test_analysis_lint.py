"""Tests for the static-analysis suite (``repro.analysis`` / ``repro lint``).

The fixtures under ``tests/fixtures/lint/`` are known-leaky and
known-clean files; the tests pin the *exact* rule ids and line numbers
the checkers must report, so any change to checker behavior is visible
here.  The crypto fixtures live under ``fixtures/lint/crypto/`` because
crypto scope is keyed on a ``crypto`` path segment.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Allowlist,
    AllowlistError,
    Severity,
    all_rules,
    run_lint,
)
from repro.analysis.source import parse_pragmas
from repro.cli import main as cli_main

ROOT = Path(__file__).resolve().parent.parent
FIXTURES = ROOT / "tests" / "fixtures" / "lint"


def lint_fixture(name, **kwargs):
    kwargs.setdefault("use_default_allowlist", False)
    return run_lint(ROOT, [FIXTURES / name], **kwargs)


def rule_lines(report):
    return [(f.rule, f.line) for f in report.findings]


# -- privacy taint-flow ---------------------------------------------------


def test_leaky_privacy_fixture_exact_findings():
    report = lint_fixture("leaky_privacy.py")
    assert rule_lines(report) == [
        ("privacy.raw-data-to-network", 6),   # data.X straight into send
        ("privacy.raw-data-to-network", 13),  # alias + container mutation chain
        ("privacy.raw-data-in-storage", 18),  # put without private=True
        ("privacy.raw-data-serialized", 22),  # pickle.dumps(block.payload)
    ]
    assert all(f.severity is Severity.ERROR for f in report.findings)
    assert report.exit_code() == 1


def test_clean_privacy_fixture_has_no_findings():
    report = lint_fixture("clean_privacy.py")
    assert report.findings == []
    assert report.exit_code(strict=True) == 0


# -- crypto misuse --------------------------------------------------------


def test_leaky_crypto_fixture_exact_findings():
    report = lint_fixture("crypto/leaky_crypto.py")
    assert rule_lines(report) == [
        ("crypto.stdlib-random", 2),
        ("crypto.direct-rng-construction", 8),
        ("crypto.float-on-ciphertext", 13),
        ("crypto.mask-reuse", 20),
    ]


def test_clean_crypto_fixture_has_no_findings():
    report = lint_fixture("crypto/clean_crypto.py")
    assert report.findings == []


def test_crypto_rules_only_apply_in_crypto_scope(tmp_path):
    # The same code outside a crypto path: stdlib random is still flagged,
    # but by the determinism checker, and a *seeded* direct construction
    # is allowed (it is only a provenance concern inside crypto code).
    src = tmp_path / "notcrypto.py"
    src.write_text("import random\nimport numpy as np\nr = np.random.default_rng(7)\n")
    report = run_lint(tmp_path, [src], use_default_allowlist=False)
    assert [f.rule for f in report.findings] == ["determinism.stdlib-random"]


# -- determinism ----------------------------------------------------------


def test_nondeterminism_fixture_exact_findings():
    report = lint_fixture("nondeterminism.py")
    assert rule_lines(report) == [
        ("determinism.wall-clock", 8),
        ("determinism.unseeded-rng", 12),
        ("determinism.unseeded-rng", 16),
        ("determinism.set-iteration", 20),
        ("determinism.unsorted-walk", 24),
        ("determinism.salted-hash", 28),
    ]
    warnings = {f.rule for f in report.findings if f.severity is Severity.WARNING}
    assert warnings == {"determinism.set-iteration", "determinism.unsorted-walk"}


def test_warnings_fail_only_under_strict(tmp_path):
    src = tmp_path / "warn.py"
    src.write_text("for x in {1, 2, 3}:\n    pass\n")
    report = run_lint(tmp_path, [src], use_default_allowlist=False)
    assert [f.rule for f in report.findings] == ["determinism.set-iteration"]
    assert report.exit_code() == 0
    assert report.exit_code(strict=True) == 1


def test_hash_inside_dunder_hash_is_allowed(tmp_path):
    src = tmp_path / "hashable.py"
    src.write_text(
        "class K:\n"
        "    def __hash__(self):\n"
        "        return hash(('K', 1))\n"
    )
    report = run_lint(tmp_path, [src], use_default_allowlist=False)
    assert report.findings == []


# -- pragmas --------------------------------------------------------------


def test_pragma_fixture_suppresses_everything():
    report = lint_fixture("pragma_clean.py")
    assert report.findings == []
    assert [(f.rule, f.line, f.suppressed_by) for f in report.suppressed] == [
        ("privacy.raw-data-to-network", 5, "pragma"),
        ("determinism.salted-hash", 10, "pragma"),
        ("privacy.raw-data-to-network", 14, "pragma"),
    ]
    assert report.exit_code(strict=True) == 0


def test_parse_pragmas_comment_only_covers_next_line():
    pragmas = parse_pragmas(
        [
            "x = risky()  # repro-lint: disable=a.b, c.d",
            "# repro-lint: disable=e.f -- reason",
            "y = also_risky()",
        ]
    )
    assert pragmas[1] == frozenset({"a.b", "c.d"})
    assert pragmas[2] == frozenset({"e.f"})
    assert pragmas[3] == frozenset({"e.f"})


# -- allowlist ------------------------------------------------------------


def _write_allowlist(tmp_path, body):
    path = tmp_path / ".repro-lint.toml"
    path.write_text(body)
    return path


def test_allowlist_suppresses_and_reports_unused(tmp_path):
    src_dir = tmp_path / "src"
    src_dir.mkdir()
    (src_dir / "leak.py").write_text(
        "def f(network, node, data):\n"
        "    network.send(node, 'r', data.X)\n"
    )
    _write_allowlist(
        tmp_path,
        '[[allow]]\n'
        'rule = "privacy.raw-data-to-network"\n'
        'path = "src/leak.py"\n'
        'reason = "test fixture"\n'
        '\n'
        '[[allow]]\n'
        'rule = "determinism.wall-clock"\n'
        'path = "src/never.py"\n'
        'reason = "stale entry"\n',
    )
    report = run_lint(tmp_path)
    assert [f.suppressed_by for f in report.suppressed] == ["allowlist"]
    assert [f.rule for f in report.findings] == ["lint.unused-allowlist-entry"]
    assert report.exit_code() == 0          # unused entry is a warning
    assert report.exit_code(strict=True) == 1


def test_allowlist_contains_pins_the_entry(tmp_path):
    src_dir = tmp_path / "src"
    src_dir.mkdir()
    (src_dir / "leak.py").write_text(
        "def f(network, node, data):\n"
        "    network.send(node, 'r', data.X, kind='other')\n"
    )
    _write_allowlist(
        tmp_path,
        '[[allow]]\n'
        'rule = "privacy.raw-data-to-network"\n'
        'path = "src/leak.py"\n'
        'contains = "kind=\'shuffle\'"\n'
        'reason = "only the shuffle send is audited"\n',
    )
    report = run_lint(tmp_path)
    # The entry does not match this line, so the finding stays active
    # and the entry is reported unused.
    assert sorted(f.rule for f in report.findings) == [
        "lint.unused-allowlist-entry",
        "privacy.raw-data-to-network",
    ]


def test_allowlist_requires_reason(tmp_path):
    path = _write_allowlist(
        tmp_path,
        '[[allow]]\nrule = "a.b"\npath = "src/x.py"\n',
    )
    with pytest.raises(AllowlistError):
        Allowlist.load(path)


def test_allowlist_rejects_unknown_keys(tmp_path):
    path = _write_allowlist(
        tmp_path,
        '[[allow]]\nrule = "a.b"\npath = "x.py"\nreason = "r"\ntypo = 1\n',
    )
    with pytest.raises(AllowlistError):
        Allowlist.load(path)


# -- engine behavior ------------------------------------------------------


def test_syntax_error_becomes_finding(tmp_path):
    src = tmp_path / "broken.py"
    src.write_text("def broken(:\n")
    report = run_lint(tmp_path, [src], use_default_allowlist=False)
    assert rule_lines(report) == [("lint.syntax-error", 1)]


def test_findings_sorted_by_path_line_rule():
    report = run_lint(ROOT, [FIXTURES], use_default_allowlist=False)
    keys = [f.sort_key() for f in report.findings]
    assert keys == sorted(keys)
    assert report.files_checked == 10


def test_all_rules_registry_is_complete():
    ids = [rule.id for rule in all_rules()]
    assert ids == sorted(ids)
    for expected in [
        "crypto.mask-reuse",
        "determinism.salted-hash",
        "docs.undocumented-counter",
        "lint.syntax-error",
        "privacy.raw-data-to-network",
    ]:
        assert expected in ids


# -- the repository itself ------------------------------------------------


def test_src_tree_is_lint_clean_under_strict():
    report = run_lint(ROOT)
    failing = [f for f in report.findings]
    assert report.exit_code(strict=True) == 0, "\n" + report.format_text()
    assert failing == []
    # The audited exceptions are visible, not silently dropped.
    assert len(report.suppressed) >= 3


def test_deliberate_leak_in_mapper_is_caught(tmp_path):
    # The acceptance scenario from the issue: adding a raw-data send to a
    # mapper must fail the lint with the privacy rule at the right line.
    src = tmp_path / "mapper.py"
    src.write_text(
        "def run_map(self, network, node, data):\n"
        "    stats = data.shape\n"
        "    network.send(node, 'reducer', data.X)\n"
    )
    report = run_lint(tmp_path, [src], use_default_allowlist=False)
    assert rule_lines(report) == [("privacy.raw-data-to-network", 3)]
    assert report.exit_code() == 1


# -- CLI ------------------------------------------------------------------


def test_cli_lint_text_and_exit_code(capsys):
    code = cli_main(
        ["lint", "--root", str(ROOT), str(FIXTURES / "leaky_privacy.py"),
         "--no-allowlist"]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "privacy.raw-data-to-network" in out
    assert "leaky_privacy.py:6" in out


def test_cli_lint_json_format(capsys):
    code = cli_main(
        ["lint", "--root", str(ROOT), str(FIXTURES / "nondeterminism.py"),
         "--no-allowlist", "--format", "json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["errors"] == 4
    assert payload["warnings"] == 2
    rules = [f["rule"] for f in payload["findings"]]
    assert rules[0] == "determinism.wall-clock"


def test_cli_lint_github_format(capsys):
    code = cli_main(
        ["lint", "--root", str(ROOT), str(FIXTURES / "leaky_privacy.py"),
         "--no-allowlist", "--format", "github"]
    )
    out = capsys.readouterr().out
    assert code == 1
    first = out.splitlines()[0]
    assert first.startswith("::error file=")
    assert "line=6" in first and "title=privacy.raw-data-to-network" in first


def test_cli_lint_clean_run_exits_zero(capsys):
    code = cli_main(
        ["lint", "--root", str(ROOT), str(FIXTURES / "clean_privacy.py"),
         "--no-allowlist", "--strict"]
    )
    assert code == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_cli_lint_list_rules(capsys):
    assert cli_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "privacy.raw-data-to-network" in out
    assert "determinism.set-iteration" in out


def test_cli_lint_bad_root_is_usage_error(tmp_path, capsys):
    assert cli_main(["lint", "--root", str(tmp_path / "missing")]) == 2
