"""Tests for the interprocedural engine, protocol checker, and CI infra.

Covers the whole-program half of the static-analysis suite added on top
of the per-module checkers:

* call-graph resolution (``repro.analysis.callgraph``);
* interprocedural taint summaries and source→sink traces
  (``repro.analysis.interproc``);
* protocol-invariant verification (``checkers/protocol.py``) against
  both broken fixtures and the real crypto implementations;
* the CI-grade outputs — SARIF, baselines (``--baseline``), and the
  whole-run result cache — at the API and CLI levels.
"""

import ast
import json
import os
import time
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    BaselineError,
    Finding,
    LintCache,
    Severity,
    run_lint,
)
from repro.analysis.baseline import fingerprint
from repro.analysis.callgraph import MAX_DISPATCH_CANDIDATES, CallGraph
from repro.analysis.base import Project
from repro.analysis.checkers.privacy import PrivacyTaintChecker
from repro.analysis.checkers.protocol import ProtocolInvariantChecker
from repro.analysis.interproc import InterproceduralTaintChecker
from repro.analysis.source import ModuleSource
from repro.cli import main as cli_main

ROOT = Path(__file__).resolve().parent.parent
FIXTURES = ROOT / "tests" / "fixtures" / "lint"
LEAK_FIXTURE = "tests/fixtures/lint/interproc_leak.py"


def lint_fixture(name, **kwargs):
    kwargs.setdefault("use_default_allowlist", False)
    return run_lint(ROOT, [FIXTURES / name], **kwargs)


def project_for(paths):
    project = Project(root=ROOT)
    for path in paths:
        project.modules.append(ModuleSource.load(path, ROOT))
    return project


# -- call graph -----------------------------------------------------------


def build_graph(source, tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(source)
    project = Project(root=tmp_path)
    project.modules.append(ModuleSource.load(path, tmp_path))
    return CallGraph.build(project), project


def first_call(project, name):
    for module in project.modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                func = node.func
                attr = getattr(func, "attr", getattr(func, "id", None))
                if attr == name:
                    return node
    raise AssertionError(f"no call to {name} in fixture")


def test_callgraph_resolves_module_functions_by_name(tmp_path):
    graph, project = build_graph(
        "def helper(x):\n    return x\n\ndef caller(x):\n    return helper(x)\n",
        tmp_path,
    )
    call = first_call(project, "helper")
    (info,) = graph.resolve(call)
    assert info.display == "helper"
    assert info.qualname == "mod.py::helper"


def test_callgraph_dispatches_self_attr_on_known_class(tmp_path):
    graph, project = build_graph(
        "class Logic:\n"
        "    def step(self):\n"
        "        return 1\n"
        "\n"
        "class Other:\n"
        "    def step(self):\n"
        "        return 2\n"
        "\n"
        "class Driver:\n"
        "    def __init__(self):\n"
        "        self.logic = Logic()\n"
        "    def run(self):\n"
        "        return self.logic.step()\n",
        tmp_path,
    )
    call = first_call(project, "step")
    caller = next(f for f in graph.functions if f.display == "Driver.run")
    candidates = graph.resolve(call, caller)
    assert [c.display for c in candidates] == ["Logic.step"]


def test_callgraph_caps_unbounded_fanout(tmp_path):
    classes = "\n".join(
        f"class C{i}:\n    def work(self):\n        return {i}\n"
        for i in range(MAX_DISPATCH_CANDIDATES + 1)
    )
    graph, project = build_graph(
        classes + "\ndef go(obj):\n    return obj.work()\n", tmp_path
    )
    call = first_call(project, "work")
    assert graph.resolve(call) == []


def test_callgraph_never_resolves_sink_names(tmp_path):
    graph, project = build_graph(
        "def send(x):\n    return x\n\ndef go(network, x):\n"
        "    network.send(x)\n",
        tmp_path,
    )
    call = first_call(project, "send")
    assert graph.resolve(call) == []


# -- interprocedural taint ------------------------------------------------


def test_intraprocedural_checker_misses_the_multi_hop_leak():
    report = lint_fixture("interproc_leak.py", checkers=[PrivacyTaintChecker()])
    assert report.findings == []


def test_interproc_reports_two_hop_leak_with_full_call_path():
    report = lint_fixture("interproc_leak.py")
    leaks = [f for f in report.findings if f.rule == "privacy.interproc-leak"]
    assert [(f.rule, f.line) for f in leaks] == [
        ("privacy.interproc-leak", 13),
        ("privacy.interproc-leak", 21),
    ]
    assert all(f.severity is Severity.ERROR for f in leaks)

    return_leak = leaks[0]
    assert return_leak.trace == (
        f"{LEAK_FIXTURE}:13 publish() passes a tainted value to network.send()",
        f"{LEAK_FIXTURE}:13 call to collect()",
        f"{LEAK_FIXTURE}:9 collect() returns fetch_rows()",
        f"{LEAK_FIXTURE}:5 fetch_rows() returns raw dataset.X",
    )

    forward_leak = leaks[1]
    assert forward_leak.trace == (
        f"{LEAK_FIXTURE}:21 relay() passes a tainted argument to ship()",
        f"{LEAK_FIXTURE}:17 ship() forwards parameter 'payload' into network.send()",
        f"{LEAK_FIXTURE}:21 raw source dataset.y",
    )


def test_interproc_flags_the_raw_returning_helper():
    report = lint_fixture("interproc_leak.py")
    raw = [f for f in report.findings if f.rule == "privacy.return-raw"]
    assert [(f.rule, f.line) for f in raw] == [("privacy.return-raw", 5)]
    assert "fetch_rows() returns raw training data" in raw[0].message
    assert f"{LEAK_FIXTURE}:13" in raw[0].message


def test_interproc_clean_fixture_is_silent():
    report = lint_fixture("interproc_clean.py")
    assert report.findings == []


def test_interproc_does_not_duplicate_intraprocedural_findings():
    # Direct leaks are the intraprocedural checker's job; the engine
    # reports only flows that need call-graph context.
    report = lint_fixture("leaky_privacy.py")
    interproc_rules = {"privacy.interproc-leak", "privacy.return-raw"}
    direct_lines = {
        f.line for f in report.findings if f.rule.startswith("privacy.raw-data")
    }
    overlap = [
        f
        for f in report.findings
        if f.rule in interproc_rules and f.line in direct_lines
    ]
    assert overlap == []


def test_interproc_trace_serializes_through_finding_roundtrip():
    report = lint_fixture("interproc_leak.py")
    leak = next(f for f in report.findings if f.trace)
    assert Finding.from_dict(leak.as_dict()) == leak


# -- protocol invariants --------------------------------------------------


def test_protocol_bad_fixture_flags_every_invariant():
    report = lint_fixture(
        "crypto/protocol_bad.py", checkers=[ProtocolInvariantChecker()]
    )
    assert [(f.rule, f.line) for f in report.findings] == [
        ("protocol.missing-participant-guard", 9),
        ("protocol.unbalanced-mask", 25),
        ("protocol.pair-seed-provenance", 40),
    ]
    unbalanced = next(
        f for f in report.findings if f.rule == "protocol.unbalanced-mask"
    )
    assert "+ 2 time(s)" in unbalanced.message
    assert "- 0 time(s)" in unbalanced.message


def test_protocol_ok_fixture_is_clean():
    report = lint_fixture(
        "crypto/protocol_ok.py", checkers=[ProtocolInvariantChecker()]
    )
    assert report.findings == []


def test_real_summation_protocols_pass_protocol_checker():
    report = run_lint(
        ROOT,
        [ROOT / "src" / "repro" / "crypto"],
        checkers=[ProtocolInvariantChecker()],
        use_default_allowlist=False,
    )
    assert report.findings == [], report.format_text()


def test_protocol_rules_only_apply_in_crypto_scope(tmp_path):
    src = tmp_path / "not_protocol.py"
    src.write_text(
        (FIXTURES / "crypto" / "protocol_bad.py").read_text()
    )
    report = run_lint(
        tmp_path,
        [src],
        checkers=[ProtocolInvariantChecker()],
        use_default_allowlist=False,
    )
    assert report.findings == []


# -- baselines ------------------------------------------------------------


def _leaky_tree(tmp_path):
    src_dir = tmp_path / "src"
    src_dir.mkdir()
    leak = src_dir / "leak.py"
    leak.write_text(
        "def publish(network, node, data):\n"
        "    network.send(node, 'reducer', data.X)\n"
    )
    return leak


def test_baseline_suppresses_known_findings(tmp_path):
    _leaky_tree(tmp_path)
    before = run_lint(tmp_path, use_default_allowlist=False)
    assert len(before.findings) == 1
    baseline = Baseline.from_findings(before.findings)
    after = run_lint(tmp_path, use_default_allowlist=False, baseline=baseline)
    assert after.findings == []
    assert [f.suppressed_by for f in after.suppressed] == ["baseline"]
    assert after.exit_code(strict=True) == 0


def test_baseline_survives_line_shifts_but_catches_new_findings(tmp_path):
    leak = _leaky_tree(tmp_path)
    baseline = Baseline.from_findings(
        run_lint(tmp_path, use_default_allowlist=False).findings
    )
    # Edit the file above the finding: lines shift, the leak stays known.
    leak.write_text("# a new leading comment\n# and another\n" + leak.read_text())
    shifted = run_lint(tmp_path, use_default_allowlist=False, baseline=baseline)
    assert shifted.findings == []
    # A genuinely new leak is not absorbed by the baseline.
    leak.write_text(
        leak.read_text() + "    network.send(node, 'reducer', data.y)\n"
    )
    grown = run_lint(tmp_path, use_default_allowlist=False, baseline=baseline)
    assert [f.rule for f in grown.findings] == ["privacy.raw-data-to-network"]
    assert "data.y" in grown.findings[0].source
    assert grown.exit_code() == 1


def test_baseline_counts_duplicate_lines(tmp_path):
    src_dir = tmp_path / "src"
    src_dir.mkdir()
    leak = src_dir / "leak.py"
    line = "    network.send(node, 'reducer', data.X)\n"
    leak.write_text("def publish(network, node, data):\n" + line)
    baseline = Baseline.from_findings(
        run_lint(tmp_path, use_default_allowlist=False).findings
    )
    # A second copy of the same offending line exceeds the recorded count.
    leak.write_text(leak.read_text() + line)
    report = run_lint(tmp_path, use_default_allowlist=False, baseline=baseline)
    assert len(report.findings) == 1
    assert len([f for f in report.suppressed if f.suppressed_by == "baseline"]) == 1


def test_baseline_file_roundtrip_and_validation(tmp_path):
    _leaky_tree(tmp_path)
    report = run_lint(tmp_path, use_default_allowlist=False)
    path = tmp_path / "baseline.json"
    Baseline.from_findings(report.findings).write(path)
    loaded = Baseline.load(path)
    assert loaded.counts == {fingerprint(report.findings[0]): 1}
    (tmp_path / "bad.json").write_text('{"version": 99}')
    with pytest.raises(BaselineError):
        Baseline.load(tmp_path / "bad.json")
    (tmp_path / "junk.json").write_text("not json")
    with pytest.raises(BaselineError):
        Baseline.load(tmp_path / "junk.json")


# -- result cache ---------------------------------------------------------


def test_cache_hit_returns_identical_report_and_is_faster(tmp_path):
    cache = LintCache(tmp_path / "cache.json")
    t0 = time.monotonic()
    cold = run_lint(ROOT, [FIXTURES], use_default_allowlist=False, cache=cache)
    cold_elapsed = time.monotonic() - t0
    assert cold.cache_status == "miss"
    assert (cache.hits, cache.misses) == (0, 1)

    t0 = time.monotonic()
    warm = run_lint(ROOT, [FIXTURES], use_default_allowlist=False, cache=cache)
    warm_elapsed = time.monotonic() - t0
    assert warm.cache_status == "hit"
    assert (cache.hits, cache.misses) == (1, 1)
    assert warm_elapsed < cold_elapsed
    assert warm.findings == cold.findings
    assert warm.suppressed == cold.suppressed
    assert warm.files_checked == cold.files_checked
    assert warm.rules_run == cold.rules_run


def test_cache_invalidates_when_a_file_changes(tmp_path):
    _leaky_tree(tmp_path)
    cache = LintCache(tmp_path / "cache.json")
    run_lint(tmp_path, use_default_allowlist=False, cache=cache)
    # Same tree again: hit.
    run_lint(tmp_path, use_default_allowlist=False, cache=cache)
    assert (cache.hits, cache.misses) == (1, 1)
    # Touch the file with a different mtime: miss, then re-cached.
    leak = tmp_path / "src" / "leak.py"
    stat = leak.stat()
    os.utime(leak, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))
    report = run_lint(tmp_path, use_default_allowlist=False, cache=cache)
    assert report.cache_status == "miss"
    assert (cache.hits, cache.misses) == (1, 2)


def test_cache_invalidates_when_the_rule_set_changes(tmp_path):
    _leaky_tree(tmp_path)
    cache = LintCache(tmp_path / "cache.json")
    run_lint(tmp_path, use_default_allowlist=False, cache=cache)
    report = run_lint(
        tmp_path,
        use_default_allowlist=False,
        cache=cache,
        checkers=[PrivacyTaintChecker()],
    )
    assert report.cache_status == "miss"
    assert cache.hits == 0


def test_cache_survives_a_corrupt_cache_file(tmp_path):
    _leaky_tree(tmp_path)
    cache_path = tmp_path / "cache.json"
    cache_path.write_text("{corrupt")
    cache = LintCache(cache_path)
    report = run_lint(tmp_path, use_default_allowlist=False, cache=cache)
    assert report.cache_status == "miss"
    assert len(report.findings) == 1


# -- SARIF ----------------------------------------------------------------


def test_sarif_document_shape_is_valid():
    report = run_lint(ROOT, [FIXTURES], use_default_allowlist=False)
    document = json.loads(report.format_sarif())
    assert document["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in document["$schema"]
    (run,) = document["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert rule_ids == sorted(rule_ids)
    assert len(rule_ids) == report.rules_run
    for rule in driver["rules"]:
        assert rule["shortDescription"]["text"]
        assert rule["defaultConfiguration"]["level"] in ("error", "warning")
    known = set(rule_ids)
    for result in run["results"]:
        assert result["ruleId"] in known
        assert result["level"] in ("error", "warning")
        assert result["message"]["text"]
        (location,) = result["locations"]
        physical = location["physicalLocation"]
        assert physical["artifactLocation"]["uri"]
        assert physical["region"]["startLine"] >= 1
        assert driver["rules"][result["ruleIndex"]]["id"] == result["ruleId"]


def test_sarif_traces_become_code_flows():
    report = lint_fixture("interproc_leak.py")
    document = json.loads(report.format_sarif())
    flows = [r for r in document["runs"][0]["results"] if "codeFlows" in r]
    assert [r["ruleId"] for r in flows] == [
        "privacy.interproc-leak",
        "privacy.interproc-leak",
    ]
    locations = flows[0]["codeFlows"][0]["threadFlows"][0]["locations"]
    assert len(locations) == 4
    sink = locations[0]["location"]
    assert sink["physicalLocation"]["artifactLocation"]["uri"] == LEAK_FIXTURE
    assert sink["physicalLocation"]["region"]["startLine"] == 13
    origin = locations[-1]["location"]
    assert origin["message"]["text"] == "fetch_rows() returns raw dataset.X"


def test_sarif_marks_suppressed_findings():
    report = lint_fixture("pragma_clean.py")
    document = json.loads(report.format_sarif())
    results = document["runs"][0]["results"]
    suppressions = [r["suppressions"] for r in results if "suppressions" in r]
    assert len(suppressions) == len(report.suppressed) == 3
    assert all(s == [{"kind": "inSource", "justification": "pragma"}]
               for s in suppressions)


# -- CLI ------------------------------------------------------------------


def test_cli_lint_sarif_format(capsys):
    code = cli_main(
        ["lint", "--root", str(ROOT), str(FIXTURES / "interproc_leak.py"),
         "--no-allowlist", "--format", "sarif"]
    )
    document = json.loads(capsys.readouterr().out)
    assert code == 1
    results = document["runs"][0]["results"]
    assert any(r["ruleId"] == "privacy.interproc-leak" for r in results)


def test_cli_lint_baseline_workflow_with_an_edited_file(tmp_path, capsys):
    leak = _leaky_tree(tmp_path)
    baseline_path = tmp_path / "lint-baseline.json"
    code = cli_main(
        ["lint", "--root", str(tmp_path), "--no-allowlist",
         "--write-baseline", str(baseline_path)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "1 finding(s)" in out
    assert baseline_path.is_file()

    # Edit the file (shift lines); the baselined finding stays quiet.
    leak.write_text("# refactor note\n" + leak.read_text())
    code = cli_main(
        ["lint", "--root", str(tmp_path), "--no-allowlist", "--strict",
         "--baseline", str(baseline_path)]
    )
    capsys.readouterr()
    assert code == 0

    # A new leak in the edited file still fails the run.
    leak.write_text(
        leak.read_text() + "    network.send(node, 'reducer', data.y)\n"
    )
    code = cli_main(
        ["lint", "--root", str(tmp_path), "--no-allowlist",
         "--baseline", str(baseline_path)]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "data.y" in out and "1 error(s)" in out


def test_cli_lint_stale_allowlist_strict_vs_not(tmp_path, capsys):
    src_dir = tmp_path / "src"
    src_dir.mkdir()
    (src_dir / "ok.py").write_text("def f():\n    return 1\n")
    (tmp_path / ".repro-lint.toml").write_text(
        '[[allow]]\n'
        'rule = "privacy.raw-data-to-network"\n'
        'path = "src/gone.py"\n'
        'reason = "code was deleted"\n'
    )
    args = ["lint", "--root", str(tmp_path)]
    assert cli_main(args) == 0
    out = capsys.readouterr().out
    assert "lint.unused-allowlist-entry" in out
    assert cli_main(args + ["--strict"]) == 1
    capsys.readouterr()


def test_cli_lint_cache_roundtrip(tmp_path, capsys):
    _leaky_tree(tmp_path)
    cache_path = tmp_path / "lint-cache.json"
    args = ["lint", "--root", str(tmp_path), "--no-allowlist",
            "--cache-path", str(cache_path)]
    assert cli_main(args) == 1
    first = capsys.readouterr().out
    assert "[cache miss]" in first
    assert cache_path.is_file()
    assert cli_main(args) == 1
    second = capsys.readouterr().out
    assert "[cache hit]" in second
    assert first.replace("miss", "hit") == second


def test_cli_lint_bad_baseline_is_usage_error(tmp_path, capsys):
    (tmp_path / "src").mkdir()
    bad = tmp_path / "baseline.json"
    bad.write_text("nope")
    code = cli_main(
        ["lint", "--root", str(tmp_path), "--baseline", str(bad)]
    )
    assert code == 2
    assert "baseline" in capsys.readouterr().err
