"""Tracing/profiling layer: recorder semantics, exporters, reconciliation.

Covers the observability subsystem end to end: span nesting and
iteration tagging in :class:`~repro.cluster.tracing.TraceRecorder`,
Chrome-trace/JSONL export validity, :class:`~repro.cluster.profiling.Profiler`
/ registry consistency, the counter-name validation added to
:class:`~repro.cluster.metrics.MetricRegistry`, and the system-level
invariants: one ``admm.local_step`` span per iteration per node, the
per-iteration cost table reconciling exactly with the counter totals,
and ``raw_data_bytes_moved() == 0`` being derivable from the trace
alone for a secure horizontal run.
"""

import json

import numpy as np
import pytest

from repro.cluster.metrics import MetricRegistry
from repro.cluster.network import Network
from repro.cluster.profiling import Profiler
from repro.cluster.tracing import TraceRecorder, cost_table
from repro.core.partitioning import horizontal_partition
from repro.core.trainer import PrivacyPreservingSVM
from repro.data.splits import train_test_split
from repro.data.synthetic import make_blobs

RAW_DATA_KINDS = ("hdfs-replication", "hdfs-remote-read")


class TestTraceRecorder:
    def test_span_nesting_parent_ids(self):
        recorder = TraceRecorder()
        with recorder.span("outer") as outer:
            with recorder.span("middle") as middle:
                with recorder.span("inner") as inner:
                    pass
            with recorder.span("sibling") as sibling:
                pass
        assert outer.parent_id is None
        assert middle.parent_id == outer.span_id
        assert inner.parent_id == middle.span_id
        assert sibling.parent_id == outer.span_id
        # Stored innermost-first (appended at exit).
        assert [s.name for s in recorder.spans] == ["inner", "middle", "sibling", "outer"]

    def test_iteration_tagging(self):
        recorder = TraceRecorder()
        with recorder.span("setup"):
            pass
        recorder.event("setup-event")
        with recorder.iteration(3):
            with recorder.span("work") as work:
                recorder.event("ping")
                recorder.counter("crypto.masks_generated", 2)
            assert recorder.current_iteration == 3
        assert recorder.current_iteration is None
        by_name = {s.name: s for s in recorder.spans}
        assert by_name["setup"].iteration is None
        assert work.iteration == 3
        assert recorder.events[0].iteration is None
        assert recorder.events[1].iteration == 3
        assert recorder.counter_samples == [(3, "crypto.masks_generated", 2.0)]

    def test_iteration_nesting_restores_previous(self):
        recorder = TraceRecorder()
        with recorder.iteration(1):
            with recorder.iteration(2):
                assert recorder.current_iteration == 2
            assert recorder.current_iteration == 1

    def test_explicit_iteration_overrides_ambient(self):
        recorder = TraceRecorder()
        with recorder.iteration(5):
            with recorder.span("pinned", iteration=7) as span:
                pass
        assert span.iteration == 7

    def test_span_attrs_mutable_until_close(self):
        recorder = TraceRecorder()
        with recorder.span("check", z=1.0) as span:
            span.attrs["converged"] = True
        stored = recorder.spans[0]
        assert stored.attrs == {"z": 1.0, "converged": True}
        assert stored.duration_wall_s >= 0.0

    def test_disabled_recorder_yields_usable_handles(self):
        recorder = TraceRecorder(enabled=False)
        with recorder.span("ignored") as span:
            span.attrs["x"] = 1
        recorder.event("ignored")
        recorder.counter("crypto.masks_generated")
        assert recorder.spans == []
        assert recorder.events == []
        assert recorder.counter_samples == []
        assert recorder.dropped == 0

    def test_max_records_drops_and_counts(self):
        recorder = TraceRecorder(max_records=3)
        for _ in range(5):
            recorder.event("e")
        assert len(recorder.events) == 3
        assert recorder.dropped == 2
        with recorder.span("late"):
            pass
        assert recorder.spans == []
        assert recorder.dropped == 3

    def test_clear_resets_records_but_keeps_config(self):
        recorder = TraceRecorder(max_records=10)
        with recorder.iteration(0):
            with recorder.span("s"):
                recorder.event("e")
        recorder.clear()
        assert recorder.spans == [] and recorder.events == []
        assert recorder.counter_samples == [] and recorder.dropped == 0
        assert recorder.max_records == 10

    def test_sim_clock_durations(self):
        clock = {"t": 0.0}
        recorder = TraceRecorder(sim_clock=lambda: clock["t"])
        with recorder.span("transfer"):
            clock["t"] += 2.5
        span = recorder.spans[0]
        assert span.start_sim_s == 0.0
        assert span.duration_sim_s == pytest.approx(2.5)


class TestExporters:
    def _sample_recorder(self):
        recorder = TraceRecorder()
        with recorder.iteration(0):
            with recorder.span("twister.round", kind="round", node="reducer"):
                recorder.event(
                    "network.send",
                    kind="network",
                    node="a",
                    message_kind="mask",
                    size_bytes=64.0,
                )
            recorder.counter("crypto.masks_generated", 1)
        return recorder

    def test_jsonl_every_line_valid(self):
        recorder = self._sample_recorder()
        lines = recorder.to_jsonl().splitlines()
        records = [json.loads(line) for line in lines]
        assert {r["type"] for r in records} == {"span", "event", "counter"}

    def test_chrome_trace_roundtrips_through_json(self):
        recorder = self._sample_recorder()
        doc = json.loads(json.dumps(recorder.to_chrome_trace()))
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "i"}
        complete = [e for e in events if e["ph"] == "X"]
        assert complete[0]["name"] == "twister.round"
        assert complete[0]["args"]["iteration"] == 0
        # process-name metadata names each simulated node
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert names == {"reducer", "a"}

    def test_chrome_trace_coerces_numpy_attrs(self):
        recorder = TraceRecorder()
        with recorder.span("s", value=np.float64(1.5), vec=np.array([1.0, 2.0])):
            pass
        doc = json.dumps(recorder.to_chrome_trace())
        args = json.loads(doc)["traceEvents"][-1]["args"]
        assert args["value"] == 1.5
        assert args["vec"] == [1.0, 2.0]

    def test_cost_table_setup_row_first(self):
        recorder = TraceRecorder()
        recorder.event("network.send", message_kind="mask-seed", size_bytes=8.0)
        with recorder.iteration(0):
            recorder.event("network.send", message_kind="mask", size_bytes=64.0)
        headers, rows = cost_table(recorder.iteration_costs())
        assert headers[0] == "iteration"
        assert [row[0] for row in rows] == ["setup", "0"]
        assert rows[0][headers.index("bytes:mask-seed")] == 8.0
        assert rows[1][headers.index("bytes:mask")] == 64.0


class TestProfiler:
    def test_registry_interface_drop_in(self):
        profiler = Profiler()
        profiler.increment("crypto.masks_generated", 2)
        profiler.increment("crypto.masks_generated")
        assert profiler.get("crypto.masks_generated") == 3.0
        assert profiler.with_prefix("crypto.") == {"crypto.masks_generated": 3.0}
        assert profiler.as_dict() == {"crypto.masks_generated": 3.0}

    def test_snapshot_counters_match_samples(self):
        profiler = Profiler()
        with profiler.iteration(0):
            profiler.increment("crypto.masks_generated", 2)
        with profiler.iteration(1):
            profiler.increment("crypto.masks_generated", 5)
        snap = profiler.snapshot()
        sample_total = sum(
            amount
            for _, name, amount in profiler.tracer.counter_samples
            if name == "crypto.masks_generated"
        )
        assert snap["counters"]["crypto.masks_generated"] == sample_total == 7.0
        per_iter = {
            row["iteration"]: row["crypto_ops"]["crypto.masks_generated"]
            for row in snap["iterations"]
        }
        assert per_iter == {0: 2.0, 1: 5.0}

    def test_reset_clears_both_stores(self):
        profiler = Profiler()
        profiler.increment("crypto.masks_generated")
        with profiler.span("s"):
            pass
        profiler.reset()
        assert profiler.as_dict() == {}
        assert profiler.tracer.spans == []
        assert profiler.tracer.counter_samples == []

    def test_network_defaults_to_profiler_and_wires_tracer(self):
        network = Network()
        assert isinstance(network.metrics, Profiler)
        assert network.tracer is network.metrics.tracer
        network.register("a")
        network.register("b")
        network.send("a", "b", b"xxxx", kind="consensus")
        event = network.tracer.events[0]
        assert event.name == "network.send"
        assert event.attrs["message_kind"] == "consensus"
        assert event.attrs["size_bytes"] == network.bytes_sent()
        # simulated transfer time is captured on the event
        assert event.sim_s == pytest.approx(network.simulated_time_s)

    def test_network_accepts_bare_registry(self):
        network = Network(metrics=MetricRegistry())
        network.register("a")
        network.register("b")
        network.send("a", "b", b"xxxx", kind="consensus")
        # counters work, and the network still owns a tracer of its own
        assert network.metrics.get("network.messages") == 1.0
        assert network.tracer.events[0].name == "network.send"


class TestMetricRegistryValidation:
    @pytest.mark.parametrize("bad", [None, 3, 1.5, b"bytes", ["a"]])
    def test_non_string_names_rejected(self, bad):
        with pytest.raises(TypeError, match="must be str"):
            MetricRegistry().increment(bad)

    @pytest.mark.parametrize(
        "bad", ["", "a b", " a", "a\t", "a\nb", ".a", "a.", "a..b", "."]
    )
    def test_malformed_names_rejected(self, bad):
        with pytest.raises(ValueError):
            MetricRegistry().increment(bad)

    def test_single_segment_names_allowed(self):
        registry = MetricRegistry()
        registry.increment("a")
        assert registry.get("a") == 1.0

    def test_empty_prefix_matches_everything(self):
        registry = MetricRegistry()
        registry.increment("network.bytes", 4)
        registry.increment("crypto.paillier_ops", 2)
        assert registry.with_prefix("") == registry.as_dict()
        assert registry.with_prefix("network.") == {"network.bytes": 4.0}

    def test_profiler_rejects_bad_names_before_sampling(self):
        profiler = Profiler()
        with pytest.raises(ValueError):
            profiler.increment("")
        assert profiler.tracer.counter_samples == []


@pytest.fixture(scope="module")
def traced_run():
    """One secure horizontal training run, shared by the system tests."""
    train, _ = train_test_split(make_blobs(120, seed=0), seed=0)
    parts = horizontal_partition(train, 3, seed=0)
    model = PrivacyPreservingSVM(max_iter=5, seed=0).fit(parts)
    return model


class TestTracedTrainingRun:
    def test_one_local_step_span_per_iteration_per_node(self, traced_run):
        spans = [s for s in traced_run.network_.tracer.spans if s.name == "admm.local_step"]
        nodes = {f"learner-{m}" for m in range(3)}
        iterations = range(len(traced_run.history_))
        seen = {(s.iteration, s.node) for s in spans}
        assert seen == {(i, n) for i in iterations for n in nodes}

    def test_round_spans_nest_driver_phases(self, traced_run):
        tracer = traced_run.network_.tracer
        rounds = {s.span_id: s for s in tracer.spans if s.name == "twister.round"}
        assert len(rounds) == len(traced_run.history_)
        phases = {"twister.broadcast", "twister.map_wave", "twister.aggregate", "twister.reduce"}
        for round_span in rounds.values():
            children = {
                s.name for s in tracer.spans if s.parent_id == round_span.span_id
            }
            assert phases <= children

    def test_convergence_check_attrs(self, traced_run):
        checks = [
            s for s in traced_run.network_.tracer.spans if s.name == "admm.convergence_check"
        ]
        assert len(checks) == len(traced_run.history_)
        for span, record in zip(
            sorted(checks, key=lambda s: s.iteration), traced_run.history_.records
        ):
            assert span.attrs["z_change_sq"] == pytest.approx(record.z_change_sq)
            assert span.attrs["converged"] in (True, False)

    def test_chrome_trace_export_valid_json(self, traced_run, tmp_path):
        path = tmp_path / "trace.json"
        payload = traced_run.export_trace(str(path), format="chrome")
        doc = json.loads(payload)
        assert json.loads(path.read_text()) == doc
        assert any(
            e.get("name") == "admm.local_step" for e in doc["traceEvents"]
        )

    def test_jsonl_export_valid(self, traced_run):
        for line in traced_run.export_trace(format="jsonl").splitlines():
            json.loads(line)

    def test_cost_table_reconciles_with_registry(self, traced_run):
        headers, rows = traced_run.iteration_cost_table()
        network = traced_run.network_
        assert sum(r[headers.index("total_bytes")] for r in rows) == network.bytes_sent()
        assert sum(r[headers.index("messages")] for r in rows) == network.messages_sent()
        registry_crypto = sum(
            amount
            for name, amount in network.metrics.as_dict().items()
            if name.startswith("crypto.")
        )
        assert sum(r[headers.index("crypto_ops")] for r in rows) == registry_crypto

    def test_per_kind_bytes_reconcile(self, traced_run):
        tracer = traced_run.network_.tracer
        metrics = traced_run.network_.metrics
        by_kind = {}
        for event in tracer.events:
            if event.name != "network.send":
                continue
            kind = event.attrs["message_kind"]
            by_kind[kind] = by_kind.get(kind, 0.0) + event.attrs["size_bytes"]
        for kind, total in by_kind.items():
            assert total == metrics.get(f"network.bytes.{kind}")

    def test_raw_data_bytes_derivable_from_trace_alone(self, traced_run):
        """Regression: the privacy headline must be provable from the trace."""
        tracer = traced_run.network_.tracer
        raw_from_trace = sum(
            event.attrs["size_bytes"]
            for event in tracer.events
            if event.name == "network.send"
            and event.attrs["message_kind"] in RAW_DATA_KINDS
        )
        assert raw_from_trace == traced_run.raw_data_bytes_moved() == 0.0

    def test_no_records_dropped(self, traced_run):
        assert traced_run.network_.tracer.dropped == 0

    def test_snapshot_schema(self, traced_run):
        snap = traced_run.profiler_.snapshot()
        assert set(snap) == {"counters", "spans", "events", "iterations", "dropped"}
        assert snap["counters"] == traced_run.network_.metrics.as_dict()


@pytest.fixture(scope="module")
def threaded_run():
    """A secure fit with the map wave on 4 worker threads."""
    train, _ = train_test_split(make_blobs(120, seed=0), seed=0)
    parts = horizontal_partition(train, 4, seed=0)
    return PrivacyPreservingSVM(max_iter=4, seed=0, n_map_workers=4).fit(parts)


class TestThreadedMapWaveReconciliation:
    """iteration_costs() must stay exact when map tasks run on threads.

    Worker threads record their ``admm.local_step`` spans via
    ``TraceRecorder.adopt`` (thread-local span stacks, explicit parent),
    so the same per-iteration attribution — and therefore the same
    reconciliation invariant — must hold as in the sequential wave.
    """

    def test_map_wave_actually_parallel(self, threaded_run):
        waves = [
            s for s in threaded_run.network_.tracer.spans if s.name == "twister.map_wave"
        ]
        assert waves and all(s.attrs["n_parallel"] == 4 for s in waves)

    def test_adopted_spans_keep_iteration_and_parent(self, threaded_run):
        tracer = threaded_run.network_.tracer
        waves = {s.span_id: s for s in tracer.spans if s.name == "twister.map_wave"}
        steps = [s for s in tracer.spans if s.name == "admm.local_step"]
        nodes = {f"learner-{m}" for m in range(4)}
        seen = {(s.iteration, s.node) for s in steps}
        assert seen == {
            (i, n) for i in range(len(threaded_run.history_)) for n in nodes
        }
        for step in steps:
            assert step.parent_id in waves
            assert waves[step.parent_id].iteration == step.iteration

    def test_cost_rows_reconcile_with_registry(self, threaded_run):
        network = threaded_run.network_
        rows = network.tracer.iteration_costs()
        assert sum(r["total_bytes"] for r in rows) == network.bytes_sent()
        assert sum(r["total_messages"] for r in rows) == network.messages_sent()
        registry_crypto = sum(
            amount
            for name, amount in network.metrics.as_dict().items()
            if name.startswith("crypto.")
        )
        assert sum(sum(r["crypto_ops"].values()) for r in rows) == registry_crypto

    def test_per_kind_bytes_reconcile(self, threaded_run):
        rows = threaded_run.network_.tracer.iteration_costs()
        metrics = threaded_run.network_.metrics
        by_kind: dict[str, float] = {}
        for row in rows:
            for kind, amount in row["bytes_by_kind"].items():
                by_kind[kind] = by_kind.get(kind, 0.0) + amount
        for kind, total in by_kind.items():
            assert total == metrics.get(f"network.bytes.{kind}")

    def test_matches_sequential_trajectory(self, threaded_run):
        train, _ = train_test_split(make_blobs(120, seed=0), seed=0)
        parts = horizontal_partition(train, 4, seed=0)
        sequential = PrivacyPreservingSVM(max_iter=4, seed=0, n_map_workers=1).fit(parts)
        for a, b in zip(sequential.history_.records, threaded_run.history_.records):
            assert a.z_change_sq == pytest.approx(b.z_change_sq)
