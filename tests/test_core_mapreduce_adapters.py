"""Direct unit tests for the Mapper/Reducer Twister adapters."""

import numpy as np
import pytest

from repro.cluster.twister import MapperContext, ReducerContext
from repro.cluster.network import Network
from repro.core.mapreduce_svm import (
    HorizontalConsensusReducer,
    HorizontalSVMMapper,
    VerticalReducerAdapter,
    VerticalSVMMapper,
)
from repro.core.partitioning import horizontal_partition, vertical_partition
from repro.data.synthetic import make_blobs
from repro.svm.kernels import RBFKernel


@pytest.fixture
def context():
    network = Network()
    network.register("node")
    return MapperContext(node_id="node", network=network)


@pytest.fixture
def reducer_context():
    network = Network()
    network.register("reducer")
    return ReducerContext(node_id="reducer", network=network)


def horizontal_payload(kernel=None):
    ds = make_blobs(40, 3, seed=0)
    payload = dict(X=ds.X, y=ds.y, C=10.0, rho=10.0, n_learners=2)
    if kernel is not None:
        payload.update(kernel=kernel, landmarks=np.zeros((4, 3)) + np.eye(4, 3))
    return payload


class TestHorizontalMapper:
    def test_configure_builds_linear_worker(self, context):
        mapper = HorizontalSVMMapper()
        mapper.configure(horizontal_payload(), context)
        from repro.core.horizontal_linear import HorizontalLinearWorker

        assert isinstance(mapper.worker, HorizontalLinearWorker)

    def test_configure_builds_kernel_worker(self, context):
        mapper = HorizontalSVMMapper()
        mapper.configure(horizontal_payload(kernel=RBFKernel(gamma=0.5)), context)
        from repro.core.horizontal_kernel import HorizontalKernelWorker

        assert isinstance(mapper.worker, HorizontalKernelWorker)

    def test_map_delegates_to_worker(self, context):
        mapper = HorizontalSVMMapper()
        mapper.configure(horizontal_payload(), context)
        out = mapper.map({"z": np.zeros(3), "s": 0.0}, context)
        assert set(out) == {"z_contrib", "s_contrib"}

    def test_map_before_configure_raises(self, context):
        with pytest.raises(RuntimeError, match="configured"):
            HorizontalSVMMapper().map({"z": np.zeros(2), "s": 0.0}, context)


class TestHorizontalReducer:
    def test_averages_sums(self, reducer_context):
        reducer = HorizontalConsensusReducer(n_consensus=3)
        sums = {"z_contrib": np.array([2.0, 4.0, 6.0]), "s_contrib": np.array([8.0])}
        state, converged = reducer.reduce(sums, 2, reducer_context)
        np.testing.assert_array_equal(state["z"], [1.0, 2.0, 3.0])
        assert state["s"] == 4.0
        assert not converged

    def test_records_z_change_history(self, reducer_context):
        reducer = HorizontalConsensusReducer(n_consensus=2)
        for value in (2.0, 2.0):
            reducer.reduce(
                {"z_contrib": np.full(2, value), "s_contrib": np.zeros(1)},
                2,
                reducer_context,
            )
        changes = reducer.history.z_changes
        assert changes[0] > 0.0
        assert changes[1] == pytest.approx(0.0)

    def test_tol_triggers_convergence(self, reducer_context):
        reducer = HorizontalConsensusReducer(n_consensus=2, tol=1e-6)
        reducer.reduce(
            {"z_contrib": np.ones(2), "s_contrib": np.zeros(1)}, 2, reducer_context
        )
        _, converged = reducer.reduce(
            {"z_contrib": np.ones(2), "s_contrib": np.zeros(1)}, 2, reducer_context
        )
        assert converged

    def test_initial_state_zero(self):
        reducer = HorizontalConsensusReducer(n_consensus=4)
        state = reducer.initial_state()
        np.testing.assert_array_equal(state["z"], np.zeros(4))
        assert state["s"] == 0.0

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            HorizontalConsensusReducer(n_consensus=0)


class TestVerticalAdapters:
    def test_mapper_linear_and_kernel(self, context):
        ds = make_blobs(30, 4, seed=1)
        linear = VerticalSVMMapper()
        linear.configure({"X": ds.X, "rho": 10.0, "kernel": None}, context)
        out = linear.map({"correction": np.zeros(30), "bias": 0.0}, context)
        assert out["share"].shape == (30,)

        kernel = VerticalSVMMapper()
        kernel.configure({"X": ds.X, "rho": 10.0, "kernel": RBFKernel(gamma=0.3)}, context)
        out = kernel.map({"correction": np.zeros(30), "bias": 0.0}, context)
        assert out["share"].shape == (30,)

    def test_mapper_before_configure_raises(self, context):
        with pytest.raises(RuntimeError):
            VerticalSVMMapper().map({"correction": np.zeros(2)}, context)

    def test_reducer_adapter_state_and_history(self, reducer_context):
        ds = make_blobs(24, 3, seed=2)
        adapter = VerticalReducerAdapter(ds.y, C=10.0, rho=10.0, n_learners=2)
        state = adapter.initial_state()
        assert state["correction"].shape == (24,)
        new_state, converged = adapter.reduce(
            {"share": np.random.default_rng(0).normal(size=24)}, 2, reducer_context
        )
        assert new_state["correction"].shape == (24,)
        assert np.isfinite(new_state["bias"])
        assert len(adapter.history) == 1
        assert not converged

    def test_full_roundtrip_matches_trainer(self, cancer_split):
        # Driving the adapters by hand reproduces the in-process trainer.
        from repro.core.vertical_linear import VerticalLinearSVM

        train, _ = cancer_split
        partition = vertical_partition(train, 3, seed=0)
        reference = VerticalLinearSVM(C=50.0, rho=100.0, max_iter=5).fit(partition)

        network = Network()
        network.register("n")
        ctx = MapperContext(node_id="n", network=network)
        rctx = ReducerContext(node_id="r", network=network)
        mappers = []
        for block in partition.blocks:
            m = VerticalSVMMapper()
            m.configure({"X": block, "rho": 100.0, "kernel": None}, ctx)
            mappers.append(m)
        adapter = VerticalReducerAdapter(
            partition.y, C=50.0, rho=100.0, n_learners=partition.n_learners
        )
        state = adapter.initial_state()
        for _ in range(5):
            share_sum = np.zeros(partition.n_samples)
            for m in mappers:
                share_sum += m.map(state, ctx)["share"]
            state, _ = adapter.reduce({"share": share_sum}, len(mappers), rctx)
        np.testing.assert_allclose(
            adapter.history.z_changes, reference.history_.z_changes, rtol=1e-8
        )
