"""Tests for the CSV / LIBSVM dataset loaders and writers."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.loaders import load_csv, load_libsvm, save_csv, save_libsvm
from repro.data.synthetic import make_blobs


class TestCsvRoundTrip:
    def test_roundtrip_label_last(self, tmp_path):
        ds = make_blobs(30, 4, seed=0)
        path = tmp_path / "data.csv"
        save_csv(ds, path)
        loaded = load_csv(path)
        np.testing.assert_allclose(loaded.X, ds.X, rtol=1e-9)
        np.testing.assert_array_equal(loaded.y, ds.y)

    def test_roundtrip_label_first(self, tmp_path):
        # HIGGS puts the label in column 0.
        ds = make_blobs(20, 3, seed=1)
        path = tmp_path / "higgs_style.csv"
        save_csv(ds, path, label_column=0)
        loaded = load_csv(path, label_column=0)
        np.testing.assert_allclose(loaded.X, ds.X, rtol=1e-9)
        np.testing.assert_array_equal(loaded.y, ds.y)

    def test_label_normalization_zero_one(self, tmp_path):
        path = tmp_path / "zo.csv"
        path.write_text("1.0,2.0,0\n3.0,4.0,1\n")
        loaded = load_csv(path)
        assert set(loaded.y) == {-1.0, 1.0}
        assert loaded.y[0] == -1.0  # smaller raw label -> -1

    def test_skip_header(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("a,b,label\n1.0,2.0,1\n3.0,4.0,-1\n")
        loaded = load_csv(path, skip_header=1)
        assert loaded.n_samples == 2

    def test_three_label_values_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,0\n2,1\n3,2\n")
        with pytest.raises(ValueError, match="2 label values"):
            load_csv(path)

    def test_missing_values_rejected(self, tmp_path):
        path = tmp_path / "nan.csv"
        path.write_text("1.0,,1\n2.0,3.0,-1\n")
        with pytest.raises(ValueError, match="missing"):
            load_csv(path)

    def test_name_defaults_to_stem(self, tmp_path):
        ds = make_blobs(10, 2, seed=0)
        path = tmp_path / "mydata.csv"
        save_csv(ds, path)
        assert load_csv(path).name == "mydata"


class TestLibsvmRoundTrip:
    def test_roundtrip(self, tmp_path):
        ds = make_blobs(25, 5, seed=2)
        path = tmp_path / "data.libsvm"
        save_libsvm(ds, path)
        loaded = load_libsvm(path, n_features=5)
        np.testing.assert_allclose(loaded.X, ds.X, rtol=1e-9)
        np.testing.assert_array_equal(loaded.y, ds.y)

    def test_sparse_zeros_omitted_and_recovered(self, tmp_path):
        X = np.array([[1.0, 0.0, 3.0], [0.0, 2.0, 0.0]])
        ds = Dataset(X, [1, -1], "sparse")
        path = tmp_path / "s.libsvm"
        save_libsvm(ds, path)
        text = path.read_text()
        assert "2:" not in text.splitlines()[0]  # zero omitted
        loaded = load_libsvm(path, n_features=3)
        np.testing.assert_array_equal(loaded.X, X)

    def test_width_inferred_from_max_index(self, tmp_path):
        path = tmp_path / "w.libsvm"
        path.write_text("+1 1:1.5 4:2.5\n-1 2:1.0\n")
        loaded = load_libsvm(path)
        assert loaded.n_features == 4
        assert loaded.X[0, 3] == 2.5

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "c.libsvm"
        path.write_text("# header\n\n+1 1:1.0  # trailing\n-1 1:-1.0\n")
        loaded = load_libsvm(path)
        assert loaded.n_samples == 2

    def test_bad_label(self, tmp_path):
        path = tmp_path / "bl.libsvm"
        path.write_text("abc 1:1.0\n")
        with pytest.raises(ValueError, match="bad label"):
            load_libsvm(path)

    def test_bad_token(self, tmp_path):
        path = tmp_path / "bt.libsvm"
        path.write_text("+1 1:x\n-1 1:2\n")
        with pytest.raises(ValueError, match="bad feature token"):
            load_libsvm(path)

    def test_zero_based_index_rejected(self, tmp_path):
        path = tmp_path / "zb.libsvm"
        path.write_text("+1 0:1.0\n-1 1:2.0\n")
        with pytest.raises(ValueError, match="1-based"):
            load_libsvm(path)

    def test_n_features_too_small(self, tmp_path):
        path = tmp_path / "ns.libsvm"
        path.write_text("+1 5:1.0\n-1 1:1.0\n")
        with pytest.raises(ValueError, match="smaller than max index"):
            load_libsvm(path, n_features=3)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "e.libsvm"
        path.write_text("\n")
        with pytest.raises(ValueError, match="no samples"):
            load_libsvm(path)


class TestLoadersFeedTrainers:
    def test_loaded_dataset_trains(self, tmp_path):
        from repro.svm.model import LinearSVC

        ds = make_blobs(60, 3, delta=4.0, seed=3)
        path = tmp_path / "train.csv"
        save_csv(ds, path)
        loaded = load_csv(path)
        model = LinearSVC(C=10.0).fit(loaded.X, loaded.y)
        assert model.score(loaded.X, loaded.y) > 0.95
