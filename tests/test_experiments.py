"""Tests for the experiment harness (tiny workloads — just correctness
of plumbing and the qualitative shapes; full runs live in benchmarks/)."""

import numpy as np
import pytest

from repro.experiments.ablation import c_sweep, landmark_sweep, rho_sweep
from repro.experiments.config import ExperimentConfig, PAPER_SIZES, QUICK_SIZES
from repro.experiments.datasets import load_benchmark_datasets
from repro.experiments.figure4 import PANELS, format_panel, run_panel, run_variant
from repro.experiments.tables import (
    baseline_comparison_table,
    centralized_baseline_table,
    crypto_overhead_table,
    format_table,
    scalability_table,
)

TINY = ExperimentConfig(max_iter=8, sizes={"cancer": 160, "higgs": 160, "ocr": 160})
CANCER_ONLY = ExperimentConfig(max_iter=8, sizes={"cancer": 160})


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = ExperimentConfig()
        assert cfg.n_learners == 4
        assert cfg.C == 50.0
        assert cfg.rho == 100.0
        assert cfg.max_iter == 100

    def test_paper_sizes(self):
        assert PAPER_SIZES == {"cancer": 569, "higgs": 11_000, "ocr": 5_620}

    def test_with_sizes_copies(self):
        cfg = ExperimentConfig().with_sizes({"cancer": 100})
        assert cfg.sizes == {"cancer": 100}
        assert ExperimentConfig().sizes == QUICK_SIZES


class TestLoadDatasets:
    def test_returns_half_splits(self):
        data = load_benchmark_datasets({"cancer": 200}, seed=0)
        train, test = data["cancer"]
        assert abs(train.n_samples - 100) <= 1
        assert abs(test.n_samples - 100) <= 1

    def test_standardized_on_train(self):
        data = load_benchmark_datasets({"higgs": 300}, seed=0)
        train, _ = data["higgs"]
        np.testing.assert_allclose(train.X.mean(axis=0), 0.0, atol=1e-9)

    def test_unknown_dataset(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_benchmark_datasets({"mnist": 100})


class TestFigure4:
    def test_panel_map_complete(self):
        assert set(PANELS) == set("abcdefgh")

    @pytest.mark.parametrize("scheme", [
        "horizontal-linear", "vertical-linear",
    ])
    def test_run_variant_history_lengths(self, scheme):
        data = load_benchmark_datasets({"cancer": 160}, seed=0)
        train, test = data["cancer"]
        history = run_variant(scheme, train, test, TINY)
        assert history.n_iterations == TINY.max_iter
        assert np.all(np.isfinite(history.z_changes))
        assert np.all(np.isfinite(history.accuracies))

    def test_unknown_scheme(self):
        data = load_benchmark_datasets({"cancer": 160}, seed=0)
        train, test = data["cancer"]
        with pytest.raises(ValueError, match="unknown scheme"):
            run_variant("diagonal", train, test, TINY)

    def test_convergence_panel_decays(self):
        result = run_panel("a", CANCER_ONLY)
        series = result.series["cancer"]
        assert series[-1] < series[0]

    def test_accuracy_panel_in_unit_interval(self):
        result = run_panel("g", CANCER_ONLY)
        series = result.series["cancer"]
        assert np.all((series >= 0) & (series <= 1))

    def test_format_panel_contains_rows(self):
        result = run_panel("a", CANCER_ONLY)
        text = format_panel(result, every=4)
        assert "Fig. 4(a)" in text
        assert "cancer" in text
        assert "final correct ratios" in text

    def test_bad_panel_letter(self):
        with pytest.raises(ValueError, match="panel"):
            run_panel("z")


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", float("nan")]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "-" in lines[1]

    def test_centralized_baseline(self):
        headers, rows = centralized_baseline_table(CANCER_ONLY)
        assert headers[0] == "dataset"
        assert len(rows) == 1
        assert rows[0][0] == "cancer"
        assert 0.5 < rows[0][3] <= 1.0

    def test_crypto_overhead_rows(self):
        headers, rows = crypto_overhead_table(CANCER_ONLY, max_iter=3, paillier_bits=128)
        labels = [r[0] for r in rows]
        assert labels[0] == "plaintext"
        assert "masking-fresh (paper)" in labels
        assert any("paillier" in label for label in labels)
        # masking costs more bytes than plaintext; paillier costs more
        # seconds than masking.
        plain = rows[0]
        fresh = rows[1]
        assert fresh[1] > plain[1]

    def test_scalability_rows(self):
        headers, rows = scalability_table(CANCER_ONLY, learner_counts=(2, 4), max_iter=3)
        assert [r[0] for r in rows] == [2, 4]
        # Mask traffic grows with M (O(M^2) pairwise masks).
        assert rows[1][3] > rows[0][3]
        assert all(r[5] == 0.0 for r in rows)  # data locality invariant

    def test_baseline_comparison_includes_all_schemes(self):
        headers, rows = baseline_comparison_table(CANCER_ONLY, max_iter=6)
        schemes = " ".join(r[0] for r in rows)
        for token in ("centralized", "this paper", "local-only", "random kernel", "DP"):
            assert token in schemes


class TestAblation:
    def test_rho_sweep_rows(self):
        headers, rows = rho_sweep((10.0, 100.0), CANCER_ONLY)
        assert [r[0] for r in rows] == [10.0, 100.0]
        assert all(np.isfinite(r[3]) for r in rows)

    def test_c_sweep_rows(self):
        headers, rows = c_sweep((1.0, 50.0), CANCER_ONLY)
        assert len(rows) == 2

    def test_landmark_sweep_traffic_column(self):
        headers, rows = landmark_sweep((3, 6), CANCER_ONLY)
        assert rows[0][3] == 4
        assert rows[1][3] == 7
