#!/usr/bin/env python
"""Lint: every counter name emitted in ``src/repro`` must be documented.

Scans all ``.increment(`` / ``.counter(`` call sites for dotted string
literals (f-string placeholders normalize to ``<name>``, so
``f"network.bytes.{kind}"`` matches the documented
``network.bytes.<kind>``) and fails if any extracted name does not
appear in ``docs/OBSERVABILITY.md``.  Run directly or via
``tests/test_observability_docs.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"
DOC = ROOT / "docs" / "OBSERVABILITY.md"

_CALL = re.compile(r"\.(?:increment|counter)\(")
_LITERAL = re.compile(r"""(f?)(["'])([A-Za-z0-9_.{}-]+)\2""")


def counter_names() -> dict[str, str]:
    """Map every counter name emitted in src/repro to its first call site."""
    names: dict[str, str] = {}
    for path in sorted(SRC.rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if not _CALL.search(line):
                continue
            for _, _, text in _LITERAL.findall(line):
                if "." not in text:
                    continue
                name = re.sub(r"\{([^}]*)\}", r"<\1>", text)
                names.setdefault(name, f"{path.relative_to(ROOT)}:{lineno}")
    return names


def main() -> int:
    names = counter_names()
    if not names:
        print("error: no counter call sites found — lint regexes are broken")
        return 1
    doc = DOC.read_text()
    missing = {name: site for name, site in names.items() if name not in doc}
    if missing:
        print("counter names missing from docs/OBSERVABILITY.md:")
        for name, site in sorted(missing.items()):
            print(f"  {name}  (first emitted at {site})")
        return 1
    print(f"ok: all {len(names)} emitted counter names are documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
