#!/usr/bin/env python
"""Lint: every counter name emitted in ``src/repro`` must be documented.

This is now a thin shim over the ``docs`` checker of the static-analysis
suite (``repro.analysis.checkers.docs``); the extraction logic lives
there so one driver (``repro lint``) runs the whole static suite.  The
shim keeps the old entry points — ``counter_names()`` and ``main()`` —
for scripts and tests that still invoke the tool directly.
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"
DOC = ROOT / "docs" / "OBSERVABILITY.md"

sys.path.insert(0, str(ROOT / "src"))

from repro.analysis.checkers.docs import extract_counter_names  # noqa: E402
from repro.analysis.source import ModuleSource  # noqa: E402


def counter_names() -> dict[str, str]:
    """Map every counter name emitted in src/repro to its first call site."""
    names: dict[str, str] = {}
    for path in sorted(SRC.rglob("*.py")):
        module = ModuleSource.load(path, ROOT)
        for name, lineno in extract_counter_names(module).items():
            names.setdefault(name, f"{module.relpath}:{lineno}")
    return names


def main() -> int:
    names = counter_names()
    if not names:
        print("error: no counter call sites found — lint regexes are broken")
        return 1
    doc = DOC.read_text()
    missing = {name: site for name, site in names.items() if name not in doc}
    if missing:
        print("counter names missing from docs/OBSERVABILITY.md:")
        for name, site in sorted(missing.items()):
            print(f"  {name}  (first emitted at {site})")
        return 1
    print(f"ok: all {len(names)} emitted counter names are documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
