"""Distributed feature selection — the paper's future work, working.

Section VI of the paper notes that redundant features cause "sudden
jumps" in the vertical consensus curves, and that fixing this needs a
*distributed* feature-selection protocol ("feature selection is also a
centralized operation").  This example runs both protocols this library
provides:

* horizontal: correlation scores from **securely-summed sufficient
  statistics** — the Reducer learns global sums only;
* vertical: learners score their own columns locally and publish only
  the scores (one float per column).

and shows the end-to-end effect on training.

Run:  python examples/feature_selection_workflow.py
"""

import numpy as np

from repro.core import (
    HorizontalLinearSVM,
    VerticalLinearSVM,
    horizontal_partition,
    secure_feature_selection,
    vertical_feature_selection,
    vertical_partition,
)
from repro.data import Dataset, make_blobs, train_test_split

N_SIGNAL, N_NOISE = 6, 10


def main() -> None:
    # Plant a known ground truth: 6 informative columns + 10 pure noise.
    rng = np.random.default_rng(0)
    core = make_blobs(600, N_SIGNAL, delta=3.0, seed=0)
    dataset = Dataset(
        np.hstack([core.X, rng.standard_normal((600, N_NOISE))]), core.y, "planted"
    )
    train, test = train_test_split(dataset, 0.5, seed=0)
    print(f"dataset: {train.n_samples} train rows, "
          f"{N_SIGNAL} signal + {N_NOISE} noise features\n")

    # --- horizontal: secure sufficient-statistics protocol -------------
    parts = horizontal_partition(train, 4, seed=0)
    selection = secure_feature_selection(parts, N_SIGNAL, seed=0)
    hits = len(set(selection.selected.tolist()) & set(range(N_SIGNAL)))
    print(f"[horizontal] secure protocol selected {selection.selected.tolist()}")
    print(f"[horizontal] signal features recovered: {hits}/{N_SIGNAL}")

    full = HorizontalLinearSVM(max_iter=40).fit(parts)
    trimmed = HorizontalLinearSVM(max_iter=40).fit(selection.project(parts))
    print(f"[horizontal] accuracy all 16 features : {full.score(test.X, test.y):.3f}")
    print(f"[horizontal] accuracy top-{N_SIGNAL} features : "
          f"{trimmed.score(test.X[:, selection.selected], test.y):.3f}\n")

    # --- vertical: local column scores ----------------------------------
    partition = vertical_partition(train, 4, seed=0)
    v_selection = vertical_feature_selection(partition, N_SIGNAL)
    print(f"[vertical]   selected {v_selection.selected.tolist()}")

    full_v = VerticalLinearSVM(max_iter=60).fit(partition)
    trimmed_v = VerticalLinearSVM(max_iter=60).fit(partition.restrict(v_selection.selected))
    print(f"[vertical]   accuracy all features   : {full_v.score(test.X, test.y):.3f}")
    print(f"[vertical]   accuracy top-{N_SIGNAL} features: "
          f"{trimmed_v.score(test.X[:, v_selection.selected], test.y):.3f}")
    print(f"[vertical]   final ||dz||^2 all      : {full_v.history_.z_changes[-1]:.2e}")
    print(f"[vertical]   final ||dz||^2 trimmed  : {trimmed_v.history_.z_changes[-1]:.2e}")


if __name__ == "__main__":
    main()
