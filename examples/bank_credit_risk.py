"""Vertically partitioned scenario: banks doing joint credit-risk analysis.

The paper's other motivating example: "several banks wishing to conduct
credit risk analysis to identify non-profitable customers based on past
transaction records."  All banks know the *same customers* (rows), but
each holds different attributes about them (columns) — vertically
partitioned data.  Only the default labels are shared.

This example trains the vertical consensus SVM (linear and kernel) on a
64-attribute, strongly-correlated customer dataset (the regime the
paper stresses with OCR: correlated columns force the learners to
cooperate closely), and shows the per-iteration cooperation dynamics.

Run:  python examples/bank_credit_risk.py
"""

import numpy as np

from repro import PrivacyPreservingSVM, vertical_partition
from repro.data import StandardScaler, make_ocr_like, train_test_split
from repro.svm import SVC, LinearSVC, RBFKernel

N_BANKS = 4


def main() -> None:
    # Customer records: 64 correlated attributes (transaction patterns),
    # labels = profitable / non-profitable.
    dataset = make_ocr_like(1200, seed=3)
    train, test = train_test_split(dataset, 0.5, seed=0)
    scaler = StandardScaler().fit(train.X)
    train = scaler.transform_dataset(train)
    test = scaler.transform_dataset(test)

    partition = vertical_partition(train, N_BANKS, seed=0)
    print(f"{N_BANKS} banks; attributes per bank: "
          f"{[f.size for f in partition.features]}  "
          f"(customers per bank: {partition.n_samples})")

    # Privacy-preserving vertical training, linear.
    linear = PrivacyPreservingSVM("vertical", C=50.0, rho=100.0, max_iter=100, seed=0)
    linear.fit(partition)
    print(f"\nconsensus (linear) accuracy: {linear.score(test.X, test.y):.3f}")

    # Kernel variant: each bank contributes an RBF machine on its own
    # attribute block (an additive-kernel joint model).
    kernel = PrivacyPreservingSVM(
        "vertical", kernel=RBFKernel(gamma=0.002), C=50.0, rho=100.0, max_iter=100, seed=0
    )
    kernel.fit(partition)
    print(f"consensus (RBF)    accuracy: {kernel.score(test.X, test.y):.3f}")

    # Reference ceilings.
    pooled_linear = LinearSVC(C=50.0).fit(train.X, train.y)
    pooled_rbf = SVC(RBFKernel(gamma=0.002), C=50.0).fit(train.X, train.y)
    print(f"centralized linear accuracy: {pooled_linear.score(test.X, test.y):.3f}")
    print(f"centralized RBF    accuracy: {pooled_rbf.score(test.X, test.y):.3f}")

    # Cooperation dynamics: the paper highlights that correlated columns
    # make the vertical learners negotiate longer (Fig. 4(c)/(g)).
    z = linear.history_.z_changes
    checkpoints = [0, 1, 5, 10, 25, 50, 99]
    print("\nconsensus movement ||z(t+1)-z(t)||^2 over iterations:")
    for t in checkpoints:
        if t < len(z):
            print(f"  iter {t:>3d}: {z[t]:.3e}")

    # Prediction requires all banks: each contributes its score share.
    scores = linear.decision_function(test.X[:5])
    print(f"\njoint scores for 5 customers: {np.round(scores, 2)}")
    print(f"raw data bytes moved: {linear.raw_data_bytes_moved():.0f}")


if __name__ == "__main__":
    main()
