"""Horizontally partitioned scenario: a consortium of hospitals.

The paper's motivating example: "several medical institutions trying to
discover certain correlations between symptoms and diagnoses from
patients' records."  Each hospital holds its *own patients* (rows) with
the same features (columns) — horizontally partitioned data — and none
may share records.

This example walks the full story:

1. each hospital alone (no collaboration) — the utility floor;
2. the privacy-preserving consensus SVM (linear, then RBF-kernel);
3. the insecure centralized pool — the utility ceiling;
4. what the semi-honest Reducer actually observed.

Run:  python examples/hospital_consortium.py
"""


from repro import PrivacyPreservingSVM, horizontal_partition
from repro.baselines import LocalOnlySVM
from repro.data import StandardScaler, make_cancer_like, train_test_split
from repro.security import reducer_view
from repro.svm import SVC, RBFKernel

N_HOSPITALS = 4


def main() -> None:
    # Diagnostic records: 9 features per patient, ~95%-separable task.
    dataset = make_cancer_like(569, seed=7)
    train, test = train_test_split(dataset, 0.5, seed=0)
    scaler = StandardScaler().fit(train.X)
    train = scaler.transform_dataset(train)
    test = scaler.transform_dataset(test)

    hospitals = horizontal_partition(train, N_HOSPITALS, seed=0)
    print(f"{N_HOSPITALS} hospitals, records per hospital: "
          f"{[h.n_samples for h in hospitals]}")

    # 1. No collaboration: each hospital trains on its own records.
    local = LocalOnlySVM(C=50.0).fit(hospitals)
    local_scores = local.score_all(test.X, test.y)
    print(f"\nlocal-only accuracy per hospital: "
          f"{[round(local_scores[f'learner{i}'], 3) for i in range(N_HOSPITALS)]}")
    print(f"local-only mean accuracy:         {local_scores['mean']:.3f}")

    # 2a. Privacy-preserving consensus, linear.
    linear = PrivacyPreservingSVM("horizontal", C=50.0, rho=100.0, max_iter=60, seed=0)
    linear.fit(hospitals)
    print(f"\nconsensus (linear)  accuracy:     {linear.score(test.X, test.y):.3f}")

    # 2b. Privacy-preserving consensus, RBF kernel with 50 public landmarks.
    kernel = PrivacyPreservingSVM(
        "horizontal",
        kernel=RBFKernel(gamma=0.02),
        n_landmarks=50,
        C=50.0,
        rho=100.0,
        max_iter=60,
        seed=0,
    )
    kernel.fit(hospitals)
    print(f"consensus (RBF)     accuracy:     {kernel.score(test.X, test.y):.3f}")

    # 3. The (disallowed) centralized pool, for reference.
    pooled = SVC(C=50.0).fit(train.X, train.y)
    print(f"centralized pool    accuracy:     {pooled.score(test.X, test.y):.3f}")

    # 4. What did the Reducer see?  Only masked group elements.
    view = reducer_view(linear.network_)
    share = view.payloads("masked-share")[0]
    print(f"\nReducer received {len(view.messages)} messages, all of kind "
          f"{{{', '.join(sorted({m.kind for m in view.messages}))}}}")
    print(f"first masked share (leading residues): {[int(v) for v in share[:2]]}")
    print(f"raw data bytes moved across the wire:  "
          f"{linear.raw_data_bytes_moved():.0f}")

    gain = linear.score(test.X, test.y) - local_scores["mean"]
    print(f"\ncollaboration gain over local-only: {gain:+.3f} accuracy")
    assert linear.raw_data_bytes_moved() == 0.0


if __name__ == "__main__":
    main()
