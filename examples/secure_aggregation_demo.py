"""Protocol deep-dive: the coalition-resistant secure summation (Section V).

Shows, on raw protocol runs (no SVM), exactly what the paper's security
argument rests on:

1. the Reducer computes the correct sum while each incoming share is a
   uniformly-masked group element;
2. a coalition of the Reducer + M-2 corrupted Mappers still cannot
   recover the remaining honest Mapper's input;
3. if *every* other Mapper colludes, recovery succeeds — but that much
   is implied by the sum itself (no protocol can prevent it);
4. the cost comparison against the heavyweight alternative: Paillier
   homomorphic aggregation.

Run:  python examples/secure_aggregation_demo.py
"""

import time

import numpy as np

from repro.cluster.network import Network
from repro.crypto import PaillierKeyPair, SecureSummationProtocol
from repro.security import coalition_view, coalition_recovery_attempt, reducer_view
from repro.security.analysis import share_uniformity_statistic

M = 4
DIM = 8


def main() -> None:
    rng = np.random.default_rng(0)
    network = Network()
    mappers = [f"mapper-{i}" for i in range(M)]
    protocol = SecureSummationProtocol(network, mappers, "reducer", seed=42)

    secrets = {m: rng.normal(size=DIM) for m in mappers}
    total = protocol.sum_vectors(secrets)

    print("=== 1. correctness ===")
    print(f"true sum        : {np.round(sum(secrets.values()), 6)}")
    print(f"protocol output : {np.round(total, 6)}")

    print("\n=== 2. what the Reducer saw ===")
    view = reducer_view(network)
    share = [int(v) for v in view.payloads('masked-share')[0]]
    print(f"messages: {len(view.messages)} (all masked shares)")
    print(f"one share's residues (mod 2^128): {share[:2]} ...")
    print(f"share decodes to: {np.round(protocol.codec.decode(share)[:3], 3)} ... "
          f"(garbage — nothing like mapper-0's {np.round(secrets['mapper-0'][:3], 3)})")
    print(f"top-byte uniformity statistic: "
          f"{share_uniformity_statistic(view, protocol.codec):.2f} (~1 means uniform)")

    print("\n=== 3. coalition attacks ===")
    partial = coalition_view(network, ["mapper-2", "mapper-3"])
    attempt = coalition_recovery_attempt(partial, "mapper-0", mappers, protocol.codec)
    err = float(np.max(np.abs(attempt.estimate - secrets["mapper-0"])))
    print(f"Reducer + 2 of 4 mappers vs mapper-0: "
          f"{attempt.residual_masks_unknown} pads uncancelled, "
          f"estimate error {err:.2e}  -> SAFE")

    full = coalition_view(network, ["mapper-1", "mapper-2", "mapper-3"])
    attempt = coalition_recovery_attempt(full, "mapper-0", mappers, protocol.codec)
    err = float(np.max(np.abs(attempt.estimate - secrets["mapper-0"])))
    print(f"Reducer + all other mappers vs mapper-0: "
          f"{attempt.residual_masks_unknown} pads uncancelled, "
          f"estimate error {err:.2e}  -> broken (inherent: sum minus "
          f"their inputs already reveals it)")

    print("\n=== 4. cost vs Paillier aggregation ===")
    start = time.perf_counter()
    for _ in range(10):
        protocol.sum_vectors(secrets)
    masking_time = (time.perf_counter() - start) / 10

    keypair = PaillierKeyPair.generate(bits=512, seed=1)
    pk = keypair.public_key
    ints = {m: [int(v * 2**20) for v in secrets[m]] for m in mappers}
    start = time.perf_counter()
    encrypted = [pk.encrypt_vector(ints[m], rng=rng) for m in mappers]
    acc = encrypted[0]
    for enc in encrypted[1:]:
        acc = [a + b for a, b in zip(acc, enc)]
    keypair.decrypt_vector(acc)
    paillier_time = time.perf_counter() - start

    print(f"masking protocol : {masking_time * 1e3:8.2f} ms per round (M={M}, dim={DIM})")
    print(f"paillier (512b)  : {paillier_time * 1e3:8.2f} ms per round")
    print(f"speedup          : {paillier_time / masking_time:8.1f}x")
    print("\n(the paper's design point: a handful of modular additions at "
          "the Reducer replaces per-element public-key crypto)")


if __name__ == "__main__":
    main()
