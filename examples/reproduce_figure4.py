"""Regenerate every panel of the paper's Fig. 4 and print the series.

By default runs the quick profile (reduced HIGGS/OCR subset sizes; same
difficulty regimes — see EXPERIMENTS.md).  Pass ``--paper`` for the full
paper-scale sizes (569 / 11,000 / 5,620; slow) or ``--panels bd`` to
restrict panels.

Run:  python examples/reproduce_figure4.py [--paper] [--panels abcdefgh]
"""

import argparse
import time

from repro.experiments import (
    ExperimentConfig,
    PAPER_SIZES,
    format_panel,
    run_panel,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper", action="store_true", help="full paper-scale sizes")
    parser.add_argument("--panels", default="abcdefgh", help="subset of panels to run")
    parser.add_argument("--max-iter", type=int, default=100, help="ADMM iterations")
    args = parser.parse_args()

    config = ExperimentConfig(max_iter=args.max_iter)
    if args.paper:
        config = config.with_sizes(PAPER_SIZES)

    for panel in args.panels:
        start = time.perf_counter()
        result = run_panel(panel, config)
        elapsed = time.perf_counter() - start
        print(format_panel(result, every=10))
        print(f"[panel {panel} regenerated in {elapsed:.1f}s]\n")


if __name__ == "__main__":
    main()
