"""Quickstart: privacy-preserving SVM training in ~20 lines.

Four organizations jointly train a linear SVM without any of them (or
the coordinating Reducer) ever seeing another's raw data.

Run:  python examples/quickstart.py
"""

from repro import PrivacyPreservingSVM, horizontal_partition
from repro.data import make_cancer_like, train_test_split


def main() -> None:
    # A 569-sample binary classification task (stand-in for the UCI
    # breast cancer set the paper evaluates on).
    dataset = make_cancer_like(seed=0)
    train, test = train_test_split(dataset, 0.5, seed=0)

    # Each of the 4 learners holds a random share of the rows (the
    # paper's horizontally partitioned setting, M = 4).
    partitions = horizontal_partition(train, n_learners=4, seed=0)

    # Train on the simulated Hadoop/Twister cluster with the secure
    # summation protocol at the Reducer (paper defaults C=50, rho=100).
    model = PrivacyPreservingSVM("horizontal", max_iter=50, seed=0)
    model.fit(partitions)

    print(f"test accuracy:            {model.score(test.X, test.y):.3f}")
    print(f"ADMM iterations:          {len(model.history_)}")
    print(f"final ||z(t+1)-z(t)||^2:  {model.history_.z_changes[-1]:.2e}")

    # The privacy ledger: raw training data never crossed the network,
    # and the Reducer only ever received masked shares.
    summary = model.communication_summary()
    print(f"raw data bytes moved:     {summary['raw_data_bytes_moved']:.0f}")
    print(f"total protocol bytes:     {summary['total_bytes']:.0f}")
    print(f"secure summation rounds:  {summary['secure_sum_rounds']:.0f}")


if __name__ == "__main__":
    main()
