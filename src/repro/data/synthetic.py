"""Synthetic stand-ins for the paper's three evaluation datasets.

The paper (Section VI) evaluates on three real data sets:

* **UCI breast cancer** — 9 features, 569 instances, "easy": a centralized
  SVM on a 50/50 split reaches ~95% accuracy;
* **HIGGS** — 28 features, 11,000 instances used, "hard": the classes are
  highly inseparable and the centralized SVM reaches only ~70%;
* **UCI optdigits (OCR)** — 64 features, 5,620 instances, "easy but highly
  correlated features" (~98%), chosen to stress the vertically partitioned
  scheme because learners must cooperate to exploit correlated columns.

This environment is offline, so we generate synthetic data calibrated to
the same *shapes* (n, k) and *difficulty levels* (achievable accuracy),
which is what the paper's convergence/accuracy figures actually exercise.
Each generator documents its calibration knob.

Calibration rationale: for two Gaussian classes with shared covariance and
Mahalanobis distance ``delta`` between the means, the Bayes accuracy is
``Phi(delta / 2)``.  We pick ``delta`` per dataset accordingly
(cancer 95% -> delta ~ 3.29, higgs 70% -> delta ~ 1.05 plus label noise,
ocr 98% -> delta ~ 4.11) and verify the resulting centralized-SVM accuracy
in ``benchmarks/bench_centralized_baseline.py``.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.rng import as_rng

__all__ = [
    "make_blobs",
    "make_cancer_like",
    "make_higgs_like",
    "make_linear_task",
    "make_ocr_like",
    "make_xor_task",
]


def _two_gaussians(
    n_samples: int,
    n_features: int,
    delta: float,
    rng: np.random.Generator,
    *,
    correlation: float = 0.0,
    balance: float = 0.5,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample two Gaussian classes with Mahalanobis separation ``delta``.

    ``correlation`` in [0, 1) mixes in a shared low-rank factor so that
    features become correlated without changing the separation (the mean
    shift is placed along an eigen-direction of the covariance).
    """
    n_pos = int(round(balance * n_samples))
    n_neg = n_samples - n_pos
    y = np.concatenate([np.ones(n_pos), -np.ones(n_neg)])

    direction = rng.standard_normal(n_features)
    direction /= np.linalg.norm(direction)

    noise = rng.standard_normal((n_samples, n_features))
    if correlation > 0.0:
        # Shared low-rank factors orthogonal to the discriminative direction
        # so they add nuisance correlation without aiding separation.
        n_factors = max(1, n_features // 4)
        loadings = rng.standard_normal((n_factors, n_features))
        loadings -= np.outer(loadings @ direction, direction)
        factors = rng.standard_normal((n_samples, n_factors))
        strength = np.sqrt(correlation / (1.0 - correlation))
        noise = noise + strength * factors @ loadings / np.sqrt(n_factors)

    X = noise + np.outer(y, direction) * (delta / 2.0)
    perm = rng.permutation(n_samples)
    return X[perm], y[perm]


def make_cancer_like(
    n_samples: int = 569,
    *,
    seed: int | np.random.Generator | None = 0,
) -> Dataset:
    """Stand-in for the UCI breast cancer set: 9 features, easy (~95%).

    Two well-separated Gaussian classes with mild feature correlation and
    the original 63/37 benign/malignant imbalance.
    """
    rng = as_rng(seed)
    X, y = _two_gaussians(n_samples, 9, delta=3.8, rng=rng, correlation=0.3, balance=0.37)
    return Dataset(X, y, name="cancer")


def make_higgs_like(
    n_samples: int = 11_000,
    *,
    seed: int | np.random.Generator | None = 0,
) -> Dataset:
    """Stand-in for HIGGS: 28 features, highly inseparable classes (~70%).

    A weak linear signal plus a weak nonlinear (quadratic) signal and
    irreducible label noise, capping achievable accuracy near 70% — the
    regime the paper uses to study slow consensus ("knowledge is hard to
    discover").
    """
    rng = as_rng(seed)
    n_features = 28
    X = rng.standard_normal((n_samples, n_features))
    w = rng.standard_normal(n_features)
    w /= np.linalg.norm(w)
    pair = rng.choice(n_features, size=2, replace=False)
    score = 0.9 * X @ w + 0.45 * X[:, pair[0]] * X[:, pair[1]]
    y = np.sign(score)
    y[y == 0] = 1.0
    # Irreducible noise: flip ~22% of labels; combined with the weak
    # signal this lands the centralized SVM near the paper's 70%.
    flips = rng.random(n_samples) < 0.22
    y[flips] *= -1.0
    return Dataset(X, y, name="higgs")


def make_ocr_like(
    n_samples: int = 5_620,
    *,
    seed: int | np.random.Generator | None = 0,
) -> Dataset:
    """Stand-in for UCI optdigits OCR: 64 correlated features, easy (~98%).

    Samples are noisy renderings of two 8x8 "digit prototypes".  Features
    are highly correlated through shared low-rank stroke factors — the
    property the paper singles out as stressing the vertical scheme
    (learners holding different pixels must cooperate).
    """
    rng = as_rng(seed)
    n_features = 64
    prototype_a = rng.standard_normal(n_features)
    prototype_b = rng.standard_normal(n_features)
    gap = prototype_a - prototype_b
    gap_norm = np.linalg.norm(gap)
    # Rescale prototypes so the class separation yields ~98% accuracy under
    # the noise model below (unit pixel noise + correlated stroke factors).
    target_delta = 4.0
    prototype_a = prototype_a * (target_delta / gap_norm)
    prototype_b = prototype_b * (target_delta / gap_norm)

    n_pos = n_samples // 2
    n_neg = n_samples - n_pos
    y = np.concatenate([np.ones(n_pos), -np.ones(n_neg)])
    base = np.where(y[:, None] > 0, prototype_a[None, :], prototype_b[None, :])

    # Correlated "stroke" factors: rank-8 structure shared by all pixels.
    n_factors = 8
    loadings = rng.standard_normal((n_factors, n_features))
    factors = rng.standard_normal((n_samples, n_factors))
    correlated = factors @ loadings / np.sqrt(n_factors)

    X = base + 1.8 * correlated + 0.7 * rng.standard_normal((n_samples, n_features))
    perm = rng.permutation(n_samples)
    return Dataset(X[perm], y[perm], name="ocr")


def make_linear_task(
    n_samples: int = 200,
    n_features: int = 5,
    *,
    margin: float = 0.5,
    noise: float = 0.0,
    seed: int | np.random.Generator | None = 0,
) -> Dataset:
    """A linearly separable task with a guaranteed margin (for unit tests).

    Points are sampled uniformly, labeled by a random hyperplane through
    the origin with bias, and points inside the margin band are pushed out
    so the problem is separable with functional margin >= ``margin``.
    ``noise`` flips that fraction of labels afterwards.
    """
    rng = as_rng(seed)
    w = rng.standard_normal(n_features)
    w /= np.linalg.norm(w)
    b = float(rng.uniform(-0.2, 0.2))
    X = rng.uniform(-2.0, 2.0, size=(n_samples, n_features))
    scores = X @ w + b
    y = np.sign(scores)
    y[y == 0] = 1.0
    # Push points out of the margin band.
    inside = np.abs(scores) < margin
    X[inside] += np.outer(y[inside] * (margin - np.abs(scores[inside])), w)
    if noise > 0.0:
        flips = rng.random(n_samples) < noise
        y[flips] *= -1.0
    return Dataset(X, y, name="linear")


def make_xor_task(
    n_samples: int = 400,
    *,
    noise: float = 0.15,
    seed: int | np.random.Generator | None = 0,
) -> Dataset:
    """The classic XOR task — linearly inseparable, easy for RBF kernels.

    Used by tests to check that the kernel variants genuinely beat their
    linear counterparts where the paper's nonlinear machinery matters.
    """
    rng = as_rng(seed)
    centers = np.array([[1.0, 1.0], [-1.0, -1.0], [1.0, -1.0], [-1.0, 1.0]])
    labels = np.array([1.0, 1.0, -1.0, -1.0])
    which = rng.integers(0, 4, size=n_samples)
    X = centers[which] + noise * rng.standard_normal((n_samples, 2))
    y = labels[which]
    return Dataset(X, y, name="xor")


def make_blobs(
    n_samples: int = 100,
    n_features: int = 2,
    *,
    delta: float = 4.0,
    balance: float = 0.5,
    seed: int | np.random.Generator | None = 0,
) -> Dataset:
    """Two isotropic Gaussian blobs with separation ``delta`` (test helper)."""
    rng = as_rng(seed)
    X, y = _two_gaussians(n_samples, n_features, delta=delta, rng=rng, balance=balance)
    return Dataset(X, y, name="blobs")
