"""A small immutable container pairing a design matrix with labels."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import check_labels, check_matrix

__all__ = ["Dataset"]


@dataclass(frozen=True)
class Dataset:
    """A binary-classification dataset.

    Attributes
    ----------
    X:
        ``(n_samples, n_features)`` design matrix.
    y:
        ``(n_samples,)`` vector of -1/+1 labels.
    name:
        Human-readable identifier (used by the experiment harness when
        printing figure series, e.g. ``"cancer"``).
    """

    X: np.ndarray
    y: np.ndarray
    name: str = field(default="dataset")

    def __post_init__(self) -> None:
        X = check_matrix(self.X, "X")
        y = check_labels(self.y, "y", length=X.shape[0])
        object.__setattr__(self, "X", X)
        object.__setattr__(self, "y", y)

    @property
    def n_samples(self) -> int:
        """Number of rows."""
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        """Number of columns."""
        return self.X.shape[1]

    def subset(self, indices: np.ndarray, name: str | None = None) -> "Dataset":
        """Return the dataset restricted to ``indices`` (rows)."""
        idx = np.asarray(indices, dtype=int)
        return Dataset(self.X[idx], self.y[idx], name or self.name)

    def feature_subset(self, columns: np.ndarray, name: str | None = None) -> "Dataset":
        """Return the dataset restricted to ``columns`` (features)."""
        cols = np.asarray(columns, dtype=int)
        return Dataset(self.X[:, cols], self.y, name or self.name)

    def class_balance(self) -> float:
        """Fraction of samples labeled +1."""
        return float(np.mean(self.y > 0))

    def __len__(self) -> int:
        return self.n_samples

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Dataset(name={self.name!r}, n_samples={self.n_samples}, "
            f"n_features={self.n_features}, balance={self.class_balance():.2f})"
        )
