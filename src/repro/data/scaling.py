"""Feature standardization.

SVM solvers (centralized and distributed alike) are sensitive to feature
scales; the experiment harness standardizes features on the training half
and applies the same transform to the test half.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.validation import check_matrix

__all__ = ["StandardScaler"]


class StandardScaler:
    """Zero-mean / unit-variance standardization fit on training data.

    Constant features (zero variance) are left centered but unscaled to
    avoid division by zero.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X) -> "StandardScaler":
        """Estimate per-feature mean and standard deviation."""
        X = check_matrix(X, "X")
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X) -> np.ndarray:
        """Apply the fitted standardization."""
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler must be fit before transform")
        X = check_matrix(X, "X")
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, scaler was fit on {self.mean_.shape[0]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        """Fit on ``X`` and return the transformed matrix."""
        return self.fit(X).transform(X)

    def transform_dataset(self, dataset: Dataset) -> Dataset:
        """Return a new :class:`Dataset` with standardized features."""
        return Dataset(self.transform(dataset.X), dataset.y, dataset.name)
