"""Train/test split helpers.

Section VI of the paper evaluates every dataset with a 50/50 train/test
split; :func:`train_test_split` defaults to that protocol.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.rng import as_rng
from repro.utils.validation import check_probability

__all__ = ["kfold_indices", "train_test_split"]


def train_test_split(
    dataset: Dataset,
    test_fraction: float = 0.5,
    *,
    stratify: bool = True,
    seed: int | np.random.Generator | None = None,
) -> tuple[Dataset, Dataset]:
    """Split ``dataset`` into train and test subsets.

    Parameters
    ----------
    dataset:
        The dataset to split.
    test_fraction:
        Fraction of samples assigned to the test set (paper uses 0.5).
    stratify:
        Preserve the class balance in both halves (recommended; the
        paper's random 50/50 split is stratified in expectation).
    seed:
        RNG seed for reproducibility.

    Returns
    -------
    (train, test):
        Two :class:`Dataset` instances named ``"<name>/train"`` and
        ``"<name>/test"``.
    """
    test_fraction = check_probability(test_fraction, "test_fraction")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = as_rng(seed)
    n = dataset.n_samples

    if stratify:
        test_mask = np.zeros(n, dtype=bool)
        for label in (-1.0, 1.0):
            class_idx = np.flatnonzero(dataset.y == label)
            rng.shuffle(class_idx)
            n_test = int(round(test_fraction * class_idx.size))
            test_mask[class_idx[:n_test]] = True
        test_idx = np.flatnonzero(test_mask)
        train_idx = np.flatnonzero(~test_mask)
    else:
        perm = rng.permutation(n)
        n_test = int(round(test_fraction * n))
        test_idx = perm[:n_test]
        train_idx = perm[n_test:]

    if train_idx.size == 0 or test_idx.size == 0:
        raise ValueError("split produced an empty train or test set")
    train = dataset.subset(train_idx, f"{dataset.name}/train")
    test = dataset.subset(test_idx, f"{dataset.name}/test")
    return train, test


def kfold_indices(
    n_samples: int,
    n_folds: int,
    *,
    seed: int | np.random.Generator | None = None,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Return ``n_folds`` (train_idx, test_idx) pairs covering all samples.

    Folds are contiguous chunks of a random permutation; sizes differ by at
    most one sample.
    """
    if n_folds < 2:
        raise ValueError(f"n_folds must be >= 2, got {n_folds}")
    if n_samples < n_folds:
        raise ValueError(f"need at least {n_folds} samples, got {n_samples}")
    rng = as_rng(seed)
    perm = rng.permutation(n_samples)
    folds = np.array_split(perm, n_folds)
    out: list[tuple[np.ndarray, np.ndarray]] = []
    for i, test_idx in enumerate(folds):
        train_idx = np.concatenate([f for j, f in enumerate(folds) if j != i])
        out.append((train_idx, test_idx))
    return out
