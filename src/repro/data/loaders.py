"""File loaders and writers for real datasets.

The reproduction ships synthetic stand-ins (no network access), but a
downstream user with the actual UCI / HIGGS files should be able to run
everything unchanged.  This module parses the two formats those
datasets are distributed in:

* **CSV** — numeric columns with the label in a configurable column
  (UCI breast cancer, HIGGS);
* **LIBSVM / svmlight** — ``label idx:value ...`` sparse lines
  (the format LIBSVM's site distributes many of these sets in).

Labels are normalized to -1/+1: two distinct raw label values are
mapped by order (smaller -> -1), matching the paper's binary setting.
Writers are provided so datasets can be round-tripped and shared.
"""

from __future__ import annotations

import os

import numpy as np

from repro.data.dataset import Dataset

__all__ = ["load_csv", "load_libsvm", "save_csv", "save_libsvm"]


def _normalize_labels(raw: np.ndarray, name: str) -> np.ndarray:
    values = np.unique(raw)
    if values.size != 2:
        raise ValueError(
            f"{name}: expected exactly 2 label values, found {values.size} ({values[:5]}...)"
        )
    if set(values.tolist()) == {-1.0, 1.0}:
        return raw
    return np.where(raw == values[0], -1.0, 1.0)


def load_csv(
    path: str | os.PathLike,
    *,
    label_column: int = -1,
    delimiter: str = ",",
    skip_header: int = 0,
    name: str | None = None,
) -> Dataset:
    """Load a numeric CSV file as a :class:`Dataset`.

    Parameters
    ----------
    path:
        File to read.
    label_column:
        Index of the label column (negative indices allowed; HIGGS puts
        the label first: use ``label_column=0``).
    delimiter, skip_header:
        CSV dialect knobs.
    name:
        Dataset name (defaults to the file stem).
    """
    data = np.genfromtxt(path, delimiter=delimiter, skip_header=skip_header, dtype=float)
    if data.ndim == 1:
        data = data.reshape(1, -1)
    if data.size == 0:
        raise ValueError(f"{path}: no rows parsed")
    if not np.all(np.isfinite(data)):
        raise ValueError(f"{path}: contains missing or non-numeric values")
    n_cols = data.shape[1]
    label_idx = label_column % n_cols
    y = _normalize_labels(data[:, label_idx], str(path))
    X = np.delete(data, label_idx, axis=1)
    stem = os.path.splitext(os.path.basename(str(path)))[0]
    return Dataset(X, y, name or stem)


def save_csv(dataset: Dataset, path: str | os.PathLike, *, label_column: int = -1) -> None:
    """Write a :class:`Dataset` as numeric CSV (inverse of :func:`load_csv`)."""
    n_cols = dataset.n_features + 1
    label_idx = label_column % n_cols
    columns = []
    feature_iter = iter(range(dataset.n_features))
    for col in range(n_cols):
        if col == label_idx:
            columns.append(dataset.y)
        else:
            columns.append(dataset.X[:, next(feature_iter)])
    np.savetxt(path, np.column_stack(columns), delimiter=",", fmt="%.10g")


def load_libsvm(
    path: str | os.PathLike,
    *,
    n_features: int | None = None,
    name: str | None = None,
) -> Dataset:
    """Load a LIBSVM/svmlight-format file as a dense :class:`Dataset`.

    Lines look like ``+1 1:0.5 3:-1.2``; indices are 1-based; omitted
    features are 0.  ``n_features`` overrides the inferred width (needed
    when trailing features are absent from every line).
    """
    labels: list[float] = []
    rows: list[dict[int, float]] = []
    max_index = 0
    with open(path) as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            try:
                labels.append(float(parts[0]))
            except ValueError as exc:
                raise ValueError(f"{path}:{line_no}: bad label {parts[0]!r}") from exc
            entries: dict[int, float] = {}
            for token in parts[1:]:
                try:
                    idx_str, value_str = token.split(":", 1)
                    idx = int(idx_str)
                    value = float(value_str)
                except ValueError as exc:
                    raise ValueError(f"{path}:{line_no}: bad feature token {token!r}") from exc
                if idx < 1:
                    raise ValueError(f"{path}:{line_no}: indices are 1-based, got {idx}")
                entries[idx] = value
                max_index = max(max_index, idx)
            rows.append(entries)
    if not rows:
        raise ValueError(f"{path}: no samples parsed")

    width = n_features if n_features is not None else max_index
    if width < max_index:
        raise ValueError(f"n_features={width} smaller than max index {max_index}")
    X = np.zeros((len(rows), width))
    for i, entries in enumerate(rows):
        for idx, value in entries.items():
            X[i, idx - 1] = value
    y = _normalize_labels(np.asarray(labels), str(path))
    stem = os.path.splitext(os.path.basename(str(path)))[0]
    return Dataset(X, y, name or stem)


def save_libsvm(dataset: Dataset, path: str | os.PathLike, *, sparse_zeros: bool = True) -> None:
    """Write a :class:`Dataset` in LIBSVM format.

    ``sparse_zeros`` omits zero-valued features (the conventional
    encoding); set False to write every feature explicitly.
    """
    with open(path, "w") as handle:
        for x, label in zip(dataset.X, dataset.y):
            tokens = [f"{int(label):+d}"]
            for idx, value in enumerate(x, start=1):
                if sparse_zeros and value == 0.0:
                    continue
                tokens.append(f"{idx}:{value:.10g}")
            handle.write(" ".join(tokens) + "\n")
