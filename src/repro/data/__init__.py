"""Datasets: synthetic stand-ins for the paper's three evaluation sets.

The paper evaluates on UCI breast cancer, HIGGS, and UCI optdigits (OCR).
This environment has no network access, so :mod:`repro.data.synthetic`
provides generators calibrated to the same shapes and difficulty levels
(see DESIGN.md, "Substitutions").  :mod:`repro.data.splits` provides the
50/50 train/test protocol used throughout Section VI.
"""

from repro.data.dataset import Dataset
from repro.data.loaders import load_csv, load_libsvm, save_csv, save_libsvm
from repro.data.scaling import StandardScaler
from repro.data.splits import kfold_indices, train_test_split
from repro.data.synthetic import (
    make_blobs,
    make_cancer_like,
    make_higgs_like,
    make_linear_task,
    make_ocr_like,
    make_xor_task,
)

__all__ = [
    "Dataset",
    "StandardScaler",
    "kfold_indices",
    "load_csv",
    "load_libsvm",
    "make_blobs",
    "make_cancer_like",
    "make_higgs_like",
    "make_linear_task",
    "make_ocr_like",
    "make_xor_task",
    "save_csv",
    "save_libsvm",
    "train_test_split",
]
