"""Cryptographic substrate for the privacy-preserving trainers.

The paper's scheme needs exactly one cryptographic primitive at run time:
a **coalition-resistant secure summation** executed by the Reducer every
iteration (Section V).  This package implements that protocol over the
simulated cluster network, plus the supporting and comparison machinery:

* :mod:`repro.crypto.fixed_point` — float vectors ↔ the integer group
  Z_q the masking protocol operates in;
* :mod:`repro.crypto.secure_sum` — the paper's protocol (Protocol 1) and
  its :class:`~repro.cluster.twister.Aggregator` adapter;
* :mod:`repro.crypto.paillier` — an additively homomorphic cryptosystem,
  used by the SMC-style baselines the paper compares against in related
  work (e.g. secure kernel computation [28], BP training [30]);
* :mod:`repro.crypto.secret_sharing` — additive and Shamir sharing, an
  alternative aggregation backend with a different trust model;
* :mod:`repro.crypto.dot_product` — the classic two-party secure dot
  product protocol on which the kernel-sharing baselines rest.
"""

from repro.crypto.dot_product import secure_dot_product
from repro.crypto.fixed_point import FixedPointCodec
from repro.crypto.paillier import PaillierCiphertext, PaillierKeyPair, PaillierPublicKey
from repro.crypto.secret_sharing import (
    additive_reconstruct,
    additive_share,
    shamir_reconstruct,
    shamir_share,
)
from repro.crypto.secure_sum import SecureSumAggregator, SecureSummationProtocol
from repro.crypto.threshold_sum import ThresholdSumAggregator, ThresholdSummationProtocol

__all__ = [
    "FixedPointCodec",
    "PaillierCiphertext",
    "PaillierKeyPair",
    "PaillierPublicKey",
    "SecureSumAggregator",
    "SecureSummationProtocol",
    "ThresholdSumAggregator",
    "ThresholdSummationProtocol",
    "additive_reconstruct",
    "additive_share",
    "secure_dot_product",
    "shamir_reconstruct",
    "shamir_share",
]
