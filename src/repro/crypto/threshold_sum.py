"""Dropout-robust secure summation via Shamir sharing (extension).

The paper's masking protocol (Section V) has an availability weakness:
if any single Mapper crashes between exchanging masks and sending its
masked share, the Reducer's sum is garbage — the crashed Mapper's
pairwise pads never cancel.  Production secure-aggregation systems fix
this with threshold secret sharing; this module implements that
extension on the same simulated substrate so the trade-off can be
measured (see the fault-injection tests):

1. each Mapper fixed-point-encodes its vector into the prime field and
   **Shamir-shares** every element among all M Mappers with threshold
   ``t`` (Mapper *j* holds the evaluations at x = j+1);
2. each Mapper sums, elementwise, all the shares it holds — Shamir
   sharing is linear, so these are shares *of the sum*;
3. alive Mappers send their aggregated share to the Reducer;
4. the Reducer Lagrange-interpolates from any ``t`` aggregated shares.

Privacy: any coalition of fewer than ``t`` Mappers (plus the Reducer,
who only ever sees shares of the *sum*) learns nothing about an
individual input.  Robustness: up to ``M - t`` Mappers may crash after
step 1 and the sum — still including their contributions — survives.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.network import Network
from repro.crypto.fixed_point import FixedPointCodec
from repro.crypto.secret_sharing import (
    MERSENNE_PRIME_127,
    shamir_lagrange_weights,
    shamir_share,
)
from repro.obs.audit import ProtocolAuditLog
from repro.utils.rng import as_rng, spawn_rngs

__all__ = ["ThresholdSumAggregator", "ThresholdSummationProtocol"]


class ThresholdSummationProtocol:
    """t-of-M dropout-robust secure summation.

    Parameters
    ----------
    network:
        The cluster fabric.
    participant_ids:
        Mapper node ids; their order fixes the Shamir x-coordinates.
    reducer_id:
        The Reducer node id.
    threshold:
        Minimum number of surviving Mappers needed to reconstruct.
    codec:
        Fixed-point codec; must operate in the protocol's prime field
        (constructed automatically when omitted).
    prime:
        The Shamir field.
    audit:
        Optional :class:`~repro.obs.audit.ProtocolAuditLog`; when given,
        each round's share distribution and reconstruction are recorded
        and the threshold/share-count invariants are checked live.
    """

    def __init__(
        self,
        network: Network,
        participant_ids: list[str],
        reducer_id: str,
        *,
        threshold: int | None = None,
        codec: FixedPointCodec | None = None,
        prime: int = MERSENNE_PRIME_127,
        seed: int | np.random.Generator | None = None,
        audit: ProtocolAuditLog | None = None,
    ) -> None:
        if len(participant_ids) < 2:
            raise ValueError("threshold summation needs at least 2 participants")
        if len(set(participant_ids)) != len(participant_ids):
            raise ValueError("participant ids must be unique")
        if reducer_id in participant_ids:
            raise ValueError("the reducer cannot be a participant")
        n = len(participant_ids)
        self.threshold = threshold if threshold is not None else (n // 2 + 1)
        if not 2 <= self.threshold <= n:
            raise ValueError(f"threshold must be in [2, {n}], got {self.threshold}")
        self.network = network
        self.participants = list(participant_ids)
        self.reducer_id = reducer_id
        self.prime = prime
        if codec is None:
            codec = FixedPointCodec(fractional_bits=40, max_terms=max(n, 2), modulus=prime)
        elif codec.modulus != prime:
            raise ValueError("codec modulus must equal the Shamir field prime")
        self.codec = codec
        self.audit = audit
        for node in [*self.participants, reducer_id]:
            network.register(node)
        self._rngs = dict(zip(self.participants, spawn_rngs(as_rng(seed), n)))

    def sum_vectors(
        self,
        values: dict[str, np.ndarray],
        *,
        dropouts: set[str] | frozenset[str] = frozenset(),
    ) -> np.ndarray:
        """Run one aggregation round.

        ``dropouts`` simulates Mappers that crash *after* distributing
        their input shares but *before* sending their aggregated share —
        the failure mode that breaks the masking protocol.  Their inputs
        are still included in the reconstructed sum.
        """
        if set(values) != set(self.participants):
            raise ValueError("values must cover exactly the participants")
        dropouts = set(dropouts)
        unknown = dropouts - set(self.participants)
        if unknown:
            raise ValueError(f"unknown dropout ids {sorted(unknown)}")
        alive = [p for p in self.participants if p not in dropouts]
        if len(alive) < self.threshold:
            raise ValueError(
                f"only {len(alive)} participants alive; threshold is {self.threshold}"
            )
        lengths = {len(np.asarray(v, dtype=float).ravel()) for v in values.values()}
        if len(lengths) != 1:
            raise ValueError(f"all vectors must share one length, got {sorted(lengths)}")
        (dim,) = lengths
        metrics = self.network.metrics
        tracer = self.network.tracer
        n = len(self.participants)

        with tracer.span(
            "crypto.threshold_sum",
            kind="crypto",
            n_participants=n,
            threshold=self.threshold,
            n_dropouts=len(dropouts),
            vector_length=dim,
        ):
            if self.audit is not None:
                self.audit.begin_round(
                    "threshold-sum",
                    self.participants,
                    threshold=self.threshold,
                    expected_senders=alive,
                )
            # Step 1: share each element among all participants.
            # outgoing[src][dst] = list over elements of that dst's share
            # value.
            incoming: dict[str, list[list[int]]] = {p: [] for p in self.participants}
            with tracer.span("crypto.share_distribution", kind="crypto"):
                for src in self.participants:
                    encoded = self.codec.encode_array(values[src])
                    rng = self._rngs[src]
                    per_dst: list[list[int]] = [[] for _ in range(n)]
                    for residue in encoded:
                        shares = shamir_share(
                            residue, n, self.threshold, prime=self.prime, rng=rng
                        )
                        for j, (_, share_value) in enumerate(shares):
                            per_dst[j].append(share_value)
                        metrics.increment("crypto.shamir_shares_generated", n)
                    for j, dst in enumerate(self.participants):
                        if dst == src:
                            incoming[dst].append(per_dst[j])
                        else:
                            self.network.send(src, dst, per_dst[j], kind="threshold-share")
                for dst in self.participants:
                    for _ in range(n - 1):
                        incoming[dst].append(
                            self.network.receive(dst, kind="threshold-share")
                        )

            # Step 2/3: alive participants aggregate their shares and
            # forward.  Shamir sharing is linear, so the elementwise sum
            # of held share vectors — one vectorized modular add per
            # incoming vector — is a share vector of the summed secret.
            with tracer.span("crypto.share_aggregation", kind="crypto"):
                for p in alive:
                    aggregated = self.codec.zeros_array(dim)
                    for share_vec in incoming[p]:
                        aggregated = self.codec.add(aggregated, share_vec)
                    x_coord = self.participants.index(p) + 1
                    self.network.send(
                        p, self.reducer_id, (x_coord, aggregated), kind="threshold-agg-share"
                    )
                    if self.audit is not None:
                        self.audit.share_sent(p)

            # Step 4: reconstruct from the first `threshold` aggregated
            # shares.  The Lagrange-at-zero weights depend only on the
            # x-coordinates, so they are computed once and applied to the
            # whole vector as a weighted modular sum — identical residues
            # to per-element interpolation.
            with tracer.span(
                "crypto.shamir_reconstruct", kind="crypto", node=self.reducer_id
            ):
                received: list[tuple[int, list[int]]] = []
                for _ in alive:
                    message = self.network.receive_message(
                        self.reducer_id, kind="threshold-agg-share"
                    )
                    received.append(message.payload)
                    if self.audit is not None:
                        self.audit.share_received(message.src)
                chosen = received[: self.threshold]
                weights = shamir_lagrange_weights(
                    [x for x, _ in chosen], prime=self.prime
                )
                totals = self.codec.zeros_array(dim)
                for weight, (_, share_vec) in zip(weights, chosen):
                    scaled = [(weight * int(s)) % self.prime for s in share_vec]
                    totals = self.codec.add(totals, scaled)
            metrics.increment("crypto.threshold_sum_rounds", 1)
            if self.audit is not None:
                self.audit.reconstruction(len(chosen), ok=True)
                self.audit.end_round()
            return self.codec.decode(totals)


class ThresholdSumAggregator:
    """Twister :class:`~repro.cluster.twister.Aggregator` using Shamir shares.

    Drop-in alternative to
    :class:`~repro.crypto.secure_sum.SecureSumAggregator` with the
    t-of-M robustness profile: pass ``dropout_schedule`` (iteration
    index -> set of crashing mapper ids) to fault-injection experiments;
    the consensus still forms as long as >= ``threshold`` mappers
    survive each round.
    """

    def __init__(
        self,
        *,
        threshold: int | None = None,
        prime: int = MERSENNE_PRIME_127,
        seed: int | np.random.Generator | None = None,
        dropout_schedule: dict[int, set[str]] | None = None,
        audit: ProtocolAuditLog | None = None,
    ) -> None:
        self.threshold = threshold
        self.prime = prime
        self.seed = as_rng(seed)
        self.dropout_schedule = dropout_schedule or {}
        self.audit = audit
        self._protocol: ThresholdSummationProtocol | None = None
        self._round = 0

    def aggregate(
        self,
        outputs: dict[str, dict[str, np.ndarray]],
        reducer_id: str,
        network: Network,
    ) -> dict[str, np.ndarray]:
        """Shamir-aggregate mapper outputs, tolerating scheduled dropouts."""
        participants = sorted(outputs)
        if self._protocol is None or self._protocol.participants != participants:
            self._protocol = ThresholdSummationProtocol(
                network,
                participants,
                reducer_id,
                threshold=self.threshold,
                prime=self.prime,
                seed=self.seed,
                audit=self.audit,
            )
        keys = sorted(outputs[participants[0]])
        layout = [
            (k, np.asarray(outputs[participants[0]][k], dtype=float).shape) for k in keys
        ]
        flat = {
            p: np.concatenate(
                [np.asarray(outputs[p][k], dtype=float).ravel() for k in keys]
            )
            for p in participants
        }
        dropouts = self.dropout_schedule.get(self._round, set())
        self._round += 1
        summed = self._protocol.sum_vectors(flat, dropouts=dropouts)
        result: dict[str, np.ndarray] = {}
        offset = 0
        for key, shape in layout:
            size = int(np.prod(shape)) if shape else 1
            result[key] = summed[offset : offset + size].reshape(shape)
            offset += size
        return result
