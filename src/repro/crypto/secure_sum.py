"""The paper's coalition-resistant secure summation protocol (Section V).

Protocol (verbatim from the paper, for ``M`` Mappers and one Reducer):

1. each Mapper generates ``M-1`` random numbers;
2. each Mapper sends its ``M-1`` numbers to the other ``M-1`` Mappers,
   one each;
3. Mapper *i* sums its generated numbers as ``Sed_i`` and its received
   numbers as ``Rev_i``;
4. Mapper *i* sends ``w_i + Sed_i - Rev_i`` to the Reducer;
5. the Reducer sums the received values: every random number was added
   once (by its generator) and subtracted once (by its receiver), so the
   masks cancel and the Reducer obtains ``sum_i w_i`` — and nothing else.

Each individual share is hidden by ``Sed_i - Rev_i``; because masks are
exchanged pairwise, the share of Mapper *i* stays uniformly distributed
even if the Reducer colludes with all Mappers except one (the mask
shared with the remaining honest Mapper still acts as a one-time pad) —
that is the coalition resistance.

Arithmetic happens in Z_q via :class:`~repro.crypto.fixed_point.FixedPointCodec`
so the pad is information-theoretically uniform; every message travels
through the simulated :class:`~repro.cluster.network.Network`, so the
protocol's cost and the adversary's wire view are both measurable.

Two mask modes are provided:

* ``"fresh"`` (paper-faithful): new random numbers are exchanged over
  the network on every invocation — O(M²) mask messages per iteration;
* ``"prg"`` (an optimization the paper hints at by citing efficiency,
  standard in later secure-aggregation literature): each unordered pair
  of Mappers agrees on a seed once, then derives that round's pad from a
  pairwise PRG stream — zero mask traffic after setup, same privacy
  against a semi-honest Reducer.

Observability: each invocation emits a ``crypto.secure_sum`` span whose
children time the protocol phases (``crypto.mask_exchange`` or
``crypto.pad_derivation``, ``crypto.masked_shares``,
``crypto.reduce_sum``); per-op costs are counted by the ``crypto.*``
counters listed in ``docs/OBSERVABILITY.md``, which a
:class:`~repro.cluster.profiling.Profiler` attributes to iterations.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.network import Network
from repro.cluster.twister import Aggregator
from repro.crypto.fixed_point import FixedPointCodec
from repro.obs.audit import ProtocolAuditLog
from repro.utils.rng import as_rng, spawn_rngs

__all__ = ["SecureSumAggregator", "SecureSummationProtocol"]


class SecureSummationProtocol:
    """Executable instance of the paper's Protocol 1.

    Parameters
    ----------
    network:
        The cluster fabric; all mask and share messages go through it.
    participant_ids:
        The Mapper node ids (order fixes pairwise-seed assignment).
    reducer_id:
        The Reducer node id.
    codec:
        Fixed-point codec; defaults to 40 fractional bits in a 128-bit
        group.
    mode:
        ``"fresh"`` or ``"prg"`` (see module docstring).
    seed:
        Seed for all mask randomness (per-participant streams are split
        off deterministically).
    audit:
        Optional :class:`~repro.obs.audit.ProtocolAuditLog`; when given,
        every mask application/removal, pad derivation, seed agreement,
        and share transfer is recorded and the protocol's invariants are
        checked at the end of every round.
    """

    def __init__(
        self,
        network: Network,
        participant_ids: list[str],
        reducer_id: str,
        *,
        codec: FixedPointCodec | None = None,
        mode: str = "fresh",
        seed: int | np.random.Generator | None = None,
        audit: ProtocolAuditLog | None = None,
    ) -> None:
        if len(participant_ids) < 2:
            raise ValueError("secure summation needs at least 2 participants")
        if len(set(participant_ids)) != len(participant_ids):
            raise ValueError("participant ids must be unique")
        if reducer_id in participant_ids:
            raise ValueError("the reducer cannot be a participant")
        if mode not in ("fresh", "prg"):
            raise ValueError(f"mode must be 'fresh' or 'prg', got {mode!r}")
        self.network = network
        self.participants = list(participant_ids)
        self.reducer_id = reducer_id
        self.codec = codec if codec is not None else FixedPointCodec()
        self.mode = mode
        self.audit = audit
        # Fault-injection hook for the auditor's own tests: when set to a
        # ``(generator, receiver)`` pair, the receiver silently fails to
        # net off that one mask each round — the classic imbalance the
        # runtime audit must catch (and the sum becomes garbage).
        self._audit_fault: tuple[str, str] | None = None

        for node in [*self.participants, reducer_id]:
            network.register(node)

        self._rngs = dict(zip(self.participants, spawn_rngs(as_rng(seed), len(self.participants))))
        self._pair_rngs: dict[tuple[str, str], np.random.Generator] = {}
        if mode == "prg":
            self._exchange_pairwise_seeds()

    def _exchange_pairwise_seeds(self) -> None:
        """One-time pairwise seed agreement for ``"prg"`` mode.

        The lower-indexed participant of each pair draws a seed and sends
        it to its partner; both then derive identical pad streams.

        Emits one ``crypto.seed_exchange`` span and the
        ``crypto.mask_seeds_exchanged`` counter per pair.
        """
        with self.network.tracer.span(
            "crypto.seed_exchange", kind="crypto", n_participants=len(self.participants)
        ):
            for i, a in enumerate(self.participants):
                for b in self.participants[i + 1 :]:
                    pair_seed = int(self._rngs[a].integers(0, 2**63 - 1))
                    self.network.send(a, b, pair_seed, kind="mask-seed")
                    received = self.network.receive(b, kind="mask-seed")
                    self._pair_rngs[(a, b)] = as_rng(received)
                    self.network.metrics.increment("crypto.mask_seeds_exchanged", 1)
                    if self.audit is not None:
                        self.audit.seed_agreed(a, b)

    def sum_vectors(self, values: dict[str, np.ndarray]) -> np.ndarray:
        """Run the protocol once, returning the elementwise sum.

        ``values`` maps each participant id to its private real vector;
        all vectors must have the same length.  The return value equals
        the true sum up to fixed-point rounding (about
        ``2^-fractional_bits`` per term).

        Emits a ``crypto.secure_sum`` span with per-phase child spans,
        plus the ``crypto.masks_generated`` /
        ``crypto.masked_shares_sent`` / ``crypto.secure_sum_rounds``
        counters (one increment per op, so a
        :class:`~repro.cluster.profiling.Profiler` can attribute them to
        the enclosing iteration).
        """
        if set(values) != set(self.participants):
            raise ValueError(
                f"values must cover exactly the participants; got {sorted(values)} "
                f"vs {sorted(self.participants)}"
            )
        lengths = {len(np.asarray(v, dtype=float).ravel()) for v in values.values()}
        if len(lengths) != 1:
            raise ValueError(f"all vectors must share one length, got {sorted(lengths)}")
        (n,) = lengths
        metrics = self.network.metrics
        tracer = self.network.tracer

        with tracer.span(
            "crypto.secure_sum",
            kind="crypto",
            mode=self.mode,
            n_participants=len(self.participants),
            vector_length=n,
        ):
            if self.audit is not None:
                self.audit.begin_round("secure-sum", self.participants)
            encoded = {p: self.codec.encode_array(values[p]) for p in self.participants}
            net_mask = {p: self.codec.zeros_array(n) for p in self.participants}

            if self.mode == "fresh":
                # Steps 1-3: generate, exchange, and net out the pairwise
                # masks (each mask is one packed residue array; netting
                # is a vectorized carry-propagating limb op).
                with tracer.span("crypto.mask_exchange", kind="crypto"):
                    for sender in self.participants:
                        for receiver in self.participants:
                            if receiver == sender:
                                continue
                            mask = self.codec.random_vector_array(n, self._rngs[sender])
                            metrics.increment("crypto.masks_generated", 1)
                            self.network.send(sender, receiver, mask, kind="mask")
                            net_mask[sender] = self.codec.add(net_mask[sender], mask)  # Sed
                            if self.audit is not None:
                                self.audit.mask_applied(sender, receiver)
                    for receiver in self.participants:
                        for _ in range(len(self.participants) - 1):
                            mask_message = self.network.receive_message(
                                receiver, kind="mask"
                            )
                            if self._audit_fault == (mask_message.src, receiver):
                                continue  # injected fault: mask never netted
                            net_mask[receiver] = self.codec.subtract(
                                net_mask[receiver], mask_message.payload
                            )  # Rev
                            if self.audit is not None:
                                self.audit.mask_removed(receiver, mask_message.src)
            else:
                # PRG mode: pads come from the shared pairwise streams; the
                # lower-indexed partner adds, the higher-indexed one
                # subtracts.
                with tracer.span("crypto.pad_derivation", kind="crypto"):
                    for (a, b), pair_rng in self._pair_rngs.items():
                        pad = self.codec.random_vector_array(n, pair_rng)
                        metrics.increment("crypto.masks_generated", 1)
                        net_mask[a] = self.codec.add(net_mask[a], pad)
                        net_mask[b] = self.codec.subtract(net_mask[b], pad)
                        if self.audit is not None:
                            self.audit.pad_derived(a, b)

            # Step 4: masked shares to the Reducer.
            with tracer.span("crypto.masked_shares", kind="crypto"):
                for p in self.participants:
                    share = self.codec.add(encoded[p], net_mask[p])
                    self.network.send(p, self.reducer_id, share, kind="masked-share")
                    metrics.increment("crypto.masked_shares_sent", 1)
                    if self.audit is not None:
                        self.audit.share_sent(p)

            # Step 5: the Reducer sums; the pads cancel telescopically.
            with tracer.span("crypto.reduce_sum", kind="crypto", node=self.reducer_id):
                total = self.codec.zeros_array(n)
                for _ in self.participants:
                    message = self.network.receive_message(
                        self.reducer_id, kind="masked-share"
                    )
                    total = self.codec.add(total, message.payload)
                    if self.audit is not None:
                        self.audit.share_received(message.src)
            metrics.increment("crypto.secure_sum_rounds", 1)
            if self.audit is not None:
                self.audit.end_round()
            return self.codec.decode(total)


class SecureSumAggregator(Aggregator):
    """Adapter running Protocol 1 as a Twister :class:`Aggregator`.

    Map outputs are dicts of named vectors; the aggregator flattens them
    into one vector per mapper (fixing a canonical key order), runs one
    secure summation, and splits the summed vector back into named
    parts.  The Reducer therefore learns only the *sums* the algorithm
    needs — never an individual Mapper's local result.
    """

    def __init__(
        self,
        *,
        codec: FixedPointCodec | None = None,
        mode: str = "fresh",
        seed: int | np.random.Generator | None = None,
        audit: ProtocolAuditLog | None = None,
    ) -> None:
        self.codec = codec
        self.mode = mode
        self.seed = as_rng(seed)
        self.audit = audit
        self._protocol: SecureSummationProtocol | None = None

    def aggregate(
        self,
        outputs: dict[str, dict[str, np.ndarray]],
        reducer_id: str,
        network: Network,
    ) -> dict[str, np.ndarray]:
        """Securely sum mapper outputs; the reducer sees masked shares only."""
        participants = sorted(outputs)
        if self._protocol is None or self._protocol.participants != participants:
            self._protocol = SecureSummationProtocol(
                network,
                participants,
                reducer_id,
                codec=self.codec,
                mode=self.mode,
                seed=self.seed,
                audit=self.audit,
            )

        keys = sorted(outputs[participants[0]])
        for p in participants:
            if sorted(outputs[p]) != keys:
                raise ValueError(f"mapper {p!r} produced keys {sorted(outputs[p])}, expected {keys}")
        layout = [(k, np.asarray(outputs[participants[0]][k], dtype=float).shape) for k in keys]

        flat = {
            p: np.concatenate(
                [np.asarray(outputs[p][k], dtype=float).ravel() for k in keys]
            )
            for p in participants
        }
        summed = self._protocol.sum_vectors(flat)

        result: dict[str, np.ndarray] = {}
        offset = 0
        for key, shape in layout:
            size = int(np.prod(shape)) if shape else 1
            result[key] = summed[offset : offset + size].reshape(shape)
            offset += size
        return result
