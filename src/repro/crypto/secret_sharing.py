"""Additive and Shamir secret sharing.

Secret sharing is the third classic way (besides pairwise masking and
homomorphic encryption) to realize the secure aggregation the paper
needs at the Reducer.  We provide both flavors so the benchmark harness
can compare trust models:

* **additive sharing** over Z_q — n-of-n: all shares are needed, any
  n-1 reveal nothing; identical privacy to the paper's masking protocol
  but shares can be routed through multiple aggregators;
* **Shamir sharing** over a prime field — t-of-n threshold: tolerates
  dropouts (up to n-t), which pairwise masking does not.

Both operate on Python integers; use
:class:`~repro.crypto.fixed_point.FixedPointCodec` to bridge from real
vectors.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.utils.rng import as_rng

__all__ = [
    "MERSENNE_PRIME_127",
    "additive_reconstruct",
    "additive_share",
    "shamir_lagrange_weights",
    "shamir_reconstruct",
    "shamir_share",
]

#: A Mersenne prime comfortably larger than any fixed-point encoding we
#: use; the default Shamir field.
MERSENNE_PRIME_127 = (1 << 127) - 1


def _rand_field_element(rng: np.random.Generator, modulus: int) -> int:
    value = 0
    for _ in range((modulus.bit_length() + 62) // 63):
        value = (value << 63) | int(rng.integers(0, 2**63))
    return value % modulus


def additive_share(
    secret: int,
    n_shares: int,
    *,
    modulus: int = 1 << 128,
    rng: np.random.Generator | None = None,
) -> list[int]:
    """Split ``secret`` into ``n_shares`` uniform values summing to it mod q."""
    if n_shares < 2:
        raise ValueError(f"need at least 2 shares, got {n_shares}")
    rng = as_rng(rng)
    secret %= modulus
    shares = [_rand_field_element(rng, modulus) for _ in range(n_shares - 1)]
    last = (secret - sum(shares)) % modulus
    shares.append(last)
    return shares


def additive_reconstruct(shares: Iterable[int], *, modulus: int = 1 << 128) -> int:
    """Recombine additive shares."""
    if not shares:
        raise ValueError("no shares given")
    return sum(int(s) for s in shares) % modulus


def shamir_share(
    secret: int,
    n_shares: int,
    threshold: int,
    *,
    prime: int = MERSENNE_PRIME_127,
    rng: np.random.Generator | None = None,
) -> list[tuple[int, int]]:
    """Split ``secret`` into ``n_shares`` Shamir shares with ``threshold`` needed.

    Returns ``(x, f(x))`` pairs for x = 1..n over the field GF(prime),
    where f is a random degree-(threshold-1) polynomial with
    ``f(0) = secret``.
    """
    if threshold < 1:
        raise ValueError(f"threshold must be >= 1, got {threshold}")
    if n_shares < threshold:
        raise ValueError(f"n_shares ({n_shares}) must be >= threshold ({threshold})")
    if n_shares >= prime:
        raise ValueError("field too small for that many shares")
    rng = as_rng(rng)
    secret %= prime
    coeffs = [secret] + [_rand_field_element(rng, prime) for _ in range(threshold - 1)]

    shares: list[tuple[int, int]] = []
    for x in range(1, n_shares + 1):
        # Horner evaluation of the polynomial at x.
        acc = 0
        for c in reversed(coeffs):
            acc = (acc * x + c) % prime
        shares.append((x, acc))
    return shares


def shamir_lagrange_weights(
    xs: Iterable[int], *, prime: int = MERSENNE_PRIME_127
) -> list[int]:
    """Lagrange-at-zero weights for the given share x-coordinates.

    Returns ``lambda_i`` such that ``sum_i lambda_i * f(x_i) == f(0)``
    modulo ``prime`` for any polynomial ``f`` of degree below
    ``len(xs)``.  Computing the weights once and reusing them across a
    whole share *vector* turns elementwise reconstruction into a single
    weighted modular sum (see
    :class:`~repro.crypto.threshold_sum.ThresholdSummationProtocol`),
    instead of re-deriving the inverses per element.
    """
    xs = [int(x) for x in xs]
    if not xs:
        raise ValueError("no share indices given")
    if len(set(xs)) != len(xs):
        raise ValueError("duplicate share indices")
    weights: list[int] = []
    for i, x_i in enumerate(xs):
        num, den = 1, 1
        for j, x_j in enumerate(xs):
            if i == j:
                continue
            num = (num * (-x_j)) % prime
            den = (den * (x_i - x_j)) % prime
        weights.append((num * pow(den, -1, prime)) % prime)
    return weights


def shamir_reconstruct(
    shares: Iterable[tuple[int, int]], *, prime: int = MERSENNE_PRIME_127
) -> int:
    """Recover the secret from >= threshold Shamir shares.

    Lagrange interpolation at 0.  Raises on duplicate x coordinates.
    """
    shares = list(shares)
    if not shares:
        raise ValueError("no shares given")
    xs = [int(x) for x, _ in shares]
    if len(set(xs)) != len(xs):
        raise ValueError("duplicate share indices")
    secret = 0
    for i, (x_i, y_i) in enumerate(shares):
        num, den = 1, 1
        for j, (x_j, _) in enumerate(shares):
            if i == j:
                continue
            num = (num * (-x_j)) % prime
            den = (den * (x_i - x_j)) % prime
        secret = (secret + y_i * num * pow(den, -1, prime)) % prime
    return secret
