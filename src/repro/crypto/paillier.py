"""Paillier additively homomorphic cryptosystem (from scratch).

The SMC-based approaches the paper compares against in Section II rely
on additively homomorphic encryption — e.g. Yuan & Yu's privacy-
preserving back-propagation [30] and the secure kernel-matrix protocols
[28][31].  We implement textbook Paillier so the benchmark harness can
measure how expensive an "encrypt everything" SMC baseline is relative
to the paper's "mask only the Reduce() inputs" design.

Scheme (Paillier 1999, simplified g = n + 1 variant):

* KeyGen: primes p, q with |p| = |q|; n = pq; λ = lcm(p-1, q-1);
  g = n + 1; μ = λ⁻¹ mod n.
* Encrypt(m; r) = gᵐ · rⁿ mod n²  for m ∈ Z_n, random r ∈ Z_n*.
* Decrypt(c) = L(c^λ mod n²) · μ mod n, with L(u) = (u - 1) / n.
* Homomorphisms: Enc(a)·Enc(b) = Enc(a+b);  Enc(a)^k = Enc(ka).

Signed integers are handled with the usual centered embedding of
[-n/2, n/2) into Z_n.  Primality testing is Miller–Rabin with 40
rounds.  The default key size (512-bit n) keeps simulations fast; it is
*not* a production parameter, and the docstring of
:meth:`PaillierKeyPair.generate` says so.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.utils.rng import as_rng

__all__ = [
    "PaillierCiphertext",
    "PaillierKeyPair",
    "PaillierPublicKey",
    "is_probable_prime",
]

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
)


def _rand_int_bits(rng: np.random.Generator, bits: int) -> int:
    """Uniform integer with exactly ``bits`` bits (top bit set)."""
    n_words = (bits + 62) // 63
    value = 0
    for _ in range(n_words):
        value = (value << 63) | int(rng.integers(0, 2**63))
    value &= (1 << bits) - 1
    value |= 1 << (bits - 1)
    return value


def _rand_below(rng: np.random.Generator, bound: int) -> int:
    """Uniform integer in [0, bound)."""
    bits = bound.bit_length() + 16
    while True:
        candidate = _rand_int_bits(rng, bits) % (1 << bits)
        value = candidate % bound
        # The extra 16 bits make the modulo bias negligible for our
        # simulation purposes.
        return value


def is_probable_prime(n: int, rng: np.random.Generator, rounds: int = 40) -> bool:
    """Miller–Rabin primality test."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = 2 + _rand_below(rng, n - 3)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def _generate_prime(rng: np.random.Generator, bits: int) -> int:
    """Random ``bits``-bit probable prime."""
    while True:
        candidate = _rand_int_bits(rng, bits) | 1
        if is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class PaillierCiphertext:
    """An immutable Paillier ciphertext supporting ``+`` and ``*``.

    ``ct + ct`` adds plaintexts; ``ct + int`` adds a constant;
    ``ct * int`` scales the plaintext.  All operations are homomorphic —
    no secret key involved.
    """

    value: int
    public_key: "PaillierPublicKey"

    def __add__(self, other: "PaillierCiphertext | int | np.integer") -> "PaillierCiphertext":
        pk = self.public_key
        if isinstance(other, PaillierCiphertext):
            if other.public_key.n != pk.n:
                raise ValueError("cannot add ciphertexts under different keys")
            return PaillierCiphertext((self.value * other.value) % pk.n_squared, pk)
        if isinstance(other, (int, np.integer)):
            return self + pk.encrypt_raw(int(other) % pk.n, obfuscate=False)
        return NotImplemented

    __radd__ = __add__

    def __mul__(self, scalar: "int | np.integer") -> "PaillierCiphertext":
        if not isinstance(scalar, (int, np.integer)):
            return NotImplemented
        pk = self.public_key
        k = int(scalar) % pk.n
        return PaillierCiphertext(pow(self.value, k, pk.n_squared), pk)

    __rmul__ = __mul__


@dataclass(frozen=True)
class PaillierPublicKey:
    """The public half of a Paillier key pair (n, with g = n + 1)."""

    n: int

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    @property
    def half_n(self) -> int:
        return self.n // 2

    def encode_signed(self, m: int) -> int:
        """Center a signed integer into Z_n."""
        if abs(m) >= self.half_n:
            raise OverflowError(f"plaintext magnitude {m} exceeds n/2")
        return m % self.n

    def decode_signed(self, m: int) -> int:
        """Lift from Z_n back to the centered signed range."""
        m %= self.n
        return m - self.n if m >= self.half_n else m

    def encrypt_raw(
        self,
        m: int,
        *,
        rng: np.random.Generator | None = None,
        obfuscate: bool = True,
    ) -> PaillierCiphertext:
        """Encrypt a residue ``m`` in Z_n.

        With ``obfuscate=False`` the deterministic ciphertext
        ``g^m mod n²`` is produced (used internally for adding public
        constants; never for private data).
        """
        if not 0 <= m < self.n:
            raise ValueError("plaintext must be reduced into Z_n")
        nsq = self.n_squared
        # g = n + 1 gives g^m = 1 + m*n (mod n^2): one multiplication.
        cipher = (1 + m * self.n) % nsq
        if obfuscate:
            rng = as_rng(rng)
            while True:
                r = 1 + _rand_below(rng, self.n - 1)
                if math.gcd(r, self.n) == 1:
                    break
            cipher = (cipher * pow(r, self.n, nsq)) % nsq
        return PaillierCiphertext(cipher, self)

    def encrypt(
        self, m: int, *, rng: np.random.Generator | None = None
    ) -> PaillierCiphertext:
        """Encrypt a signed integer."""
        return self.encrypt_raw(self.encode_signed(int(m)), rng=rng)

    def encrypt_vector(
        self, values: Iterable[int], *, rng: np.random.Generator | None = None
    ) -> list[PaillierCiphertext]:
        """Encrypt each entry of an integer vector."""
        rng = as_rng(rng)
        return [self.encrypt(int(v), rng=rng) for v in values]


@dataclass(frozen=True)
class PaillierKeyPair:
    """A full Paillier key pair (public key plus λ, μ)."""

    public_key: PaillierPublicKey
    lam: int
    mu: int

    @classmethod
    def generate(
        cls, bits: int = 512, *, seed: int | np.random.Generator | None = None
    ) -> "PaillierKeyPair":
        """Generate a key pair with an n of roughly ``bits`` bits.

        The default 512-bit modulus keeps the SMC-baseline benchmarks
        fast; real deployments need >= 2048 bits.
        """
        if bits < 64:
            raise ValueError(f"bits must be >= 64, got {bits}")
        rng = as_rng(seed)
        half = bits // 2
        while True:
            p = _generate_prime(rng, half)
            q = _generate_prime(rng, half)
            if p != q:
                break
        n = p * q
        lam = (p - 1) * (q - 1) // math.gcd(p - 1, q - 1)
        mu = pow(lam, -1, n)
        return cls(public_key=PaillierPublicKey(n), lam=lam, mu=mu)

    def decrypt_raw(self, ciphertext: PaillierCiphertext) -> int:
        """Decrypt to a residue in Z_n."""
        pk = self.public_key
        if ciphertext.public_key.n != pk.n:
            raise ValueError("ciphertext was produced under a different key")
        u = pow(ciphertext.value, self.lam, pk.n_squared)
        ell = (u - 1) // pk.n
        return (ell * self.mu) % pk.n

    def decrypt(self, ciphertext: PaillierCiphertext) -> int:
        """Decrypt to a signed integer."""
        return self.public_key.decode_signed(self.decrypt_raw(ciphertext))

    def decrypt_vector(self, ciphertexts: Iterable[PaillierCiphertext]) -> list[int]:
        """Decrypt a list of ciphertexts to signed integers."""
        return [self.decrypt(c) for c in ciphertexts]
