"""Two-party secure dot product (the SMC baselines' workhorse).

The SMC-based SVM schemes the paper discusses in Section II ([28], [31],
[27]) assemble the joint kernel matrix entry-by-entry from *secure dot
products* between learners' private rows.  We implement the standard
Paillier-based protocol so the benchmark harness can price that
baseline:

* Alice holds integer vector ``a``, Bob holds integer vector ``b``;
* Alice sends ``Enc_A(a_1), ..., Enc_A(a_k)``;
* Bob computes ``c = prod_i Enc_A(a_i)^{b_i} * Enc_A(r) = Enc_A(a·b + r)``
  for a random ``r`` and returns ``c``;
* Alice decrypts to ``a·b + r``; Bob keeps ``-r``.

The outputs are *additive shares* of ``a·b``: neither party learns the
dot product (let alone the other's vector) on its own, and shares can
be summed by a third party (e.g. via secure summation) to build kernel
entries.  Section V of the paper points out the resulting leak: a
learner who reconstructs full kernel rows with more than k of its own
samples can solve for the other party's raw data — our
:mod:`repro.security.analysis` demonstrates exactly that attack.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from numpy.typing import ArrayLike

from repro.cluster.network import Network
from repro.crypto.paillier import PaillierKeyPair, PaillierPublicKey
from repro.utils.rng import as_rng

__all__ = ["DotProductShares", "secure_dot_product"]


@dataclass(frozen=True)
class DotProductShares:
    """Additive shares of a dot product: ``alice_share + bob_share = a·b``.

    ``ciphertext_ops`` records the number of homomorphic operations Bob
    performed — the quantity the overhead benchmark reports.
    """

    alice_share: int
    bob_share: int
    ciphertext_ops: int

    @property
    def total(self) -> int:
        """The reconstructed dot product (for tests; defeats the privacy)."""
        return self.alice_share + self.bob_share


def secure_dot_product(
    a: ArrayLike,
    b: ArrayLike,
    *,
    keypair: PaillierKeyPair | None = None,
    network: Network | None = None,
    alice_id: str = "alice",
    bob_id: str = "bob",
    seed: int | np.random.Generator | None = None,
    mask_bits: int = 80,
) -> DotProductShares:
    """Run the Paillier dot-product protocol on integer vectors ``a``, ``b``.

    Parameters
    ----------
    a, b:
        Equal-length integer vectors (fixed-point encode floats first).
    keypair:
        Alice's Paillier key pair; generated fresh (slow!) if omitted.
    network:
        Optional simulated network; when given, the ciphertext traffic is
        sent through it (and thus accounted) under kind
        ``"secure-dot-product"``.
    mask_bits:
        Statistical hiding parameter for Bob's mask ``r``.

    When a network is given, emits one ``crypto.secure_dot_product``
    span (with the Paillier op count attached) plus the
    ``crypto.secure_dot_products`` and ``crypto.paillier_ops`` counters.
    """
    a = [int(v) for v in np.asarray(a).ravel()]
    b = [int(v) for v in np.asarray(b).ravel()]
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    if not a:
        raise ValueError("vectors must be non-empty")
    rng = as_rng(seed)
    if keypair is None:
        keypair = PaillierKeyPair.generate(seed=rng)
    pk = keypair.public_key

    # One crypto span per protocol run (when a network carries the
    # ciphertexts); the Paillier op count is attached on completion.
    span_cm = (
        network.tracer.span(
            "crypto.secure_dot_product", kind="crypto", vector_length=len(a)
        )
        if network is not None
        else nullcontext(None)
    )
    with span_cm as span:
        shares = _run_protocol(a, b, keypair, pk, network, alice_id, bob_id, rng, mask_bits)
        if span is not None:
            span.attrs["paillier_ops"] = shares.ciphertext_ops + len(a)
    return shares


def _run_protocol(
    a: list[int],
    b: list[int],
    keypair: PaillierKeyPair,
    pk: PaillierPublicKey,
    network: Network | None,
    alice_id: str,
    bob_id: str,
    rng: np.random.Generator,
    mask_bits: int,
) -> DotProductShares:
    """Protocol body of :func:`secure_dot_product` (span-wrapped by caller)."""

    # Alice -> Bob: her encrypted vector.
    encrypted_a = pk.encrypt_vector(a, rng=rng)
    if network is not None:
        network.register(alice_id)
        network.register(bob_id)
        network.send(alice_id, bob_id, [c.value for c in encrypted_a], kind="secure-dot-product")

    # Bob: homomorphic inner product plus his random mask.
    ops = 0
    r = int(rng.integers(0, 2**62)) << (mask_bits - 62) if mask_bits > 62 else int(
        rng.integers(0, 2**mask_bits)
    )
    acc = pk.encrypt(r, rng=rng)
    for cipher, scalar in zip(encrypted_a, b):
        if scalar == 0:
            continue
        acc = acc + cipher * scalar
        ops += 2  # one exponentiation, one multiplication
    if network is not None:
        network.send(bob_id, alice_id, acc.value, kind="secure-dot-product")

    # Alice decrypts her share.
    alice_share = keypair.decrypt(acc)
    if network is not None:
        network.metrics.increment("crypto.secure_dot_products", 1)
        network.metrics.increment("crypto.paillier_ops", ops + len(a))
    return DotProductShares(alice_share=alice_share, bob_share=-r, ciphertext_ops=ops)
