"""Fixed-point encoding of real vectors into the additive group Z_q.

The masking-based secure summation protocol (and additive secret
sharing, and Paillier plaintexts) operate on integers modulo ``q``;
training produces real vectors.  :class:`FixedPointCodec` provides the
bridge:

* ``encode(x) = round(x * 2^fractional_bits) mod q`` (centered signed
  representation);
* ``decode`` lifts back to the centered range and divides the scale out.

Sums of up to ``max_terms`` encoded values decode exactly to the sum of
the rounded inputs as long as the magnitudes stay below
``max_magnitude`` — the codec checks this at encode time instead of
silently wrapping, because a wrapped consensus average would corrupt
training in ways that are very hard to debug.

Two backends implement the same arithmetic:

* the **legacy list backend** — vectors of arbitrary-precision Python
  ints (the original API: ``encode`` / ``decode`` / ``add`` /
  ``subtract`` / ``random_vector`` on ``list[int]``), kept both as the
  compatibility surface and as the baseline the perf-regression
  harness compares against;
* the **vectorized residue-array backend** (:class:`ResidueVector`) —
  for power-of-two moduli, residues are fixed-width little-endian
  multi-limb ``uint64`` numpy arrays of shape ``(n, L)`` (``L = 2`` for
  the default 128-bit group) with carry-propagating vectorized
  ``add``/``subtract``, batched ``encode``/``decode``, and masks drawn
  as one ``rng.integers`` block per vector instead of ``n × n_words``
  scalar Python calls.  Odd (prime) moduli fall back to object-dtype
  arrays of Python ints, which keeps the arithmetic exact where a
  fixed limb count cannot.

Both backends are *bit-identical*: every array op reproduces the exact
integers (and, for ``random_vector``, the exact RNG stream consumption)
of the legacy path, so protocol transcripts and training trajectories
do not depend on which backend ran — the property tests in
``tests/test_crypto_fixed_point_vectorized.py`` pin this.  The blocked
mask draw depends on the word-consumption pattern of numpy's PCG64
``Generator.integers``; a one-time runtime probe verifies the pattern
and silently falls back to the per-element draw if a future numpy
changes it (see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence, Union, overload

import numpy as np
from numpy.typing import ArrayLike

from repro.utils.rng import as_rng

__all__ = ["FixedPointCodec", "ResidueVector"]

_WORD_BITS = 64
_WORD_MOD = 1 << _WORD_BITS
_FULL_MASK = np.uint64(2**64 - 1)

#: Residue-vector operand accepted by the polymorphic codec ops.
ResidueLike = Union["ResidueVector", Sequence[int]]


class _BlockedDrawUnsupported(Exception):
    """The installed numpy does not expose the expected PCG64 layout."""


class ResidueVector:
    """A vector of residues modulo ``q`` in packed array form.

    Attributes
    ----------
    limbs:
        Either a ``uint64`` array of shape ``(n, L)`` holding each
        residue as ``L`` little-endian 64-bit limbs (power-of-two
        moduli), or an object-dtype array of shape ``(n,)`` holding
        arbitrary-precision Python ints (odd moduli, and the legacy
        backend).
    modulus:
        The group order ``q``; every stored residue is in ``[0, q)``.

    The vector iterates and compares as its Python-int residues, so
    wire payloads stay inspectable (``[int(v) for v in payload]``) and
    transcript-equality tests are representation-independent.
    """

    def __init__(self, limbs: np.ndarray, modulus: int) -> None:
        self.limbs = limbs
        self.modulus = modulus

    def __len__(self) -> int:
        return int(self.limbs.shape[0])

    def __iter__(self) -> Iterator[int]:
        return iter(self.to_ints())

    def __getitem__(self, index: int) -> int:
        if self.limbs.dtype == object:
            return int(self.limbs[index])
        value = 0
        for i in range(self.limbs.shape[1] - 1, -1, -1):
            value = (value << _WORD_BITS) | int(self.limbs[index, i])
        return value

    def to_ints(self) -> list[int]:
        """The residues as arbitrary-precision Python ints."""
        if self.limbs.dtype == object:
            return [int(v) for v in self.limbs]
        acc: list[int] | None = None
        for i in range(self.limbs.shape[1] - 1, -1, -1):
            column = self.limbs[:, i]
            if acc is None:
                acc = [int(v) for v in column]
            else:
                acc = [(a << _WORD_BITS) | int(v) for a, v in zip(acc, column)]
        return acc if acc is not None else [0] * len(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResidueVector):
            return NotImplemented
        return self.modulus == other.modulus and self.to_ints() == other.to_ints()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResidueVector(n={len(self)}, "
            f"modulus_bits={self.modulus.bit_length()}, "
            f"dtype={self.limbs.dtype})"
        )


# -- blocked RNG draws ----------------------------------------------------
#
# The legacy mask draw composes each 64-bit word from two Generator
# calls: ``integers(0, 2**63)`` (one raw PCG64 word, Lemire-reduced to
# ``raw >> 1``) and ``integers(0, 2)`` (one *half* of a raw word via the
# bit generator's buffered 32-bit path, bit = half >> 31).  The blocked
# draw reproduces that stream exactly: it plans which raw words the
# scalar sequence would consume, pulls them in one
# ``integers(0, 2**64, size=...)`` call (which bypasses the 32-bit
# buffer), recombines, and patches the buffer state to what the scalar
# sequence would have left behind.

_BLOCKED_OK: bool | None = None


def _draw_words(rng: np.random.Generator, count: int) -> np.ndarray:
    """Draw ``count`` 64-bit words exactly as the legacy pair draws would.

    Returns a ``uint64`` array where element ``i`` equals
    ``(int(rng.integers(0, 2**63)) << 1) | int(rng.integers(0, 2))`` of
    the ``i``-th legacy pair, and leaves ``rng`` in the exact state the
    legacy sequence would have left it in (including the bit
    generator's buffered 32-bit half-word).

    Raises :class:`_BlockedDrawUnsupported` when the bit generator does
    not expose the PCG64 buffer layout this reconstruction relies on.
    """
    if count <= 0:
        return np.empty(0, dtype=np.uint64)
    bit_generator = rng.bit_generator
    state: Any = bit_generator.state
    if not isinstance(state, dict) or "has_uint32" not in state or "uinteger" not in state:
        raise _BlockedDrawUnsupported("bit generator exposes no 32-bit buffer")
    buffered = int(state["has_uint32"])  # 1 if a high half-word is pending
    entry_half = int(state["uinteger"])

    index = np.arange(count, dtype=np.int64)
    # Number of fresh bit-words consumed by draws before draw ``i``: the
    # bit draws alternate fresh-word / buffered-half starting from the
    # entry buffer state.
    fresh_before = (index + (1 - buffered)) // 2
    value_pos = index + fresh_before
    fresh = ((index + buffered) % 2) == 0
    n_fresh = int(np.count_nonzero(fresh))
    total_words = count + n_fresh

    words = rng.integers(0, _WORD_MOD, size=total_words, dtype=np.uint64)
    raw_values = words[value_pos]

    halves = np.empty(count, dtype=np.uint64)
    bit_pos = value_pos + 1  # only meaningful where ``fresh``
    halves[fresh] = words[bit_pos[fresh]] & np.uint64(0xFFFFFFFF)
    from_buffer = ~fresh
    if buffered and count > 0:
        from_buffer = from_buffer.copy()
        from_buffer[0] = False
        halves[0] = np.uint64(entry_half)
    if np.any(from_buffer):
        previous = index[from_buffer] - 1
        halves[from_buffer] = words[bit_pos[previous]] >> np.uint64(32)
    bits = (halves >> np.uint64(31)) & np.uint64(1)

    # ``integers(0, 2**63)`` keeps the top 63 bits of the raw word, so
    # the legacy composition (value << 1) | bit is (raw & ~1) | bit.
    out = (raw_values & ~np.uint64(1)) | bits

    leftover = buffered + 2 * n_fresh - count
    exit_state = bit_generator.state
    if leftover == 1 and n_fresh:
        exit_state["has_uint32"] = 1
        exit_state["uinteger"] = int(words[int(bit_pos[fresh][-1])] >> np.uint64(32))
    elif leftover == 1:
        exit_state["has_uint32"] = 1
        exit_state["uinteger"] = entry_half
    else:
        exit_state["has_uint32"] = 0
        exit_state["uinteger"] = 0
    bit_generator.state = exit_state
    return out


def _probe_blocked_draws() -> bool:
    """One-time check that :func:`_draw_words` reproduces the stream."""
    try:
        for warmup_bits in (0, 1):
            reference = as_rng(0x5EED_B10C)
            blocked = as_rng(0x5EED_B10C)
            for _ in range(warmup_bits):  # enter with a buffered half-word
                if int(reference.integers(0, 2)) != int(blocked.integers(0, 2)):
                    return False
            expected = [
                (int(reference.integers(0, 2**63)) << 1) | int(reference.integers(0, 2))
                for _ in range(7)
            ]
            got = _draw_words(blocked, 7)
            if [int(v) for v in got] != expected:
                return False
            # The streams must stay aligned *after* the block, which
            # checks the exit buffer patch.
            for _ in range(3):
                if int(reference.integers(0, 2**63)) != int(blocked.integers(0, 2**63)):
                    return False
                if int(reference.integers(0, 2)) != int(blocked.integers(0, 2)):
                    return False
    except Exception:
        return False
    return True


def _blocked_draws_supported() -> bool:
    global _BLOCKED_OK
    if _BLOCKED_OK is None:
        _BLOCKED_OK = _probe_blocked_draws()
    return _BLOCKED_OK


class FixedPointCodec:
    """Encode/decode float vectors for modular arithmetic.

    Parameters
    ----------
    fractional_bits:
        Precision: values are represented as multiples of
        ``2^-fractional_bits``.
    modulus_bits:
        Group size ``q = 2^modulus_bits``.
    max_terms:
        The largest number of encoded values that will ever be summed
        before decoding (the number of learners ``M`` for secure
        summation).  Determines the overflow-safe magnitude bound.
    modulus:
        Explicit (possibly odd) modulus overriding ``modulus_bits`` —
        e.g. the prime field a Shamir-based aggregator operates in.
    vectorized:
        Select the residue-array backend for the ``*_array`` methods
        (the default).  ``vectorized=False`` keeps the array API but
        routes every operation through the legacy per-element Python
        path — the baseline ``benchmarks/bench_hotpaths.py`` measures
        against.  Both backends produce bit-identical residues.
    """

    def __init__(
        self,
        fractional_bits: int = 40,
        modulus_bits: int = 128,
        *,
        max_terms: int = 1024,
        modulus: int | None = None,
        vectorized: bool = True,
    ) -> None:
        if fractional_bits < 1:
            raise ValueError(f"fractional_bits must be >= 1, got {fractional_bits}")
        if max_terms < 1:
            raise ValueError(f"max_terms must be >= 1, got {max_terms}")
        self.fractional_bits = int(fractional_bits)
        self.max_terms = int(max_terms)
        if modulus is not None:
            if modulus < 4:
                raise ValueError(f"modulus must be >= 4, got {modulus}")
            self.modulus = int(modulus)
            self.modulus_bits = self.modulus.bit_length()
        else:
            self.modulus = 1 << modulus_bits
            self.modulus_bits = int(modulus_bits)
        if self.modulus_bits <= fractional_bits + 2:
            raise ValueError("modulus must comfortably exceed the fixed-point scale")
        self.scale: int = 1 << fractional_bits
        # Any single value must satisfy |x| * scale * max_terms < q / 2.
        self.max_magnitude: float = self.modulus / (2.0 * self.scale * self.max_terms)
        self.vectorized = bool(vectorized)
        # Limb geometry of the power-of-two fast path.
        self._power_of_two = self.modulus & (self.modulus - 1) == 0
        if self._power_of_two:
            bits = self.modulus.bit_length() - 1
            self._n_limbs = max(1, (bits + _WORD_BITS - 1) // _WORD_BITS)
            top_bits = bits - _WORD_BITS * (self._n_limbs - 1)
            self._top_mask = (
                _FULL_MASK if top_bits == _WORD_BITS else np.uint64((1 << top_bits) - 1)
            )
            self._sign_shift = np.uint64(top_bits - 1)
        else:
            self._n_limbs = 0
            self._top_mask = _FULL_MASK
            self._sign_shift = np.uint64(0)

    # -- scalars (Python ints: vectors of arbitrary-precision residues) --

    def encode(self, values: ArrayLike) -> list[int]:
        """Encode a float vector as a list of residues modulo ``q``."""
        arr = self._check_encodable(values)
        out: list[int] = []
        for x in arr:
            v = int(round(float(x) * self.scale)) % self.modulus
            out.append(v)
        return out

    def decode(self, residues: ResidueLike) -> np.ndarray:
        """Decode residues back to floats (centered lift, then unscale)."""
        if isinstance(residues, ResidueVector):
            return self._decode_array(residues)
        half = self.modulus >> 1
        out = np.empty(len(residues), dtype=float)
        for i, r in enumerate(residues):
            r = int(r) % self.modulus
            if r >= half:
                r -= self.modulus
            out[i] = r / self.scale
        return out

    @overload
    def add(self, a: "ResidueVector", b: ResidueLike) -> "ResidueVector": ...

    @overload
    def add(self, a: Sequence[int], b: "ResidueVector") -> "ResidueVector": ...

    @overload
    def add(self, a: Sequence[int], b: Sequence[int]) -> list[int]: ...

    def add(self, a: ResidueLike, b: ResidueLike) -> ResidueLike:
        """Elementwise modular addition of two residue vectors.

        List operands use the legacy Python-int path and return a list;
        :class:`ResidueVector` operands use the packed backend and
        return a :class:`ResidueVector`.  The residues are identical
        either way.
        """
        if isinstance(a, ResidueVector) or isinstance(b, ResidueVector):
            return self._binary_array_op(a, b, subtract=False)
        if len(a) != len(b):
            raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
        return [(int(x) + int(y)) % self.modulus for x, y in zip(a, b)]

    @overload
    def subtract(self, a: "ResidueVector", b: ResidueLike) -> "ResidueVector": ...

    @overload
    def subtract(self, a: Sequence[int], b: "ResidueVector") -> "ResidueVector": ...

    @overload
    def subtract(self, a: Sequence[int], b: Sequence[int]) -> list[int]: ...

    def subtract(self, a: ResidueLike, b: ResidueLike) -> ResidueLike:
        """Elementwise modular subtraction of two residue vectors."""
        if isinstance(a, ResidueVector) or isinstance(b, ResidueVector):
            return self._binary_array_op(a, b, subtract=True)
        if len(a) != len(b):
            raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
        return [(int(x) - int(y)) % self.modulus for x, y in zip(a, b)]

    def random_vector(self, n: int, rng: np.random.Generator) -> list[int]:
        """A uniformly random residue vector (a one-time pad mask)."""
        return self.random_vector_array(n, rng).to_ints()

    # -- residue-array backend -------------------------------------------

    def zeros_array(self, n: int) -> ResidueVector:
        """The all-zero residue vector of length ``n`` in packed form."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        if self._use_limbs():
            return ResidueVector(
                np.zeros((n, self._n_limbs), dtype=np.uint64), self.modulus
            )
        return ResidueVector(np.array([0] * n, dtype=object), self.modulus)

    def encode_array(self, values: ArrayLike) -> ResidueVector:
        """Batched :meth:`encode` returning a packed :class:`ResidueVector`.

        Bit-identical to the legacy path: the scale is a power of two,
        so ``x * scale`` and the half-to-even rounding are exact float
        operations, and the limb decomposition slices the (at most
        53-significant-bit) integral float exactly.
        """
        arr = self._check_encodable(values)
        scaled = np.rint(arr * float(self.scale))
        if not self._use_limbs():
            ints = [int(v) % self.modulus for v in scaled]
            return ResidueVector(np.array(ints, dtype=object), self.modulus)
        negative = scaled < 0.0
        magnitude = np.abs(scaled)
        limbs = np.empty((arr.shape[0], self._n_limbs), dtype=np.uint64)
        remainder = magnitude
        for i in range(self._n_limbs):
            remainder, low = np.divmod(remainder, 2.0**_WORD_BITS)
            limbs[:, i] = _float_to_uint64(low)
        if np.any(negative):
            limbs = np.where(
                negative[:, None], self._negate_limbs(limbs), limbs
            )
        return ResidueVector(limbs, self.modulus)

    def random_vector_array(self, n: int, rng: np.random.Generator) -> ResidueVector:
        """Batched :meth:`random_vector` consuming the identical RNG stream.

        With the vectorized backend all ``n * n_words`` word draws come
        from one ``rng.integers`` block (falling back to the per-element
        loop when the runtime probe rejects the numpy internals); the
        legacy backend always loops.  Either way the residues and the
        generator's exit state match the original scalar draw exactly.
        """
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        # One extra word keeps the modular-reduction bias below 2^-64
        # for odd moduli.
        n_words = (self.modulus_bits + _WORD_BITS - 1) // _WORD_BITS + 1
        if n == 0:
            return self.zeros_array(0)
        words: np.ndarray | None = None
        if self.vectorized and _blocked_draws_supported():
            try:
                words = _draw_words(rng, n * n_words)
            except _BlockedDrawUnsupported:
                words = None
        if words is None:
            return self._from_ints(self._random_ints(n, n_words, rng))
        if self._use_limbs():
            # The composed integer's low ``64 * L`` bits live in the
            # *last* drawn words (the scalar loop shifts earlier words
            # up), so limb i is column ``n_words - 1 - i``.
            grid = words.reshape(n, n_words)
            limbs = np.empty((n, self._n_limbs), dtype=np.uint64)
            for i in range(self._n_limbs):
                limbs[:, i] = grid[:, n_words - 1 - i]
            limbs[:, -1] &= self._top_mask
            return ResidueVector(limbs, self.modulus)
        grid = words.reshape(n, n_words)
        ints: list[int] = []
        for row in grid:
            value = 0
            for word in row:
                value = (value << _WORD_BITS) | int(word)
            ints.append(value % self.modulus)
        return ResidueVector(np.array(ints, dtype=object), self.modulus)

    # -- internals -------------------------------------------------------

    def _use_limbs(self) -> bool:
        return self.vectorized and self._power_of_two

    def _check_encodable(self, values: ArrayLike) -> np.ndarray:
        arr = np.asarray(values, dtype=float).ravel()
        if not np.all(np.isfinite(arr)):
            raise ValueError("cannot encode non-finite values")
        too_big = np.abs(arr) >= self.max_magnitude
        if too_big.any():
            worst = float(np.max(np.abs(arr)))
            raise OverflowError(
                f"value magnitude {worst:g} exceeds the overflow-safe bound "
                f"{self.max_magnitude:g} for max_terms={self.max_terms}; "
                f"increase modulus_bits or reduce fractional_bits"
            )
        return arr

    def _random_ints(
        self, n: int, n_words: int, rng: np.random.Generator
    ) -> list[int]:
        """The original per-element, per-word scalar draw."""
        out: list[int] = []
        for _ in range(n):
            value = 0
            for _ in range(n_words):
                value = (value << 64) | int(rng.integers(0, 2**63)) << 1 | int(rng.integers(0, 2))
            out.append(value % self.modulus)
        return out

    def _from_ints(self, residues: Sequence[int]) -> ResidueVector:
        """Pack already-reduced Python-int residues for this backend."""
        if not self._use_limbs():
            return ResidueVector(
                np.array([int(r) for r in residues], dtype=object), self.modulus
            )
        n = len(residues)
        limbs = np.empty((n, self._n_limbs), dtype=np.uint64)
        mask = _WORD_MOD - 1
        for row, residue in enumerate(residues):
            r = int(residue)
            for i in range(self._n_limbs):
                limbs[row, i] = (r >> (_WORD_BITS * i)) & mask
        return ResidueVector(limbs, self.modulus)

    def _coerce(self, value: ResidueLike) -> ResidueVector:
        if isinstance(value, ResidueVector):
            if value.modulus != self.modulus:
                raise ValueError(
                    f"residue vector modulus {value.modulus} does not match "
                    f"codec modulus {self.modulus}"
                )
            return value
        return self._from_ints([int(v) % self.modulus for v in value])

    def _binary_array_op(
        self, a: ResidueLike, b: ResidueLike, *, subtract: bool
    ) -> ResidueVector:
        va = self._coerce(a)
        vb = self._coerce(b)
        if len(va) != len(vb):
            raise ValueError(f"length mismatch: {len(va)} vs {len(vb)}")
        if va.limbs.dtype != vb.limbs.dtype:  # mixed backends: normalize
            vb = self._from_ints(vb.to_ints())
        if va.limbs.dtype == object:
            if subtract:
                result = (va.limbs - vb.limbs) % self.modulus
            else:
                result = (va.limbs + vb.limbs) % self.modulus
            return ResidueVector(result, self.modulus)
        if subtract:
            return ResidueVector(
                self._subtract_limbs(va.limbs, vb.limbs), self.modulus
            )
        return ResidueVector(self._add_limbs(va.limbs, vb.limbs), self.modulus)

    def _add_limbs(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Carry-propagating limb addition modulo ``2^modulus_bits``.

        Per limb the carry out of ``a + b + carry_in`` is at most 1, so
        two wraparound checks per limb cover it.
        """
        out = np.empty_like(a)
        carry = np.zeros(a.shape[0], dtype=np.uint64)
        for i in range(a.shape[1]):
            partial = a[:, i] + b[:, i]
            overflow_ab = partial < a[:, i]
            total = partial + carry
            overflow_carry = total < partial
            out[:, i] = total
            carry = (overflow_ab | overflow_carry).astype(np.uint64)
        out[:, -1] &= self._top_mask
        return out

    def _subtract_limbs(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Borrow-propagating limb subtraction modulo ``2^modulus_bits``."""
        out = np.empty_like(a)
        borrow = np.zeros(a.shape[0], dtype=np.uint64)
        for i in range(a.shape[1]):
            partial = a[:, i] - b[:, i]
            underflow_ab = a[:, i] < b[:, i]
            total = partial - borrow
            underflow_borrow = partial < borrow
            out[:, i] = total
            borrow = (underflow_ab | underflow_borrow).astype(np.uint64)
        out[:, -1] &= self._top_mask
        return out

    def _negate_limbs(self, limbs: np.ndarray) -> np.ndarray:
        """Two's-complement negation modulo ``2^modulus_bits``."""
        out = ~limbs
        carry = np.ones(limbs.shape[0], dtype=np.uint64)
        for i in range(limbs.shape[1]):
            total = out[:, i] + carry
            carry = (total < carry).astype(np.uint64)
            out[:, i] = total
        out[:, -1] &= self._top_mask
        return out

    def _decode_array(self, vector: ResidueVector) -> np.ndarray:
        """Decode a packed vector, bit-identical to the legacy loop.

        Fast path: when every centered magnitude fits one limb, the
        ``uint64 -> float64`` conversion and the power-of-two unscale
        are each correctly rounded, which composes to exactly the
        correctly-rounded ``int / int`` division the legacy path
        performs.  Multi-limb magnitudes (astronomical masked shares,
        sums beyond 2^64 ulps) take the exact per-element path instead
        — composing floats limb-by-limb could double-round.
        """
        if vector.modulus != self.modulus:
            raise ValueError(
                f"residue vector modulus {vector.modulus} does not match "
                f"codec modulus {self.modulus}"
            )
        limbs = vector.limbs
        if limbs.dtype == object:
            return self.decode(vector.to_ints())
        negative = ((limbs[:, -1] >> self._sign_shift) & np.uint64(1)) == 1
        magnitude = limbs
        if np.any(negative):
            magnitude = np.where(
                negative[:, None], self._negate_limbs(limbs), limbs
            )
        if magnitude.shape[1] > 1 and np.any(magnitude[:, 1:]):
            return self.decode(vector.to_ints())
        values = magnitude[:, 0].astype(np.float64) / float(self.scale)
        return np.where(negative, -values, values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FixedPointCodec(fractional_bits={self.fractional_bits}, "
            f"modulus_bits={self.modulus_bits}, max_terms={self.max_terms}, "
            f"vectorized={self.vectorized})"
        )


def _float_to_uint64(values: np.ndarray) -> np.ndarray:
    """Exact cast of integral floats in ``[0, 2^64)`` to ``uint64``.

    Split at ``2^63`` so the conversion never relies on the C behavior
    of casting an out-of-``int64``-range float to an unsigned type.
    """
    high = values >= 2.0**63
    if not np.any(high):
        return values.astype(np.uint64)
    shifted = np.where(high, values - 2.0**63, values).astype(np.uint64)
    return shifted + np.where(high, np.uint64(1) << np.uint64(63), np.uint64(0))
