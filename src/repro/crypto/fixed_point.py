"""Fixed-point encoding of real vectors into the additive group Z_q.

The masking-based secure summation protocol (and additive secret
sharing, and Paillier plaintexts) operate on integers modulo ``q``;
training produces real vectors.  :class:`FixedPointCodec` provides the
bridge:

* ``encode(x) = round(x * 2^fractional_bits) mod q`` (centered signed
  representation);
* ``decode`` lifts back to the centered range and divides the scale out.

Sums of up to ``max_terms`` encoded values decode exactly to the sum of
the rounded inputs as long as the magnitudes stay below
``max_magnitude`` — the codec checks this at encode time instead of
silently wrapping, because a wrapped consensus average would corrupt
training in ways that are very hard to debug.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from numpy.typing import ArrayLike

__all__ = ["FixedPointCodec"]


class FixedPointCodec:
    """Encode/decode float vectors for modular arithmetic.

    Parameters
    ----------
    fractional_bits:
        Precision: values are represented as multiples of
        ``2^-fractional_bits``.
    modulus_bits:
        Group size ``q = 2^modulus_bits``.
    max_terms:
        The largest number of encoded values that will ever be summed
        before decoding (the number of learners ``M`` for secure
        summation).  Determines the overflow-safe magnitude bound.
    """

    def __init__(
        self,
        fractional_bits: int = 40,
        modulus_bits: int = 128,
        *,
        max_terms: int = 1024,
        modulus: int | None = None,
    ) -> None:
        if fractional_bits < 1:
            raise ValueError(f"fractional_bits must be >= 1, got {fractional_bits}")
        if max_terms < 1:
            raise ValueError(f"max_terms must be >= 1, got {max_terms}")
        self.fractional_bits = int(fractional_bits)
        self.max_terms = int(max_terms)
        if modulus is not None:
            # Explicit (possibly odd) modulus — e.g. the prime field a
            # Shamir-based aggregator operates in.
            if modulus < 4:
                raise ValueError(f"modulus must be >= 4, got {modulus}")
            self.modulus = int(modulus)
            self.modulus_bits = self.modulus.bit_length()
        else:
            self.modulus = 1 << modulus_bits
            self.modulus_bits = int(modulus_bits)
        if self.modulus_bits <= fractional_bits + 2:
            raise ValueError("modulus must comfortably exceed the fixed-point scale")
        self.scale: int = 1 << fractional_bits
        # Any single value must satisfy |x| * scale * max_terms < q / 2.
        self.max_magnitude: float = self.modulus / (2.0 * self.scale * self.max_terms)

    # -- scalars (Python ints: vectors of arbitrary-precision residues) --

    def encode(self, values: ArrayLike) -> list[int]:
        """Encode a float vector as a list of residues modulo ``q``."""
        arr = np.asarray(values, dtype=float).ravel()
        if not np.all(np.isfinite(arr)):
            raise ValueError("cannot encode non-finite values")
        too_big = np.abs(arr) >= self.max_magnitude
        if too_big.any():
            worst = float(np.max(np.abs(arr)))
            raise OverflowError(
                f"value magnitude {worst:g} exceeds the overflow-safe bound "
                f"{self.max_magnitude:g} for max_terms={self.max_terms}; "
                f"increase modulus_bits or reduce fractional_bits"
            )
        out: list[int] = []
        for x in arr:
            v = int(round(float(x) * self.scale)) % self.modulus
            out.append(v)
        return out

    def decode(self, residues: Sequence[int]) -> np.ndarray:
        """Decode residues back to floats (centered lift, then unscale)."""
        half = self.modulus >> 1
        out = np.empty(len(residues), dtype=float)
        for i, r in enumerate(residues):
            r = int(r) % self.modulus
            if r >= half:
                r -= self.modulus
            out[i] = r / self.scale
        return out

    def add(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        """Elementwise modular addition of two residue vectors."""
        if len(a) != len(b):
            raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
        return [(int(x) + int(y)) % self.modulus for x, y in zip(a, b)]

    def subtract(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        """Elementwise modular subtraction of two residue vectors."""
        if len(a) != len(b):
            raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
        return [(int(x) - int(y)) % self.modulus for x, y in zip(a, b)]

    def random_vector(self, n: int, rng: np.random.Generator) -> list[int]:
        """A uniformly random residue vector (a one-time pad mask)."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        # Compose 64-bit words into uniform integers; one extra word
        # keeps the modular-reduction bias below 2^-64 for odd moduli.
        n_words = (self.modulus_bits + 63) // 64 + 1
        out: list[int] = []
        for _ in range(n):
            value = 0
            for _ in range(n_words):
                value = (value << 64) | int(rng.integers(0, 2**63)) << 1 | int(rng.integers(0, 2))
            out.append(value % self.modulus)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FixedPointCodec(fractional_bits={self.fractional_bits}, "
            f"modulus_bits={self.modulus_bits}, max_terms={self.max_terms})"
        )
