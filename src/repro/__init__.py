"""repro — reproduction of "Privacy-preserving Machine Learning Algorithms
for Big Data Systems" (Xu, Yue, Guo, Guo & Fang, IEEE ICDCS 2015).

Privacy-preserving distributed SVM training on a simulated
Hadoop/Twister cluster: ADMM decomposes the joint SVM into per-learner
Map() tasks over data that never leaves its node; a Reducer forms the
consensus from *sums only*, delivered by a coalition-resistant secure
summation protocol.

Quickstart
----------
>>> from repro import PrivacyPreservingSVM, horizontal_partition
>>> from repro.data import make_cancer_like, train_test_split
>>> train, test = train_test_split(make_cancer_like(), seed=0)
>>> parts = horizontal_partition(train, n_learners=4, seed=0)
>>> model = PrivacyPreservingSVM(max_iter=50, seed=0).fit(parts)
>>> round(model.score(test.X, test.y), 2) >= 0.9
True
>>> model.raw_data_bytes_moved()   # the data-locality privacy invariant
0.0

Package map
-----------
* :mod:`repro.core` — the paper's contribution: the four consensus-SVM
  variants and the full MapReduce-integrated trainer;
* :mod:`repro.cluster` — simulated HDFS / MapReduce / Twister substrate;
* :mod:`repro.crypto` — secure summation, Paillier, secret sharing;
* :mod:`repro.svm` — kernels, QP/SMO solvers, centralized baselines;
* :mod:`repro.data` — synthetic stand-ins for the paper's datasets;
* :mod:`repro.security` — semi-honest adversary views and attacks;
* :mod:`repro.baselines` — related-work comparators;
* :mod:`repro.experiments` — figure/table regeneration harness.
"""

from repro.core import (
    HorizontalKernelSVM,
    HorizontalLinearSVM,
    PrivacyPreservingSVM,
    VerticalKernelSVM,
    VerticalLinearSVM,
    VerticalPartition,
    horizontal_partition,
    vertical_partition,
)
from repro.svm import SVC, LinearSVC

__version__ = "1.0.0"

__all__ = [
    "HorizontalKernelSVM",
    "HorizontalLinearSVM",
    "LinearSVC",
    "PrivacyPreservingSVM",
    "SVC",
    "VerticalKernelSVM",
    "VerticalLinearSVM",
    "VerticalPartition",
    "__version__",
    "horizontal_partition",
    "vertical_partition",
]
