"""Streaming convergence-health monitors for the ADMM trainer loop.

The paper's evaluation (Section V, Fig. 4) is a story about
*trajectories* — how the consensus residual and communication evolve
across rounds — and a production deployment needs to know *while
training* when that trajectory goes wrong.  :class:`HealthMonitor`
evaluates four cheap streaming detectors after every iteration:

* **divergence** — the convergence series grows monotonically by at
  least ``divergence_factor`` over a window (tiny ``rho`` / huge ``C``
  configurations do this);
* **stall** — the series plateaus inside a narrow relative band at a
  level that is *not* converged (distinguished from healthy geometric
  decay, which keeps shrinking, and from a converged run, which sits
  below ``stall_floor``);
* **oscillation** — the series alternates direction with significant
  amplitude instead of settling;
* **byte blowup** — one iteration's network traffic jumps far above the
  run's established per-iteration baseline.

Each firing detector appends a :class:`HealthSignal`, emits a
``health.<detector>`` trace event, and increments the
``health.signals`` counter (both documented in
``docs/OBSERVABILITY.md``).  :meth:`HealthMonitor.finalize` emits one
``health.verdict`` event and freezes the overall verdict that the run
ledger persists.

The monitor has no opinion about *policy*: callers decide whether a
signal warns, raises (:class:`HealthPolicyError` exists for exactly
that), or is merely recorded — see ``PrivacyPreservingSVM``'s
``on_health`` parameter.

Example
-------
>>> monitor = HealthMonitor(divergence_window=3, divergence_factor=2.0)
>>> for i, value in enumerate([0.1, 0.4, 1.9]):
...     signals = monitor.observe(i, z_change_sq=value)
>>> [s.detector for s in signals]
['divergence']
>>> monitor.verdict()
'diverging'
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from math import isfinite
from typing import Any

__all__ = ["HealthMonitor", "HealthPolicyError", "HealthSignal"]


class HealthPolicyError(RuntimeError):
    """Raised (by callers running ``on_health="raise"``) when a health
    detector fires during training."""


@dataclass(frozen=True)
class HealthSignal:
    """One detector firing at one iteration.

    Attributes
    ----------
    iteration:
        0-based training iteration the detector fired at.
    detector:
        ``"divergence"``, ``"stall"``, ``"oscillation"``, or
        ``"byte_blowup"``.
    value:
        The observed quantity that tripped the detector (series value,
        or the iteration's byte delta).
    threshold:
        The bound it violated.
    message:
        Human-readable one-liner for warnings and the CLI.
    """

    iteration: int
    detector: str
    value: float
    threshold: float
    message: str


#: Verdict per detector, in decreasing priority order.
_VERDICTS = (
    ("divergence", "diverging"),
    ("oscillation", "oscillating"),
    ("stall", "stalled"),
    ("byte_blowup", "byte-blowup"),
)


class HealthMonitor:
    """Streaming per-iteration convergence health evaluation.

    Parameters
    ----------
    divergence_window, divergence_factor:
        Fire when the last ``divergence_window`` series values are
        strictly increasing and the newest is at least
        ``divergence_factor`` times the oldest.
    stall_window, stall_rel_band, stall_floor:
        Fire when the last ``stall_window`` values all sit within a
        ``stall_rel_band`` relative band of their maximum, and that
        maximum is above ``stall_floor`` (so a converged run resting at
        ~0 never counts as stalled).
    oscillation_window, oscillation_flips, oscillation_amplitude:
        Fire when consecutive differences change sign at least
        ``oscillation_flips`` times inside the window and the window's
        max/min ratio is at least ``oscillation_amplitude``.
    byte_blowup_factor:
        Fire when an iteration's ``bytes_delta`` exceeds
        ``byte_blowup_factor`` times the median of all previous
        iterations' deltas.
    activity_floor:
        Series values below this are treated as converged noise and
        never fire divergence/oscillation.
    verdict_window:
        Only signals from the final ``verdict_window`` observed
        iterations influence :meth:`verdict` — an early transient in an
        otherwise-converged run stays recorded but does not condemn it.
    metrics, tracer:
        Optional :class:`~repro.cluster.profiling.Profiler`-compatible
        counter sink and :class:`~repro.cluster.tracing.TraceRecorder`;
        when given, each signal increments ``health.signals`` and emits
        a ``health.<detector>`` event.
    """

    def __init__(
        self,
        *,
        divergence_window: int = 3,
        divergence_factor: float = 2.0,
        stall_window: int = 5,
        stall_rel_band: float = 0.05,
        stall_floor: float = 1e-10,
        oscillation_window: int = 6,
        oscillation_flips: int = 4,
        oscillation_amplitude: float = 3.0,
        byte_blowup_factor: float = 4.0,
        activity_floor: float = 1e-12,
        verdict_window: int = 8,
        metrics: Any | None = None,
        tracer: Any | None = None,
    ) -> None:
        if divergence_window < 2:
            raise ValueError(f"divergence_window must be >= 2, got {divergence_window}")
        if stall_window < 2:
            raise ValueError(f"stall_window must be >= 2, got {stall_window}")
        if oscillation_window < 3:
            raise ValueError(
                f"oscillation_window must be >= 3, got {oscillation_window}"
            )
        self.divergence_window = int(divergence_window)
        self.divergence_factor = float(divergence_factor)
        self.stall_window = int(stall_window)
        self.stall_rel_band = float(stall_rel_band)
        self.stall_floor = float(stall_floor)
        self.oscillation_window = int(oscillation_window)
        self.oscillation_flips = int(oscillation_flips)
        self.oscillation_amplitude = float(oscillation_amplitude)
        self.byte_blowup_factor = float(byte_blowup_factor)
        self.activity_floor = float(activity_floor)
        self.verdict_window = int(verdict_window)
        self.metrics = metrics
        self.tracer = tracer

        self.signals: list[HealthSignal] = []
        self._series: list[float] = []
        self._bytes: list[float] = []
        self._finalized: str | None = None

    # -- observation ----------------------------------------------------

    def observe(
        self,
        iteration: int,
        *,
        z_change_sq: float,
        primal_residual: float = float("nan"),
        residual_available: bool = False,
        bytes_delta: float = 0.0,
    ) -> list[HealthSignal]:
        """Feed one iteration's metrics; returns the signals it fired.

        The convergence series the detectors watch is the primal
        residual when it was actually measured (``residual_available``)
        and ``z_change_sq`` otherwise — the latter is always available,
        including on the secure horizontal path where the Reducer cannot
        compute residuals.
        """
        value = (
            float(primal_residual)
            if residual_available and isfinite(primal_residual)
            else float(z_change_sq)
        )
        if not isfinite(value):
            # An inf/nan residual is the strongest divergence evidence
            # there is; clamp so the series stays orderable.
            value = 1e300
        self._series.append(value)
        self._bytes.append(float(bytes_delta))

        fired: list[HealthSignal] = []
        for signal in (
            self._check_divergence(iteration),
            self._check_stall(iteration),
            self._check_oscillation(iteration),
            self._check_byte_blowup(iteration),
        ):
            if signal is None:
                continue
            fired.append(signal)
            self.signals.append(signal)
            if self.metrics is not None:
                self.metrics.increment("health.signals", 1)
            if self.tracer is not None:
                self.tracer.event(
                    f"health.{signal.detector}",
                    kind="health",
                    iteration=iteration,
                    value=signal.value,
                    threshold=signal.threshold,
                    message=signal.message,
                )
        return fired

    # -- detectors ------------------------------------------------------

    def _check_divergence(self, iteration: int) -> HealthSignal | None:
        w = self.divergence_window
        if len(self._series) < w:
            return None
        window = self._series[-w:]
        if window[-1] <= self.activity_floor:
            return None
        growing = all(b > a for a, b in zip(window, window[1:]))
        threshold = self.divergence_factor * window[0]
        if growing and window[0] > 0 and window[-1] >= threshold:
            return HealthSignal(
                iteration=iteration,
                detector="divergence",
                value=window[-1],
                threshold=threshold,
                message=(
                    f"iteration {iteration}: convergence series grew "
                    f"{window[-1] / window[0]:.2f}x over the last {w} iterations "
                    f"({window[0]:.3e} -> {window[-1]:.3e})"
                ),
            )
        return None

    def _check_stall(self, iteration: int) -> HealthSignal | None:
        w = self.stall_window
        if len(self._series) < w:
            return None
        window = self._series[-w:]
        top = max(window)
        if top <= self.stall_floor:
            return None  # converged, not stalled
        if top - min(window) <= self.stall_rel_band * top:
            return HealthSignal(
                iteration=iteration,
                detector="stall",
                value=window[-1],
                threshold=self.stall_floor,
                message=(
                    f"iteration {iteration}: convergence series plateaued at "
                    f"{window[-1]:.3e} for {w} iterations (relative band "
                    f"{self.stall_rel_band:g})"
                ),
            )
        return None

    def _check_oscillation(self, iteration: int) -> HealthSignal | None:
        w = self.oscillation_window
        if len(self._series) < w:
            return None
        window = self._series[-w:]
        low, high = min(window), max(window)
        if high <= self.activity_floor:
            return None
        diffs = [b - a for a, b in zip(window, window[1:])]
        flips = sum(
            1 for a, b in zip(diffs, diffs[1:]) if a * b < 0
        )
        amplitude_ok = low > 0 and high / low >= self.oscillation_amplitude
        if flips >= self.oscillation_flips and amplitude_ok:
            return HealthSignal(
                iteration=iteration,
                detector="oscillation",
                value=window[-1],
                threshold=float(self.oscillation_flips),
                message=(
                    f"iteration {iteration}: convergence series changed "
                    f"direction {flips} times in the last {w} iterations "
                    f"(amplitude {high / low:.1f}x)"
                ),
            )
        return None

    def _check_byte_blowup(self, iteration: int) -> HealthSignal | None:
        if len(self._bytes) < 2:
            return None
        previous = sorted(self._bytes[:-1])
        baseline = previous[len(previous) // 2]
        if baseline <= 0:
            return None
        threshold = self.byte_blowup_factor * baseline
        latest = self._bytes[-1]
        if latest > threshold:
            return HealthSignal(
                iteration=iteration,
                detector="byte_blowup",
                value=latest,
                threshold=threshold,
                message=(
                    f"iteration {iteration}: {latest:.0f} bytes on the wire vs "
                    f"a per-iteration baseline of {baseline:.0f} "
                    f"(> {self.byte_blowup_factor:g}x)"
                ),
            )
        return None

    # -- verdict --------------------------------------------------------

    def verdict(self) -> str:
        """Overall health verdict for the run observed so far.

        ``"healthy"`` unless a detector fired within the final
        ``verdict_window`` iterations; otherwise the highest-priority
        recent detector decides: ``"diverging"`` > ``"oscillating"`` >
        ``"stalled"`` > ``"byte-blowup"``.
        """
        if self._finalized is not None:
            return self._finalized
        horizon = len(self._series) - self.verdict_window
        recent = {s.detector for s in self.signals if s.iteration >= horizon}
        for detector, verdict in _VERDICTS:
            if detector in recent:
                return verdict
        return "healthy"

    def finalize(self) -> str:
        """Freeze the verdict and emit the ``health.verdict`` event."""
        if self._finalized is None:
            verdict = self.verdict()
            self._finalized = verdict
            if self.tracer is not None:
                self.tracer.event(
                    "health.verdict",
                    kind="health",
                    verdict=verdict,
                    n_signals=len(self.signals),
                    n_iterations=len(self._series),
                )
        return self._finalized

    def summary(self) -> dict[str, Any]:
        """Machine-readable summary for the run ledger."""
        return {
            "verdict": self.verdict(),
            "n_iterations": len(self._series),
            "n_signals": len(self.signals),
            "signals": [asdict(signal) for signal in self.signals],
        }
