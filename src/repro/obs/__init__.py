"""Persistent observability: run ledger, health monitors, protocol audit.

Three cooperating pieces turn the in-memory instrumentation
(:mod:`repro.cluster.profiling`) into a persistent, self-checking layer:

* :mod:`repro.obs.ledger` — schema-versioned, content-addressed run
  records under ``.repro-runs/`` (:class:`RunLedger`,
  :class:`RunRecord`, :func:`diff_runs`);
* :mod:`repro.obs.health` — streaming convergence-health detectors
  hooked into the trainer loop (:class:`HealthMonitor`);
* :mod:`repro.obs.audit` — a runtime auditor asserting the secure
  aggregation protocols' invariants while they execute
  (:class:`ProtocolAuditLog`).

The ``repro runs`` CLI (:mod:`repro.obs.runs_cli`) queries the ledger.
See ``docs/OBSERVABILITY.md`` for the record schema, the ``health.*``
event names, and the ``audit.*`` counters.
"""

from repro.obs.audit import (
    AuditViolation,
    ProtocolAuditError,
    ProtocolAuditLog,
    RoundAudit,
)
from repro.obs.health import HealthMonitor, HealthPolicyError, HealthSignal
from repro.obs.ledger import (
    DEFAULT_LEDGER_DIR,
    RunDiff,
    RunLedger,
    RunRecord,
    SCHEMA_VERSION,
    dataset_fingerprint,
    diff_runs,
)

__all__ = [
    "AuditViolation",
    "DEFAULT_LEDGER_DIR",
    "HealthMonitor",
    "HealthPolicyError",
    "HealthSignal",
    "ProtocolAuditError",
    "ProtocolAuditLog",
    "RoundAudit",
    "RunDiff",
    "RunLedger",
    "RunRecord",
    "SCHEMA_VERSION",
    "dataset_fingerprint",
    "diff_runs",
]
