"""``repro runs`` — query and compare the persistent run ledger.

Subcommands (all reading ``.repro-runs/`` or ``--dir``):

* ``list`` — one summary line per stored run, newest first;
* ``show <id>`` — config, dataset fingerprint, the per-iteration
  metric/cost table, health signals, and the protocol-audit verdict;
* ``diff <a> <b>`` — metric-by-metric comparison; wall-derived fields
  are excluded, so same-config/same-seed runs report zero drift and any
  printed delta is a real change;
* ``compare --metric <name> <id>...`` — one metric's per-iteration
  series across several runs, side by side.

Ids may be abbreviated to any unambiguous prefix.  See
``docs/OBSERVABILITY.md`` ("Querying past runs") for the record schema.
"""

from __future__ import annotations

import argparse
from typing import Any

from repro.obs.ledger import DEFAULT_LEDGER_DIR, RunLedger, diff_runs

__all__ = ["add_runs_parser", "cmd_runs"]

#: Metrics ``compare`` can pull from each iteration row.
_COMPARE_METRICS = (
    "z_change_sq",
    "primal_residual",
    "accuracy",
    "total_bytes",
    "total_messages",
    "sim_s",
    "wall_s",
)


def add_runs_parser(sub: Any) -> None:
    """Register the ``runs`` subparser on an ``add_subparsers`` handle."""
    runs = sub.add_parser("runs", help="query the persistent run ledger")
    runs.add_argument(
        "--dir",
        default=DEFAULT_LEDGER_DIR,
        help=f"ledger directory (default: {DEFAULT_LEDGER_DIR})",
    )
    action = runs.add_subparsers(dest="runs_command", required=True)

    action.add_parser("list", help="summarize stored runs, newest first")

    show = action.add_parser("show", help="print one run record")
    show.add_argument("run_id", help="run id (or unambiguous prefix)")

    diff = action.add_parser("diff", help="compare two runs metric-by-metric")
    diff.add_argument("run_a")
    diff.add_argument("run_b")

    compare = action.add_parser(
        "compare", help="one metric's series across several runs"
    )
    compare.add_argument("run_ids", nargs="+")
    compare.add_argument(
        "--metric", choices=_COMPARE_METRICS, default="z_change_sq"
    )


def cmd_runs(args: argparse.Namespace) -> int:
    """Dispatch a parsed ``repro runs ...`` invocation."""
    ledger = RunLedger(args.dir)
    handlers = {
        "list": _cmd_list,
        "show": _cmd_show,
        "diff": _cmd_diff,
        "compare": _cmd_compare,
    }
    try:
        return handlers[args.runs_command](ledger, args)
    except KeyError as exc:
        print(f"repro runs: {exc.args[0]}")
        return 2


def _fmt(value: Any, places: int = 4) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{places}g}" if value == value else "-"
    return str(value)


def _cmd_list(ledger: RunLedger, _: argparse.Namespace) -> int:
    from repro.experiments.tables import format_table

    summaries = ledger.list_runs()
    if not summaries:
        print(f"no runs recorded under {ledger.root}/")
        return 0
    headers = ["run_id", "kind", "label", "seed", "iters", "health", "audit", "bytes"]
    rows = [
        [
            s["run_id"],
            s["kind"],
            s["label"] or "-",
            _fmt(s["seed"]),
            s["n_iterations"],
            s["verdict"] or "-",
            _fmt(s["audit_ok"]),
            _fmt(s["total_bytes"], 6),
        ]
        for s in summaries
    ]
    print(format_table(headers, rows))
    return 0


def _cmd_show(ledger: RunLedger, args: argparse.Namespace) -> int:
    from repro.experiments.tables import format_table

    data = ledger.load(args.run_id)
    print(f"run      : {data['run_id']} (schema v{data['schema_version']})")
    print(f"kind     : {data['kind']}" + (f" [{data['label']}]" if data["label"] else ""))
    print(f"seed     : {_fmt(data.get('seed'))}")
    config = data.get("config", {})
    if config:
        rendered = ", ".join(f"{k}={_fmt(v)}" for k, v in sorted(config.items()))
        print(f"config   : {rendered}")
    dataset = data.get("dataset", {})
    if dataset:
        rendered = ", ".join(f"{k}={_fmt(v)}" for k, v in sorted(dataset.items()))
        print(f"dataset  : {rendered}")
    env = data.get("environment", {})
    if env:
        print(f"env      : " + ", ".join(f"{k} {v}" for k, v in sorted(env.items())))

    iterations = data.get("iterations", [])
    if iterations:
        print()
        headers = [
            "iter", "z_change_sq", "primal_residual", "accuracy",
            "bytes", "messages", "crypto_ops", "sim_ms",
        ]
        rows = [
            [
                row["iteration"],
                _fmt(row.get("z_change_sq")),
                _fmt(row.get("primal_residual")),
                _fmt(row.get("accuracy")),
                _fmt(row.get("total_bytes"), 6),
                _fmt(row.get("total_messages"), 6),
                _fmt(sum((row.get("crypto_ops") or {}).values()), 6),
                _fmt((row.get("sim_s") or 0.0) * 1e3),
            ]
            for row in iterations
        ]
        print(format_table(headers, rows))

    health = data.get("health")
    if health:
        print()
        print(f"health   : {health['verdict']} "
              f"({health['n_signals']} signal(s) over {health['n_iterations']} iterations)")
        for signal in health.get("signals", []):
            print(f"  - [{signal['detector']}] {signal['message']}")
    audit = data.get("audit")
    if audit:
        print()
        verdict = "clean" if audit["ok"] else f"{audit['n_violations']} violation(s)"
        print(f"audit    : {audit['n_rounds']} round(s), {verdict}")
        for round_summary in audit.get("rounds", []):
            for violation in round_summary.get("violations", []):
                print(f"  - [{violation['rule']}] {violation['message']}")
    return 0


def _cmd_diff(ledger: RunLedger, args: argparse.Namespace) -> int:
    from repro.experiments.tables import format_table

    diff = diff_runs(ledger.load(args.run_a), ledger.load(args.run_b))
    print(f"diff {diff.run_a} -> {diff.run_b}")
    if diff.config_drift:
        print()
        print("config drift:")
        for key, (va, vb) in sorted(diff.config_drift.items()):
            print(f"  {key}: {_fmt(va)} -> {_fmt(vb)}")
    if diff.counter_drift:
        print()
        print("counter drift (wall-clock counters excluded):")
        for name, (va, vb) in sorted(diff.counter_drift.items()):
            print(f"  {name}: {_fmt(va, 9)} -> {_fmt(vb, 9)}")
    differing = [row for row in diff.iteration_deltas if row["differs"]]
    if differing:
        print()
        headers = [
            "iter", "d(z_change_sq)", "d(primal_residual)",
            "d(accuracy)", "d(bytes)", "d(messages)",
        ]
        rows = [
            [
                row["iteration"],
                _fmt(row["z_change_sq"]),
                _fmt(row["primal_residual"]),
                _fmt(row["accuracy"]),
                _fmt(row["total_bytes"], 6),
                _fmt(row["total_messages"], 6),
            ]
            for row in differing
        ]
        print(format_table(headers, rows))
    if diff.identical:
        print("zero metric drift: the runs are deterministically identical")
        return 0
    print()
    print(
        f"{len(differing)} differing iteration(s), "
        f"{len(diff.counter_drift)} drifting counter(s), "
        f"{len(diff.config_drift)} config difference(s)"
    )
    return 0


def _cmd_compare(ledger: RunLedger, args: argparse.Namespace) -> int:
    from repro.experiments.tables import format_table

    records = [ledger.load(run_id) for run_id in args.run_ids]
    ids = [r["run_id"] for r in records]
    n_iters = max(len(r.get("iterations", [])) for r in records)
    headers = ["iter"] + ids
    rows = []
    for i in range(n_iters):
        row: list[Any] = [i]
        for record in records:
            iterations = record.get("iterations", [])
            value = iterations[i].get(args.metric) if i < len(iterations) else None
            row.append(_fmt(value, 6))
        rows.append(row)
    print(f"metric: {args.metric}")
    print(format_table(headers, rows))
    return 0
