"""Runtime auditor for the secure aggregation protocols.

The static analysis suite (``repro lint``'s protocol-invariant checker)
proves properties of the *source*; this module asserts the same
invariants over a *live execution*.  The crypto paths
(:mod:`repro.crypto.secure_sum`, :mod:`repro.crypto.threshold_sum`)
feed a :class:`ProtocolAuditLog` as the protocol runs — every mask
applied and removed, every pairwise pad derivation, every share sent,
received, and reconstructed — and :meth:`ProtocolAuditLog.end_round`
checks, per aggregation round:

* **mask balance** — every pairwise mask added by its generator was
  netted off exactly once by its receiver (the telescoping cancellation
  of the paper's Protocol 1, step 5);
* **pair-seed discipline** — in ``"prg"`` mode each agreed pairwise
  seed derives exactly one pad per round, and no pad comes from an
  unagreed pair;
* **share accounting** — every expected sender contributed exactly one
  (masked or Shamir-aggregated) share and the reducer consumed them
  all;
* **reconstruction** — threshold reconstruction used at least
  ``threshold`` shares and reported success;
* **participant floor** — at least ``participant_floor`` participants
  took part (below two, "secure" summation is a plaintext transfer).

Violations become :class:`AuditViolation` records, an
``audit.violation`` trace event, and an ``audit.violations`` counter
increment; clean or not, each round closes with an ``audit.round``
event and an ``audit.rounds`` increment.  The per-round summaries are
what the run ledger persists (:meth:`ProtocolAuditLog.summary`).

The log never sees payload bytes — only *who* masked/shared with
*whom* — so auditing adds no privacy surface.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "AuditViolation",
    "ProtocolAuditError",
    "ProtocolAuditLog",
    "RoundAudit",
]


class ProtocolAuditError(RuntimeError):
    """Raised at ``end_round`` when ``on_violation="raise"`` and an
    invariant failed."""


@dataclass(frozen=True)
class AuditViolation:
    """One invariant failure in one aggregation round.

    Attributes
    ----------
    round_index:
        0-based aggregation-round index (matches the driver iteration
        when one aggregation runs per iteration).
    protocol:
        ``"secure-sum"`` or ``"threshold-sum"``.
    rule:
        ``"mask-balance"``, ``"pair-seed"``, ``"share-count"``,
        ``"reconstruction"``, or ``"participant-floor"``.
    message:
        Human-readable description naming the offending pair/node.
    """

    round_index: int
    protocol: str
    rule: str
    message: str


@dataclass
class RoundAudit:
    """Raw observations and verdict for one aggregation round."""

    round_index: int
    protocol: str
    participants: tuple[str, ...]
    threshold: int | None = None
    expected_senders: tuple[str, ...] | None = None
    masks_applied: Counter[tuple[str, str]] = field(default_factory=Counter)
    masks_removed: Counter[tuple[str, str]] = field(default_factory=Counter)
    pads_derived: Counter[tuple[str, str]] = field(default_factory=Counter)
    shares_sent: Counter[str] = field(default_factory=Counter)
    shares_received: Counter[str] = field(default_factory=Counter)
    reconstruction_shares: int | None = None
    reconstruction_ok: bool | None = None
    violations: list[AuditViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the round closed with no invariant violations."""
        return not self.violations

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly per-round summary for the run ledger."""
        return {
            "round": self.round_index,
            "protocol": self.protocol,
            "n_participants": len(self.participants),
            "masks_applied": int(sum(self.masks_applied.values())),
            "masks_removed": int(sum(self.masks_removed.values())),
            "pads_derived": int(sum(self.pads_derived.values())),
            "shares_sent": int(sum(self.shares_sent.values())),
            "shares_received": int(sum(self.shares_received.values())),
            "reconstruction_shares": self.reconstruction_shares,
            "ok": self.ok,
            "violations": [
                {"rule": v.rule, "message": v.message} for v in self.violations
            ],
        }


class ProtocolAuditLog:
    """Live invariant checker fed by the secure aggregation paths.

    Parameters
    ----------
    participant_floor:
        Minimum participants per round before the protocol degenerates
        (defaults to the paper's implicit M >= 2).
    on_violation:
        ``"record"`` (default) keeps violations queryable;
        ``"raise"`` turns the first violating ``end_round`` into a
        :class:`ProtocolAuditError`.
    metrics, tracer:
        Optional counter sink / trace recorder; when present the log
        emits ``audit.rounds`` / ``audit.violations`` counters and
        ``audit.round`` / ``audit.violation`` events.
    """

    def __init__(
        self,
        *,
        participant_floor: int = 2,
        on_violation: str = "record",
        metrics: Any | None = None,
        tracer: Any | None = None,
    ) -> None:
        if on_violation not in ("record", "raise"):
            raise ValueError(
                f"on_violation must be 'record' or 'raise', got {on_violation!r}"
            )
        self.participant_floor = int(participant_floor)
        self.on_violation = on_violation
        self.metrics = metrics
        self.tracer = tracer
        self.rounds: list[RoundAudit] = []
        self._current: RoundAudit | None = None
        self._agreed_seeds: set[tuple[str, str]] = set()

    # -- protocol feed --------------------------------------------------

    def seed_agreed(self, a: str, b: str) -> None:
        """Record one-time pairwise seed agreement (``"prg"`` setup)."""
        self._agreed_seeds.add(self._pair(a, b))

    def begin_round(
        self,
        protocol: str,
        participants: list[str],
        *,
        threshold: int | None = None,
        expected_senders: list[str] | None = None,
    ) -> None:
        """Open an aggregation round; one must be open to record ops."""
        if self._current is not None:
            raise RuntimeError("previous audit round was never closed")
        self._current = RoundAudit(
            round_index=len(self.rounds),
            protocol=protocol,
            participants=tuple(participants),
            threshold=threshold,
            expected_senders=(
                tuple(expected_senders) if expected_senders is not None else None
            ),
        )

    def mask_applied(self, generator: str, target: str) -> None:
        """``generator`` added a mask destined for ``target`` to its share."""
        self._round().masks_applied[(generator, target)] += 1

    def mask_removed(self, receiver: str, src: str) -> None:
        """``receiver`` netted off a mask it received from ``src``."""
        self._round().masks_removed[(receiver, src)] += 1

    def pad_derived(self, a: str, b: str) -> None:
        """A pairwise PRG pad was derived (+ for one partner, − for the other)."""
        self._round().pads_derived[self._pair(a, b)] += 1

    def share_sent(self, sender: str) -> None:
        """``sender`` sent its (masked/aggregated) share to the reducer."""
        self._round().shares_sent[sender] += 1

    def share_received(self, src: str) -> None:
        """The reducer consumed the share originating from ``src``."""
        self._round().shares_received[src] += 1

    def reconstruction(self, n_shares: int, ok: bool) -> None:
        """Threshold reconstruction finished from ``n_shares`` shares."""
        record = self._round()
        record.reconstruction_shares = int(n_shares)
        record.reconstruction_ok = bool(ok)

    # -- invariant checks -----------------------------------------------

    def end_round(self) -> RoundAudit:
        """Close the round, check every invariant, and emit audit events."""
        record = self._round()
        self._current = None
        self._check_participant_floor(record)
        self._check_mask_balance(record)
        self._check_pair_seeds(record)
        self._check_share_counts(record)
        self._check_reconstruction(record)
        self.rounds.append(record)

        if self.metrics is not None:
            self.metrics.increment("audit.rounds", 1)
            if record.violations:
                self.metrics.increment("audit.violations", len(record.violations))
        if self.tracer is not None:
            for violation in record.violations:
                self.tracer.event(
                    "audit.violation",
                    kind="audit",
                    round=record.round_index,
                    protocol=record.protocol,
                    rule=violation.rule,
                    message=violation.message,
                )
            self.tracer.event(
                "audit.round",
                kind="audit",
                round=record.round_index,
                protocol=record.protocol,
                ok=record.ok,
                n_violations=len(record.violations),
            )
        if record.violations and self.on_violation == "raise":
            raise ProtocolAuditError(
                f"round {record.round_index}: " + "; ".join(
                    v.message for v in record.violations
                )
            )
        return record

    def _check_participant_floor(self, record: RoundAudit) -> None:
        if len(record.participants) < self.participant_floor:
            self._flag(
                record,
                "participant-floor",
                f"{len(record.participants)} participants; floor is "
                f"{self.participant_floor}",
            )

    def _check_mask_balance(self, record: RoundAudit) -> None:
        # Every mask a generator added toward a target must be netted off
        # by that target exactly as many times — the +/− telescoping that
        # makes the reducer's sum correct and each share uniform.
        pairs = set(record.masks_applied) | {
            (src, receiver) for (receiver, src) in record.masks_removed
        }
        for generator, target in sorted(pairs):
            applied = record.masks_applied[(generator, target)]
            removed = record.masks_removed[(target, generator)]
            if applied != removed:
                self._flag(
                    record,
                    "mask-balance",
                    f"mask {generator}->{target}: applied {applied} times but "
                    f"removed {removed} times",
                )

    def _check_pair_seeds(self, record: RoundAudit) -> None:
        for pair, count in sorted(record.pads_derived.items()):
            if pair not in self._agreed_seeds:
                self._flag(
                    record,
                    "pair-seed",
                    f"pad derived for pair {pair[0]}/{pair[1]} without an "
                    f"agreed seed",
                )
            elif count != 1:
                self._flag(
                    record,
                    "pair-seed",
                    f"pair seed {pair[0]}/{pair[1]} used {count} times this "
                    f"round (must be exactly once)",
                )
        if record.pads_derived:
            expected = {
                self._pair(a, b)
                for i, a in enumerate(record.participants)
                for b in record.participants[i + 1 :]
            }
            for pair in sorted(expected - set(record.pads_derived)):
                self._flag(
                    record,
                    "pair-seed",
                    f"no pad derived for pair {pair[0]}/{pair[1]} this round",
                )

    def _check_share_counts(self, record: RoundAudit) -> None:
        senders = (
            record.expected_senders
            if record.expected_senders is not None
            else record.participants
        )
        for sender in senders:
            sent = record.shares_sent[sender]
            if sent != 1:
                self._flag(
                    record,
                    "share-count",
                    f"participant {sender} sent {sent} shares (expected 1)",
                )
        extra = set(record.shares_sent) - set(senders)
        for sender in sorted(extra):
            self._flag(
                record,
                "share-count",
                f"unexpected share from {sender}",
            )
        received = sum(record.shares_received.values())
        if received != len(senders):
            self._flag(
                record,
                "share-count",
                f"reducer consumed {received} shares, expected {len(senders)}",
            )

    def _check_reconstruction(self, record: RoundAudit) -> None:
        if record.threshold is None:
            return
        if record.reconstruction_shares is None:
            self._flag(record, "reconstruction", "round ended without reconstruction")
            return
        if record.reconstruction_shares < record.threshold:
            self._flag(
                record,
                "reconstruction",
                f"reconstructed from {record.reconstruction_shares} shares; "
                f"threshold is {record.threshold}",
            )
        if not record.reconstruction_ok:
            self._flag(record, "reconstruction", "reconstruction reported failure")

    # -- reporting ------------------------------------------------------

    @property
    def violations(self) -> list[AuditViolation]:
        """All violations across all closed rounds."""
        return [v for r in self.rounds for v in r.violations]

    @property
    def ok(self) -> bool:
        """True when every closed round passed every invariant."""
        return all(r.ok for r in self.rounds)

    def summary(self) -> dict[str, Any]:
        """Machine-readable summary for the run ledger."""
        return {
            "n_rounds": len(self.rounds),
            "n_violations": len(self.violations),
            "ok": self.ok,
            "rounds": [r.as_dict() for r in self.rounds],
        }

    # -- internals ------------------------------------------------------

    def _round(self) -> RoundAudit:
        if self._current is None:
            raise RuntimeError("no audit round is open; call begin_round first")
        return self._current

    @staticmethod
    def _pair(a: str, b: str) -> tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def _flag(self, record: RoundAudit, rule: str, message: str) -> None:
        record.violations.append(
            AuditViolation(
                round_index=record.round_index,
                protocol=record.protocol,
                rule=rule,
                message=f"round {record.round_index}: {message}",
            )
        )
