"""Persistent, content-addressed ledger of training/benchmark runs.

The in-memory observability stack (``Profiler`` = counters + trace)
evaporates at process exit; the ledger turns each run into a
schema-versioned JSON record under ``.repro-runs/`` so trajectories can
be compared *across* invocations — seed sweeps, config ablations,
before/after perf checks (``repro runs diff``).

A record joins the two per-iteration views the system already
produces — :class:`~repro.core.results.TrainingHistory` (``z`` change,
primal residual, accuracy) and
:meth:`~repro.cluster.tracing.TraceRecorder.iteration_costs`
(bytes/messages by wire kind, ``crypto.*`` op counts, wall/simulated
seconds) — plus the final counter totals, the health monitor's verdict,
the protocol auditor's per-round summaries, and environment metadata.

Run ids are content addresses: the SHA-256 of the canonical JSON
serialization (minus the id itself), truncated to 16 hex chars.  Two
byte-identical runs therefore map to one record; in practice wall-clock
durations differ per run, so re-running the same config yields distinct
ids whose *deterministic* fields diff to zero (what
:func:`diff_runs` checks — wall-derived fields are excluded from drift
on purpose).

Privacy: only aggregates reach disk.  The record carries counter
totals, per-iteration cost sums, and a dataset *fingerprint* (a hash,
see :func:`dataset_fingerprint`) — never feature rows, labels, or
payload bytes.  The ledger deliberately has no API for attaching raw
arrays.

No absolute timestamps are recorded anywhere (the repo's determinism
lint forbids ``time.time``/``datetime.now``); recency ordering in
``list_runs`` comes from file mtimes, which the filesystem provides for
free.
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
from dataclasses import dataclass, field
from math import isfinite
from pathlib import Path
from typing import Any

import numpy as np

__all__ = [
    "DEFAULT_LEDGER_DIR",
    "RunDiff",
    "RunLedger",
    "RunRecord",
    "SCHEMA_VERSION",
    "dataset_fingerprint",
    "diff_runs",
]

#: Bump when the record layout changes incompatibly.
SCHEMA_VERSION = 1

#: Default ledger location, relative to the working directory.
DEFAULT_LEDGER_DIR = ".repro-runs"

#: Per-iteration fields that are wall-clock-derived and therefore differ
#: between byte-identical runs; excluded from drift comparison.
_NONDETERMINISTIC_ITERATION_FIELDS = frozenset({"wall_s"})

#: Counters that accumulate wall seconds; excluded from drift comparison.
_NONDETERMINISTIC_COUNTERS = frozenset({"network.serialize_s"})


def dataset_fingerprint(X: np.ndarray, y: np.ndarray | None = None) -> str:
    """Short content hash identifying a dataset without revealing it.

    SHA-256 over shapes, dtypes, and raw bytes, truncated to 16 hex
    chars — enough to tell "same data?" across runs while disclosing
    nothing about feature values (preimage resistance); this is the
    only dataset-derived value the ledger ever persists.
    """
    digest = hashlib.sha256()
    X = np.ascontiguousarray(X)
    digest.update(repr((X.shape, str(X.dtype))).encode())
    digest.update(X.tobytes())
    if y is not None:
        y = np.ascontiguousarray(y)
        digest.update(repr((y.shape, str(y.dtype))).encode())
        digest.update(y.tobytes())
    return digest.hexdigest()[:16]


def _environment() -> dict[str, str]:
    """Version metadata for the record (no hostnames, no timestamps)."""
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": sys.platform,
        "machine": platform.machine(),
    }


def _sanitize(value: Any) -> Any:
    """Make a value strict-JSON-safe: non-finite floats become None."""
    if isinstance(value, dict):
        return {str(k): _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (np.floating, float)):
        f = float(value)
        return f if isfinite(f) else None
    if isinstance(value, (np.integer, int)):
        return int(value)
    if isinstance(value, np.ndarray):
        return _sanitize(value.tolist())
    if isinstance(value, str) or value is None:
        return value
    return str(value)


@dataclass
class RunRecord:
    """One run's persistent record (see the module docstring for layout).

    Attributes mirror the JSON schema: ``kind`` (``"train"``,
    ``"trace"``, or ``"bench"``), free-form ``label``, the ``config``
    dict, the ``seed``, the ``dataset`` fingerprint block, the joined
    per-``iterations`` rows, the ``setup`` cost row (pre-iteration
    traffic such as HDFS distribution and seed exchange), final
    ``counters``, optional ``health`` / ``audit`` summaries, and
    ``environment`` metadata.  ``run_id`` is assigned by
    :meth:`RunLedger.record`.
    """

    kind: str
    config: dict[str, Any] = field(default_factory=dict)
    seed: int | None = None
    label: str = ""
    dataset: dict[str, Any] = field(default_factory=dict)
    iterations: list[dict[str, Any]] = field(default_factory=list)
    setup: dict[str, Any] | None = None
    counters: dict[str, float] = field(default_factory=dict)
    health: dict[str, Any] | None = None
    audit: dict[str, Any] | None = None
    environment: dict[str, str] = field(default_factory=_environment)
    schema_version: int = SCHEMA_VERSION
    run_id: str | None = None

    @classmethod
    def from_model(
        cls, model: Any, *, kind: str = "train", label: str = ""
    ) -> "RunRecord":
        """Build a record from a fitted ``PrivacyPreservingSVM``.

        Duck-typed on the fitted attributes (``history_``, ``profiler_``,
        ``health_monitor_``, ``audit_log_``, ``dataset_fingerprint_``)
        so :mod:`repro.obs` never imports :mod:`repro.core`.
        """
        history = model.history_
        profiler = model.profiler_
        cost_rows = {
            row["iteration"]: row for row in profiler.tracer.iteration_costs()
        }

        iterations: list[dict[str, Any]] = []
        for record in history.records:
            costs = cost_rows.get(record.iteration, {})
            iterations.append(
                {
                    "iteration": record.iteration,
                    "z_change_sq": record.z_change_sq,
                    "primal_residual": (
                        record.primal_residual if record.residual_available else None
                    ),
                    "residual_available": record.residual_available,
                    "accuracy": record.accuracy,
                    "bytes_by_kind": costs.get("bytes_by_kind", {}),
                    "messages_by_kind": costs.get("messages_by_kind", {}),
                    "total_bytes": costs.get("total_bytes", 0.0),
                    "total_messages": costs.get("total_messages", 0.0),
                    "crypto_ops": costs.get("crypto_ops", {}),
                    "wall_s": costs.get("wall_s", 0.0),
                    "sim_s": costs.get("sim_s", 0.0),
                }
            )
        setup = cost_rows.get(None)
        if setup is not None:
            setup = {k: v for k, v in setup.items() if k != "iteration"}

        health_monitor = getattr(model, "health_monitor_", None)
        audit_log = getattr(model, "audit_log_", None)
        seed = getattr(model, "seed", None)
        return cls(
            kind=kind,
            label=label,
            config=dict(getattr(model, "config_", None) or {}),
            seed=seed if isinstance(seed, int) else None,
            dataset=dict(getattr(model, "dataset_fingerprint_", None) or {}),
            iterations=iterations,
            setup=setup,
            counters=dict(profiler.registry.as_dict()),
            health=health_monitor.summary() if health_monitor is not None else None,
            audit=audit_log.summary() if audit_log is not None else None,
        )

    def as_dict(self) -> dict[str, Any]:
        """Strict-JSON-safe dict form (NaN/inf already sanitized)."""
        return _sanitize(
            {
                "schema_version": self.schema_version,
                "run_id": self.run_id,
                "kind": self.kind,
                "label": self.label,
                "config": self.config,
                "seed": self.seed,
                "dataset": self.dataset,
                "iterations": self.iterations,
                "setup": self.setup,
                "counters": self.counters,
                "health": self.health,
                "audit": self.audit,
                "environment": self.environment,
            }
        )


class RunLedger:
    """Directory of content-addressed run records.

    Parameters
    ----------
    root:
        Ledger directory (created on first write); defaults to
        ``.repro-runs`` in the working directory.
    """

    def __init__(self, root: str | Path = DEFAULT_LEDGER_DIR) -> None:
        self.root = Path(root)

    # -- writing --------------------------------------------------------

    def record(self, record: RunRecord) -> str:
        """Persist ``record``; assigns and returns its content-addressed id."""
        payload = record.as_dict()
        payload["run_id"] = None  # the id must not influence itself
        canonical = json.dumps(payload, sort_keys=True, allow_nan=False)
        run_id = hashlib.sha256(canonical.encode()).hexdigest()[:16]
        record.run_id = run_id
        payload["run_id"] = run_id
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.root / f"{run_id}.json"
        path.write_text(
            json.dumps(payload, sort_keys=True, indent=1, allow_nan=False) + "\n"
        )
        return run_id

    # -- reading --------------------------------------------------------

    def list_runs(self) -> list[dict[str, Any]]:
        """Summaries of every stored run, most recently written first."""
        if not self.root.is_dir():
            return []
        paths = sorted(
            self.root.glob("*.json"),
            key=lambda p: p.stat().st_mtime,
            reverse=True,
        )
        summaries = []
        for path in paths:
            data = json.loads(path.read_text())
            health = data.get("health") or {}
            audit = data.get("audit") or {}
            summaries.append(
                {
                    "run_id": data.get("run_id", path.stem),
                    "kind": data.get("kind", "?"),
                    "label": data.get("label", ""),
                    "seed": data.get("seed"),
                    "n_iterations": len(data.get("iterations", [])),
                    "verdict": health.get("verdict"),
                    "audit_ok": audit.get("ok"),
                    "total_bytes": data.get("counters", {}).get("network.bytes"),
                }
            )
        return summaries

    def load(self, run_id: str) -> dict[str, Any]:
        """Load one record by id or unambiguous id prefix."""
        return json.loads(self._resolve(run_id).read_text())

    def _resolve(self, run_id: str) -> Path:
        exact = self.root / f"{run_id}.json"
        if exact.is_file():
            return exact
        matches = sorted(self.root.glob(f"{run_id}*.json")) if self.root.is_dir() else []
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise KeyError(f"no run {run_id!r} in {self.root}")
        raise KeyError(
            f"run id prefix {run_id!r} is ambiguous: "
            + ", ".join(p.stem for p in matches)
        )


@dataclass
class RunDiff:
    """Structured comparison of two run records (see :func:`diff_runs`)."""

    run_a: str
    run_b: str
    iteration_deltas: list[dict[str, Any]]
    counter_drift: dict[str, tuple[float | None, float | None]]
    config_drift: dict[str, tuple[Any, Any]]

    @property
    def identical(self) -> bool:
        """True when no deterministic metric differs between the runs."""
        return (
            not self.config_drift
            and not self.counter_drift
            and all(
                not row["differs"] for row in self.iteration_deltas
            )
        )


def _num(value: Any) -> float | None:
    return float(value) if isinstance(value, (int, float)) else None


def _delta(a: Any, b: Any) -> float | None:
    fa, fb = _num(a), _num(b)
    if fa is None or fb is None:
        return None
    return fb - fa


def diff_runs(a: dict[str, Any], b: dict[str, Any]) -> RunDiff:
    """Compare two loaded run records metric-by-metric.

    Wall-clock-derived fields (``wall_s`` per iteration, the
    ``network.serialize_s`` counter) are excluded, so two runs of the
    same config and seed diff to :attr:`RunDiff.identical` — any
    surviving difference is real nondeterminism or a real change.
    """
    config_drift: dict[str, tuple[Any, Any]] = {}
    conf_a, conf_b = a.get("config", {}), b.get("config", {})
    for key in sorted(set(conf_a) | set(conf_b)):
        if conf_a.get(key) != conf_b.get(key):
            config_drift[key] = (conf_a.get(key), conf_b.get(key))
    if a.get("seed") != b.get("seed"):
        config_drift["seed"] = (a.get("seed"), b.get("seed"))

    counter_drift: dict[str, tuple[float | None, float | None]] = {}
    counters_a, counters_b = a.get("counters", {}), b.get("counters", {})
    for name in sorted(set(counters_a) | set(counters_b)):
        if name in _NONDETERMINISTIC_COUNTERS:
            continue
        va, vb = counters_a.get(name), counters_b.get(name)
        if va != vb:
            counter_drift[name] = (va, vb)

    iters_a = a.get("iterations", [])
    iters_b = b.get("iterations", [])
    deltas: list[dict[str, Any]] = []
    for i in range(max(len(iters_a), len(iters_b))):
        row_a = iters_a[i] if i < len(iters_a) else {}
        row_b = iters_b[i] if i < len(iters_b) else {}
        row = {
            "iteration": i,
            "in_both": bool(row_a) and bool(row_b),
            "z_change_sq": _delta(row_a.get("z_change_sq"), row_b.get("z_change_sq")),
            "primal_residual": _delta(
                row_a.get("primal_residual"), row_b.get("primal_residual")
            ),
            "accuracy": _delta(row_a.get("accuracy"), row_b.get("accuracy")),
            "total_bytes": _delta(row_a.get("total_bytes"), row_b.get("total_bytes")),
            "total_messages": _delta(
                row_a.get("total_messages"), row_b.get("total_messages")
            ),
        }
        comparable = {
            k: row_a.get(k)
            for k in row_a
            if k not in _NONDETERMINISTIC_ITERATION_FIELDS
        }
        comparable_b = {
            k: row_b.get(k)
            for k in row_b
            if k not in _NONDETERMINISTIC_ITERATION_FIELDS
        }
        row["differs"] = comparable != comparable_b
        deltas.append(row)

    return RunDiff(
        run_a=str(a.get("run_id")),
        run_b=str(b.get("run_id")),
        iteration_deltas=deltas,
        counter_drift=counter_drift,
        config_drift=config_drift,
    )
