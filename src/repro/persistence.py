"""Model persistence: save and load trained classifiers.

A deployment need the paper does not cover but any adopter hits
immediately: after the (expensive, multi-party) training completes, the
resulting classifier must be stored and shipped.  Models serialize to a
single ``.npz`` file holding a JSON header plus the numeric arrays.

Supported models (the ones whose state is meaningful to persist):

* :class:`repro.svm.model.SVC` / :class:`repro.svm.model.LinearSVC`
  (support vectors, duals, kernel config);
* :class:`repro.core.horizontal_linear.HorizontalLinearSVM` and
  :class:`repro.core.horizontal_logistic.HorizontalLogisticRegression`
  (the consensus hyperplane — the artifact all learners agree on);
* :class:`repro.baselines.dp.DPLogisticRegression` (released weights).

Note on privacy: a *kernel* model's state includes its support vectors,
i.e. raw training rows.  Persisting one is an action of the data owner
for its own use; this module intentionally refuses to serialize the
kernel consensus trainers whose state spans multiple owners.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.baselines.dp import DPLogisticRegression
from repro.core.horizontal_linear import HorizontalLinearSVM
from repro.core.horizontal_logistic import HorizontalLogisticRegression
from repro.svm.kernels import kernel_by_name
from repro.svm.model import SVC, LinearSVC

__all__ = ["load_model", "save_model"]

_FORMAT_VERSION = 1


def _kernel_config(kernel) -> dict:
    name = type(kernel).__name__
    if name == "LinearKernel":
        return {"name": "linear"}
    if name == "PolynomialKernel":
        return {
            "name": "poly",
            "degree": kernel.degree,
            "scale": kernel.scale,
            "offset": kernel.offset,
        }
    if name == "RBFKernel":
        return {"name": "rbf", "gamma": kernel.gamma}
    if name == "SigmoidKernel":
        return {"name": "sigmoid", "scale": kernel.scale, "offset": kernel.offset}
    raise ValueError(f"cannot serialize kernel type {name}")


def _build_kernel(config: dict):
    params = {k: v for k, v in config.items() if k != "name"}
    return kernel_by_name(config["name"], **params)


def save_model(model, path: str | os.PathLike) -> None:
    """Serialize a supported trained model to ``path`` (.npz)."""
    arrays: dict[str, np.ndarray] = {}
    if isinstance(model, LinearSVC):
        if model.coef_ is None:
            raise ValueError("model must be fit before saving")
        header = {
            "type": "LinearSVC",
            "C": model.C,
            "intercept": model.intercept_,
        }
        arrays["coef"] = model.coef_
    elif isinstance(model, SVC):
        if model.alpha_ is None:
            raise ValueError("model must be fit before saving")
        header = {
            "type": "SVC",
            "C": model.C,
            "bias": model.bias_,
            "kernel": _kernel_config(model.kernel),
        }
        # Store only the support set: sufficient for prediction, smaller.
        support = model.support_indices_
        arrays["alpha"] = model.alpha_[support]
        arrays["X"] = model.X_[support]
        arrays["y"] = model.y_[support]
    elif isinstance(model, HorizontalLinearSVM):
        if model.consensus_weights_ is None:
            raise ValueError("model must be fit before saving")
        header = {
            "type": "HorizontalLinearSVM",
            "C": model.C,
            "rho": model.rho,
            "bias": model.consensus_bias_,
        }
        arrays["weights"] = model.consensus_weights_
    elif isinstance(model, HorizontalLogisticRegression):
        if model.consensus_weights_ is None:
            raise ValueError("model must be fit before saving")
        header = {
            "type": "HorizontalLogisticRegression",
            "lam": model.lam,
            "rho": model.rho,
            "bias": model.consensus_bias_,
        }
        arrays["weights"] = model.consensus_weights_
    elif isinstance(model, DPLogisticRegression):
        if model.coef_ is None:
            raise ValueError("model must be fit before saving")
        header = {
            "type": "DPLogisticRegression",
            "epsilon": model.epsilon if np.isfinite(model.epsilon) else "inf",
            "lam": model.lam,
            "radius": model._radius,
        }
        arrays["coef"] = model.coef_
    else:
        raise TypeError(f"cannot serialize models of type {type(model).__name__}")

    header["format_version"] = _FORMAT_VERSION
    np.savez(
        path,
        __header__=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        **arrays,
    )


def load_model(path: str | os.PathLike):
    """Load a model previously written by :func:`save_model`."""
    with np.load(path) as data:
        header = json.loads(bytes(data["__header__"]).decode())
        version = header.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported model format version {version}")
        model_type = header["type"]

        if model_type == "LinearSVC":
            model = LinearSVC(C=header["C"])
            model.coef_ = data["coef"]
            model.intercept_ = float(header["intercept"])
            model.alpha_ = np.zeros(1)  # marks the model as fitted
            return model
        if model_type == "SVC":
            model = SVC(kernel=_build_kernel(header["kernel"]), C=header["C"])
            model.alpha_ = data["alpha"]
            model.X_ = data["X"]
            model.y_ = data["y"]
            model.bias_ = float(header["bias"])
            return model
        if model_type == "HorizontalLinearSVM":
            model = HorizontalLinearSVM(C=header["C"], rho=header["rho"])
            model.consensus_weights_ = data["weights"]
            model.consensus_bias_ = float(header["bias"])
            return model
        if model_type == "HorizontalLogisticRegression":
            model = HorizontalLogisticRegression(lam=header["lam"], rho=header["rho"])
            model.consensus_weights_ = data["weights"]
            model.consensus_bias_ = float(header["bias"])
            return model
        if model_type == "DPLogisticRegression":
            epsilon = header["epsilon"]
            model = DPLogisticRegression(
                epsilon=float("inf") if epsilon == "inf" else float(epsilon),
                lam=header["lam"],
            )
            model.coef_ = data["coef"]
            model._radius = float(header["radius"])
            return model
    raise ValueError(f"unknown model type {model_type!r}")
