"""Prose-claim tables: the paper's quantitative statements as harnesses.

The paper has no numbered tables, but Section I/V/VI make measurable
claims.  Each function here regenerates one of them (see the experiment
index in DESIGN.md):

* **S1** — centralized benchmark accuracies (~95% cancer, ~70% HIGGS,
  ~98% OCR on 50/50 splits);
* **S2** — cryptographic overhead: the paper's "limited number of
  cryptographic operations at the Reducer" versus an encrypt-everything
  Paillier SMC baseline;
* **S3** — scalability in the number of learners M, plus the
  data-locality invariant (raw bytes moved = 0);
* **S4** — accuracy/trust comparison against the related-work baselines
  (random kernel, DP, no collaboration);
* **S5** — per-iteration cost breakdown of one secure horizontal run,
  derived entirely from the training trace (see
  ``docs/OBSERVABILITY.md``) and reconciled against the counter totals.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.dp import DPLogisticRegression
from repro.baselines.local_only import LocalOnlySVM
from repro.baselines.random_kernel import RandomKernelSVM
from repro.core.partitioning import horizontal_partition
from repro.core.trainer import PrivacyPreservingSVM
from repro.cluster.network import Network
from repro.crypto.paillier import PaillierKeyPair
from repro.crypto.secure_sum import SecureSummationProtocol
from repro.experiments.config import DATASET_GAMMAS, ExperimentConfig
from repro.experiments.datasets import load_benchmark_datasets
from repro.svm.kernels import RBFKernel
from repro.svm.model import SVC, LinearSVC

__all__ = [
    "baseline_comparison_table",
    "centralized_baseline_table",
    "crypto_overhead_table",
    "format_table",
    "per_iteration_cost_table",
    "scalability_table",
]


def format_table(headers: list[str], rows: list[list]) -> str:
    """Render rows as an aligned plain-text table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        if value != value:  # nan
            return "-"
        if abs(value) >= 1000 or (0 < abs(value) < 0.01):
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def centralized_baseline_table(
    config: ExperimentConfig | None = None,
) -> tuple[list[str], list[list]]:
    """Table S1: centralized SVM accuracies on the three datasets."""
    config = config if config is not None else ExperimentConfig()
    datasets = load_benchmark_datasets(config.sizes, seed=config.seed)
    headers = ["dataset", "n_train", "n_features", "linear_acc", "rbf_acc", "paper_acc"]
    paper = {"cancer": 0.95, "higgs": 0.70, "ocr": 0.98}
    rows: list[list] = []
    for name in sorted(datasets):
        train, test = datasets[name]
        linear = LinearSVC(C=config.C).fit(train.X, train.y)
        rbf = SVC(RBFKernel(gamma=DATASET_GAMMAS[name]), C=config.C).fit(train.X, train.y)
        rows.append(
            [
                name,
                train.n_samples,
                train.n_features,
                linear.score(test.X, test.y),
                rbf.score(test.X, test.y),
                paper[name],
            ]
        )
    return headers, rows


def crypto_overhead_table(
    config: ExperimentConfig | None = None,
    *,
    max_iter: int = 20,
    dim: int | None = None,
    rounds: int = 5,
    paillier_bits: int = 512,
) -> tuple[list[str], list[list]]:
    """Table S2: per-round cost of the aggregation strategies.

    All rows price the *same primitive* — aggregating M learners'
    dim-sized consensus contributions into their sum at the Reducer —
    so the comparison is apples-to-apples:

    * plaintext — M unprotected sends plus a numpy sum (the cost floor);
    * the paper's fresh-mask protocol and the PRG-mask optimization;
    * an encrypt-everything Paillier baseline (every learner encrypts
      its full contribution each round; the Reducer adds ciphertexts;
      a key holder decrypts).

    ``max_iter`` is unused by the measurement itself and kept for
    signature compatibility with the other table generators.
    """
    del max_iter
    config = config if config is not None else ExperimentConfig()
    rng = np.random.default_rng(config.seed)
    if dim is None:
        # The linear-horizontal consensus payload: weight vector + bias.
        datasets = load_benchmark_datasets(
            {"cancer": config.sizes.get("cancer", 569)}, seed=config.seed
        )
        dim = datasets["cancer"][0].n_features + 1
    m = config.n_learners
    values = {f"m{i}": rng.normal(size=dim) for i in range(m)}
    expected = sum(values.values())

    headers = [
        "aggregation",
        "bytes_per_round",
        "messages_per_round",
        "crypto_ops_per_round",
        "seconds_per_round",
    ]
    rows: list[list] = []

    # Plaintext floor: send each vector, sum at the reducer.
    network = Network()
    for node in [*values, "red"]:
        network.register(node)
    start = time.perf_counter()
    for _ in range(rounds):
        for node, vec in values.items():
            network.send(node, "red", vec, kind="consensus")
        total = np.zeros(dim)
        for _ in values:
            total = total + network.receive("red", kind="consensus")
    plain_time = (time.perf_counter() - start) / rounds
    np.testing.assert_allclose(total, expected, atol=1e-9)
    rows.append(
        [
            "plaintext",
            network.bytes_sent() / rounds,
            network.messages_sent() / rounds,
            0.0,
            plain_time,
        ]
    )

    # The paper's masking protocol, both mask modes.
    for label, mode in [("masking-fresh (paper)", "fresh"), ("masking-prg", "prg")]:
        network = Network(keep_log=False)
        protocol = SecureSummationProtocol(
            network, list(values), "red", mode=mode, seed=config.seed
        )
        setup_bytes = network.bytes_sent()
        start = time.perf_counter()
        for _ in range(rounds):
            result = protocol.sum_vectors(values)
        elapsed = (time.perf_counter() - start) / rounds
        np.testing.assert_allclose(result, expected, atol=1e-8)
        rows.append(
            [
                label,
                (network.bytes_sent() - setup_bytes) / rounds,
                network.messages_sent() / rounds,
                network.metrics.get("crypto.masks_generated") / rounds,
                elapsed,
            ]
        )

    # Paillier SMC baseline: M encrypted vectors, homomorphic sum,
    # decryption sweep.
    keypair = PaillierKeyPair.generate(bits=paillier_bits, seed=config.seed)
    pk = keypair.public_key
    int_vectors = [
        [int(v * 2**20) for v in vec] for vec in values.values()
    ]
    start = time.perf_counter()
    for _ in range(max(1, rounds // 5)):
        encrypted = [pk.encrypt_vector(vec, rng=rng) for vec in int_vectors]
        totals = encrypted[0]
        for enc in encrypted[1:]:
            totals = [a + b for a, b in zip(totals, enc)]
        keypair.decrypt_vector(totals)
    paillier_time = (time.perf_counter() - start) / max(1, rounds // 5)
    ciphertext_bytes = (pk.n_squared.bit_length() + 7) // 8
    rows.append(
        [
            f"paillier-{paillier_bits} (SMC baseline)",
            float(m * dim * ciphertext_bytes),
            float(m),
            float(m * dim),
            paillier_time,
        ]
    )
    return headers, rows


def scalability_table(
    config: ExperimentConfig | None = None,
    *,
    learner_counts: tuple[int, ...] = (2, 4, 8, 16),
    max_iter: int = 20,
) -> tuple[list[str], list[list]]:
    """Table S3: cost and accuracy versus the number of learners M."""
    config = config if config is not None else ExperimentConfig()
    datasets = load_benchmark_datasets({"cancer": config.sizes.get("cancer", 569)}, seed=config.seed)
    train, test = datasets["cancer"]

    headers = [
        "n_learners",
        "accuracy",
        "bytes_per_iter",
        "mask_msgs_per_iter",
        "seconds_per_iter",
        "raw_data_bytes_moved",
    ]
    rows: list[list] = []
    for m in learner_counts:
        parts = horizontal_partition(train, m, seed=config.seed)
        start = time.perf_counter()
        model = PrivacyPreservingSVM(
            "horizontal", C=config.C, rho=config.rho, max_iter=max_iter, seed=config.seed
        ).fit(parts)
        elapsed = time.perf_counter() - start
        summary = model.communication_summary()
        iters = summary["iterations"]
        rows.append(
            [
                m,
                model.score(test.X, test.y),
                summary["total_bytes"] / iters,
                summary["masks_generated"] / iters,
                elapsed / iters,
                summary["raw_data_bytes_moved"],
            ]
        )
    return headers, rows


def per_iteration_cost_table(
    config: ExperimentConfig | None = None,
    *,
    dataset: str = "cancer",
    max_iter: int = 10,
) -> tuple[list[str], list[list]]:
    """Table S5: per-iteration cost of one secure horizontal training run.

    Trains :class:`~repro.core.trainer.PrivacyPreservingSVM` for
    ``max_iter`` iterations and returns its trace-derived cost table:
    one row per iteration (plus a ``setup`` row when pre-round traffic
    exists), with bytes broken down by wire kind, message and crypto-op
    counts, and wall/simulated time.  The column totals reconcile with
    the run's :class:`~repro.cluster.metrics.MetricRegistry` — asserted
    here so the report never prints a table that disagrees with the
    counters.
    """
    config = config if config is not None else ExperimentConfig()
    datasets = load_benchmark_datasets(
        {dataset: config.sizes.get(dataset, 569)}, seed=config.seed
    )
    train, _ = datasets[dataset]
    parts = horizontal_partition(train, config.n_learners, seed=config.seed)
    model = PrivacyPreservingSVM(
        "horizontal", C=config.C, rho=config.rho, max_iter=max_iter, seed=config.seed
    ).fit(parts)
    headers, rows = model.iteration_cost_table()
    total_col = headers.index("total_bytes")
    table_bytes = sum(row[total_col] for row in rows)
    registry_bytes = model.network_.bytes_sent()
    if table_bytes != registry_bytes:
        raise AssertionError(
            f"trace table bytes ({table_bytes}) != registry bytes ({registry_bytes})"
        )
    return headers, rows


def baseline_comparison_table(
    config: ExperimentConfig | None = None,
    *,
    dataset: str = "cancer",
    max_iter: int = 50,
) -> tuple[list[str], list[list]]:
    """Table S4: our scheme against the related-work baselines.

    The "discloses" column states what each scheme hands to an
    untrusted party — the qualitative axis of the paper's Section II
    comparison.
    """
    config = config if config is not None else ExperimentConfig()
    datasets = load_benchmark_datasets(
        {dataset: config.sizes.get(dataset, 569)}, seed=config.seed
    )
    train, test = datasets[dataset]
    parts = horizontal_partition(train, config.n_learners, seed=config.seed)

    headers = ["scheme", "accuracy", "discloses"]
    rows: list[list] = []

    centralized = SVC(C=config.C).fit(train.X, train.y)
    rows.append(["centralized SVM (benchmark)", centralized.score(test.X, test.y), "all raw data pooled"])

    ours = PrivacyPreservingSVM(
        "horizontal", C=config.C, rho=config.rho, max_iter=max_iter, seed=config.seed
    ).fit(parts)
    rows.append(["this paper (secure consensus)", ours.score(test.X, test.y), "masked sums only"])

    local = LocalOnlySVM(C=config.C).fit(parts)
    rows.append(["local-only (no collaboration)", local.score(test.X, test.y), "nothing"])

    projected = RandomKernelSVM(C=config.C, seed=config.seed).fit(parts)
    rows.append(
        ["random kernel [21]", projected.score(test.X, test.y), "projected data (shared secret)"]
    )

    for eps in (1.0, 0.1):
        dp = DPLogisticRegression(epsilon=eps, lam=0.01, seed=config.seed).fit(train.X, train.y)
        rows.append(
            [f"DP logistic regression eps={eps} [7]", dp.score(test.X, test.y), "noised weights"]
        )
    return headers, rows
