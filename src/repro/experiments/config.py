"""Shared experiment configuration (the paper's Section VI setup).

Paper parameters: M = 4 learners, C = 50, rho = 100, 50/50 train/test,
records (or features) assigned to learners at random, 100 ADMM
iterations plotted.

Dataset sizes: the paper uses the full cancer set (569), an 11,000-row
subset of HIGGS, and the full optdigits set (5,620).  ``PAPER_SIZES``
reproduces that; ``QUICK_SIZES`` is a laptop-friendly profile used by
the default benchmark runs (documented in EXPERIMENTS.md) — the curve
*shapes* are insensitive to this within the tested range.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DATASET_GAMMAS", "ExperimentConfig", "PAPER_SIZES", "QUICK_SIZES"]

#: Full paper-scale dataset sizes.
PAPER_SIZES: dict[str, int] = {"cancer": 569, "higgs": 11_000, "ocr": 5_620}

#: Reduced sizes for quick benchmark runs (same difficulty regimes).
QUICK_SIZES: dict[str, int] = {"cancer": 569, "higgs": 1_600, "ocr": 1_200}

#: RBF bandwidths per dataset.  Chosen so the randomly-placed public
#: landmarks couple to the data manifold (exp(-gamma * typical dist^2)
#: well above 0): too narrow a kernel and the landmark consensus
#: transfers nothing between learners (see the landmark ablation).
DATASET_GAMMAS: dict[str, float] = {"cancer": 0.02, "higgs": 0.005, "ocr": 0.002}


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment's knobs, defaulting to the paper's Section VI values.

    Attributes
    ----------
    n_learners:
        M (paper: 4).
    C, rho:
        SVM slack penalty and ADMM penalty (paper: 50 and 100).
    max_iter:
        ADMM iterations per run (paper plots 100).
    n_landmarks:
        Reduced-consensus size for the horizontal kernel scheme.
    sizes:
        Dataset-name -> sample-count map.
    seed:
        Master seed; every derived RNG is split from it.
    """

    n_learners: int = 4
    C: float = 50.0
    rho: float = 100.0
    max_iter: int = 100
    n_landmarks: int = 50
    sizes: dict[str, int] = field(default_factory=lambda: dict(QUICK_SIZES))
    seed: int = 0

    def with_sizes(self, sizes: dict[str, int]) -> "ExperimentConfig":
        """A copy of this config with different dataset sizes."""
        return ExperimentConfig(
            n_learners=self.n_learners,
            C=self.C,
            rho=self.rho,
            max_iter=self.max_iter,
            n_landmarks=self.n_landmarks,
            sizes=dict(sizes),
            seed=self.seed,
        )
