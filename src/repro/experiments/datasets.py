"""Benchmark dataset loading: generate, split 50/50, standardize.

Implements the paper's evaluation protocol: each dataset is split
50/50 into train/test; features are standardized on the training half
(the synthetic generators are already roughly standardized, but the
real pipeline a practitioner runs includes this step, so we do too).
"""

from __future__ import annotations

from repro.data.dataset import Dataset
from repro.data.scaling import StandardScaler
from repro.data.splits import train_test_split
from repro.data.synthetic import make_cancer_like, make_higgs_like, make_ocr_like

__all__ = ["load_benchmark_datasets"]

_MAKERS = {
    "cancer": make_cancer_like,
    "higgs": make_higgs_like,
    "ocr": make_ocr_like,
}


def load_benchmark_datasets(
    sizes: dict[str, int],
    *,
    seed: int = 0,
) -> dict[str, tuple[Dataset, Dataset]]:
    """Return ``{name: (train, test)}`` for the requested datasets.

    ``sizes`` maps dataset names (``"cancer"``, ``"higgs"``, ``"ocr"``)
    to total sample counts; each is split 50/50 (stratified) and
    standardized with training-half statistics.
    """
    out: dict[str, tuple[Dataset, Dataset]] = {}
    for name, n_samples in sizes.items():
        maker = _MAKERS.get(name)
        if maker is None:
            raise ValueError(f"unknown dataset {name!r}; choose from {sorted(_MAKERS)}")
        dataset = maker(n_samples, seed=seed)
        train, test = train_test_split(dataset, 0.5, seed=seed)
        scaler = StandardScaler().fit(train.X)
        out[name] = (
            scaler.transform_dataset(train),
            scaler.transform_dataset(test),
        )
    return out
