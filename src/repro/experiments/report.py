"""One-shot report generator: every figure and table, as Markdown.

``python -m repro report --out report.md`` regenerates the complete
evaluation (all eight Fig. 4 panels, tables S1–S5, both ablations) and
writes a self-contained Markdown report with ASCII-rendered curves.
EXPERIMENTS.md in the repository root was produced from this harness's
output plus commentary.
"""

from __future__ import annotations

import time

from repro.experiments.ablation import c_sweep, landmark_sweep, rho_sweep
from repro.experiments.config import ExperimentConfig
from repro.experiments.figure4 import PANELS, format_panel, run_panel
from repro.experiments.tables import (
    baseline_comparison_table,
    centralized_baseline_table,
    crypto_overhead_table,
    format_table,
    per_iteration_cost_table,
    scalability_table,
)
from repro.utils.plotting import ascii_plot

__all__ = ["generate_report"]


def _fence(text: str) -> str:
    return f"```\n{text}\n```"


def generate_report(
    config: ExperimentConfig | None = None,
    *,
    panels: str = "abcdefgh",
    include_tables: bool = True,
    include_ablation: bool = True,
    progress: bool = True,
) -> str:
    """Run the full evaluation and return it as a Markdown document."""
    config = config if config is not None else ExperimentConfig()
    lines: list[str] = [
        "# Regenerated evaluation report",
        "",
        f"Configuration: M={config.n_learners}, C={config.C}, rho={config.rho}, "
        f"{config.max_iter} iterations, sizes={config.sizes}, seed={config.seed}.",
        "",
    ]

    def log(msg: str) -> None:
        if progress:
            print(msg, flush=True)

    for panel in panels:
        if panel not in PANELS:
            raise ValueError(f"unknown panel {panel!r}")
        start = time.perf_counter()
        result = run_panel(panel, config)
        log(f"panel ({panel}) done in {time.perf_counter() - start:.1f}s")
        quantity, scheme = PANELS[panel]
        lines.append(f"## Fig. 4({panel}) — {quantity}, {scheme}")
        lines.append("")
        chart = ascii_plot(
            result.series,
            title="",
            logy=(quantity == "convergence"),
            y_label="||z(t+1)-z(t)||^2" if quantity == "convergence" else "correct ratio",
        )
        lines.append(_fence(chart))
        lines.append("")
        lines.append(_fence(format_panel(result, every=10)))
        lines.append("")

    if include_tables:
        for title, builder, kwargs in [
            ("Table S1 — centralized benchmark accuracies", centralized_baseline_table, {}),
            ("Table S2 — aggregation cost per round", crypto_overhead_table, {}),
            ("Table S3 — scalability in M", scalability_table, {"max_iter": 15}),
            ("Table S4 — baseline comparison", baseline_comparison_table, {"max_iter": 50}),
            (
                "Table S5 — per-iteration cost breakdown (from the trace)",
                per_iteration_cost_table,
                {"max_iter": 10},
            ),
        ]:
            start = time.perf_counter()
            headers, rows = builder(config, **kwargs)
            log(f"{title.split('—')[0].strip()} done in {time.perf_counter() - start:.1f}s")
            lines.append(f"## {title}")
            lines.append("")
            lines.append(_fence(format_table(headers, rows)))
            lines.append("")

    if include_ablation:
        for title, builder in [
            ("Ablation A1 — ADMM penalty rho", rho_sweep),
            ("Ablation A1b — slack penalty C", c_sweep),
            ("Ablation A2 — landmark count", landmark_sweep),
        ]:
            start = time.perf_counter()
            headers, rows = builder(config=config)
            log(f"{title.split('—')[0].strip()} done in {time.perf_counter() - start:.1f}s")
            lines.append(f"## {title}")
            lines.append("")
            lines.append(_fence(format_table(headers, rows)))
            lines.append("")

    return "\n".join(lines)
