"""Experiment harness: regenerates every figure and table of the paper.

* :mod:`repro.experiments.figure4` — the eight panels of Fig. 4
  (convergence ``||z^{t+1}-z^t||^2`` and correct ratio, for
  {linear, kernel} x {horizontal, vertical} on the three datasets);
* :mod:`repro.experiments.tables` — the quantitative claims made in
  prose (centralized benchmark accuracies, secure-summation overhead
  vs an encrypt-everything SMC baseline, scalability in M, comparison
  against the related-work baselines);
* :mod:`repro.experiments.ablation` — sweeps over the design knobs the
  paper discusses (rho, C, landmark count).

Every function returns plain data plus a ``format_*`` helper that
prints the same rows/series the paper reports; the ``benchmarks/``
directory wires them into pytest-benchmark, and ``EXPERIMENTS.md``
records paper-vs-measured values.
"""

from repro.experiments.config import (
    DATASET_GAMMAS,
    PAPER_SIZES,
    QUICK_SIZES,
    ExperimentConfig,
)
from repro.experiments.datasets import load_benchmark_datasets
from repro.experiments.figure4 import (
    PANELS,
    PanelResult,
    format_panel,
    run_panel,
    run_variant,
)
from repro.experiments.tables import (
    baseline_comparison_table,
    centralized_baseline_table,
    crypto_overhead_table,
    format_table,
    scalability_table,
)

__all__ = [
    "DATASET_GAMMAS",
    "ExperimentConfig",
    "PANELS",
    "PAPER_SIZES",
    "PanelResult",
    "QUICK_SIZES",
    "baseline_comparison_table",
    "centralized_baseline_table",
    "crypto_overhead_table",
    "format_panel",
    "format_table",
    "load_benchmark_datasets",
    "run_panel",
    "run_variant",
    "scalability_table",
]
