"""Figure 4 regeneration: the paper's eight evaluation panels.

Panel map (paper Section VI):

====== ============================== =========================
panel  quantity                       scheme
====== ============================== =========================
(a)    ||z^{t+1}-z^t||^2 vs iteration linear horizontal
(b)    ||z^{t+1}-z^t||^2              nonlinear horizontal
(c)    ||z^{t+1}-z^t||^2              linear vertical
(d)    ||z^{t+1}-z^t||^2              nonlinear vertical
(e)    correct ratio vs iteration     linear horizontal
(f)    correct ratio                  nonlinear horizontal
(g)    correct ratio                  linear vertical
(h)    correct ratio                  nonlinear vertical
====== ============================== =========================

Each panel shows all three datasets.  :func:`run_variant` trains one
scheme on one dataset and returns both series (so e.g. panels (a) and
(e) share one training run); :func:`run_panel` assembles a full panel;
:func:`format_panel` prints the series as the rows the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.horizontal_kernel import HorizontalKernelSVM
from repro.core.horizontal_linear import HorizontalLinearSVM
from repro.core.partitioning import horizontal_partition, vertical_partition
from repro.core.results import TrainingHistory
from repro.core.vertical_kernel import VerticalKernelSVM
from repro.core.vertical_linear import VerticalLinearSVM
from repro.data.dataset import Dataset
from repro.experiments.config import DATASET_GAMMAS, ExperimentConfig
from repro.experiments.datasets import load_benchmark_datasets
from repro.svm.kernels import RBFKernel

__all__ = ["PANELS", "PanelResult", "format_panel", "run_panel", "run_variant"]

#: panel letter -> (quantity, scheme) selector.
PANELS: dict[str, tuple[str, str]] = {
    "a": ("convergence", "horizontal-linear"),
    "b": ("convergence", "horizontal-kernel"),
    "c": ("convergence", "vertical-linear"),
    "d": ("convergence", "vertical-kernel"),
    "e": ("accuracy", "horizontal-linear"),
    "f": ("accuracy", "horizontal-kernel"),
    "g": ("accuracy", "vertical-linear"),
    "h": ("accuracy", "vertical-kernel"),
}


@dataclass(frozen=True)
class PanelResult:
    """One regenerated panel of Fig. 4.

    Attributes
    ----------
    panel:
        Letter "a"–"h".
    quantity:
        ``"convergence"`` or ``"accuracy"``.
    scheme:
        Which of the four algorithm variants produced it.
    series:
        Dataset name -> per-iteration values.
    final_accuracy:
        Dataset name -> last-iteration correct ratio (context for
        convergence panels too).
    """

    panel: str
    quantity: str
    scheme: str
    series: dict[str, np.ndarray] = field(default_factory=dict)
    final_accuracy: dict[str, float] = field(default_factory=dict)


def run_variant(
    scheme: str,
    train: Dataset,
    test: Dataset,
    config: ExperimentConfig,
    *,
    gamma: float = 0.1,
) -> TrainingHistory:
    """Train one scheme on one (train, test) pair; return its history.

    ``scheme`` is one of ``"horizontal-linear"``, ``"horizontal-kernel"``,
    ``"vertical-linear"``, ``"vertical-kernel"``.
    """
    if scheme == "horizontal-linear":
        parts = horizontal_partition(train, config.n_learners, seed=config.seed)
        model = HorizontalLinearSVM(
            C=config.C, rho=config.rho, max_iter=config.max_iter
        ).fit(parts, eval_set=test)
        return model.history_
    if scheme == "horizontal-kernel":
        parts = horizontal_partition(train, config.n_learners, seed=config.seed)
        model = HorizontalKernelSVM(
            RBFKernel(gamma=gamma),
            C=config.C,
            rho=config.rho,
            n_landmarks=config.n_landmarks,
            max_iter=config.max_iter,
            seed=config.seed,
        ).fit(parts, eval_set=test)
        return model.history_
    if scheme == "vertical-linear":
        partition = vertical_partition(train, config.n_learners, seed=config.seed)
        model = VerticalLinearSVM(C=config.C, rho=config.rho, max_iter=config.max_iter).fit(
            partition, eval_X=test.X, eval_y=test.y
        )
        return model.history_
    if scheme == "vertical-kernel":
        partition = vertical_partition(train, config.n_learners, seed=config.seed)
        model = VerticalKernelSVM(
            RBFKernel(gamma=gamma), C=config.C, rho=config.rho, max_iter=config.max_iter
        ).fit(partition, eval_X=test.X, eval_y=test.y)
        return model.history_
    raise ValueError(f"unknown scheme {scheme!r}")


def run_panel(panel: str, config: ExperimentConfig | None = None) -> PanelResult:
    """Regenerate one Fig. 4 panel across the three benchmark datasets."""
    if panel not in PANELS:
        raise ValueError(f"panel must be one of {sorted(PANELS)}, got {panel!r}")
    config = config if config is not None else ExperimentConfig()
    quantity, scheme = PANELS[panel]

    datasets = load_benchmark_datasets(config.sizes, seed=config.seed)
    series: dict[str, np.ndarray] = {}
    final_acc: dict[str, float] = {}
    for name, (train, test) in datasets.items():
        gamma = DATASET_GAMMAS.get(name, 0.1)
        history = run_variant(scheme, train, test, config, gamma=gamma)
        series[name] = history.z_changes if quantity == "convergence" else history.accuracies
        final_acc[name] = history.final_accuracy()
    return PanelResult(
        panel=panel,
        quantity=quantity,
        scheme=scheme,
        series=series,
        final_accuracy=final_acc,
    )


def format_panel(result: PanelResult, *, every: int = 10) -> str:
    """Render a panel as the numeric rows behind the paper's plot.

    ``every`` thins the series to one row per that many iterations.
    """
    names = sorted(result.series)
    lines = [
        f"Fig. 4({result.panel}) — {result.quantity}, {result.scheme}",
        "iter  " + "  ".join(f"{n:>12s}" for n in names),
    ]
    n_iter = max(len(s) for s in result.series.values())
    for i in list(range(0, n_iter, every)) + [n_iter - 1]:
        cells = []
        for name in names:
            s = result.series[name]
            value = s[i] if i < len(s) else float("nan")
            cells.append(
                f"{value:>12.4e}" if result.quantity == "convergence" else f"{value:>12.4f}"
            )
        lines.append(f"{i:>4d}  " + "  ".join(cells))
    if result.quantity == "convergence":
        accs = "  ".join(f"{n}={result.final_accuracy[n]:.3f}" for n in names)
        lines.append(f"(final correct ratios: {accs})")
    return "\n".join(lines)
