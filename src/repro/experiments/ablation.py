"""Ablations over the design knobs the paper discusses in Section VI.

* **rho** — "the learning speed parameter": high rho weights consensus
  over max-margin; low rho the reverse.  We sweep rho and report how
  fast the consensus settles and where accuracy lands.
* **C** — slack penalty: high C prioritizes strict separation over
  margin width (the paper's own explanation).
* **landmark count l** — the horizontal-kernel scheme approximates the
  RKHS consensus with l landmark projections (Lemma 4.4); more
  landmarks mean better approximation but linearly more consensus
  traffic per iteration.
"""

from __future__ import annotations

import numpy as np

from repro.core.horizontal_kernel import HorizontalKernelSVM
from repro.core.horizontal_linear import HorizontalLinearSVM
from repro.core.partitioning import horizontal_partition
from repro.experiments.config import DATASET_GAMMAS, ExperimentConfig
from repro.experiments.datasets import load_benchmark_datasets
from repro.svm.kernels import RBFKernel

__all__ = ["c_sweep", "landmark_sweep", "rho_sweep"]


def _iterations_to(history_z_changes: np.ndarray, threshold: float) -> float:
    """First iteration whose z-change drops below ``threshold`` (nan if never)."""
    below = np.flatnonzero(history_z_changes <= threshold)
    return float(below[0]) if below.size else float("nan")


def rho_sweep(
    rhos: tuple[float, ...] = (1.0, 10.0, 100.0, 1000.0),
    config: ExperimentConfig | None = None,
    *,
    dataset: str = "cancer",
) -> tuple[list[str], list[list]]:
    """Ablation A1: ADMM penalty rho on the linear horizontal scheme."""
    config = config if config is not None else ExperimentConfig()
    datasets = load_benchmark_datasets({dataset: config.sizes.get(dataset, 569)}, seed=config.seed)
    train, test = datasets[dataset]
    parts = horizontal_partition(train, config.n_learners, seed=config.seed)

    headers = ["rho", "final_z_change", "iters_to_1e-3", "accuracy"]
    rows: list[list] = []
    for rho in rhos:
        model = HorizontalLinearSVM(C=config.C, rho=rho, max_iter=config.max_iter).fit(parts)
        z_changes = model.history_.z_changes
        rows.append(
            [
                rho,
                float(z_changes[-1]),
                _iterations_to(z_changes, 1e-3),
                model.score(test.X, test.y),
            ]
        )
    return headers, rows


def c_sweep(
    cs: tuple[float, ...] = (1.0, 10.0, 50.0, 200.0),
    config: ExperimentConfig | None = None,
    *,
    dataset: str = "cancer",
) -> tuple[list[str], list[list]]:
    """Ablation: slack penalty C on the linear horizontal scheme."""
    config = config if config is not None else ExperimentConfig()
    datasets = load_benchmark_datasets({dataset: config.sizes.get(dataset, 569)}, seed=config.seed)
    train, test = datasets[dataset]
    parts = horizontal_partition(train, config.n_learners, seed=config.seed)

    headers = ["C", "accuracy", "final_z_change"]
    rows: list[list] = []
    for c_value in cs:
        model = HorizontalLinearSVM(C=c_value, rho=config.rho, max_iter=config.max_iter).fit(parts)
        rows.append([c_value, model.score(test.X, test.y), float(model.history_.z_changes[-1])])
    return headers, rows


def landmark_sweep(
    landmark_counts: tuple[int, ...] = (5, 10, 20, 40),
    config: ExperimentConfig | None = None,
    *,
    dataset: str = "cancer",
) -> tuple[list[str], list[list]]:
    """Ablation A2: landmark count l in the horizontal kernel scheme.

    ``consensus_floats_per_iter`` counts the values each learner must
    contribute to the secure sum per iteration (l + 1) — the
    communication the landmark approximation buys down.
    """
    config = config if config is not None else ExperimentConfig()
    datasets = load_benchmark_datasets({dataset: config.sizes.get(dataset, 569)}, seed=config.seed)
    train, test = datasets[dataset]
    parts = horizontal_partition(train, config.n_learners, seed=config.seed)
    gamma = DATASET_GAMMAS.get(dataset, 0.1)

    headers = ["n_landmarks", "accuracy", "final_z_change", "consensus_floats_per_iter"]
    rows: list[list] = []
    for n_land in landmark_counts:
        model = HorizontalKernelSVM(
            RBFKernel(gamma=gamma),
            C=config.C,
            rho=config.rho,
            n_landmarks=n_land,
            max_iter=config.max_iter,
            seed=config.seed,
        ).fit(parts)
        rows.append(
            [
                n_land,
                model.score(test.X, test.y),
                float(model.history_.z_changes[-1]),
                n_land + 1,
            ]
        )
    return headers, rows
