"""Structured tracing for the simulated cluster.

Flat counters (:mod:`repro.cluster.metrics`) answer *how much* — total
bytes, total crypto ops — but not *when* or *in which iteration* a byte
moved or a Paillier operation ran.  :class:`TraceRecorder` fills that
gap with three kinds of structured records, all cheap enough to stay on
by default:

* **spans** — named intervals with wall-clock *and* simulated-latency
  durations, parent/child nesting, a node id, an iteration tag, and
  free-form attributes (e.g. the ADMM residuals attached to a
  convergence-check span);
* **events** — instantaneous points, most importantly one
  ``network.send`` event per message carrying its wire ``kind`` and
  serialized size;
* **counter samples** — an ``(iteration, name, amount)`` triple per
  counter increment routed through a
  :class:`~repro.cluster.profiling.Profiler`, which is what makes
  per-iteration crypto-op breakdowns derivable.

Exporters turn a recording into ``.jsonl`` (:meth:`TraceRecorder.to_jsonl`),
Chrome-trace JSON loadable in ``chrome://tracing`` / Perfetto
(:meth:`TraceRecorder.to_chrome_trace`), or a per-iteration cost table
(:meth:`TraceRecorder.iteration_costs`, rendered by
:func:`cost_table`) whose totals reconcile exactly with the
:class:`~repro.cluster.metrics.MetricRegistry` counters.

The span schema and every recorded name are documented in
``docs/OBSERVABILITY.md``.

Example
-------
>>> recorder = TraceRecorder()
>>> with recorder.iteration(0):
...     with recorder.span("round", kind="round") as outer:
...         with recorder.span("local_step", node="learner-0") as inner:
...             pass
>>> inner.parent_id == outer.span_id
True
>>> (outer.iteration, inner.node)
(0, 'learner-0')
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Iterator

__all__ = [
    "Span",
    "TraceEvent",
    "TraceRecorder",
    "cost_table",
]


@dataclass
class Span:
    """One named interval in a trace.

    Attributes
    ----------
    span_id:
        Recorder-unique id.
    parent_id:
        ``span_id`` of the enclosing span, or ``None`` at top level.
    name:
        Dotted span name, e.g. ``"twister.round"`` (the registry of
        names lives in ``docs/OBSERVABILITY.md``).
    kind:
        Coarse category used for grouping/export: ``"round"``, ``"map"``,
        ``"reduce"``, ``"broadcast"``, ``"crypto"``, ``"hdfs"``,
        ``"trainer"``, ...
    node:
        Simulated node the work ran on (``None`` for driver-level work).
    iteration:
        0-based training iteration, or ``None`` outside any round
        (setup work: HDFS placement, PRG seed exchange, ...).
    start_wall_s, duration_wall_s:
        Wall-clock interval, relative to the recorder's origin.
    start_sim_s, duration_sim_s:
        Simulated-clock interval (``None`` when no simulated clock is
        attached); durations count the simulated network transfer time
        that elapsed inside the span.
    attrs:
        Free-form attributes (byte counts, residuals, op counts).
    """

    span_id: int
    parent_id: int | None
    name: str
    kind: str
    node: str | None
    iteration: int | None
    start_wall_s: float
    duration_wall_s: float = 0.0
    start_sim_s: float | None = None
    duration_sim_s: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)


@dataclass
class TraceEvent:
    """One instantaneous point in a trace (e.g. a message send).

    Attributes mirror :class:`Span` minus the durations; ``wall_s`` and
    ``sim_s`` are the timestamps at which the event was recorded.
    """

    name: str
    kind: str
    node: str | None
    iteration: int | None
    wall_s: float
    sim_s: float | None
    attrs: dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Records spans, events, and counter samples for one simulated run.

    Parameters
    ----------
    enabled:
        When ``False``, ``span()`` still yields usable handles (so
        instrumented code needs no guards) but nothing is stored.
    max_records:
        Upper bound on stored spans + events + counter samples; once
        reached, further records are dropped and counted in
        :attr:`dropped` (bounding memory on very long benchmark runs,
        like ``Network(keep_log=False)`` does for the message log).
    sim_clock:
        Zero-argument callable returning the current simulated time;
        :class:`~repro.cluster.network.Network` attaches its own clock
        so spans capture simulated-latency durations.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        max_records: int = 500_000,
        sim_clock: Callable[[], float] | None = None,
    ) -> None:
        self.enabled = enabled
        self.max_records = max_records
        self.sim_clock = sim_clock
        self.spans: list[Span] = []
        self.events: list[TraceEvent] = []
        self.counter_samples: list[tuple[int | None, str, float]] = []
        self.dropped = 0
        self._origin = time.perf_counter()
        self._next_id = 0
        self._iteration: int | None = None
        # Record storage and id allocation are guarded by one lock so a
        # parallel map wave can emit spans concurrently; span *nesting*
        # is tracked per thread (a worker inherits its parent span via
        # :meth:`adopt`, not via the spawning thread's stack).
        self._lock = threading.Lock()
        self._local = threading.local()

    def _thread_stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    # -- recording ------------------------------------------------------

    @property
    def current_iteration(self) -> int | None:
        """Iteration tag applied to new records (``None`` = setup)."""
        return self._iteration

    @contextmanager
    def iteration(self, index: int) -> Iterator[None]:
        """Tag every span/event/counter recorded inside with ``index``."""
        previous = self._iteration
        self._iteration = int(index)
        try:
            yield
        finally:
            self._iteration = previous

    @contextmanager
    def adopt(self, parent_id: int | None) -> Iterator[None]:
        """Nest this thread's spans under an existing span.

        Worker threads have an empty span stack of their own, so spans
        they open would otherwise float at top level; the parallel map
        wave passes its ``twister.map_wave`` span id here so per-mapper
        spans keep the same parentage as in sequential mode.
        """
        if parent_id is None:
            yield
            return
        stack = self._thread_stack()
        stack.append(int(parent_id))
        try:
            yield
        finally:
            stack.pop()

    @contextmanager
    def span(
        self,
        name: str,
        *,
        kind: str = "span",
        node: str | None = None,
        iteration: int | None = None,
        **attrs: Any,
    ) -> Iterator[Span]:
        """Open a span; yields the mutable :class:`Span` so callers can
        attach result attributes (e.g. residuals) before it closes."""
        stack = self._thread_stack()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        record = Span(
            span_id=span_id,
            parent_id=stack[-1] if stack else None,
            name=name,
            kind=kind,
            node=node,
            iteration=iteration if iteration is not None else self._iteration,
            start_wall_s=time.perf_counter() - self._origin,
            start_sim_s=self.sim_clock() if self.sim_clock is not None else None,
            attrs=dict(attrs),
        )
        stack.append(record.span_id)
        try:
            yield record
        finally:
            stack.pop()
            record.duration_wall_s = (
                time.perf_counter() - self._origin - record.start_wall_s
            )
            if record.start_sim_s is not None and self.sim_clock is not None:
                record.duration_sim_s = self.sim_clock() - record.start_sim_s
            if self.enabled:
                with self._lock:
                    if not self._full():
                        self.spans.append(record)
                    else:
                        self.dropped += 1

    def event(
        self,
        name: str,
        *,
        kind: str = "event",
        node: str | None = None,
        iteration: int | None = None,
        **attrs: Any,
    ) -> None:
        """Record an instantaneous event with free-form attributes."""
        if not self.enabled:
            return
        record = TraceEvent(
            name=name,
            kind=kind,
            node=node,
            iteration=iteration if iteration is not None else self._iteration,
            wall_s=time.perf_counter() - self._origin,
            sim_s=self.sim_clock() if self.sim_clock is not None else None,
            attrs=dict(attrs),
        )
        with self._lock:
            if self._full():
                self.dropped += 1
                return
            self.events.append(record)

    def counter(self, name: str, amount: float = 1.0) -> None:
        """Record one counter increment tagged with the current iteration.

        Called by :meth:`repro.cluster.profiling.Profiler.increment`;
        these samples are what :meth:`iteration_costs` aggregates into
        per-iteration crypto-op counts.
        """
        if not self.enabled:
            return
        with self._lock:
            if self._full():
                self.dropped += 1
                return
            self.counter_samples.append((self._iteration, name, float(amount)))

    def clear(self) -> None:
        """Drop all recorded spans/events/samples (keeps configuration)."""
        with self._lock:
            self.spans.clear()
            self.events.clear()
            self.counter_samples.clear()
            self.dropped = 0
        self._thread_stack().clear()
        self._iteration = None

    def _full(self) -> bool:
        stored = len(self.spans) + len(self.events) + len(self.counter_samples)
        return stored >= self.max_records

    # -- aggregation ----------------------------------------------------

    def iteration_costs(self) -> list[dict[str, Any]]:
        """Aggregate the trace into one cost row per iteration.

        Returns a list of dicts sorted with the setup row (``iteration
        is None``) first, each with keys ``iteration``, ``bytes_by_kind``,
        ``messages_by_kind``, ``total_bytes``, ``total_messages``,
        ``crypto_ops`` (counter name -> per-iteration total for
        ``crypto.*`` counters), ``wall_s`` and ``sim_s`` (durations of
        the ``twister.round`` spans of that iteration).

        Summing any column across rows reproduces the corresponding
        :class:`~repro.cluster.metrics.MetricRegistry` total — the
        reconciliation the tests and the ``repro trace`` CLI assert.
        """
        rows: dict[int | None, dict[str, Any]] = {}

        def row(iteration: int | None) -> dict[str, Any]:
            if iteration not in rows:
                rows[iteration] = {
                    "iteration": iteration,
                    "bytes_by_kind": {},
                    "messages_by_kind": {},
                    "total_bytes": 0.0,
                    "total_messages": 0.0,
                    "crypto_ops": {},
                    "wall_s": 0.0,
                    "sim_s": 0.0,
                }
            return rows[iteration]

        for event in self.events:
            if event.name != "network.send":
                continue
            entry = row(event.iteration)
            kind = event.attrs.get("message_kind", "data")
            size = float(event.attrs.get("size_bytes", 0.0))
            entry["bytes_by_kind"][kind] = entry["bytes_by_kind"].get(kind, 0.0) + size
            entry["messages_by_kind"][kind] = entry["messages_by_kind"].get(kind, 0.0) + 1.0
            entry["total_bytes"] += size
            entry["total_messages"] += 1.0

        for iteration, name, amount in self.counter_samples:
            if not name.startswith("crypto."):
                continue
            entry = row(iteration)
            entry["crypto_ops"][name] = entry["crypto_ops"].get(name, 0.0) + amount

        for span in self.spans:
            if span.name != "twister.round":
                continue
            entry = row(span.iteration)
            entry["wall_s"] += span.duration_wall_s
            entry["sim_s"] += span.duration_sim_s or 0.0

        return sorted(
            rows.values(),
            key=lambda r: (0, 0) if r["iteration"] is None else (1, r["iteration"]),
        )

    # -- exporters ------------------------------------------------------

    def to_jsonl(self) -> str:
        """Serialize the trace as JSON Lines, one record per line.

        Each line is a JSON object with a ``"type"`` discriminator:
        ``"span"``, ``"event"``, or ``"counter"``.
        """
        lines: list[str] = []
        for span in self.spans:
            lines.append(json.dumps({"type": "span", **asdict(span)}, default=str))
        for event in self.events:
            lines.append(json.dumps({"type": "event", **asdict(event)}, default=str))
        for iteration, name, amount in self.counter_samples:
            lines.append(
                json.dumps(
                    {
                        "type": "counter",
                        "iteration": iteration,
                        "name": name,
                        "amount": amount,
                    }
                )
            )
        return "\n".join(lines)

    def to_chrome_trace(self) -> dict[str, Any]:
        """Export as a Chrome-trace (Trace Event Format) JSON object.

        Load the ``json.dumps`` of the result in ``chrome://tracing`` or
        https://ui.perfetto.dev.  Each simulated node becomes a process
        (named via ``process_name`` metadata); spans become complete
        (``"ph": "X"``) events with microsecond timestamps; trace events
        become instant (``"ph": "i"``) events.  Span attributes and the
        iteration tag travel in ``args``.
        """
        pids: dict[str, int] = {}

        def pid(node: str | None) -> int:
            label = node if node is not None else "driver"
            if label not in pids:
                pids[label] = len(pids) + 1
            return pids[label]

        trace_events: list[dict[str, Any]] = []
        for span in self.spans:
            args = {"iteration": span.iteration, **span.attrs}
            trace_events.append(
                {
                    "ph": "X",
                    "name": span.name,
                    "cat": span.kind,
                    "pid": pid(span.node),
                    "tid": 1,
                    "ts": span.start_wall_s * 1e6,
                    "dur": span.duration_wall_s * 1e6,
                    "args": {k: _jsonable(v) for k, v in args.items()},
                }
            )
        for event in self.events:
            args = {"iteration": event.iteration, **event.attrs}
            trace_events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": event.name,
                    "cat": event.kind,
                    "pid": pid(event.node),
                    "tid": 1,
                    "ts": event.wall_s * 1e6,
                    "args": {k: _jsonable(v) for k, v in args.items()},
                }
            )
        metadata = [
            {
                "ph": "M",
                "name": "process_name",
                "pid": process_id,
                "tid": 1,
                "args": {"name": label},
            }
            for label, process_id in pids.items()
        ]
        return {"traceEvents": metadata + trace_events, "displayTimeUnit": "ms"}


def _jsonable(value: Any) -> Any:
    """Coerce an attribute value into something JSON-serializable."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "tolist"):  # numpy arrays and scalars
        return _jsonable(value.tolist())
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


def cost_table(rows: list[dict[str, Any]]) -> tuple[list[str], list[list[Any]]]:
    """Render :meth:`TraceRecorder.iteration_costs` rows as a table.

    Returns ``(headers, rows)`` with one column per message kind seen in
    the trace (``bytes:<kind>``), plus total bytes/messages, total
    crypto ops, and wall/simulated milliseconds — the shape consumed by
    ``repro trace``, :mod:`repro.experiments.report`, and the
    distributed-cost benchmark.
    """
    kinds = sorted({kind for row in rows for kind in row["bytes_by_kind"]})
    headers = (
        ["iteration"]
        + [f"bytes:{kind}" for kind in kinds]
        + ["total_bytes", "messages", "crypto_ops", "wall_ms", "sim_ms"]
    )
    table: list[list[Any]] = []
    for row in rows:
        label = "setup" if row["iteration"] is None else str(row["iteration"])
        table.append(
            [label]
            + [row["bytes_by_kind"].get(kind, 0.0) for kind in kinds]
            + [
                row["total_bytes"],
                row["total_messages"],
                sum(row["crypto_ops"].values()),
                row["wall_s"] * 1e3,
                row["sim_s"] * 1e3,
            ]
        )
    return headers, table
