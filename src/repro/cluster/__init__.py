"""Simulated data-parallel cluster (the paper's Hadoop/Twister substrate).

The paper runs its algorithms on Apache Hadoop's architecture (Fig. 1):
each learner is an HDFS data node hosting a Mapper; a Reducer summarizes
local results; an iterative runtime (Twister [12]) feeds the consensus
back to the Mappers each round.  This package simulates that stack
in-process, with explicit accounting so the paper's data-locality and
communication claims can be *measured*:

* :mod:`repro.cluster.metrics` — named counters (bytes, messages, crypto ops);
* :mod:`repro.cluster.network` — message-passing fabric with per-message
  byte sizes, a latency/bandwidth model, and a full message log (the
  adversary's wire view);
* :mod:`repro.cluster.hdfs` — blocks, data nodes, replication, and a
  namenode; raw training data is stored as local blocks that never move;
* :mod:`repro.cluster.scheduler` — locality-aware map-task placement;
* :mod:`repro.cluster.mapreduce` — classic one-shot MapReduce jobs;
* :mod:`repro.cluster.twister` — the iterative MapReduce driver with a
  broadcast feedback channel used by the privacy-preserving trainers;
* :mod:`repro.cluster.tracing` — structured spans/events/counter samples
  with JSONL and Chrome-trace exporters;
* :mod:`repro.cluster.profiling` — the :class:`Profiler` facade joining
  the counter registry and the trace recorder behind one snapshot.

The observability surface (every counter name, the span schema, and the
exporter formats) is documented in ``docs/OBSERVABILITY.md``.
"""

from repro.cluster.hdfs import Block, HdfsError, SimulatedHdfs
from repro.cluster.mapreduce import MapReduceJob
from repro.cluster.metrics import MetricRegistry
from repro.cluster.network import LatencyModel, Message, Network, NetworkError
from repro.cluster.profiling import Profiler
from repro.cluster.scheduler import LocalityScheduler, TaskAssignment
from repro.cluster.tracing import Span, TraceEvent, TraceRecorder, cost_table
from repro.cluster.twister import (
    IterationResult,
    IterativeMapper,
    IterativeMapReduceDriver,
    IterativeReducer,
)

__all__ = [
    "Block",
    "HdfsError",
    "IterationResult",
    "IterativeMapReduceDriver",
    "IterativeMapper",
    "IterativeReducer",
    "LatencyModel",
    "LocalityScheduler",
    "MapReduceJob",
    "Message",
    "MetricRegistry",
    "Network",
    "NetworkError",
    "Profiler",
    "SimulatedHdfs",
    "Span",
    "TaskAssignment",
    "TraceEvent",
    "TraceRecorder",
    "cost_table",
]
