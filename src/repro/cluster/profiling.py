"""Unified profiling facade: counters and spans behind one object.

:class:`Profiler` pairs the flat, monotonic
:class:`~repro.cluster.metrics.MetricRegistry` with a structured
:class:`~repro.cluster.tracing.TraceRecorder` and exposes both behind
the registry's own interface — any code written against
``MetricRegistry`` (every ``network.metrics.increment(...)`` call site)
works unchanged against a ``Profiler``, but each increment is *also*
recorded as an iteration-tagged counter sample, which is what makes
per-round crypto-op breakdowns derivable from a run.

:class:`~repro.cluster.network.Network` constructs a ``Profiler`` by
default, so the full observability surface is on for every simulated
run; pass a bare ``MetricRegistry`` to opt out of counter-sample
attribution (counters still work, per-iteration tables lose the
crypto-op column).

``snapshot()`` returns the one schema shared by counters and spans —
see ``docs/OBSERVABILITY.md`` for the field-by-field reference.

Example
-------
>>> profiler = Profiler()
>>> with profiler.iteration(0):
...     profiler.increment("crypto.masks_generated", 3)
>>> profiler.get("crypto.masks_generated")
3.0
>>> profiler.snapshot()["counters"]
{'crypto.masks_generated': 3.0}
>>> profiler.tracer.counter_samples
[(0, 'crypto.masks_generated', 3.0)]
"""

from __future__ import annotations

from typing import Any, ContextManager

from repro.cluster.metrics import MetricRegistry
from repro.cluster.tracing import Span, TraceRecorder

__all__ = ["Profiler"]


class Profiler:
    """Facade unifying a counter registry and a trace recorder.

    Parameters
    ----------
    registry:
        Counter store; a fresh :class:`MetricRegistry` if omitted.
    tracer:
        Span/event store; a fresh :class:`TraceRecorder` if omitted.
    """

    def __init__(
        self,
        registry: MetricRegistry | None = None,
        tracer: TraceRecorder | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        self.tracer = tracer if tracer is not None else TraceRecorder()

    # -- MetricRegistry interface (drop-in) -----------------------------

    def increment(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` and record an iteration-tagged sample."""
        self.registry.increment(name, amount)
        self.tracer.counter(name, amount)

    def get(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self.registry.get(name)

    def with_prefix(self, prefix: str) -> dict[str, float]:
        """All counters whose name starts with ``prefix``."""
        return self.registry.with_prefix(prefix)

    def as_dict(self) -> dict[str, float]:
        """Snapshot of every counter."""
        return self.registry.as_dict()

    def reset(self) -> None:
        """Zero all counters *and* drop the recorded trace."""
        self.registry.reset()
        self.tracer.clear()

    # -- TraceRecorder interface ----------------------------------------

    def span(self, name: str, **kwargs: Any) -> ContextManager[Span]:
        """Open a span on the underlying tracer (see :meth:`TraceRecorder.span`)."""
        return self.tracer.span(name, **kwargs)

    def event(self, name: str, **kwargs: Any) -> None:
        """Record an instantaneous event on the underlying tracer."""
        self.tracer.event(name, **kwargs)

    def iteration(self, index: int) -> ContextManager[None]:
        """Context manager tagging nested records with iteration ``index``."""
        return self.tracer.iteration(index)

    # -- unified view ---------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """One schema for the whole run: counters, spans, and costs.

        Returns a dict with keys

        * ``"counters"`` — ``MetricRegistry.as_dict()``;
        * ``"spans"`` — list of :class:`~repro.cluster.tracing.Span`;
        * ``"events"`` — list of :class:`~repro.cluster.tracing.TraceEvent`;
        * ``"iterations"`` — :meth:`TraceRecorder.iteration_costs` rows;
        * ``"dropped"`` — records discarded past the tracer's cap.
        """
        return {
            "counters": self.registry.as_dict(),
            "spans": list(self.tracer.spans),
            "events": list(self.tracer.events),
            "iterations": self.tracer.iteration_costs(),
            "dropped": self.tracer.dropped,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Profiler(counters={len(self.registry.as_dict())}, "
            f"spans={len(self.tracer.spans)}, events={len(self.tracer.events)})"
        )
