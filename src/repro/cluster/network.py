"""Simulated cluster network.

All inter-node communication in the library — MapReduce shuffle, Twister
broadcast, and every round of the secure summation protocol — flows
through a :class:`Network`.  The network

* measures each payload's serialized size (``pickle``) and accounts bytes
  per message *kind* in the shared :class:`~repro.cluster.metrics.MetricRegistry`;
* advances a simple simulated clock using a latency + bandwidth model
  (:class:`LatencyModel`), so experiments can report simulated transfer
  time in addition to wall time;
* keeps a complete :attr:`Network.message_log`, which is exactly the
  *wire view* a semi-honest adversary (e.g. the Reducer, or an
  eavesdropper) can record — the security analysis in
  :mod:`repro.security` replays this log.

Nodes are identified by opaque string ids and must be registered before
use; messages are delivered into per-node, per-kind FIFO inboxes.

Observability: byte/message counters are listed in
``docs/OBSERVABILITY.md``; every :meth:`Network.send` additionally
records a ``network.send`` trace event (tagged with the wire ``kind``,
serialized size, and current iteration) on the attached
:class:`~repro.cluster.tracing.TraceRecorder`.  By default the metrics
object is a :class:`~repro.cluster.profiling.Profiler`, so counters and
trace share one registry and one ``snapshot()`` schema.

Example
-------
>>> network = Network()
>>> network.register("a")
>>> network.register("b")
>>> message = network.send("a", "b", {"w": [1.0, 2.0]}, kind="consensus")
>>> network.receive("b", kind="consensus")
{'w': [1.0, 2.0]}
>>> network.bytes_sent("consensus") == message.size_bytes
True
>>> network.tracer.events[0].attrs["message_kind"]
'consensus'
"""

from __future__ import annotations

import pickle
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.cluster.metrics import MetricRegistry
from repro.cluster.profiling import Profiler
from repro.cluster.tracing import TraceRecorder
from repro.utils.validation import check_positive

__all__ = ["LatencyModel", "Message", "Network", "NetworkError"]


class NetworkError(RuntimeError):
    """Raised for protocol misuse: unknown nodes, empty inboxes, etc."""


@dataclass(frozen=True)
class Message:
    """An immutable record of one network transmission.

    Attributes
    ----------
    seq:
        Global sequence number (delivery order).
    src, dst:
        Sender and receiver node ids.
    kind:
        Application-level tag, e.g. ``"consensus"``, ``"mask-seed"``,
        ``"broadcast"`` — used for byte accounting and for the adversary's
        selective wiretaps.
    payload:
        The Python object transmitted (already deep-copied via
        serialization, so sender-side mutation cannot leak through).
    size_bytes:
        Serialized payload size.
    """

    seq: int
    src: str
    dst: str
    kind: str
    payload: Any
    size_bytes: int


@dataclass(frozen=True)
class LatencyModel:
    """Per-message transfer-time model: ``latency + size / bandwidth``.

    Defaults approximate a commodity gigabit cluster (0.5 ms RTT-ish
    latency, 125 MB/s).  ``straggler_factor`` > 1 multiplies delays for
    node ids listed in ``stragglers`` — used by fault-injection tests.
    """

    latency_s: float = 5e-4
    bandwidth_bytes_per_s: float = 125e6
    straggler_factor: float = 1.0
    stragglers: frozenset[str] = field(default_factory=frozenset)

    def transfer_time(self, message: Message) -> float:
        """Simulated seconds to deliver ``message``."""
        base = self.latency_s + message.size_bytes / self.bandwidth_bytes_per_s
        if message.src in self.stragglers or message.dst in self.stragglers:
            return base * self.straggler_factor
        return base


class Network:
    """In-process message-passing fabric with byte accounting.

    Parameters
    ----------
    metrics:
        Shared counter registry; a private
        :class:`~repro.cluster.profiling.Profiler` (registry + tracer in
        one) is created if omitted.  Passing a bare ``MetricRegistry``
        still works — counters are kept, but increments lose their
        per-iteration trace attribution.
    latency_model:
        Transfer-time model for the simulated clock.
    keep_log:
        Whether to retain the full message log (the adversary view).
        Disable for very long benchmark runs to bound memory.
    tracer:
        Explicit :class:`~repro.cluster.tracing.TraceRecorder`;
        defaults to the one inside ``metrics`` when that is a
        ``Profiler``, else a fresh recorder.  The network attaches its
        simulated clock so spans capture simulated-latency durations.
    """

    def __init__(
        self,
        metrics: MetricRegistry | Profiler | None = None,
        latency_model: LatencyModel | None = None,
        *,
        keep_log: bool = True,
        tracer: TraceRecorder | None = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else Profiler()
        if tracer is None:
            tracer = getattr(self.metrics, "tracer", None)
        self.tracer = tracer if tracer is not None else TraceRecorder()
        self.latency_model = latency_model if latency_model is not None else LatencyModel()
        self.keep_log = keep_log
        self.message_log: list[Message] = []
        self.simulated_time_s: float = 0.0
        self.tracer.sim_clock = lambda: self.simulated_time_s
        self._inboxes: dict[str, dict[str, deque[Message]]] = {}
        self._seq = 0
        self._failed: set[str] = set()

    # -- membership ---------------------------------------------------

    def register(self, node_id: str) -> None:
        """Add a node; idempotent."""
        self._inboxes.setdefault(str(node_id), {})

    @property
    def node_ids(self) -> list[str]:
        """All registered node ids, in registration order."""
        return list(self._inboxes)

    def fail_node(self, node_id: str) -> None:
        """Mark a node as crashed: sends to/from it raise ``NetworkError``."""
        self._require_registered(node_id)
        self._failed.add(node_id)

    def recover_node(self, node_id: str) -> None:
        """Clear a previous :meth:`fail_node`."""
        self._failed.discard(node_id)

    # -- data plane ----------------------------------------------------

    def send(self, src: str, dst: str, payload: Any, kind: str = "data") -> Message:
        """Transmit ``payload`` from ``src`` to ``dst`` under tag ``kind``.

        The payload is serialized (measuring its size and producing an
        independent copy for the receiver), counters are updated, the
        simulated clock advances, and the message lands in the receiver's
        inbox for that kind.

        Emits counters ``network.messages``, ``network.messages.<kind>``,
        ``network.bytes``, ``network.bytes.<kind>``,
        ``network.serialize_s`` (wall seconds spent pickling payloads —
        the payload is serialized exactly once per send) and one
        ``network.send`` trace event tagged with ``kind``, the byte
        count, and the current iteration.
        """
        self._require_registered(src)
        self._require_registered(dst)
        if src in self._failed:
            raise NetworkError(f"node {src!r} has failed and cannot send")
        if dst in self._failed:
            raise NetworkError(f"node {dst!r} has failed and cannot receive")
        if src == dst:
            raise NetworkError("a node does not use the network to talk to itself")

        # Serialize exactly once: the same buffer provides the measured
        # wire size AND the receiver's isolated deep copy.
        serialize_start = time.perf_counter()
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        received_payload = pickle.loads(blob)
        serialize_s = time.perf_counter() - serialize_start
        message = Message(
            seq=self._seq,
            src=src,
            dst=dst,
            kind=kind,
            payload=received_payload,
            size_bytes=len(blob),
        )
        self._seq += 1

        self.metrics.increment("network.serialize_s", serialize_s)
        self.metrics.increment("network.messages", 1)
        self.metrics.increment(f"network.messages.{kind}", 1)
        self.metrics.increment("network.bytes", message.size_bytes)
        self.metrics.increment(f"network.bytes.{kind}", message.size_bytes)
        transfer_s = self.latency_model.transfer_time(message)
        self.simulated_time_s += transfer_s
        self.tracer.event(
            "network.send",
            kind="network",
            node=src,
            src=src,
            dst=dst,
            message_kind=kind,
            size_bytes=message.size_bytes,
            transfer_sim_s=transfer_s,
        )

        if self.keep_log:
            self.message_log.append(message)
        self._inboxes[dst].setdefault(kind, deque()).append(message)
        return message

    def broadcast(self, src: str, dsts: list[str], payload: Any, kind: str = "data") -> None:
        """Send ``payload`` from ``src`` to every node in ``dsts``.

        Emits the same counters and trace events as :meth:`send`, once
        per destination (``src`` itself is skipped).
        """
        for dst in dsts:
            if dst != src:
                self.send(src, dst, payload, kind)

    def receive(self, node_id: str, kind: str = "data") -> Any:
        """Pop the oldest pending payload of ``kind`` for ``node_id``."""
        return self.receive_message(node_id, kind).payload

    def receive_message(self, node_id: str, kind: str = "data") -> Message:
        """Like :meth:`receive` but returns the full :class:`Message`."""
        self._require_registered(node_id)
        queue = self._inboxes[node_id].get(kind)
        if not queue:
            raise NetworkError(f"node {node_id!r} has no pending {kind!r} message")
        return queue.popleft()

    def pending(self, node_id: str, kind: str = "data") -> int:
        """Number of undelivered messages of ``kind`` for ``node_id``."""
        self._require_registered(node_id)
        queue = self._inboxes[node_id].get(kind)
        return len(queue) if queue else 0

    # -- accounting ----------------------------------------------------

    def bytes_sent(self, kind: str | None = None) -> float:
        """Total bytes transmitted (optionally restricted to one kind)."""
        name = "network.bytes" if kind is None else f"network.bytes.{kind}"
        return self.metrics.get(name)

    def messages_sent(self, kind: str | None = None) -> float:
        """Total messages transmitted (optionally restricted to one kind)."""
        name = "network.messages" if kind is None else f"network.messages.{kind}"
        return self.metrics.get(name)

    def _require_registered(self, node_id: str) -> None:
        if node_id not in self._inboxes:
            raise NetworkError(f"unknown node {node_id!r}; register it first")
