"""Locality-aware map-task scheduling.

"Moving computation is cheaper than moving data": the scheduler assigns
each map task to a node that already holds the task's input block
whenever possible.  For private files this is not just an optimization —
the namenode refuses remote reads of private blocks, so a non-local
assignment would fail.  The assignment quality is reported through the
``scheduler.local_tasks`` / ``scheduler.remote_tasks`` counters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.hdfs import SimulatedHdfs

__all__ = ["LocalityScheduler", "TaskAssignment"]


@dataclass(frozen=True)
class TaskAssignment:
    """Placement decision for one map task.

    Attributes
    ----------
    file_name, block_index:
        The input block.
    node_id:
        The node that will run the task.
    data_local:
        Whether the node holds a replica of the block.
    """

    file_name: str
    block_index: int
    node_id: str
    data_local: bool


class LocalityScheduler:
    """Greedy locality-first scheduler with load balancing.

    Each block's task goes to its least-loaded replica holder; if every
    replica holder is saturated (more than ``max_tasks_per_node`` tasks)
    and the file is not private, the task may spill to the least-loaded
    node in the cluster (a *remote* task, which will trigger a remote
    block read).
    """

    def __init__(self, hdfs: SimulatedHdfs, *, max_tasks_per_node: int | None = None) -> None:
        self.hdfs = hdfs
        self.max_tasks_per_node = max_tasks_per_node

    def assign(self, file_name: str) -> list[TaskAssignment]:
        """Return one :class:`TaskAssignment` per block of ``file_name``."""
        placements = self.hdfs.locations(file_name)
        load: dict[str, int] = {node: 0 for node in self.hdfs.datanode_ids}
        assignments: list[TaskAssignment] = []
        metrics = self.hdfs.network.metrics

        for index, replicas in enumerate(placements):
            candidates = sorted(replicas, key=lambda n: load[n])
            chosen = candidates[0]
            local = True
            if (
                self.max_tasks_per_node is not None
                and load[chosen] >= self.max_tasks_per_node
                and not self.hdfs.is_private(file_name)
            ):
                spill = min(load, key=load.get)
                if load[spill] < load[chosen]:
                    chosen = spill
                    local = chosen in replicas
            load[chosen] += 1
            metrics.increment("scheduler.local_tasks" if local else "scheduler.remote_tasks", 1)
            assignments.append(
                TaskAssignment(
                    file_name=file_name, block_index=index, node_id=chosen, data_local=local
                )
            )
        return assignments
