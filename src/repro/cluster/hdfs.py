"""Simulated HDFS: blocks, data nodes, replication, and a namenode.

The paper treats each learner as "a data node of HDFS" whose private
training data is stored locally and never leaves the node (data
locality).  :class:`SimulatedHdfs` models exactly the pieces that claim
rests on:

* files are split into **blocks**; each block lives on one or more data
  nodes (the block *replicas*);
* the **namenode** (this object) tracks block → node placement and lets
  the scheduler ask "where does this data live?";
* a **local read** costs no network traffic, while a **remote read**
  ships the block over the :class:`~repro.cluster.network.Network` and is
  therefore visible in the byte counters — the privacy invariant
  "raw training data bytes moved = 0" is checked against those counters
  by tests and benchmarks;
* **private files** must be stored with replication 1: replicating a
  private block would copy raw data to another organization's node,
  which is precisely what the scheme exists to avoid.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any

from repro.cluster.network import Network

__all__ = ["Block", "HdfsError", "SimulatedHdfs"]


class HdfsError(RuntimeError):
    """Raised for missing files/blocks, placement violations, etc."""


@dataclass(frozen=True)
class Block:
    """One immutable block of a file.

    Attributes
    ----------
    file_name:
        Owning file.
    index:
        Position of this block within the file.
    payload:
        The stored object (e.g. a learner's partition of the training
        set).
    size_bytes:
        Serialized size, used for replication-traffic accounting.
    """

    file_name: str
    index: int
    payload: Any
    size_bytes: int

    @property
    def block_id(self) -> str:
        """Globally unique id ``"<file>#<index>"``."""
        return f"{self.file_name}#{self.index}"


class SimulatedHdfs:
    """A namenode plus per-node block storage, wired to a network.

    Parameters
    ----------
    network:
        The cluster fabric; replication and remote reads move bytes
        through it so they show up in the metrics.
    replication:
        Default replica count for non-private files.
    """

    def __init__(self, network: Network, *, replication: int = 1) -> None:
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        self.network = network
        self.replication = replication
        # node_id -> block_id -> Block
        self._storage: dict[str, dict[str, Block]] = {}
        # file name -> list over block index of list of replica node ids
        self._placement: dict[str, list[list[str]]] = {}
        self._private_files: set[str] = set()

    # -- cluster membership --------------------------------------------

    def add_datanode(self, node_id: str) -> None:
        """Register a storage node (also registers it on the network)."""
        self.network.register(node_id)
        self._storage.setdefault(node_id, {})

    @property
    def datanode_ids(self) -> list[str]:
        """All registered data nodes."""
        return list(self._storage)

    # -- writes ----------------------------------------------------------

    def put(
        self,
        name: str,
        parts: list[Any],
        *,
        preferred_nodes: list[str] | None = None,
        private: bool = False,
        replication: int | None = None,
    ) -> None:
        """Store a file consisting of ``parts`` (one block each).

        Parameters
        ----------
        name:
            File name; must be new.
        parts:
            Block payloads, in order.
        preferred_nodes:
            Primary replica placement, one node per block.  This models
            the paper's setting where learner *m*'s data is generated on
            (and stays on) learner *m*'s node.  Defaults to round-robin.
        private:
            Mark the file as private training data.  Private files are
            pinned to their preferred node with replication 1; the
            namenode will refuse to hand them to remote readers.
        replication:
            Replica count override for non-private files.
        """
        if name in self._placement:
            raise HdfsError(f"file {name!r} already exists")
        if not parts:
            raise HdfsError("cannot store an empty file")
        if not self._storage:
            raise HdfsError("no data nodes registered")
        nodes = list(self._storage)
        if preferred_nodes is None:
            preferred_nodes = [nodes[i % len(nodes)] for i in range(len(parts))]
        if len(preferred_nodes) != len(parts):
            raise HdfsError(
                f"need one preferred node per block: {len(preferred_nodes)} != {len(parts)}"
            )
        n_replicas = 1 if private else (replication or self.replication)
        if n_replicas > len(nodes):
            raise HdfsError(f"replication {n_replicas} exceeds cluster size {len(nodes)}")

        placement: list[list[str]] = []
        with self.network.tracer.span(
            "hdfs.put", kind="hdfs", file_name=name, n_blocks=len(parts), private=private
        ):
            for index, (payload, primary) in enumerate(zip(parts, preferred_nodes)):
                if primary not in self._storage:
                    raise HdfsError(f"unknown data node {primary!r}")
                size = len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
                block = Block(file_name=name, index=index, payload=payload, size_bytes=size)
                replicas = [primary]
                self._storage[primary][block.block_id] = block
                # Additional replicas are *copied over the network* from the
                # primary — this is what makes replicating private data
                # visibly unsafe in the byte accounting.
                other = [n for n in nodes if n != primary]
                for replica_node in other[: n_replicas - 1]:
                    with self.network.tracer.span(
                        "hdfs.replicate",
                        kind="hdfs",
                        node=primary,
                        block_id=block.block_id,
                        dst=replica_node,
                        size_bytes=size,
                    ):
                        self.network.send(
                            primary, replica_node, payload, kind="hdfs-replication"
                        )
                    self._storage[replica_node][block.block_id] = block
                    replicas.append(replica_node)
                placement.append(replicas)
                self.network.metrics.increment("hdfs.blocks_written", 1)

        self._placement[name] = placement
        if private:
            self._private_files.add(name)

    # -- reads -----------------------------------------------------------

    def exists(self, name: str) -> bool:
        """Whether file ``name`` is stored."""
        return name in self._placement

    def is_private(self, name: str) -> bool:
        """Whether ``name`` was stored with ``private=True``."""
        return name in self._private_files

    def n_blocks(self, name: str) -> int:
        """Number of blocks in file ``name``."""
        return len(self._require_file(name))

    def locations(self, name: str) -> list[list[str]]:
        """Replica node ids for each block of ``name`` (namenode lookup)."""
        return [list(replicas) for replicas in self._require_file(name)]

    def read_block(self, reader: str, name: str, index: int) -> Any:
        """Read one block from node ``reader``.

        A local read is free; a remote read ships the block over the
        network (tagged ``hdfs-remote-read``) — and is refused outright
        for private files, enforcing the paper's trust assumption that
        raw data never leaves its owner.

        Emits ``hdfs.local_reads`` plus an ``hdfs.local_read`` trace
        event for local reads, or ``hdfs.remote_reads`` plus an
        ``hdfs.remote_read`` span (wrapping the network transfer) for
        remote ones.
        """
        placement = self._require_file(name)
        if not 0 <= index < len(placement):
            raise HdfsError(f"file {name!r} has no block {index}")
        if reader not in self._storage:
            raise HdfsError(f"unknown data node {reader!r}")
        replicas = placement[index]
        block_id = f"{name}#{index}"
        if reader in replicas:
            self.network.metrics.increment("hdfs.local_reads", 1)
            self.network.tracer.event(
                "hdfs.local_read", kind="hdfs", node=reader, block_id=block_id
            )
            return self._storage[reader][block_id].payload
        if name in self._private_files:
            raise HdfsError(
                f"block {block_id} of private file {name!r} is pinned to {replicas}; "
                f"remote read from {reader!r} would move raw training data"
            )
        source = replicas[0]
        payload = self._storage[source][block_id].payload
        self.network.metrics.increment("hdfs.remote_reads", 1)
        with self.network.tracer.span(
            "hdfs.remote_read", kind="hdfs", node=reader, block_id=block_id, src=source
        ):
            self.network.send(source, reader, payload, kind="hdfs-remote-read")
        return payload

    def blocks_on(self, node_id: str) -> list[str]:
        """Block ids stored on ``node_id``."""
        if node_id not in self._storage:
            raise HdfsError(f"unknown data node {node_id!r}")
        return sorted(self._storage[node_id])

    def _require_file(self, name: str) -> list[list[str]]:
        placement = self._placement.get(name)
        if placement is None:
            raise HdfsError(f"no such file {name!r}")
        return placement
