"""Iterative MapReduce (Twister-style) with a broadcast feedback channel.

Hadoop's one-shot MapReduce is a poor fit for the paper's back-and-forth
consensus negotiation, so the paper points to Twister [Ekanayake et al.,
HPDC'10], an *iterative* MapReduce runtime.  Twister's distinguishing
features — all modeled here — are:

* **long-lived mappers** configured once with their (static, local) data
  partition, so raw data is loaded exactly once and never re-shuffled;
* per-iteration **map → reduce → broadcast** rounds, where the reducer's
  output (the consensus state) is fed back to every mapper;
* **combiner-style aggregation** of map outputs on their way to the
  reducer.

The aggregation step is pluggable (:class:`Aggregator`): the trainers in
:mod:`repro.core` install the coalition-resistant secure summation
protocol from :mod:`repro.crypto.secure_sum`, while benchmarks can swap
in :class:`PlaintextAggregator` to measure the cost of privacy.

Observability: every round the driver emits one ``twister.round`` span
enclosing ``twister.broadcast``, ``twister.map_wave``,
``twister.aggregate``, and ``twister.reduce`` child spans, all tagged
with the iteration index (which also propagates to every message sent
inside the round) — see ``docs/OBSERVABILITY.md`` for the schema.
"""

from __future__ import annotations

import abc
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.cluster.hdfs import SimulatedHdfs
from repro.cluster.network import Network
from repro.cluster.scheduler import LocalityScheduler

__all__ = [
    "Aggregator",
    "IterationResult",
    "IterativeMapReduceDriver",
    "IterativeMapper",
    "IterativeReducer",
    "MapperContext",
    "PlaintextAggregator",
    "ReducerContext",
]


@dataclass
class MapperContext:
    """Per-mapper runtime handles passed to ``configure``/``map``.

    Attributes
    ----------
    node_id:
        The data node this mapper is pinned to.
    network:
        The cluster fabric (used by secure protocols for peer messages).
    iteration:
        Current iteration index (0-based), updated by the driver.
    """

    node_id: str
    network: Network
    iteration: int = 0


@dataclass
class ReducerContext:
    """Runtime handles for the reducer (mirror of :class:`MapperContext`)."""

    node_id: str
    network: Network
    iteration: int = 0


class IterativeMapper(abc.ABC):
    """A long-lived Map() task bound to one data partition.

    Subclasses hold all per-learner state (the local training set, warm
    starts, ADMM dual variables).  The driver guarantees ``configure`` is
    called exactly once, before any ``map``.
    """

    @abc.abstractmethod
    def configure(self, partition: Any, context: MapperContext) -> None:
        """Receive the static local data partition (runs data-locally)."""

    @abc.abstractmethod
    def map(self, broadcast: Any, context: MapperContext) -> dict[str, np.ndarray]:
        """Run one local iteration given the broadcast consensus state.

        Returns a dict of named vectors; the driver's aggregator combines
        them across mappers by summation.
        """


class IterativeReducer(abc.ABC):
    """The consensus-forming Reduce() task."""

    @abc.abstractmethod
    def reduce(
        self, sums: dict[str, np.ndarray], n_mappers: int, context: ReducerContext
    ) -> tuple[Any, bool]:
        """Combine the (securely) summed map outputs into new state.

        Returns ``(new_broadcast_state, converged)``.
        """

    def initial_state(self) -> Any:
        """State broadcast before the first iteration (default ``None``)."""
        return None


class Aggregator(abc.ABC):
    """Strategy moving map outputs to the reducer as *sums*.

    Implementations must deliver, for every key appearing in the map
    outputs, the elementwise sum over mappers — and nothing else — to the
    caller.  How much an adversary can learn along the way is what
    distinguishes implementations.
    """

    @abc.abstractmethod
    def aggregate(
        self,
        outputs: dict[str, dict[str, np.ndarray]],
        reducer_id: str,
        network: Network,
    ) -> dict[str, np.ndarray]:
        """Sum ``outputs[node][key]`` over nodes, transporting via ``network``."""


class PlaintextAggregator(Aggregator):
    """Baseline aggregator: mappers send raw local results to the reducer.

    This is the *insecure* strawman — the reducer (and any eavesdropper)
    sees every individual ``w_m``.  It exists to measure the overhead of
    the secure protocol and to drive the leakage demonstrations in
    :mod:`repro.security`.
    """

    def aggregate(
        self,
        outputs: dict[str, dict[str, np.ndarray]],
        reducer_id: str,
        network: Network,
    ) -> dict[str, np.ndarray]:
        """Ship every mapper's raw output to the reducer and sum there."""
        sums: dict[str, np.ndarray] = {}
        for node_id, named in outputs.items():
            network.send(node_id, reducer_id, named, kind="consensus")
        for _ in outputs:
            named = network.receive(reducer_id, kind="consensus")
            for key, value in named.items():
                value = np.asarray(value, dtype=float)
                sums[key] = sums.get(key, 0.0) + value
        return sums


@dataclass(frozen=True)
class IterationResult:
    """Record of one driver iteration.

    Attributes
    ----------
    iteration:
        0-based index.
    state:
        Broadcast state produced by the reducer this iteration.
    converged:
        The reducer's convergence verdict.
    wall_time_s:
        Wall-clock seconds spent in this iteration.
    bytes_delta:
        Network bytes transmitted during this iteration.
    """

    iteration: int
    state: Any
    converged: bool
    wall_time_s: float
    bytes_delta: float


@dataclass
class IterativeMapReduceDriver:
    """Orchestrates configure-once / iterate-many MapReduce rounds.

    Parameters
    ----------
    hdfs:
        File system holding the (private) input partitions.
    mapper_factory:
        Zero-argument callable creating a fresh :class:`IterativeMapper`
        per partition.
    reducer:
        The consensus reducer.
    aggregator:
        Map-output transport strategy (secure sum in the paper's scheme).
    reducer_node:
        Node id for the reducer (registered automatically).
    n_map_workers:
        Thread count for the map wave.  ``1`` (default) runs mappers
        sequentially; larger values run one task per mapper on a
        :class:`~concurrent.futures.ThreadPoolExecutor` — the numpy /
        LAPACK kernels inside ``map`` release the GIL, so the wave
        genuinely overlaps.  Outputs are merged in the fixed task-key
        order regardless of completion order, so trajectories are
        bit-identical to sequential mode.
    on_round:
        Optional callback invoked with each :class:`IterationResult`
        right after it is appended to :attr:`history` (while the round's
        metrics are fresh) — the hook the trainer uses to stream results
        into a :class:`~repro.obs.health.HealthMonitor`.  Exceptions
        propagate and abort the run.
    """

    hdfs: SimulatedHdfs
    mapper_factory: Callable[[], IterativeMapper]
    reducer: IterativeReducer
    aggregator: Aggregator
    reducer_node: str = "reducer"
    n_map_workers: int = 1
    on_round: Callable[[IterationResult], None] | None = None
    history: list[IterationResult] = field(default_factory=list)
    _mappers: dict[str, IterativeMapper] = field(default_factory=dict)
    _contexts: dict[str, MapperContext] = field(default_factory=dict)

    def mappers(self) -> list[IterativeMapper]:
        """The configured mappers, in sorted task-key order.

        Public accessor for callers (trainers, diagnostics) that need
        the per-partition learner state after :meth:`setup` — stable
        ordering, no reliance on the private task table.
        """
        return [self._mappers[key] for key in sorted(self._mappers)]

    def setup(self, input_file: str) -> None:
        """Instantiate and configure one mapper per block, data-locally."""
        network = self.hdfs.network
        network.register(self.reducer_node)
        scheduler = LocalityScheduler(self.hdfs)
        for task in scheduler.assign(input_file):
            partition = self.hdfs.read_block(task.node_id, input_file, task.block_index)
            context = MapperContext(node_id=task.node_id, network=network)
            mapper = self.mapper_factory()
            mapper.configure(partition, context)
            key = f"{task.node_id}/{task.block_index}"
            self._mappers[key] = mapper
            self._contexts[key] = context

    def run(self, input_file: str, *, max_iterations: int = 100) -> list[IterationResult]:
        """Execute up to ``max_iterations`` map→aggregate→reduce rounds.

        The reducer's state is broadcast to all mappers at the start of
        every round (the Twister feedback channel); iteration stops early
        when the reducer reports convergence.

        Emits the ``twister.iterations`` counter and, per round, one
        ``twister.round`` span with ``twister.broadcast`` /
        ``twister.map_wave`` / ``twister.aggregate`` / ``twister.reduce``
        children, each iteration-tagged.
        """
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        if self.n_map_workers < 1:
            raise ValueError(f"n_map_workers must be >= 1, got {self.n_map_workers}")
        if not self._mappers:
            self.setup(input_file)
        network = self.hdfs.network
        reducer_context = ReducerContext(node_id=self.reducer_node, network=network)
        state = self.reducer.initial_state()
        self.history = []

        tracer = network.tracer
        for iteration in range(max_iterations):
            start_bytes = network.bytes_sent()
            start_time = time.perf_counter()

            with tracer.iteration(iteration), tracer.span(
                "twister.round", kind="round", node=self.reducer_node
            ) as round_span:
                # Feedback channel: reducer -> every mapper node.  Mappers
                # act on the *received* copy (serialization isolation), not
                # on a shared reference to the reducer's state.
                mapper_nodes = sorted({ctx.node_id for ctx in self._contexts.values()})
                with tracer.span(
                    "twister.broadcast", kind="broadcast", node=self.reducer_node
                ):
                    network.broadcast(
                        self.reducer_node, mapper_nodes, state, kind="broadcast"
                    )
                    node_state = {
                        node: network.receive(node, kind="broadcast")
                        for node in mapper_nodes
                    }

                # Node-side combining: if a node hosts several map tasks
                # their outputs are summed locally before transport (Hadoop
                # combiner semantics — no extra network traffic, no extra
                # leakage).
                outputs: dict[str, dict[str, np.ndarray]] = {}
                n_parallel = min(self.n_map_workers, len(self._mappers))
                with tracer.span(
                    "twister.map_wave",
                    kind="map",
                    n_mappers=len(self._mappers),
                    n_parallel=n_parallel,
                ) as wave_span:
                    keys = list(self._mappers)
                    results = self._run_map_tasks(
                        keys, node_state, iteration, n_parallel, wave_span.span_id
                    )
                    # Merge in fixed task-key order, never completion
                    # order, so the combiner's float additions happen in
                    # the same sequence as sequential mode (bit-identical
                    # trajectories).
                    for key, named in zip(keys, results):
                        context = self._contexts[key]
                        node_out = outputs.setdefault(context.node_id, {})
                        for out_key, value in named.items():
                            value = np.asarray(value, dtype=float)
                            if out_key in node_out:
                                node_out[out_key] = node_out[out_key] + value
                            else:
                                node_out[out_key] = value

                with tracer.span("twister.aggregate", kind="aggregate"):
                    sums = self.aggregator.aggregate(outputs, self.reducer_node, network)

                reducer_context.iteration = iteration
                with tracer.span("twister.reduce", kind="reduce", node=self.reducer_node):
                    state, converged = self.reducer.reduce(
                        sums, len(self._mappers), reducer_context
                    )
                network.metrics.increment("twister.iterations", 1)
                round_span.attrs["converged"] = converged
                round_span.attrs["bytes_delta"] = network.bytes_sent() - start_bytes

            result = IterationResult(
                iteration=iteration,
                state=state,
                converged=converged,
                wall_time_s=time.perf_counter() - start_time,
                bytes_delta=network.bytes_sent() - start_bytes,
            )
            self.history.append(result)
            if self.on_round is not None:
                self.on_round(result)
            if converged:
                break
        return self.history

    def _run_map_tasks(
        self,
        keys: list[str],
        node_state: dict[str, Any],
        iteration: int,
        n_parallel: int,
        wave_span_id: int,
    ) -> list[dict[str, np.ndarray]]:
        """Run one ``map`` per task key, returning outputs in key order.

        With ``n_parallel > 1`` each mapper runs as a thread-pool task.
        Mappers only touch their own partition state and the (locked)
        tracer — no network traffic, no shared RNG — so threads cannot
        race; worker spans adopt the ``twister.map_wave`` span as parent
        to keep the trace tree identical to sequential mode.
        """
        tracer = self.hdfs.network.tracer

        def run_one(key: str) -> dict[str, np.ndarray]:
            context = self._contexts[key]
            context.iteration = iteration
            return self._mappers[key].map(node_state[context.node_id], context)

        if n_parallel <= 1:
            return [run_one(key) for key in keys]

        def run_adopted(key: str) -> dict[str, np.ndarray]:
            with tracer.adopt(wave_span_id):
                return run_one(key)

        with ThreadPoolExecutor(
            max_workers=n_parallel, thread_name_prefix="map-wave"
        ) as pool:
            futures = [pool.submit(run_adopted, key) for key in keys]
            return [future.result() for future in futures]
