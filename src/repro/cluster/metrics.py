"""Named counters for the simulated cluster.

Every subsystem (network, HDFS, crypto protocols, trainers) increments
counters in a shared :class:`MetricRegistry`.  The experiment harness
reads them to report the quantities the paper argues about qualitatively:
bytes of raw data moved (should be **zero** — data locality), consensus
traffic per iteration, number of cryptographic operations at the Reducer,
and so on.

Every counter name emitted anywhere in ``src/repro`` is cataloged in
``docs/OBSERVABILITY.md`` (enforced by
``tools/check_observability_docs.py``); for per-iteration attribution of
the same counters, see :class:`~repro.cluster.profiling.Profiler`.

Example
-------
>>> registry = MetricRegistry()
>>> registry.increment("network.bytes.mask", 128)
>>> registry.increment("network.bytes.mask", 64)
>>> registry.get("network.bytes.mask")
192.0
>>> registry.with_prefix("network.")
{'network.bytes.mask': 192.0}
"""

from __future__ import annotations

from collections import Counter

__all__ = ["MetricRegistry"]


class MetricRegistry:
    """A flat namespace of monotonically increasing counters.

    Counter names are dotted strings, e.g. ``"network.bytes.consensus"``:
    non-empty, whitespace-free, with non-empty dot-separated segments.
    Malformed names raise at the :meth:`increment` site instead of
    silently creating unreadable keys.  Reads of missing counters return
    0 so call sites never need guards.
    """

    def __init__(self) -> None:
        self._counters: Counter[str] = Counter()

    @staticmethod
    def _validate_name(name: str) -> str:
        """Reject non-string, empty, whitespace-bearing, or mis-dotted names."""
        if not isinstance(name, str):
            raise TypeError(f"counter names must be str, got {type(name).__name__}")
        if not name:
            raise ValueError("counter names must be non-empty")
        if any(ch.isspace() for ch in name):
            raise ValueError(f"counter names must not contain whitespace: {name!r}")
        if any(not segment for segment in name.split(".")):
            raise ValueError(
                f"counter names must be dotted with non-empty segments: {name!r}"
            )
        return name

    def increment(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to counter ``name``.

        ``name`` must be a well-formed dotted string (see class
        docstring); ``amount`` must be non-negative (counters are
        monotonic).
        """
        self._validate_name(name)
        if amount < 0:
            raise ValueError(f"counters are monotonic; got negative amount {amount}")
        self._counters[name] += amount

    def get(self, name: str) -> float:
        """Current value of ``name`` (0 if never incremented)."""
        return float(self._counters.get(name, 0.0))

    def with_prefix(self, prefix: str) -> dict[str, float]:
        """All counters whose name starts with ``prefix``.

        The empty prefix matches *every* counter — ``with_prefix("")``
        is equivalent to :meth:`as_dict` by design (str.startswith
        semantics), which callers use to snapshot whole namespaces
        generically.
        """
        return {k: float(v) for k, v in self._counters.items() if k.startswith(prefix)}

    def as_dict(self) -> dict[str, float]:
        """Snapshot of every counter."""
        return {k: float(v) for k, v in self._counters.items()}

    def reset(self) -> None:
        """Zero all counters (used between benchmark repetitions)."""
        self._counters.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetricRegistry({dict(self._counters)!r})"
