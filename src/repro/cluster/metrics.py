"""Named counters for the simulated cluster.

Every subsystem (network, HDFS, crypto protocols, trainers) increments
counters in a shared :class:`MetricRegistry`.  The experiment harness
reads them to report the quantities the paper argues about qualitatively:
bytes of raw data moved (should be **zero** — data locality), consensus
traffic per iteration, number of cryptographic operations at the Reducer,
and so on.
"""

from __future__ import annotations

from collections import Counter

__all__ = ["MetricRegistry"]


class MetricRegistry:
    """A flat namespace of monotonically increasing counters.

    Counter names are dotted strings, e.g. ``"network.bytes.consensus"``.
    Reads of missing counters return 0 so call sites never need guards.
    """

    def __init__(self) -> None:
        self._counters: Counter[str] = Counter()

    def increment(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to counter ``name``."""
        if amount < 0:
            raise ValueError(f"counters are monotonic; got negative amount {amount}")
        self._counters[name] += amount

    def get(self, name: str) -> float:
        """Current value of ``name`` (0 if never incremented)."""
        return float(self._counters.get(name, 0.0))

    def with_prefix(self, prefix: str) -> dict[str, float]:
        """All counters whose name starts with ``prefix``."""
        return {k: float(v) for k, v in self._counters.items() if k.startswith(prefix)}

    def as_dict(self) -> dict[str, float]:
        """Snapshot of every counter."""
        return {k: float(v) for k, v in self._counters.items()}

    def reset(self) -> None:
        """Zero all counters (used between benchmark repetitions)."""
        self._counters.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetricRegistry({dict(self._counters)!r})"
