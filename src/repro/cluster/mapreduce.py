"""Classic (one-shot) MapReduce over the simulated cluster.

This module provides the vanilla Hadoop-style execution model: map tasks
run data-locally on the nodes holding their input blocks, map output is
optionally combined node-side, shuffled over the network to reducer
nodes by key hash, and reduced.  The privacy-preserving trainers use the
*iterative* driver in :mod:`repro.cluster.twister`, but the one-shot job
exists both to validate the substrate (word-count-style tests) and to
run non-iterative helper jobs (e.g. distributed Gram-matrix statistics).
"""

from __future__ import annotations

import zlib
from collections import defaultdict
from typing import Any, Callable, Iterable

from repro.cluster.hdfs import SimulatedHdfs
from repro.cluster.scheduler import LocalityScheduler

__all__ = ["MapReduceJob", "stable_partition_hash"]

MapFn = Callable[[Any], Iterable[tuple[Any, Any]]]
ReduceFn = Callable[[Any, list[Any]], Any]


def stable_partition_hash(key: Any) -> int:
    """Process-independent hash for shuffle partitioning.

    Builtin ``hash()`` is salted per process for str keys
    (PYTHONHASHSEED), so using it here would assign keys to different
    reducers on different runs.  ``repr`` of the key is stable for the
    hashable primitives MapReduce keys are made of (str, int, tuples
    thereof), and crc32 of it is stable everywhere.
    """
    return zlib.crc32(repr(key).encode("utf-8"))


class MapReduceJob:
    """A configurable one-shot MapReduce job.

    Parameters
    ----------
    hdfs:
        The file system holding the input file.
    mapper:
        ``mapper(block_payload) -> iterable of (key, value)`` pairs.
    reducer:
        ``reducer(key, values) -> result``.
    combiner:
        Optional node-side pre-aggregation with reducer semantics;
        reduces shuffle traffic exactly as in Hadoop.
    n_reducers:
        Number of reducer nodes; keys are hash-partitioned across them.
    """

    def __init__(
        self,
        hdfs: SimulatedHdfs,
        mapper: MapFn,
        reducer: ReduceFn,
        *,
        combiner: ReduceFn | None = None,
        n_reducers: int = 1,
    ) -> None:
        if n_reducers < 1:
            raise ValueError(f"n_reducers must be >= 1, got {n_reducers}")
        self.hdfs = hdfs
        self.mapper = mapper
        self.reducer = reducer
        self.combiner = combiner
        self.n_reducers = n_reducers
        self.scheduler = LocalityScheduler(hdfs)

    def run(self, input_file: str) -> dict[Any, Any]:
        """Execute the job on ``input_file`` and return ``{key: result}``."""
        network = self.hdfs.network
        reducer_nodes = [f"__reducer_{i}" for i in range(self.n_reducers)]
        for node in reducer_nodes:
            network.register(node)

        assignments = self.scheduler.assign(input_file)

        # Map phase (data-local where possible), with node-side combining.
        per_node_output: dict[str, dict[Any, list[Any]]] = defaultdict(lambda: defaultdict(list))
        for task in assignments:
            payload = self.hdfs.read_block(task.node_id, input_file, task.block_index)
            for key, value in self.mapper(payload):
                per_node_output[task.node_id][key].append(value)
            network.metrics.increment("mapreduce.map_tasks", 1)

        # Shuffle phase: hash-partition keys to reducers; one message per
        # (map node, reducer) pair, as Hadoop ships sorted spill segments.
        shuffled: dict[str, dict[Any, list[Any]]] = defaultdict(lambda: defaultdict(list))
        for node_id, groups in per_node_output.items():
            partitions: dict[str, list[tuple[Any, Any]]] = defaultdict(list)
            for key, values in groups.items():
                if self.combiner is not None and len(values) > 1:
                    values = [self.combiner(key, values)]
                target = reducer_nodes[stable_partition_hash(key) % self.n_reducers]
                partitions[target].extend((key, v) for v in values)
            for target, pairs in partitions.items():
                network.send(node_id, target, pairs, kind="shuffle")
                for key, value in pairs:
                    shuffled[target][key].append(value)

        # Reduce phase.
        results: dict[Any, Any] = {}
        for target in reducer_nodes:
            for key, values in shuffled[target].items():
                results[key] = self.reducer(key, values)
                network.metrics.increment("mapreduce.reduce_calls", 1)
        return results
