"""Lightweight timing utilities used by the experiment harness."""

from __future__ import annotations

import time

__all__ = ["Stopwatch"]


class Stopwatch:
    """Accumulating stopwatch with named laps.

    Example
    -------
    >>> sw = Stopwatch()
    >>> with sw.lap("solve"):
    ...     _ = sum(range(1000))
    >>> sw.total("solve") >= 0.0
    True
    """

    def __init__(self) -> None:
        self._totals: dict[str, float] = {}
        self._counts: dict[str, int] = {}

    def lap(self, name: str) -> "_Lap":
        """Return a context manager that accumulates elapsed time under ``name``."""
        return _Lap(self, name)

    def record(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to the lap named ``name``."""
        self._totals[name] = self._totals.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Total seconds accumulated under ``name`` (0.0 if never recorded)."""
        return self._totals.get(name, 0.0)

    def count(self, name: str) -> int:
        """Number of laps recorded under ``name``."""
        return self._counts.get(name, 0)

    def as_dict(self) -> dict[str, float]:
        """Snapshot of all lap totals."""
        return dict(self._totals)


class _Lap:
    def __init__(self, watch: Stopwatch, name: str) -> None:
        self._watch = watch
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Lap":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._watch.record(self._name, time.perf_counter() - self._start)
