"""Random-number-generator plumbing.

Every stochastic component in the library accepts a ``seed`` argument that
may be ``None``, an integer, or an already-constructed
:class:`numpy.random.Generator`.  Centralizing the coercion here keeps the
rest of the code base deterministic and easy to test.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_rng", "spawn_rngs"]


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for nondeterministic entropy, an ``int`` for a fixed
        seed, or an existing generator which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Used to give each simulated learner / node its own RNG stream so that
    per-node randomness does not depend on scheduling order.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    root = as_rng(seed)
    seq = np.random.SeedSequence(root.integers(0, 2**63 - 1))
    return [np.random.default_rng(child) for child in seq.spawn(n)]
