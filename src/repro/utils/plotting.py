"""Terminal (ASCII) plotting for convergence/accuracy curves.

The benchmark environment has no display and no plotting libraries, so
the experiment harness renders Fig.-4-style curves as text.  Supports
linear and log-scaled y axes and multiple named series, mirroring the
paper's panels (three datasets per panel).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["ascii_plot"]

_MARKERS = "ox+*#%@&"


def ascii_plot(
    series: dict[str, np.ndarray],
    *,
    title: str = "",
    width: int = 72,
    height: int = 18,
    logy: bool = False,
    y_label: str = "",
    x_label: str = "iteration",
) -> str:
    """Render named series as an ASCII chart.

    Parameters
    ----------
    series:
        Mapping of series name to 1-D value array; all series share the
        x axis 0..len-1.
    title, y_label, x_label:
        Decorations.
    width, height:
        Plot-area size in characters.
    logy:
        Log-scale the y axis (as the paper's convergence panels do);
        non-positive values are clamped to the smallest positive value.

    Returns
    -------
    The chart as a newline-joined string.
    """
    if not series:
        raise ValueError("no series to plot")
    if width < 10 or height < 4:
        raise ValueError("plot area too small")

    cleaned: dict[str, np.ndarray] = {}
    for name, values in series.items():
        arr = np.asarray(values, dtype=float).ravel()
        arr = arr[np.isfinite(arr)]
        if arr.size == 0:
            raise ValueError(f"series {name!r} has no finite values")
        cleaned[name] = arr

    all_values = np.concatenate(list(cleaned.values()))
    if logy:
        positive = all_values[all_values > 0]
        if positive.size == 0:
            raise ValueError("log-scale plot needs positive values")
        floor = float(positive.min())
        transform = lambda v: math.log10(max(float(v), floor))
        y_min, y_max = transform(positive.min()), transform(all_values.max())
    else:
        transform = float
        y_min, y_max = float(all_values.min()), float(all_values.max())
    if y_max - y_min < 1e-12:
        y_max = y_min + 1.0

    n_points = max(len(v) for v in cleaned.values())
    grid = [[" "] * width for _ in range(height)]

    for idx, (name, values) in enumerate(sorted(cleaned.items())):
        marker = _MARKERS[idx % len(_MARKERS)]
        for i, value in enumerate(values):
            x = int(round(i / max(n_points - 1, 1) * (width - 1)))
            ty = transform(value)
            y = int(round((ty - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - y][x] = marker

    def fmt(v: float) -> str:
        real = 10.0**v if logy else v
        return f"{real:9.2e}" if (abs(real) >= 1e4 or 0 < abs(real) < 1e-2) else f"{real:9.3f}"

    lines: list[str] = []
    if title:
        lines.append(title)
    top_label = fmt(y_max)
    bottom_label = fmt(y_min)
    for row_idx, row in enumerate(grid):
        if row_idx == 0:
            prefix = top_label
        elif row_idx == height - 1:
            prefix = bottom_label
        else:
            prefix = " " * 9
        lines.append(f"{prefix} |{''.join(row)}|")
    lines.append(" " * 9 + " " + "-" * (width + 2))
    lines.append(" " * 10 + f"0{x_label:^{width - 10}}{n_points - 1}")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(sorted(cleaned))
    )
    suffix = f"   [{y_label}{', log10' if logy else ''}]" if y_label or logy else ""
    lines.append(" " * 10 + legend + suffix)
    return "\n".join(lines)
