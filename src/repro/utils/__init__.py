"""Shared utilities: validation, RNG handling, timing, and math helpers.

These helpers are deliberately small and dependency-free (NumPy only) so
that every other subpackage can use them without import cycles.
"""

from repro.utils.plotting import ascii_plot
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.timing import Stopwatch
from repro.utils.validation import (
    check_labels,
    check_matrix,
    check_positive,
    check_probability,
    check_vector,
)

__all__ = [
    "Stopwatch",
    "ascii_plot",
    "as_rng",
    "check_labels",
    "check_matrix",
    "check_positive",
    "check_probability",
    "check_vector",
    "spawn_rngs",
]
