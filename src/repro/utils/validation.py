"""Input validation helpers shared across the library.

All public entry points validate their inputs eagerly and raise
``ValueError``/``TypeError`` with actionable messages, rather than letting
NumPy broadcasting produce silently wrong results deep inside a solver.
"""

from __future__ import annotations

import numbers

import numpy as np

__all__ = [
    "check_labels",
    "check_matrix",
    "check_positive",
    "check_probability",
    "check_vector",
]


def check_matrix(value, name: str = "X", *, allow_empty: bool = False) -> np.ndarray:
    """Coerce ``value`` to a 2-D float array and validate finiteness."""
    arr = np.asarray(value, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got shape {arr.shape}")
    if not allow_empty and arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinite entries")
    return arr


def check_vector(value, name: str = "v", *, length: int | None = None) -> np.ndarray:
    """Coerce ``value`` to a 1-D float array, optionally of fixed length."""
    arr = np.asarray(value, dtype=float).ravel()
    if length is not None and arr.shape[0] != length:
        raise ValueError(f"{name} must have length {length}, got {arr.shape[0]}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinite entries")
    return arr


def check_labels(value, name: str = "y", *, length: int | None = None) -> np.ndarray:
    """Validate a +1/-1 binary label vector."""
    arr = np.asarray(value, dtype=float).ravel()
    if length is not None and arr.shape[0] != length:
        raise ValueError(f"{name} must have length {length}, got {arr.shape[0]}")
    values = np.unique(arr)
    if not np.all(np.isin(values, (-1.0, 1.0))):
        raise ValueError(f"{name} must contain only -1/+1 labels, got values {values}")
    return arr


def check_positive(value, name: str = "value", *, strict: bool = True) -> float:
    """Validate a (strictly) positive scalar and return it as ``float``."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(value, name: str = "p") -> float:
    """Validate a scalar in the closed interval [0, 1]."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value
