"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``train``
    Train a privacy-preserving SVM on a built-in synthetic dataset or a
    user-supplied CSV, print the accuracy and the communication/privacy
    ledger, and optionally save the consensus model.
``figure4``
    Regenerate Fig. 4 panels and print the numeric series.
``report``
    Run the full evaluation and write a Markdown report.
``protocol-demo``
    One round of the secure summation protocol with a visible ledger.
``trace``
    Train a small model, print its per-iteration cost table derived
    from the structured trace, verify it reconciles with the counter
    registry, and optionally export Chrome-trace or JSONL files (see
    ``docs/OBSERVABILITY.md``).
``lint``
    Run the privacy/determinism static-analysis suite over the source
    tree (see ``docs/STATIC_ANALYSIS.md``).
``runs``
    Query the persistent run ledger under ``.repro-runs/`` — ``list``,
    ``show``, ``diff``, and ``compare`` (see ``docs/OBSERVABILITY.md``,
    "Querying past runs").  ``train`` and ``trace`` gain ``--ledger``
    to record their runs.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core.partitioning import horizontal_partition, vertical_partition
from repro.core.trainer import PrivacyPreservingSVM
from repro.data.loaders import load_csv
from repro.data.scaling import StandardScaler
from repro.data.splits import train_test_split
from repro.data.synthetic import make_cancer_like, make_higgs_like, make_ocr_like
from repro.experiments.config import ExperimentConfig, PAPER_SIZES
from repro.experiments.figure4 import format_panel, run_panel
from repro.experiments.report import generate_report
from repro.svm.kernels import kernel_by_name

__all__ = ["main"]

_MAKERS = {"cancer": make_cancer_like, "higgs": make_higgs_like, "ocr": make_ocr_like}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Privacy-preserving distributed SVM (ICDCS'15 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train a privacy-preserving SVM")
    source = train.add_mutually_exclusive_group()
    source.add_argument("--dataset", choices=sorted(_MAKERS), default="cancer")
    source.add_argument("--csv", help="path to a numeric CSV with labels")
    train.add_argument("--label-column", type=int, default=-1)
    train.add_argument("--samples", type=int, default=569)
    train.add_argument("--mode", choices=["horizontal", "vertical"], default="horizontal")
    train.add_argument("--kernel", default=None, help="e.g. rbf; omit for linear")
    train.add_argument("--gamma", type=float, default=0.02, help="RBF bandwidth")
    train.add_argument("--learners", type=int, default=4)
    train.add_argument("--C", type=float, default=50.0)
    train.add_argument("--rho", type=float, default=100.0)
    train.add_argument("--iters", type=int, default=60)
    train.add_argument("--insecure", action="store_true", help="plaintext aggregation")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--save", help="write the consensus model to this .npz path")
    train.add_argument("--ledger", action="store_true",
                       help="record this run into the run ledger")
    train.add_argument("--ledger-dir", default=None,
                       help="ledger directory (default: .repro-runs)")
    train.add_argument("--on-health", choices=["warn", "raise", "ignore"],
                       default="warn", help="policy when a convergence-health "
                       "detector fires")

    fig = sub.add_parser("figure4", help="regenerate Fig. 4 panels")
    fig.add_argument("--panels", default="abcdefgh")
    fig.add_argument("--paper", action="store_true", help="paper-scale sizes")
    fig.add_argument("--max-iter", type=int, default=100)
    fig.add_argument("--seed", type=int, default=0)

    report = sub.add_parser("report", help="write the full Markdown evaluation report")
    report.add_argument("--out", default="report.md")
    report.add_argument("--panels", default="abcdefgh")
    report.add_argument("--paper", action="store_true")
    report.add_argument("--max-iter", type=int, default=60)
    report.add_argument("--seed", type=int, default=0)

    sub.add_parser("protocol-demo", help="one secure-summation round, annotated")

    trace = sub.add_parser("trace", help="trace a training run and print its cost table")
    trace.add_argument("--dataset", choices=sorted(_MAKERS), default="cancer")
    trace.add_argument("--samples", type=int, default=200)
    trace.add_argument("--mode", choices=["horizontal", "vertical"], default="horizontal")
    trace.add_argument("--learners", type=int, default=4)
    trace.add_argument("--iters", type=int, default=10)
    trace.add_argument("--insecure", action="store_true", help="plaintext aggregation")
    trace.add_argument("--mask-mode", choices=["fresh", "prg"], default="fresh")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--out", help="write Chrome-trace JSON here (chrome://tracing)")
    trace.add_argument("--jsonl", help="write the span/event/counter records here")
    trace.add_argument("--ledger", action="store_true",
                       help="record this run into the run ledger")
    trace.add_argument("--ledger-dir", default=None,
                       help="ledger directory (default: .repro-runs)")

    lint = sub.add_parser("lint", help="run the privacy/determinism static analysis")
    lint.add_argument("paths", nargs="*", help="files or directories (default: src/)")
    lint.add_argument("--root", default=".", help="repo root for relative paths "
                      "and the default allowlist")
    lint.add_argument("--strict", action="store_true",
                      help="warnings also fail the run (CI mode)")
    lint.add_argument("--format", choices=["text", "json", "github", "sarif"],
                      default="text")
    lint.add_argument("--allowlist", help="allowlist TOML (default: "
                      "<root>/.repro-lint.toml if present)")
    lint.add_argument("--no-allowlist", action="store_true",
                      help="ignore any allowlist file")
    lint.add_argument("--show-suppressed", action="store_true",
                      help="also print pragma/allowlist-suppressed findings")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule registry and exit")
    lint.add_argument("--baseline", metavar="PATH",
                      help="suppress findings recorded in this baseline "
                      "snapshot; only new findings are reported")
    lint.add_argument("--write-baseline", metavar="PATH",
                      help="snapshot the run's active findings to PATH "
                      "and exit 0")
    lint.add_argument("--cache", action="store_true",
                      help="reuse the previous run's result when nothing "
                      "changed (<root>/.repro-lint-cache.json)")
    lint.add_argument("--cache-path", metavar="PATH",
                      help="cache file location (implies --cache)")

    from repro.obs.runs_cli import add_runs_parser

    add_runs_parser(sub)
    return parser


def _record_run(model: "PrivacyPreservingSVM", args: argparse.Namespace,
                kind: str) -> None:
    """Persist a CLI run into the ledger and print its id."""
    from repro.obs.ledger import DEFAULT_LEDGER_DIR

    ledger_dir = args.ledger_dir or DEFAULT_LEDGER_DIR
    run_id = model.save_run(ledger_dir, kind=kind,
                            label=f"{args.dataset}/{args.mode}")
    print(f"run recorded: {run_id} ({ledger_dir}/)")


def _cmd_train(args: argparse.Namespace) -> int:
    if args.csv:
        dataset = load_csv(args.csv, label_column=args.label_column)
    else:
        dataset = _MAKERS[args.dataset](args.samples, seed=args.seed)
    train_set, test_set = train_test_split(dataset, 0.5, seed=args.seed)
    scaler = StandardScaler().fit(train_set.X)
    train_set = scaler.transform_dataset(train_set)
    test_set = scaler.transform_dataset(test_set)

    kernel = kernel_by_name(args.kernel, gamma=args.gamma) if args.kernel == "rbf" else (
        kernel_by_name(args.kernel) if args.kernel else None
    )
    model = PrivacyPreservingSVM(
        args.mode,
        kernel=kernel,
        C=args.C,
        rho=args.rho,
        max_iter=args.iters,
        secure=not args.insecure,
        seed=args.seed,
        on_health=args.on_health,
    )
    if args.mode == "horizontal":
        data = horizontal_partition(train_set, args.learners, seed=args.seed)
    else:
        data = vertical_partition(train_set, args.learners, seed=args.seed)
    model.fit(data)

    print(f"dataset            : {dataset.name} ({dataset.n_samples} x {dataset.n_features})")
    print(f"mode               : {args.mode}, {args.learners} learners, "
          f"{'secure' if not args.insecure else 'PLAINTEXT'}")
    print(f"test accuracy      : {model.score(test_set.X, test_set.y):.4f}")
    print(f"iterations         : {len(model.history_)}")
    print(f"final z-change     : {model.history_.z_changes[-1]:.3e}")
    summary = model.communication_summary()
    print(f"bytes on the wire  : {summary['total_bytes']:.0f} "
          f"({summary['bytes_per_iteration']:.0f}/iter)")
    print(f"raw data moved     : {summary['raw_data_bytes_moved']:.0f} bytes")
    print(f"secure sum rounds  : {summary['secure_sum_rounds']:.0f}")
    print(f"health verdict     : {model.health_monitor_.verdict()}")
    audit = model.audit_log_.summary()
    print(f"protocol audit     : {audit['n_rounds']} round(s), "
          f"{'clean' if audit['ok'] else str(audit['n_violations']) + ' violation(s)'}")
    if args.ledger:
        _record_run(model, args, "train")

    if args.save:
        if args.mode != "horizontal" or kernel is not None:
            print("--save supports the horizontal linear consensus model only",
                  file=sys.stderr)
            return 2
        from repro.core.horizontal_linear import HorizontalLinearSVM
        from repro.persistence import save_model

        exportable = HorizontalLinearSVM(C=args.C, rho=args.rho)
        exportable.consensus_weights_ = model._reducer.z
        exportable.consensus_bias_ = model._reducer.s
        save_model(exportable, args.save)
        print(f"consensus model written to {args.save}")
    return 0


def _cmd_figure4(args: argparse.Namespace) -> int:
    config = ExperimentConfig(max_iter=args.max_iter, seed=args.seed)
    if args.paper:
        config = config.with_sizes(PAPER_SIZES)
    for panel in args.panels:
        result = run_panel(panel, config)
        print(format_panel(result, every=10))
        print()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    config = ExperimentConfig(max_iter=args.max_iter, seed=args.seed)
    if args.paper:
        config = config.with_sizes(PAPER_SIZES)
    text = generate_report(config, panels=args.panels)
    with open(args.out, "w") as handle:
        handle.write(text)
    print(f"report written to {args.out}")
    return 0


def _cmd_protocol_demo(_: argparse.Namespace) -> int:
    from repro.cluster.network import Network
    from repro.crypto.secure_sum import SecureSummationProtocol

    rng = np.random.default_rng(0)
    network = Network()
    mappers = [f"mapper-{i}" for i in range(4)]
    protocol = SecureSummationProtocol(network, mappers, "reducer", seed=0)
    values = {m: rng.normal(size=4) for m in mappers}
    total = protocol.sum_vectors(values)
    print(f"inputs (private)  : {[np.round(v, 3).tolist() for v in values.values()]}")
    print(f"reducer obtains   : {np.round(total, 3).tolist()}")
    print(f"true sum          : {np.round(sum(values.values()), 3).tolist()}")
    print(f"mask messages     : {network.messages_sent('mask'):.0f}")
    print(f"masked shares     : {network.messages_sent('masked-share'):.0f}")
    print(f"bytes on the wire : {network.bytes_sent():.0f}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.experiments.tables import format_table

    dataset = _MAKERS[args.dataset](args.samples, seed=args.seed)
    train_set, _ = train_test_split(dataset, 0.5, seed=args.seed)
    scaler = StandardScaler().fit(train_set.X)
    train_set = scaler.transform_dataset(train_set)

    model = PrivacyPreservingSVM(
        args.mode,
        max_iter=args.iters,
        secure=not args.insecure,
        mask_mode=args.mask_mode,
        seed=args.seed,
    )
    if args.mode == "horizontal":
        data = horizontal_partition(train_set, args.learners, seed=args.seed)
    else:
        data = vertical_partition(train_set, args.learners, seed=args.seed)
    model.fit(data)

    headers, rows = model.iteration_cost_table()
    print(f"per-iteration cost, {args.mode} "
          f"{'secure' if not args.insecure else 'PLAINTEXT'} run "
          f"({args.learners} learners, {len(model.history_)} iterations):")
    print()
    print(format_table(headers, rows))
    print()

    # Reconcile the trace-derived table against the counter registry —
    # the two views of the same run must agree exactly.
    metrics = model.network_.metrics
    table_bytes = sum(row[headers.index("total_bytes")] for row in rows)
    table_messages = sum(row[headers.index("messages")] for row in rows)
    table_crypto = sum(row[headers.index("crypto_ops")] for row in rows)
    registry_crypto = sum(
        amount for name, amount in metrics.as_dict().items() if name.startswith("crypto.")
    )
    checks = [
        ("bytes", table_bytes, model.network_.bytes_sent()),
        ("messages", table_messages, model.network_.messages_sent()),
        ("crypto ops", table_crypto, registry_crypto),
    ]
    ok = True
    for label, from_trace, from_registry in checks:
        match = from_trace == from_registry
        ok = ok and match
        print(f"{label:>10}: trace {from_trace:.0f} == registry {from_registry:.0f} "
              f"{'OK' if match else 'MISMATCH'}")
    print(f"{'raw bytes':>10}: {model.raw_data_bytes_moved():.0f} "
          f"(dropped trace records: {model.network_.tracer.dropped})")
    if model.network_.tracer.dropped:
        print(f"warning: {model.network_.tracer.dropped} trace record(s) were "
              f"dropped at the recorder's cap — the cost table above and any "
              f"exported trace are incomplete; raise TraceRecorder(max_records=...)",
              file=sys.stderr)

    if args.ledger:
        _record_run(model, args, "trace")
    if args.out:
        model.export_trace(args.out, format="chrome")
        print(f"Chrome trace written to {args.out} (load at chrome://tracing)")
    if args.jsonl:
        model.export_trace(args.jsonl, format="jsonl")
        print(f"JSONL trace written to {args.jsonl}")
    return 0 if ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import (
        Allowlist,
        AllowlistError,
        Baseline,
        BaselineError,
        LintCache,
        all_rules,
        run_lint,
    )
    from repro.analysis.cache import DEFAULT_CACHE_NAME

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id:<35} {rule.severity.value:<8} {rule.summary}")
        return 0

    root = Path(args.root)
    if not root.is_dir():
        print(f"repro lint: root is not a directory: {root}", file=sys.stderr)
        return 2
    paths = [Path(p) for p in args.paths] if args.paths else None
    allowlist = None
    if args.allowlist:
        try:
            allowlist = Allowlist.load(Path(args.allowlist))
        except (AllowlistError, OSError) as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
    baseline = None
    if args.baseline:
        try:
            baseline = Baseline.load(Path(args.baseline))
        except BaselineError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
    cache = None
    if args.cache or args.cache_path:
        cache_path = Path(args.cache_path) if args.cache_path else root / DEFAULT_CACHE_NAME
        cache = LintCache(cache_path)
    try:
        report = run_lint(
            root,
            paths,
            allowlist=allowlist,
            use_default_allowlist=not args.no_allowlist,
            baseline=baseline,
            cache=cache,
        )
    except (AllowlistError, FileNotFoundError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_findings(report.findings).write(Path(args.write_baseline))
        print(
            f"baseline with {len(report.findings)} finding(s) written to "
            f"{args.write_baseline}"
        )
        return 0

    if args.format == "json":
        print(report.format_json())
    elif args.format == "github":
        output = report.format_github()
        if output:
            print(output)
    elif args.format == "sarif":
        print(report.format_sarif())
    else:
        print(report.format_text(show_suppressed=args.show_suppressed))
    return report.exit_code(strict=args.strict)


def _cmd_runs(args: argparse.Namespace) -> int:
    from repro.obs.runs_cli import cmd_runs

    return cmd_runs(args)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "train": _cmd_train,
        "figure4": _cmd_figure4,
        "report": _cmd_report,
        "protocol-demo": _cmd_protocol_demo,
        "trace": _cmd_trace,
        "lint": _cmd_lint,
        "runs": _cmd_runs,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
