"""Linear SVM over vertically partitioned data (paper Section IV-C).

Each learner holds a column block ``X_m`` (all N rows, its own feature
subset) and its own weight block ``w_m``; labels are shared.  The joint
problem (paper eq. (26)) couples the learners only through
``z = sum_m X_m w_m``, which is the *sharing* form of ADMM
(Boyd et al. §7.3).  Per iteration:

* **Mapper m** solves the ridge subproblem
  ``w_m := argmin (1/2)||w||^2 + (rho/2) ||X_m w - p_m||^2`` with target
  ``p_m = a_m + corr`` (``a_m = X_m w_m`` from the previous round and
  ``corr = zbar - abar - u`` broadcast by the Reducer); a ``k_m x k_m``
  Cholesky solve, factored once;
* the Reducer obtains ``abar = mean_m(a_m)`` by **secure summation**
  (this is the paper's ``c̄``), forms ``cbar = abar + u``, and solves the
  hinge proximal problem

      min_{zbar,b,xi} C 1'xi + (M rho / 2) ||zbar - cbar||^2
      s.t.  Y(M zbar + 1 b) >= 1 - xi,  xi >= 0

  whose dual is a **diagonal** QP with one equality constraint — solved
  exactly by continuous quadratic knapsack (paper eq. (29), where
  ``A = (1/rho) Y 1 1' Y``); then ``zbar = cbar + Y lambda / rho``,
  ``u := cbar - zbar = -Y lambda / rho``, and the new correction
  ``corr = zbar - abar - u`` is broadcast back (the Twister feedback).

The classifier is ``f(x) = sum_m x_m' w_m + b``: at test time every
learner contributes the score share of its own columns, mirroring how
vertically partitioned deployments actually classify.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np
import scipy.linalg as sla

from repro.core.partitioning import VerticalPartition
from repro.core.results import IterationRecord, TrainingHistory
from repro.svm.knapsack import solve_quadratic_knapsack
from repro.svm.model import accuracy
from repro.utils.validation import check_labels, check_matrix, check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.health import HealthMonitor

__all__ = ["VerticalConsensusReducer", "VerticalLinearSVM", "VerticalLinearWorker"]


class VerticalLinearWorker:
    """One learner's Map() computation for the linear vertical scheme.

    Parameters
    ----------
    X:
        The learner's ``(N, k_m)`` column block (private).
    rho:
        ADMM penalty, shared.
    """

    def __init__(self, X: np.ndarray, *, rho: float = 100.0) -> None:
        self.X = check_matrix(X, "X")
        self.rho = check_positive(rho, "rho")
        n, k = self.X.shape
        gram = self.X.T @ self.X + np.eye(k) / self.rho
        self._factor = sla.cho_factor(gram)
        self.w = np.zeros(k)
        self.share = np.zeros(n)  # a_m = X_m w_m

    @property
    def n_samples(self) -> int:
        return self.X.shape[0]

    def step(self, correction: np.ndarray) -> dict[str, np.ndarray]:
        """One local ridge update; returns the new score share ``a_m``."""
        correction = np.asarray(correction, dtype=float).ravel()
        if correction.shape[0] != self.n_samples:
            raise ValueError(
                f"correction has length {correction.shape[0]}, expected {self.n_samples}"
            )
        target = self.share + correction
        self.w = sla.cho_solve(self._factor, self.X.T @ target)
        self.share = self.X @ self.w
        return {"share": self.share}

    def score_share(self, X_test: np.ndarray) -> np.ndarray:
        """This learner's contribution ``X_test w_m`` to test scores."""
        X_test = check_matrix(X_test, "X_test")
        if X_test.shape[1] != self.X.shape[1]:
            raise ValueError(
                f"X_test has {X_test.shape[1]} columns, expected {self.X.shape[1]}"
            )
        return X_test @ self.w


class VerticalConsensusReducer:
    """The Reducer's per-iteration logic for both vertical schemes.

    Holds the shared labels and the ADMM running state ``(zbar, u)``;
    consumes the securely-summed score shares; produces the broadcast
    correction and the current bias.
    """

    def __init__(self, y: np.ndarray, *, C: float = 50.0, rho: float = 100.0, n_learners: int) -> None:
        self.y = check_labels(y, "y")
        self.C = check_positive(C, "C")
        self.rho = check_positive(rho, "rho")
        if n_learners < 2:
            raise ValueError(f"n_learners must be >= 2, got {n_learners}")
        self.n_learners = int(n_learners)
        n = self.y.shape[0]
        self.zbar = np.zeros(n)
        self.u = np.zeros(n)
        self.bias = 0.0
        self.z_total_prev = np.zeros(n)

    def step(self, share_sum: np.ndarray) -> tuple[np.ndarray, float, float]:
        """Consume ``sum_m a_m``; return ``(correction, z_change_sq, primal)``.

        ``z_change_sq`` tracks the paper's Fig. 4(c)/(d) quantity on the
        total consensus vector ``z = M zbar``; ``primal`` is
        ``||abar - zbar||`` (consensus violation).
        """
        share_sum = np.asarray(share_sum, dtype=float).ravel()
        n = self.y.shape[0]
        if share_sum.shape[0] != n:
            raise ValueError(f"share sum has length {share_sum.shape[0]}, expected {n}")
        M = float(self.n_learners)
        abar = share_sum / M
        cbar = abar + self.u

        # Hinge proximal via its exact knapsack dual.
        result = solve_quadratic_knapsack(
            a=np.full(n, M / self.rho),
            d=M * self.y * cbar - 1.0,
            c=self.y,
            r=0.0,
            lower=0.0,
            upper=self.C,
        )
        lam = result.x
        self.zbar = cbar + self.y * lam / self.rho
        self.u = cbar - self.zbar
        self.bias = self._recover_bias(lam)

        z_total = M * self.zbar
        z_change = float(np.sum((z_total - self.z_total_prev) ** 2))
        self.z_total_prev = z_total
        primal = float(np.linalg.norm(abar - self.zbar))
        correction = self.zbar - abar - self.u
        return correction, z_change, primal

    def _recover_bias(self, lam: np.ndarray) -> float:
        """KKT bias: ``y_i (zeta_i + b) = 1`` on free support vectors."""
        zeta = self.n_learners * self.zbar
        free = (lam > 1e-8) & (lam < self.C - 1e-8)
        if free.any():
            return float(np.mean(self.y[free] - zeta[free]))
        # No free SVs: bracket b by the two bound sets' margins.
        margins = self.y - zeta
        upper_set = margins[(lam <= 1e-8) & (self.y > 0) | (lam >= self.C - 1e-8) & (self.y < 0)]
        lower_set = margins[(lam <= 1e-8) & (self.y < 0) | (lam >= self.C - 1e-8) & (self.y > 0)]
        hi = float(np.min(upper_set)) if upper_set.size else 0.0
        lo = float(np.max(lower_set)) if lower_set.size else 0.0
        return 0.5 * (hi + lo)


class VerticalLinearSVM:
    """In-process trainer for the linear vertical scheme.

    Parameters mirror :class:`~repro.core.horizontal_linear.HorizontalLinearSVM`;
    fitting consumes a :class:`~repro.core.partitioning.VerticalPartition`.
    """

    def __init__(
        self,
        C: float = 50.0,
        rho: float = 100.0,
        *,
        max_iter: int = 100,
        tol: float | None = None,
    ) -> None:
        self.C = check_positive(C, "C")
        self.rho = check_positive(rho, "rho")
        self.max_iter = int(max_iter)
        self.tol = tol
        self.workers_: list[VerticalLinearWorker] = []
        self.reducer_: VerticalConsensusReducer | None = None
        self.partition_: VerticalPartition | None = None
        self.history_ = TrainingHistory()

    def _make_workers(self, partition: VerticalPartition) -> list[VerticalLinearWorker]:
        return [VerticalLinearWorker(block, rho=self.rho) for block in partition.blocks]

    def fit(
        self,
        partition: VerticalPartition,
        *,
        eval_X=None,
        eval_y=None,
        health_monitor: "HealthMonitor | None" = None,
    ) -> "VerticalLinearSVM":
        """Train; ``eval_X/eval_y`` enable the Fig. 4(g) accuracy series."""
        self.partition_ = partition
        self.workers_ = self._make_workers(partition)
        self.reducer_ = VerticalConsensusReducer(
            partition.y, C=self.C, rho=self.rho, n_learners=partition.n_learners
        )
        eval_blocks = None
        if eval_X is not None:
            eval_blocks = partition.split_features(check_matrix(eval_X, "eval_X"))
            eval_y = check_labels(eval_y, "eval_y", length=eval_blocks[0].shape[0])

        n = partition.n_samples
        correction = np.zeros(n)
        self.history_ = TrainingHistory()

        for iteration in range(self.max_iter):
            share_sum = np.zeros(n)
            for worker in self.workers_:
                share_sum += worker.step(correction)["share"]
            correction, z_change, primal = self.reducer_.step(share_sum)

            acc = float("nan")
            if eval_blocks is not None:
                scores = self._scores_from_blocks(eval_blocks)
                acc = accuracy(eval_y, np.where(scores >= 0, 1.0, -1.0))
            self.history_.append(
                IterationRecord(
                    iteration=iteration,
                    z_change_sq=z_change,
                    primal_residual=primal,
                    accuracy=acc,
                )
            )
            if health_monitor is not None:
                health_monitor.observe(
                    iteration,
                    z_change_sq=z_change,
                    primal_residual=primal,
                    residual_available=True,
                )
            if self.tol is not None and z_change <= self.tol:
                break
        return self

    def _scores_from_blocks(self, blocks: list[np.ndarray]) -> np.ndarray:
        scores = np.zeros(blocks[0].shape[0])
        for worker, block in zip(self.workers_, blocks):
            scores += worker.score_share(block)
        return scores + self.reducer_.bias

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Joint scores: every learner contributes its column block's share."""
        if self.partition_ is None or self.reducer_ is None:
            raise RuntimeError("model must be fit before use")
        blocks = self.partition_.split_features(check_matrix(X, "X"))
        return self._scores_from_blocks(blocks)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted -1/+1 labels."""
        return np.where(self.decision_function(X) >= 0, 1.0, -1.0)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on ``(X, y)``."""
        return accuracy(check_labels(y, "y"), self.predict(X))
