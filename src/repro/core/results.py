"""Training-history records shared by all four algorithm variants.

Fig. 4 of the paper plots, per ADMM iteration, (a–d) the consensus
movement ``||z^{t+1} - z^t||^2`` and (e–h) the correct classification
ratio.  :class:`TrainingHistory` collects exactly those series plus the
primal residual, so the experiment harness can print any panel from any
trained model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["IterationRecord", "TrainingHistory"]


@dataclass(frozen=True)
class IterationRecord:
    """Metrics for one ADMM iteration.

    Attributes
    ----------
    iteration:
        0-based iteration index.
    z_change_sq:
        ``||z^{t+1} - z^t||_2^2`` — the convergence quantity of
        Fig. 4(a)–(d).
    primal_residual:
        ``||mean_m w_m - z||_2`` (horizontal) or ``||abar - zbar||_2``
        (vertical): how far the learners are from consensus.
    accuracy:
        Correct ratio on the evaluation set, if one was supplied
        (Fig. 4(e)–(h)); ``nan`` otherwise.
    residual_available:
        Whether ``primal_residual`` was actually measured.  The secure
        horizontal Reducer only ever sees the *sums* ``w_m + gamma_m``,
        so it cannot separate the dual terms to compute the residual —
        it records ``nan`` with ``residual_available=False`` instead of
        a silent placeholder, and downstream consumers (the health
        monitors, the run ledger) skip the series rather than tripping
        on NaN.
    """

    iteration: int
    z_change_sq: float
    primal_residual: float
    accuracy: float = float("nan")
    residual_available: bool = True


@dataclass
class TrainingHistory:
    """Accumulates :class:`IterationRecord` objects during a fit."""

    records: list[IterationRecord] = field(default_factory=list)

    def append(self, record: IterationRecord) -> None:
        """Add one iteration's record."""
        self.records.append(record)

    @property
    def n_iterations(self) -> int:
        return len(self.records)

    @property
    def z_changes(self) -> np.ndarray:
        """The Fig. 4(a)-(d) series."""
        return np.array([r.z_change_sq for r in self.records])

    @property
    def accuracies(self) -> np.ndarray:
        """The Fig. 4(e)-(h) series."""
        return np.array([r.accuracy for r in self.records])

    @property
    def primal_residuals(self) -> np.ndarray:
        """Primal-residual series (``nan`` where not measured —
        check :attr:`residuals_available` before interpreting)."""
        return np.array([r.primal_residual for r in self.records])

    @property
    def residuals_available(self) -> bool:
        """True when every record carries a measured primal residual."""
        return all(r.residual_available for r in self.records)

    def final_accuracy(self) -> float:
        """Last recorded accuracy (nan if never evaluated)."""
        return self.records[-1].accuracy if self.records else float("nan")

    def __len__(self) -> int:
        return len(self.records)
