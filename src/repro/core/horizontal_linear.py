"""Linear SVM over horizontally partitioned data (paper Section IV-A).

The joint problem (paper eq. (6)) gives each learner its own copy
``(w_m, b_m)`` of the separating hyperplane, constrained to a global
consensus ``(z, s)``.  ADMM splits it into

* a **local dual QP per learner** (the Map() task) — our re-derivation
  (DESIGN.md §6): with ``a = 1/M + rho``, ``u = z - gamma_m``,
  ``t = s - beta_m``, minimize over ``0 <= lambda <= C``

      (1/2) l' [ (1/a) Y X X' Y + (1/rho) Y 1 1' Y ] l
          + [ (rho/a) Y X u + t Y 1 - 1 ]' l

  after which ``w_m = (rho u + X' Y lambda)/a`` and
  ``b_m = t + (1' Y lambda)/rho`` (paper eqs. (12)–(13a/d), with the
  bias penalty folding the paper's equality constraint into the
  objective);

* an **averaging step at the Reducer** (paper eqs. (13b/e)):
  ``z = mean_m(w_m + gamma_m)``, ``s = mean_m(b_m + beta_m)`` — only
  *sums* of local quantities are needed, which is what the secure
  summation protocol provides;

* **scaled dual updates on each learner** (paper eqs. (13c/f)):
  ``gamma_m += w_m - z``, ``beta_m += b_m - s``.

The Hessian of the local dual is constant across iterations, so each
worker factors it conceptually once and warm-starts its QP from the
previous ``lambda`` — this is what makes per-iteration Map() cheap.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.results import IterationRecord, TrainingHistory
from repro.data.dataset import Dataset
from repro.svm.model import accuracy
from repro.svm.qp import solve_box_qp
from repro.utils.rng import as_rng
from repro.utils.validation import check_labels, check_matrix, check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.health import HealthMonitor

__all__ = ["HorizontalLinearSVM", "HorizontalLinearWorker"]


class HorizontalLinearWorker:
    """One learner's Map() computation for the linear horizontal scheme.

    Holds the private partition ``(X_m, y_m)`` and all per-learner ADMM
    state (``w_m``, ``b_m``, the scaled duals ``gamma_m``, ``beta_m``,
    and the warm-start ``lambda``).  The only thing that ever leaves the
    worker is the return value of :meth:`step` — the masked summands of
    the consensus average.

    Parameters
    ----------
    X, y:
        The learner's private rows and labels.
    C:
        Slack penalty (shared across learners).
    rho:
        ADMM penalty (the paper's "learning speed" parameter).
    n_learners:
        M, the number of collaborating learners.
    qp_tol, qp_max_sweeps:
        Local QP solver controls.
    """

    def __init__(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        C: float = 50.0,
        rho: float = 100.0,
        n_learners: int,
        qp_tol: float = 1e-8,
        qp_max_sweeps: int = 500,
    ) -> None:
        self.X = check_matrix(X, "X")
        self.y = check_labels(y, "y", length=self.X.shape[0])
        self.C = check_positive(C, "C")
        self.rho = check_positive(rho, "rho")
        if n_learners < 1:
            raise ValueError(f"n_learners must be >= 1, got {n_learners}")
        self.n_learners = int(n_learners)
        self.qp_tol = qp_tol
        self.qp_max_sweeps = qp_max_sweeps

        n, k = self.X.shape
        self._a = 1.0 / self.n_learners + self.rho
        xy = self.X * self.y[:, None]  # rows are y_i * x_i
        self._xy = xy
        self._H = (xy @ xy.T) / self._a + np.outer(self.y, self.y) / self.rho
        self._lambda = np.zeros(n)
        self.w = np.zeros(k)
        self.b = 0.0
        self.gamma = np.zeros(k)
        self.beta = 0.0
        self._started = False
        self.last_output: dict[str, np.ndarray] | None = None

    @property
    def n_samples(self) -> int:
        return self.X.shape[0]

    def step(self, z: np.ndarray, s: float) -> dict[str, np.ndarray]:
        """Run one ADMM local iteration against consensus ``(z, s)``.

        Returns the learner's summands ``{"z_contrib", "s_contrib"}``;
        averaging them across learners yields the next ``(z, s)``.
        """
        z = np.asarray(z, dtype=float).ravel()
        if z.shape[0] != self.w.shape[0]:
            raise ValueError(f"z has length {z.shape[0]}, expected {self.w.shape[0]}")
        s = float(s)

        # Dual updates (paper eqs. (13c)/(13f)) — deferred until the new
        # consensus arrives, so they use this worker's previous (w, b).
        if self._started:
            self.gamma = self.gamma + self.w - z
            self.beta = self.beta + self.b - s
        self._started = True

        u = z - self.gamma
        t = s - self.beta
        d = (self.rho / self._a) * (self.y * (self.X @ u)) + t * self.y - 1.0
        result = solve_box_qp(
            self._H,
            d,
            0.0,
            self.C,
            x0=self._lambda,
            tol=self.qp_tol,
            max_sweeps=self.qp_max_sweeps,
        )
        self._lambda = result.x

        self.w = (self.rho * u + (self._lambda * self.y) @ self.X) / self._a
        self.b = t + float(self.y @ self._lambda) / self.rho
        self.last_output = {
            "z_contrib": self.w + self.gamma,
            "s_contrib": np.array([self.b + self.beta]),
        }
        return self.last_output

    def local_decision_function(self, X: np.ndarray) -> np.ndarray:
        """Scores under this learner's *local* model ``(w_m, b_m)``."""
        X = check_matrix(X, "X")
        return X @ self.w + self.b


class HorizontalLinearSVM:
    """In-process trainer for the linear horizontal scheme.

    Runs the full ADMM loop over a list of local partitions without the
    cluster machinery (useful for unit tests, ablations, and as the
    numerical reference for the MapReduce trainer, which reuses
    :class:`HorizontalLinearWorker` verbatim).

    Parameters
    ----------
    C, rho:
        Paper Section VI defaults (C = 50, rho = 100).
    max_iter:
        ADMM iteration budget (the paper plots 100).
    tol:
        Early-stopping threshold on ``||z^{t+1} - z^t||^2``; ``None``
        disables early stopping (paper-style fixed-length runs).
    participation:
        Fraction of learners that perform a *fresh* local solve each
        iteration (stale/partial-participation ADMM, an extension: the
        remaining learners resend their cached contribution, modeling
        slow or intermittently-available organizations).  1.0 (default)
        is the paper's synchronous scheme.
    """

    def __init__(
        self,
        C: float = 50.0,
        rho: float = 100.0,
        *,
        max_iter: int = 100,
        tol: float | None = None,
        participation: float = 1.0,
        seed: int | np.random.Generator | None = 0,
        qp_tol: float = 1e-8,
        qp_max_sweeps: int = 500,
    ) -> None:
        self.C = check_positive(C, "C")
        self.rho = check_positive(rho, "rho")
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        if not 0.0 < participation <= 1.0:
            raise ValueError(f"participation must be in (0, 1], got {participation}")
        self.max_iter = int(max_iter)
        self.tol = tol
        self.participation = float(participation)
        self.seed = seed
        self.qp_tol = qp_tol
        self.qp_max_sweeps = qp_max_sweeps
        self.workers_: list[HorizontalLinearWorker] = []
        self.consensus_weights_: np.ndarray | None = None
        self.consensus_bias_: float = 0.0
        self.history_ = TrainingHistory()

    def fit(
        self,
        partitions: list[Dataset],
        *,
        eval_set: Dataset | None = None,
        health_monitor: "HealthMonitor | None" = None,
    ) -> "HorizontalLinearSVM":
        """Train from per-learner datasets (see :func:`horizontal_partition`).

        ``eval_set`` enables the per-iteration correct-ratio series of
        Fig. 4(e) (scored with the consensus model).  ``health_monitor``
        optionally streams each iteration into a
        :class:`~repro.obs.health.HealthMonitor` (signals are recorded,
        not enforced — policy belongs to the caller).
        """
        if len(partitions) < 2:
            raise ValueError("need at least 2 partitions")
        n_features = partitions[0].n_features
        if any(p.n_features != n_features for p in partitions):
            raise ValueError("all partitions must share the feature dimension")

        n_learners = len(partitions)
        self.workers_ = [
            HorizontalLinearWorker(
                p.X,
                p.y,
                C=self.C,
                rho=self.rho,
                n_learners=n_learners,
                qp_tol=self.qp_tol,
                qp_max_sweeps=self.qp_max_sweeps,
            )
            for p in partitions
        ]

        z = np.zeros(n_features)
        s = 0.0
        self.history_ = TrainingHistory()
        rng = as_rng(self.seed)
        n_active = max(1, int(round(self.participation * n_learners)))

        for iteration in range(self.max_iter):
            if self.participation >= 1.0 or iteration == 0:
                active = set(range(n_learners))
            else:
                active = set(rng.choice(n_learners, size=n_active, replace=False).tolist())
            w_sum = np.zeros(n_features)
            b_sum = 0.0
            for index, worker in enumerate(self.workers_):
                if index in active:
                    out = worker.step(z, s)
                else:
                    out = worker.last_output  # stale resend
                w_sum += out["z_contrib"]
                b_sum += float(out["s_contrib"][0])
            z_new = w_sum / n_learners
            s_new = b_sum / n_learners

            z_change = float(np.sum((z_new - z) ** 2) + (s_new - s) ** 2)
            mean_w = np.mean([worker.w for worker in self.workers_], axis=0)
            primal = float(np.linalg.norm(mean_w - z_new))
            z, s = z_new, s_new

            acc = float("nan")
            if eval_set is not None:
                scores = eval_set.X @ z + s
                preds = np.where(scores >= 0, 1.0, -1.0)
                acc = accuracy(eval_set.y, preds)
            self.history_.append(
                IterationRecord(
                    iteration=iteration,
                    z_change_sq=z_change,
                    primal_residual=primal,
                    accuracy=acc,
                )
            )
            if health_monitor is not None:
                health_monitor.observe(
                    iteration,
                    z_change_sq=z_change,
                    primal_residual=primal,
                    residual_available=True,
                )
            if self.tol is not None and z_change <= self.tol:
                break

        self.consensus_weights_ = z
        self.consensus_bias_ = s
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Scores under the consensus model ``(z, s)``."""
        if self.consensus_weights_ is None:
            raise RuntimeError("model must be fit before use")
        X = check_matrix(X, "X")
        return X @ self.consensus_weights_ + self.consensus_bias_

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted -1/+1 labels under the consensus model."""
        scores = self.decision_function(X)
        return np.where(scores >= 0, 1.0, -1.0)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy of the consensus model."""
        return accuracy(check_labels(y, "y"), self.predict(X))
