"""Partitioning the joint training set among learners (paper Figs. 2–3).

* **Horizontal** partitioning (Fig. 2): the N records are split by rows;
  learner *m* holds ``N_m`` complete records.  Section VI assigns each
  record to a learner uniformly at random.
* **Vertical** partitioning (Fig. 3): the k features are split by
  columns; every learner holds all N records but only its own feature
  subset, and the labels are shared by all learners.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.rng import as_rng

__all__ = ["VerticalPartition", "horizontal_partition", "vertical_partition"]


def horizontal_partition(
    dataset: Dataset,
    n_learners: int,
    *,
    seed: int | np.random.Generator | None = None,
    balanced: bool = True,
) -> list[Dataset]:
    """Split ``dataset`` by rows into ``n_learners`` local datasets.

    Parameters
    ----------
    dataset:
        The joint training set.
    n_learners:
        Number of learners M (the paper uses M = 4).
    seed:
        RNG for the random assignment.
    balanced:
        If True (default), learners receive equal-sized shares (±1) and
        each share is guaranteed to contain both classes — the paper's
        formulation requires every Mapper to solve a two-class local
        SVM.  If False, each record is assigned i.i.d. uniformly
        (faithful to the paper's wording but occasionally degenerate for
        tiny datasets).

    Returns
    -------
    list of per-learner :class:`Dataset`, named ``"<name>/learner<m>"``.
    """
    if n_learners < 2:
        raise ValueError(f"need at least 2 learners, got {n_learners}")
    if dataset.n_samples < 2 * n_learners:
        raise ValueError(
            f"dataset has {dataset.n_samples} rows; too few for {n_learners} learners"
        )
    rng = as_rng(seed)
    n = dataset.n_samples

    if balanced:
        # Stratified dealing: shuffle within each class, deal round-robin.
        assignment = np.empty(n, dtype=int)
        offset = 0
        for label in (-1.0, 1.0):
            idx = np.flatnonzero(dataset.y == label)
            rng.shuffle(idx)
            assignment[idx] = (np.arange(idx.size) + offset) % n_learners
            offset += idx.size
    else:
        assignment = rng.integers(0, n_learners, size=n)

    partitions: list[Dataset] = []
    for m in range(n_learners):
        idx = np.flatnonzero(assignment == m)
        if idx.size == 0 or np.unique(dataset.y[idx]).size < 2:
            raise ValueError(
                f"learner {m} received a degenerate share (empty or single-class); "
                f"use balanced=True or a larger dataset"
            )
        partitions.append(dataset.subset(idx, f"{dataset.name}/learner{m}"))
    return partitions


@dataclass(frozen=True)
class VerticalPartition:
    """A vertical split: per-learner feature blocks plus the shared labels.

    Attributes
    ----------
    features:
        ``features[m]`` is the array of column indices held by learner m.
    blocks:
        ``blocks[m]`` is the ``(N, k_m)`` matrix of learner m's columns.
    y:
        The shared label vector (paper assumption 1 in Section IV-C).
    """

    features: list[np.ndarray]
    blocks: list[np.ndarray]
    y: np.ndarray

    @property
    def n_learners(self) -> int:
        return len(self.blocks)

    @property
    def n_samples(self) -> int:
        return self.blocks[0].shape[0]

    def restrict(self, selected: np.ndarray) -> "VerticalPartition":
        """A new partition keeping only the ``selected`` global columns.

        Each learner drops its unselected columns; learners left with no
        columns are removed.  Used after
        :func:`~repro.core.feature_selection.vertical_feature_selection`.
        """
        selected_sorted = np.unique(np.asarray(selected, dtype=int))
        # Feature indices are remapped into the *restricted* column space
        # (the order of ``sorted(selected)``), so ``split_features`` works
        # on matrices that contain only the selected columns.
        remap = {int(old): new for new, old in enumerate(selected_sorted)}
        features: list[np.ndarray] = []
        blocks: list[np.ndarray] = []
        for feats, block in zip(self.features, self.blocks):
            keep = np.array([i for i, f in enumerate(feats) if int(f) in remap], dtype=int)
            if keep.size == 0:
                continue
            features.append(np.array([remap[int(f)] for f in feats[keep]], dtype=int))
            blocks.append(block[:, keep])
        if len(blocks) < 2:
            raise ValueError("restriction leaves fewer than 2 learners with features")
        return VerticalPartition(features=features, blocks=blocks, y=self.y.copy())

    def split_features(self, X: np.ndarray) -> list[np.ndarray]:
        """Split a new design matrix (e.g. test data) the same way."""
        X = np.asarray(X, dtype=float)
        total = sum(f.size for f in self.features)
        if X.ndim != 2 or X.shape[1] != total:
            raise ValueError(f"X must have {total} columns, got {X.shape}")
        return [X[:, f] for f in self.features]


def vertical_partition(
    dataset: Dataset,
    n_learners: int,
    *,
    seed: int | np.random.Generator | None = None,
) -> VerticalPartition:
    """Split ``dataset`` by columns into ``n_learners`` feature blocks.

    Features are assigned to learners uniformly at random (the Section VI
    protocol), with the constraint that every learner receives at least
    one feature.
    """
    if n_learners < 2:
        raise ValueError(f"need at least 2 learners, got {n_learners}")
    k = dataset.n_features
    if k < n_learners:
        raise ValueError(f"dataset has {k} features; too few for {n_learners} learners")
    rng = as_rng(seed)
    perm = rng.permutation(k)
    # Deal one feature to each learner first (non-emptiness), then assign
    # the rest uniformly at random.
    assignment = np.empty(k, dtype=int)
    assignment[perm[:n_learners]] = np.arange(n_learners)
    assignment[perm[n_learners:]] = rng.integers(0, n_learners, size=k - n_learners)

    features = [np.sort(np.flatnonzero(assignment == m)) for m in range(n_learners)]
    blocks = [dataset.X[:, f] for f in features]
    return VerticalPartition(features=features, blocks=blocks, y=dataset.y.copy())
