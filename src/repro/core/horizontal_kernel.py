"""Nonlinear (kernel) SVM over horizontally partitioned data (Section IV-B).

The kernel twist: local models ``w_m`` live in the (possibly infinite-
dimensional) RKHS, so they cannot be averaged directly.  The paper
instead enforces consensus on the **projection onto l shared landmark
points**: ``G w_m = z`` with ``G = phi(X_g)`` for a public ``l x k``
landmark matrix ``X_g`` (eq. (15)).  Everything then reduces to kernel
evaluations (eqs. (20)–(25)); our clean re-derivation (DESIGN.md §6):

with ``K_g = I + M rho K(X_g, X_g)`` and the Woodbury identity,

    S        = M (I + M rho G'G)^(-1) = M (I - M rho G' K_g^(-1) G)
    Phi S Phi' = M (K_mm - M rho K_mg K_g^(-1) K_gm)
    Phi S G'   = M (K_mg - M rho K_mg K_g^(-1) K_gg)
    G S G'     = M (K_gg - M rho K_gg K_g^(-1) K_gg)

Local dual (box QP, constant Hessian):

    min_{0<=l<=C} (1/2) l' [Y (Phi S Phi') Y + (1/rho) Y 1 1' Y] l
                 + [rho Y (Phi S G') u + t Y 1 - 1]' l

with ``u = z - r_m``, ``t = s - beta_m``; then the learner's consensus
image is ``G w_m = (Phi S G')' Y lambda + rho (G S G') u`` and the
trained discriminant is the representer form of Lemma 4.4:

    f(x) = K(x, X_m) a + K(x, X_g) c + b,
    a = M Y lambda,
    c = M rho u - M^2 rho K_g^(-1) (K_gm Y lambda + rho K_gg u).

Landmarks are *public* randomness shared by all learners — they carry
no private data (they are sampled from a data-independent distribution),
which is what lets the consensus image be exchanged at all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np
import scipy.linalg as sla

from repro.core.results import IterationRecord, TrainingHistory
from repro.data.dataset import Dataset
from repro.svm.kernels import Kernel, RBFKernel
from repro.svm.model import accuracy
from repro.svm.qp import solve_box_qp
from repro.utils.rng import as_rng
from repro.utils.validation import check_labels, check_matrix, check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.health import HealthMonitor

__all__ = ["HorizontalKernelSVM", "HorizontalKernelWorker", "sample_landmarks"]


def sample_landmarks(
    n_landmarks: int,
    n_features: int,
    *,
    scale: float = 1.0,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Sample a public landmark matrix ``X_g`` (the paper's random choice).

    Standard-normal landmarks (times ``scale``) make ``K(X_g, X_g)``
    nonsingular with probability 1 for the usual kernels, which is the
    paper's stated requirement for convergence (Lemma 4.2 discussion).
    Being data-independent, they can be broadcast without privacy loss.
    """
    if n_landmarks < 1:
        raise ValueError(f"n_landmarks must be >= 1, got {n_landmarks}")
    rng = as_rng(seed)
    return scale * rng.standard_normal((n_landmarks, n_features))


class HorizontalKernelWorker:
    """One learner's Map() computation for the kernel horizontal scheme.

    Parameters
    ----------
    X, y:
        Private local rows and labels.
    landmarks:
        The shared public landmark matrix ``X_g`` (``l x k``).
    kernel:
        Shared kernel function.
    C, rho, n_learners:
        As in the linear scheme.
    """

    def __init__(
        self,
        X: np.ndarray,
        y: np.ndarray,
        landmarks: np.ndarray,
        *,
        kernel: Kernel,
        C: float = 50.0,
        rho: float = 100.0,
        n_learners: int,
        qp_tol: float = 1e-8,
        qp_max_sweeps: int = 500,
    ) -> None:
        self.X = check_matrix(X, "X")
        self.y = check_labels(y, "y", length=self.X.shape[0])
        self.landmarks = check_matrix(landmarks, "landmarks")
        if self.landmarks.shape[1] != self.X.shape[1]:
            raise ValueError("landmarks must share the data's feature dimension")
        self.kernel = kernel
        self.C = check_positive(C, "C")
        self.rho = check_positive(rho, "rho")
        self.n_learners = int(n_learners)
        self.qp_tol = qp_tol
        self.qp_max_sweeps = qp_max_sweeps

        n = self.X.shape[0]
        n_land = self.landmarks.shape[0]
        M, rho_ = float(self.n_learners), self.rho

        k_mm = kernel.gram(self.X)
        k_mg = kernel(self.X, self.landmarks)
        k_gg = kernel.gram(self.landmarks)
        kg_mat = np.eye(n_land) + M * rho_ * k_gg
        # Cholesky of the (symmetric positive definite) reduced matrix.
        self._kg_factor = sla.cho_factor(kg_mat)
        kg_inv_kgm = sla.cho_solve(self._kg_factor, k_mg.T)  # K_g^{-1} K_gm, (l, n)
        kg_inv_kgg = sla.cho_solve(self._kg_factor, k_gg)  # K_g^{-1} K_gg, (l, l)

        phi_s_phi = M * (k_mm - M * rho_ * k_mg @ kg_inv_kgm)
        self._phi_s_g = M * (k_mg - M * rho_ * k_mg @ kg_inv_kgg)  # (n, l)
        self._g_s_g = M * (k_gg - M * rho_ * k_gg @ kg_inv_kgg)  # (l, l)
        self._kg_inv_kgm = kg_inv_kgm
        self._kg_inv_kgg = kg_inv_kgg
        self._H = (np.outer(self.y, self.y)) * phi_s_phi + np.outer(self.y, self.y) / rho_

        self._lambda = np.zeros(n)
        self.gw = np.zeros(n_land)  # G w_m, the consensus image
        self.b = 0.0
        self.r = np.zeros(n_land)  # scaled dual for G w_m = z
        self.beta = 0.0
        self._u = np.zeros(n_land)
        self._started = False

    @property
    def n_landmarks(self) -> int:
        return self.landmarks.shape[0]

    def step(self, z: np.ndarray, s: float) -> dict[str, np.ndarray]:
        """One ADMM local iteration against the reduced consensus ``(z, s)``."""
        z = np.asarray(z, dtype=float).ravel()
        if z.shape[0] != self.n_landmarks:
            raise ValueError(f"z has length {z.shape[0]}, expected {self.n_landmarks}")
        s = float(s)

        if self._started:
            self.r = self.r + self.gw - z
            self.beta = self.beta + self.b - s
        self._started = True

        u = z - self.r
        t = s - self.beta
        self._u = u
        d = self.rho * (self.y * (self._phi_s_g @ u)) + t * self.y - 1.0
        result = solve_box_qp(
            self._H,
            d,
            0.0,
            self.C,
            x0=self._lambda,
            tol=self.qp_tol,
            max_sweeps=self.qp_max_sweeps,
        )
        self._lambda = result.x

        ylam = self.y * self._lambda
        self.gw = self._phi_s_g.T @ ylam + self.rho * (self._g_s_g @ u)
        self.b = t + float(np.sum(ylam)) / self.rho
        return {
            "z_contrib": self.gw + self.r,
            "s_contrib": np.array([self.b + self.beta]),
        }

    def representer_coefficients(self) -> tuple[np.ndarray, np.ndarray, float]:
        """The Lemma-4.4 coefficients ``(a, c, b)`` of the local model."""
        M, rho_ = float(self.n_learners), self.rho
        ylam = self.y * self._lambda
        a = M * ylam
        c = (
            M * rho_ * self._u
            - (M * M * rho_) * (self._kg_inv_kgm @ ylam)
            - (M * M * rho_ * rho_) * (self._kg_inv_kgg @ self._u)
        )
        return a, c, self.b

    def local_decision_function(self, X: np.ndarray) -> np.ndarray:
        """Scores ``f(x) = K(x,X_m) a + K(x,X_g) c + b`` (local model)."""
        X = check_matrix(X, "X")
        a, c, b = self.representer_coefficients()
        return self.kernel(X, self.X) @ a + self.kernel(X, self.landmarks) @ c + b


class HorizontalKernelSVM:
    """In-process trainer for the kernel horizontal scheme.

    Parameters
    ----------
    kernel:
        Shared kernel (defaults to RBF, the paper's main nonlinear case).
    C, rho:
        Paper Section VI defaults.
    n_landmarks:
        Size ``l`` of the reduced consensus space (the paper's
        communication/accuracy trade-off; see the landmark ablation
        benchmark).
    landmark_scale:
        Scale of the random landmark cloud.
    eval_learner:
        Which learner's local model scores the eval set each iteration
        (the paper plots learner 1, i.e. index 0).
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        C: float = 50.0,
        rho: float = 100.0,
        *,
        n_landmarks: int = 20,
        landmark_scale: float = 1.0,
        landmarks: np.ndarray | None = None,
        max_iter: int = 100,
        tol: float | None = None,
        eval_learner: int = 0,
        seed: int | np.random.Generator | None = 0,
        qp_tol: float = 1e-8,
        qp_max_sweeps: int = 500,
    ) -> None:
        self.kernel = kernel if kernel is not None else RBFKernel(gamma=0.5)
        self.C = check_positive(C, "C")
        self.rho = check_positive(rho, "rho")
        self.n_landmarks = int(n_landmarks)
        self.landmark_scale = check_positive(landmark_scale, "landmark_scale")
        self._given_landmarks = landmarks
        self.max_iter = int(max_iter)
        self.tol = tol
        self.eval_learner = int(eval_learner)
        self.seed = seed
        self.qp_tol = qp_tol
        self.qp_max_sweeps = qp_max_sweeps
        self.workers_: list[HorizontalKernelWorker] = []
        self.landmarks_: np.ndarray | None = None
        self.consensus_: np.ndarray | None = None
        self.consensus_bias_: float = 0.0
        self.history_ = TrainingHistory()

    def fit(
        self,
        partitions: list[Dataset],
        *,
        eval_set: Dataset | None = None,
        health_monitor: "HealthMonitor | None" = None,
    ) -> "HorizontalKernelSVM":
        """Train from per-learner datasets; see :class:`HorizontalLinearSVM`."""
        if len(partitions) < 2:
            raise ValueError("need at least 2 partitions")
        n_features = partitions[0].n_features
        if any(p.n_features != n_features for p in partitions):
            raise ValueError("all partitions must share the feature dimension")

        if self._given_landmarks is not None:
            landmarks = check_matrix(self._given_landmarks, "landmarks")
        else:
            landmarks = sample_landmarks(
                self.n_landmarks, n_features, scale=self.landmark_scale, seed=self.seed
            )
        self.landmarks_ = landmarks

        n_learners = len(partitions)
        self.workers_ = [
            HorizontalKernelWorker(
                p.X,
                p.y,
                landmarks,
                kernel=self.kernel,
                C=self.C,
                rho=self.rho,
                n_learners=n_learners,
                qp_tol=self.qp_tol,
                qp_max_sweeps=self.qp_max_sweeps,
            )
            for p in partitions
        ]
        if not 0 <= self.eval_learner < n_learners:
            raise ValueError(f"eval_learner {self.eval_learner} out of range")

        z = np.zeros(landmarks.shape[0])
        s = 0.0
        self.history_ = TrainingHistory()

        for iteration in range(self.max_iter):
            z_sum = np.zeros_like(z)
            b_sum = 0.0
            for worker in self.workers_:
                out = worker.step(z, s)
                z_sum += out["z_contrib"]
                b_sum += float(out["s_contrib"][0])
            z_new = z_sum / n_learners
            s_new = b_sum / n_learners

            z_change = float(np.sum((z_new - z) ** 2) + (s_new - s) ** 2)
            mean_gw = np.mean([worker.gw for worker in self.workers_], axis=0)
            primal = float(np.linalg.norm(mean_gw - z_new))
            z, s = z_new, s_new

            acc = float("nan")
            if eval_set is not None:
                scores = self.workers_[self.eval_learner].local_decision_function(eval_set.X)
                preds = np.where(scores >= 0, 1.0, -1.0)
                acc = accuracy(eval_set.y, preds)
            self.history_.append(
                IterationRecord(
                    iteration=iteration,
                    z_change_sq=z_change,
                    primal_residual=primal,
                    accuracy=acc,
                )
            )
            if health_monitor is not None:
                health_monitor.observe(
                    iteration,
                    z_change_sq=z_change,
                    primal_residual=primal,
                    residual_available=True,
                )
            if self.tol is not None and z_change <= self.tol:
                break

        self.consensus_ = z
        self.consensus_bias_ = s
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Scores under the ``eval_learner``'s local model.

        The consensus lives in the reduced landmark space; actual
        classification is always done by a learner's representer model
        (the paper evaluates at learner 1).
        """
        if not self.workers_:
            raise RuntimeError("model must be fit before use")
        return self.workers_[self.eval_learner].local_decision_function(X)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted -1/+1 labels."""
        return np.where(self.decision_function(X) >= 0, 1.0, -1.0)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on ``(X, y)``."""
        return accuracy(check_labels(y, "y"), self.predict(X))
