"""Mapper/Reducer adapters binding the ADMM workers to the Twister driver.

The in-process trainers in this package hold the numerical logic; this
module wraps the *same worker classes* as
:class:`~repro.cluster.twister.IterativeMapper` /
:class:`~repro.cluster.twister.IterativeReducer` implementations so the
identical mathematics runs on the simulated cluster — with raw data
pinned to its node by HDFS and local results leaving only through the
aggregator (the secure summation protocol, in the paper's
configuration).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.cluster.twister import (
    IterativeMapper,
    IterativeReducer,
    MapperContext,
    ReducerContext,
)
from repro.core.horizontal_kernel import HorizontalKernelWorker
from repro.core.horizontal_linear import HorizontalLinearWorker
from repro.core.results import IterationRecord, TrainingHistory
from repro.core.vertical_kernel import VerticalKernelWorker
from repro.core.vertical_linear import VerticalConsensusReducer, VerticalLinearWorker
from repro.svm.kernels import Kernel

__all__ = [
    "HorizontalConsensusReducer",
    "HorizontalSVMMapper",
    "VerticalReducerAdapter",
    "VerticalSVMMapper",
]


class HorizontalSVMMapper(IterativeMapper):
    """Map() task for the horizontal schemes (linear or kernel).

    The HDFS partition payload is a dict with the learner's private
    ``X``/``y`` plus the shared hyperparameters; ``configure`` builds the
    appropriate worker, ``map`` delegates one ADMM local step to it.
    """

    def __init__(self) -> None:
        self.worker: HorizontalLinearWorker | HorizontalKernelWorker | None = None

    def configure(self, partition: dict[str, Any], context: MapperContext) -> None:
        """Build the linear or kernel worker from the HDFS payload."""
        kernel: Kernel | None = partition.get("kernel")
        common = dict(
            C=partition["C"],
            rho=partition["rho"],
            n_learners=partition["n_learners"],
            qp_tol=partition.get("qp_tol", 1e-8),
            qp_max_sweeps=partition.get("qp_max_sweeps", 500),
        )
        if kernel is None:
            self.worker = HorizontalLinearWorker(partition["X"], partition["y"], **common)
        else:
            self.worker = HorizontalKernelWorker(
                partition["X"],
                partition["y"],
                partition["landmarks"],
                kernel=kernel,
                **common,
            )

    def map(self, broadcast: Any, context: MapperContext) -> dict[str, np.ndarray]:
        """One ADMM local step against the broadcast consensus ``(z, s)``.

        Emits an ``admm.local_step`` span tagged with the mapper's node
        and iteration.
        """
        if self.worker is None:
            raise RuntimeError("mapper was never configured")
        with context.network.tracer.span(
            "admm.local_step",
            kind="trainer",
            node=context.node_id,
            iteration=context.iteration,
        ):
            return self.worker.step(broadcast["z"], broadcast["s"])


class HorizontalConsensusReducer(IterativeReducer):
    """Reduce() task for the horizontal schemes: average and re-broadcast.

    Receives only the *sums* of the consensus contributions (``w_m +
    gamma_m`` / ``G w_m + r_m`` and ``b_m + beta_m``)
    (the secure summation output), divides by M, and records the
    ``||z^{t+1}-z^t||^2`` series (Fig. 4(a)/(b)).
    """

    def __init__(self, n_consensus: int, *, tol: float | None = None) -> None:
        if n_consensus < 1:
            raise ValueError(f"n_consensus must be >= 1, got {n_consensus}")
        self.n_consensus = int(n_consensus)
        self.tol = tol
        self.z = np.zeros(n_consensus)
        self.s = 0.0
        self.history = TrainingHistory()

    def initial_state(self) -> dict[str, Any]:
        """Zero consensus before the first iteration."""
        return {"z": self.z, "s": self.s}

    def reduce(
        self, sums: dict[str, np.ndarray], n_mappers: int, context: ReducerContext
    ) -> tuple[dict[str, Any], bool]:
        """Average the securely-summed contributions into the new consensus.

        Emits an ``admm.consensus_step`` span and an
        ``admm.convergence_check`` span carrying ``z_change_sq`` and the
        convergence verdict as attributes.
        """
        tracer = context.network.tracer
        with tracer.span(
            "admm.consensus_step", kind="trainer", node=context.node_id
        ):
            z_new = np.asarray(sums["z_contrib"], dtype=float).ravel() / n_mappers
            s_new = float(np.asarray(sums["s_contrib"]).ravel()[0]) / n_mappers
        with tracer.span(
            "admm.convergence_check", kind="trainer", node=context.node_id
        ) as check:
            z_change = float(np.sum((z_new - self.z) ** 2) + (s_new - self.s) ** 2)
            converged = self.tol is not None and z_change <= self.tol
            check.attrs.update(z_change_sq=z_change, tol=self.tol, converged=converged)
        self.z, self.s = z_new, s_new
        # The secure path delivers only the sums w_m + gamma_m, so the
        # Reducer cannot isolate mean(w_m) to measure the residual.
        self.history.append(
            IterationRecord(
                iteration=context.iteration,
                z_change_sq=z_change,
                primal_residual=float("nan"),
                residual_available=False,
            )
        )
        return {"z": self.z, "s": self.s}, converged


class VerticalSVMMapper(IterativeMapper):
    """Map() task for the vertical schemes (linear or kernel)."""

    def __init__(self) -> None:
        self.worker: VerticalLinearWorker | VerticalKernelWorker | None = None

    def configure(self, partition: dict[str, Any], context: MapperContext) -> None:
        """Build the linear or kernel column-block worker."""
        kernel: Kernel | None = partition.get("kernel")
        if kernel is None:
            self.worker = VerticalLinearWorker(partition["X"], rho=partition["rho"])
        else:
            self.worker = VerticalKernelWorker(
                partition["X"], kernel=kernel, rho=partition["rho"]
            )

    def map(self, broadcast: Any, context: MapperContext) -> dict[str, np.ndarray]:
        """One ridge update against the broadcast correction vector.

        Emits an ``admm.local_step`` span tagged with the mapper's node
        and iteration.
        """
        if self.worker is None:
            raise RuntimeError("mapper was never configured")
        with context.network.tracer.span(
            "admm.local_step",
            kind="trainer",
            node=context.node_id,
            iteration=context.iteration,
        ):
            return self.worker.step(broadcast["correction"])


class VerticalReducerAdapter(IterativeReducer):
    """Reduce() task for the vertical schemes.

    Wraps :class:`~repro.core.vertical_linear.VerticalConsensusReducer`
    (the hinge proximal / knapsack logic) behind the Twister interface.
    The labels are Reducer-side state — the paper's assumption that
    labels are shared among all learners.
    """

    def __init__(
        self,
        y: np.ndarray,
        *,
        C: float,
        rho: float,
        n_learners: int,
        tol: float | None = None,
    ) -> None:
        self.logic = VerticalConsensusReducer(y, C=C, rho=rho, n_learners=n_learners)
        self.tol = tol
        self.history = TrainingHistory()

    def initial_state(self) -> dict[str, Any]:
        """Zero correction before the first iteration."""
        return {"correction": np.zeros(self.logic.y.shape[0]), "bias": 0.0}

    def reduce(
        self, sums: dict[str, np.ndarray], n_mappers: int, context: ReducerContext
    ) -> tuple[dict[str, Any], bool]:
        """Run the hinge-proximal/knapsack consensus step on the share sum.

        Emits an ``admm.consensus_step`` span and an
        ``admm.convergence_check`` span carrying ``z_change_sq`` and the
        primal residual as attributes.
        """
        tracer = context.network.tracer
        with tracer.span(
            "admm.consensus_step", kind="trainer", node=context.node_id
        ):
            correction, z_change, primal = self.logic.step(
                np.asarray(sums["share"], dtype=float)
            )
        with tracer.span(
            "admm.convergence_check", kind="trainer", node=context.node_id
        ) as check:
            converged = self.tol is not None and z_change <= self.tol
            check.attrs.update(
                z_change_sq=z_change,
                primal_residual=primal,
                tol=self.tol,
                converged=converged,
            )
        self.history.append(
            IterationRecord(
                iteration=context.iteration,
                z_change_sq=z_change,
                primal_residual=primal,
            )
        )
        return {"correction": correction, "bias": self.logic.bias}, converged
