"""Consensus logistic regression — the framework beyond SVMs.

The paper presents its scheme as a general recipe ("we will use data
mining as the typical machine learning problems to articulate our
proposed algorithms whenever needed"): any learner whose objective is a
sum of per-sample losses plus a regularizer decomposes the same way —
local training as Map(), secure averaging as Reduce().  This module
instantiates the recipe for L2-regularized **logistic regression** over
horizontally partitioned data, demonstrating that the substrate
(Twister driver + secure summation + the same consensus reducer) is
model-agnostic:

    min_{w,b}  sum_i log(1 + exp(-y_i (x_i'w + b)))  +  (lam/2)||w||^2

Consensus ADMM: each learner m holds ``(w_m, b_m)`` with ``w_m = z``,
``b_m = s``.  The local subproblem

    min_{w,b}  L_m(w, b) + (rho/2)||w - (z - gamma_m)||^2
                         + (rho/2)(b - (s - beta_m))^2

is smooth and strongly convex — solved by damped Newton (the Hessian is
(k+1)x(k+1), tiny).  The z-update carries the regularizer:

    z = rho * sum_m (w_m + gamma_m) / (lam + M rho),

again a function of *sums only*, so the secure summation protocol
applies unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.results import IterationRecord, TrainingHistory
from repro.data.dataset import Dataset
from repro.svm.model import accuracy
from repro.utils.validation import check_labels, check_matrix, check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.health import HealthMonitor

__all__ = ["HorizontalLogisticRegression", "LogisticWorker"]


class LogisticWorker:
    """One learner's Map() computation for consensus logistic regression.

    Parameters
    ----------
    X, y:
        Private rows and labels.
    rho:
        ADMM penalty.
    newton_tol, newton_max_iter:
        Inner Newton solver controls.
    """

    def __init__(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        rho: float = 10.0,
        newton_tol: float = 1e-10,
        newton_max_iter: int = 50,
    ) -> None:
        self.X = check_matrix(X, "X")
        self.y = check_labels(y, "y", length=self.X.shape[0])
        self.rho = check_positive(rho, "rho")
        self.newton_tol = newton_tol
        self.newton_max_iter = int(newton_max_iter)
        k = self.X.shape[1]
        self.w = np.zeros(k)
        self.b = 0.0
        self.gamma = np.zeros(k)
        self.beta = 0.0
        self._started = False

    def _solve_local(self, u: np.ndarray, t: float) -> None:
        """Damped Newton on the penalized local objective."""
        X, y, rho = self.X, self.y, self.rho
        k = X.shape[1]
        theta = np.concatenate([self.w, [self.b]])  # warm start
        target = np.concatenate([u, [t]])
        Xa = np.hstack([X, np.ones((X.shape[0], 1))])

        def grad_hess(th: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            margins = y * (Xa @ th)
            sigma = 1.0 / (1.0 + np.exp(np.clip(margins, -500, 500)))
            grad = -(Xa.T @ (y * sigma)) + rho * (th - target)
            weight = sigma * (1.0 - sigma)
            hess = (Xa * weight[:, None]).T @ Xa + rho * np.eye(k + 1)
            return grad, hess

        for _ in range(self.newton_max_iter):
            grad, hess = grad_hess(theta)
            if np.linalg.norm(grad) <= self.newton_tol:
                break
            step = np.linalg.solve(hess, grad)
            # Damping: halve until the objective decreases (the penalized
            # objective is strongly convex, so full steps almost always work).
            def objective(th: np.ndarray) -> float:
                margins = y * (Xa @ th)
                return float(
                    np.logaddexp(0.0, -margins).sum()
                    + 0.5 * rho * float((th - target) @ (th - target))
                )

            base = objective(theta)
            scale = 1.0
            while scale > 1e-8 and objective(theta - scale * step) > base:
                scale *= 0.5
            theta = theta - scale * step

        self.w = theta[:k]
        self.b = float(theta[k])

    def step(self, z: np.ndarray, s: float) -> dict[str, np.ndarray]:
        """One ADMM local iteration; returns the consensus summands."""
        z = np.asarray(z, dtype=float).ravel()
        if z.shape[0] != self.w.shape[0]:
            raise ValueError(f"z has length {z.shape[0]}, expected {self.w.shape[0]}")
        s = float(s)
        if self._started:
            self.gamma = self.gamma + self.w - z
            self.beta = self.beta + self.b - s
        self._started = True
        self._solve_local(z - self.gamma, s - self.beta)
        return {
            "z_contrib": self.w + self.gamma,
            "s_contrib": np.array([self.b + self.beta]),
        }


class HorizontalLogisticRegression:
    """Privacy-preserving consensus logistic regression (in-process).

    The same orchestration as
    :class:`~repro.core.horizontal_linear.HorizontalLinearSVM`, with
    logistic workers and a regularized z-update.

    Parameters
    ----------
    lam:
        Global L2 regularization strength (applied at the Reducer's
        z-update — the learners never need to know it).
    rho:
        ADMM penalty.
    max_iter, tol:
        Outer-iteration controls.
    """

    def __init__(
        self,
        lam: float = 1.0,
        rho: float = 10.0,
        *,
        max_iter: int = 50,
        tol: float | None = None,
    ) -> None:
        self.lam = check_positive(lam, "lam")
        self.rho = check_positive(rho, "rho")
        self.max_iter = int(max_iter)
        self.tol = tol
        self.workers_: list[LogisticWorker] = []
        self.consensus_weights_: np.ndarray | None = None
        self.consensus_bias_: float = 0.0
        self.history_ = TrainingHistory()

    def fit(
        self,
        partitions: list[Dataset],
        *,
        eval_set: Dataset | None = None,
        health_monitor: "HealthMonitor | None" = None,
    ) -> "HorizontalLogisticRegression":
        """Train from per-learner datasets."""
        if len(partitions) < 2:
            raise ValueError("need at least 2 partitions")
        n_features = partitions[0].n_features
        if any(p.n_features != n_features for p in partitions):
            raise ValueError("all partitions must share the feature dimension")
        n_learners = len(partitions)
        self.workers_ = [LogisticWorker(p.X, p.y, rho=self.rho) for p in partitions]

        z = np.zeros(n_features)
        s = 0.0
        self.history_ = TrainingHistory()
        for iteration in range(self.max_iter):
            w_sum = np.zeros(n_features)
            b_sum = 0.0
            for worker in self.workers_:
                out = worker.step(z, s)
                w_sum += out["z_contrib"]
                b_sum += float(out["s_contrib"][0])
            # Regularized averaging: the z-update of the consensus problem
            # with (lam/2)||z||^2 at the coordinator.
            z_new = self.rho * w_sum / (self.lam + n_learners * self.rho)
            s_new = b_sum / n_learners  # bias unregularized

            z_change = float(np.sum((z_new - z) ** 2) + (s_new - s) ** 2)
            mean_w = np.mean([worker.w for worker in self.workers_], axis=0)
            primal = float(np.linalg.norm(mean_w - z_new))
            z, s = z_new, s_new

            acc = float("nan")
            if eval_set is not None:
                preds = np.where(eval_set.X @ z + s >= 0, 1.0, -1.0)
                acc = accuracy(eval_set.y, preds)
            self.history_.append(
                IterationRecord(
                    iteration=iteration,
                    z_change_sq=z_change,
                    primal_residual=primal,
                    accuracy=acc,
                )
            )
            if health_monitor is not None:
                health_monitor.observe(
                    iteration,
                    z_change_sq=z_change,
                    primal_residual=primal,
                    residual_available=True,
                )
            if self.tol is not None and z_change <= self.tol:
                break

        self.consensus_weights_ = z
        self.consensus_bias_ = s
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Consensus log-odds scores."""
        if self.consensus_weights_ is None:
            raise RuntimeError("model must be fit before use")
        X = check_matrix(X, "X")
        return X @ self.consensus_weights_ + self.consensus_bias_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """P(y = +1 | x) under the consensus model."""
        scores = self.decision_function(X)
        return 1.0 / (1.0 + np.exp(-np.clip(scores, -500, 500)))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted -1/+1 labels."""
        return np.where(self.decision_function(X) >= 0, 1.0, -1.0)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on ``(X, y)``."""
        return accuracy(check_labels(y, "y"), self.predict(X))
