"""The paper's primary contribution: privacy-preserving consensus SVMs.

Four algorithm variants (Section IV), each available two ways:

* an **in-process trainer** (:class:`HorizontalLinearSVM`,
  :class:`HorizontalKernelSVM`, :class:`VerticalLinearSVM`,
  :class:`VerticalKernelSVM`) that runs the pure ADMM mathematics —
  used by unit tests, ablations, and the Fig. 4 accuracy series;
* the **full system** (:class:`PrivacyPreservingSVM`) that executes the
  same worker code on the simulated Hadoop/Twister cluster with the
  coalition-resistant secure summation protocol at the Reducer.
"""

from repro.core.feature_selection import (
    SecureFeatureSelection,
    correlation_scores,
    secure_feature_selection,
    vertical_feature_selection,
)
from repro.core.horizontal_kernel import (
    HorizontalKernelSVM,
    HorizontalKernelWorker,
    sample_landmarks,
)
from repro.core.horizontal_linear import HorizontalLinearSVM, HorizontalLinearWorker
from repro.core.horizontal_logistic import HorizontalLogisticRegression, LogisticWorker
from repro.core.partitioning import (
    VerticalPartition,
    horizontal_partition,
    vertical_partition,
)
from repro.core.results import IterationRecord, TrainingHistory
from repro.core.trainer import PrivacyPreservingSVM
from repro.core.vertical_kernel import VerticalKernelSVM, VerticalKernelWorker
from repro.core.vertical_linear import (
    VerticalConsensusReducer,
    VerticalLinearSVM,
    VerticalLinearWorker,
)

__all__ = [
    "HorizontalKernelSVM",
    "SecureFeatureSelection",
    "correlation_scores",
    "secure_feature_selection",
    "vertical_feature_selection",
    "HorizontalKernelWorker",
    "HorizontalLinearSVM",
    "HorizontalLinearWorker",
    "HorizontalLogisticRegression",
    "IterationRecord",
    "LogisticWorker",
    "PrivacyPreservingSVM",
    "TrainingHistory",
    "VerticalConsensusReducer",
    "VerticalKernelSVM",
    "VerticalKernelWorker",
    "VerticalLinearSVM",
    "VerticalLinearWorker",
    "VerticalPartition",
    "horizontal_partition",
    "sample_landmarks",
    "vertical_partition",
]
