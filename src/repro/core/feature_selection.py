"""Privacy-preserving distributed feature selection (paper future work).

Section VI observes that redundant features cause "sudden jumps" in the
vertical consensus curves and that removing them would require feature
selection — "however, feature selection is also a centralized operation.
We may need to design another totally different protocol to achieve
distributed feature selection."  This module designs exactly that
protocol for the horizontally partitioned setting:

1. each learner computes, over its private rows, the **sufficient
   statistics** of the per-feature Pearson correlation with the label:
   ``n_m``, ``sum x``, ``sum x^2``, ``sum y``, ``sum y^2``, ``sum x y``
   (per feature — all simple sums);
2. the statistics are aggregated with the same **coalition-resistant
   secure summation protocol** the training loop uses, so the Reducer
   learns only *global* sums — strictly less information than the
   trained model itself reveals;
3. the Reducer forms the global correlation scores and broadcasts the
   indices of the top-k features; every learner projects its local data.

Because correlation is a function of global sums, the distributed
selection is *exactly* the centralized one (up to fixed-point rounding)
— verified by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.network import Network
from repro.core.partitioning import VerticalPartition
from repro.crypto.fixed_point import FixedPointCodec
from repro.crypto.secure_sum import SecureSummationProtocol
from repro.data.dataset import Dataset
from repro.utils.validation import check_labels, check_matrix

__all__ = [
    "SecureFeatureSelection",
    "correlation_scores",
    "secure_feature_selection",
    "vertical_feature_selection",
]


def correlation_scores(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """|Pearson correlation| of each feature with the label (centralized).

    Constant features score 0.  This is the reference the secure
    protocol must match.
    """
    X = check_matrix(X, "X")
    y = check_labels(y, "y", length=X.shape[0])
    n = X.shape[0]
    sx = X.sum(axis=0)
    sxx = (X * X).sum(axis=0)
    sy = y.sum()
    syy = float(y @ y)
    sxy = X.T @ y
    return _scores_from_sums(float(n), sx, sxx, float(sy), syy, sxy)


def _scores_from_sums(
    n: float,
    sx: np.ndarray,
    sxx: np.ndarray,
    sy: float,
    syy: float,
    sxy: np.ndarray,
) -> np.ndarray:
    cov = sxy - sx * sy / n
    var_x = sxx - sx * sx / n
    var_y = syy - sy * sy / n
    denom = np.sqrt(np.maximum(var_x, 0.0) * max(var_y, 0.0))
    scores = np.zeros_like(cov)
    nonzero = denom > 1e-12
    scores[nonzero] = np.abs(cov[nonzero] / denom[nonzero])
    return scores


@dataclass(frozen=True)
class SecureFeatureSelection:
    """Result of a secure feature-selection round.

    Attributes
    ----------
    selected:
        Sorted indices of the chosen features.
    scores:
        Global correlation scores the Reducer computed (these are the
        only values the protocol reveals beyond the selection itself).
    """

    selected: np.ndarray
    scores: np.ndarray

    def project(self, partitions: list[Dataset]) -> list[Dataset]:
        """Each learner's data restricted to the selected features."""
        return [p.feature_subset(self.selected) for p in partitions]


def secure_feature_selection(
    partitions: list[Dataset],
    n_features: int,
    *,
    network: Network | None = None,
    codec: FixedPointCodec | None = None,
    seed: int | np.random.Generator | None = 0,
) -> SecureFeatureSelection:
    """Run the secure top-k feature-selection protocol.

    Parameters
    ----------
    partitions:
        The learners' private horizontal shares (consistent columns).
    n_features:
        How many features to keep (k).
    network:
        Simulated fabric; a private one is created if omitted (pass the
        training network to account the protocol's traffic with it).
    codec:
        Fixed-point codec for the summation; sized automatically.
    """
    if len(partitions) < 2:
        raise ValueError("need at least 2 learners")
    total_features = partitions[0].n_features
    if any(p.n_features != total_features for p in partitions):
        raise ValueError("all partitions must share the feature dimension")
    if not 1 <= n_features <= total_features:
        raise ValueError(
            f"n_features must be in [1, {total_features}], got {n_features}"
        )

    if network is None:
        network = Network()
    if codec is None:
        # Sums of squares over n samples of standardized data stay small,
        # but allow generous headroom.
        codec = FixedPointCodec(fractional_bits=40, modulus_bits=192,
                                max_terms=max(len(partitions), 2))
    participants = [f"fs-learner-{i}" for i in range(len(partitions))]
    protocol = SecureSummationProtocol(
        network, participants, "fs-reducer", codec=codec, seed=seed
    )

    # Step 1: local sufficient statistics, flattened into one vector:
    # [n, sy, syy, sx (k), sxx (k), sxy (k)].
    local_stats: dict[str, np.ndarray] = {}
    for node, part in zip(participants, partitions):
        X, y = part.X, part.y
        stats = np.concatenate(
            [
                [float(X.shape[0]), float(y.sum()), float(y @ y)],
                X.sum(axis=0),
                (X * X).sum(axis=0),
                X.T @ y,
            ]
        )
        local_stats[node] = stats

    # Step 2: one secure summation round.
    totals = protocol.sum_vectors(local_stats)
    n = totals[0]
    sy, syy = totals[1], totals[2]
    sx = totals[3 : 3 + total_features]
    sxx = totals[3 + total_features : 3 + 2 * total_features]
    sxy = totals[3 + 2 * total_features :]

    # Step 3: global scores and top-k broadcast.
    scores = _scores_from_sums(n, sx, sxx, sy, syy, sxy)
    selected = np.sort(np.argsort(scores)[::-1][:n_features])
    network.broadcast(
        "fs-reducer", participants, selected.tolist(), kind="feature-selection"
    )
    for node in participants:
        network.receive(node, kind="feature-selection")
    network.metrics.increment("crypto.feature_selection_rounds", 1)
    return SecureFeatureSelection(selected=selected, scores=scores)


def vertical_feature_selection(
    partition: VerticalPartition,
    n_features: int,
    *,
    network: Network | None = None,
) -> SecureFeatureSelection:
    """Feature selection for the *vertically* partitioned setting.

    This is the case the paper's Section VI actually motivates: redundant
    features at one learner cause "sudden jumps" in the vertical
    consensus curves.  Vertically, each learner already holds entire
    columns plus the shared labels, so it can compute its own columns'
    correlation scores *locally* — no cryptography needed; the learners
    send only the scores (one float per owned column, an aggregate
    statistic) to the Reducer, which broadcasts the global top-k.

    Returns global column indices; use
    ``VerticalPartition.split_features`` semantics downstream via
    :meth:`SecureFeatureSelection.project` analog below.

    Parameters
    ----------
    partition:
        A :class:`~repro.core.partitioning.VerticalPartition`.
    n_features:
        Global number of columns to keep.
    network:
        Optional fabric for accounting the score traffic.
    """
    from repro.core.partitioning import VerticalPartition

    if not isinstance(partition, VerticalPartition):
        raise TypeError("vertical_feature_selection expects a VerticalPartition")
    total = sum(f.size for f in partition.features)
    if not 1 <= n_features <= total:
        raise ValueError(f"n_features must be in [1, {total}], got {n_features}")

    if network is None:
        network = Network()
    participants = [f"vfs-learner-{i}" for i in range(partition.n_learners)]
    network.register("vfs-reducer")
    scores = np.zeros(total)
    for node, features, block in zip(participants, partition.features, partition.blocks):
        network.register(node)
        local = correlation_scores(block, partition.y)
        # Per-feature correlation scores are 1 float per feature — an
        # aggregate statistic, not reconstructable samples.  The secure
        # variant (secure_vertical_feature_selection) masks even these.
        # repro-lint: disable=privacy.raw-data-to-network
        network.send(node, "vfs-reducer", local, kind="feature-scores")
        received = network.receive("vfs-reducer", kind="feature-scores")
        scores[features] = received
    selected = np.sort(np.argsort(scores)[::-1][:n_features])
    network.broadcast("vfs-reducer", participants, selected.tolist(), kind="feature-selection")
    for node in participants:
        network.receive(node, kind="feature-selection")
    return SecureFeatureSelection(selected=selected, scores=scores)
