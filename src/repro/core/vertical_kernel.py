"""Nonlinear (kernel) SVM over vertically partitioned data (Section IV-C).

The paper notes the vertical nonlinear case is "a straightforward
modification": the consensus vector ``z`` has fixed size N regardless of
the kernel, so only the Mapper's ridge subproblem changes.  With
``Phi_m = phi(X_m)`` the learner-m feature map *of its own columns*, the
update

    w_m := argmin (1/2)||w||_H^2 + (rho/2)||Phi_m w - p_m||^2

has, by the push-through identity (the paper's eq. (20) trick),

    alpha_m = (K_m + I/rho)^(-1) p_m,      a_m = Phi_m w_m = K_m alpha_m,

where ``K_m = K(X_m, X_m)`` is the Gram matrix on learner m's columns —
an ``N x N`` Cholesky factored once.  The Reducer step is *identical* to
the linear case (:class:`~repro.core.vertical_linear.VerticalConsensusReducer`).

Note the resulting joint model is an **additive kernel machine**
``f(x) = sum_m K_m(x_m, X_m) alpha_m + b``: each learner contributes a
kernel machine on its own feature block.  That is inherent to the
vertical decomposition — the cross-learner feature interactions live
only in the shared consensus vector, exactly as in the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np
import scipy.linalg as sla

from repro.core.partitioning import VerticalPartition
from repro.core.results import IterationRecord, TrainingHistory
from repro.core.vertical_linear import VerticalConsensusReducer
from repro.svm.kernels import Kernel, RBFKernel
from repro.svm.model import accuracy
from repro.utils.validation import check_labels, check_matrix, check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.health import HealthMonitor

__all__ = ["VerticalKernelSVM", "VerticalKernelWorker"]


class VerticalKernelWorker:
    """One learner's Map() computation for the kernel vertical scheme.

    Parameters
    ----------
    X:
        The learner's ``(N, k_m)`` column block (private).
    kernel:
        Kernel applied to this learner's feature subset.
    rho:
        ADMM penalty, shared.
    """

    def __init__(self, X: np.ndarray, *, kernel: Kernel, rho: float = 100.0) -> None:
        self.X = check_matrix(X, "X")
        self.kernel = kernel
        self.rho = check_positive(rho, "rho")
        n = self.X.shape[0]
        self._K = kernel.gram(self.X)
        self._factor = sla.cho_factor(self._K + np.eye(n) / self.rho)
        self.alpha = np.zeros(n)
        self.share = np.zeros(n)  # a_m = K_m alpha_m

    @property
    def n_samples(self) -> int:
        return self.X.shape[0]

    def step(self, correction: np.ndarray) -> dict[str, np.ndarray]:
        """One local kernel-ridge update; returns the new score share."""
        correction = np.asarray(correction, dtype=float).ravel()
        if correction.shape[0] != self.n_samples:
            raise ValueError(
                f"correction has length {correction.shape[0]}, expected {self.n_samples}"
            )
        target = self.share + correction
        self.alpha = sla.cho_solve(self._factor, target)
        self.share = self._K @ self.alpha
        return {"share": self.share}

    def score_share(self, X_test: np.ndarray) -> np.ndarray:
        """This learner's contribution ``K(x_m, X_m) alpha_m`` to test scores."""
        X_test = check_matrix(X_test, "X_test")
        if X_test.shape[1] != self.X.shape[1]:
            raise ValueError(
                f"X_test has {X_test.shape[1]} columns, expected {self.X.shape[1]}"
            )
        return self.kernel(X_test, self.X) @ self.alpha


class VerticalKernelSVM:
    """In-process trainer for the kernel vertical scheme.

    Identical orchestration to
    :class:`~repro.core.vertical_linear.VerticalLinearSVM`, with kernel
    workers.  The ``kernel`` is applied per-learner to that learner's
    feature block.
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        C: float = 50.0,
        rho: float = 100.0,
        *,
        max_iter: int = 100,
        tol: float | None = None,
    ) -> None:
        self.kernel = kernel if kernel is not None else RBFKernel(gamma=0.5)
        self.C = check_positive(C, "C")
        self.rho = check_positive(rho, "rho")
        self.max_iter = int(max_iter)
        self.tol = tol
        self.workers_: list[VerticalKernelWorker] = []
        self.reducer_: VerticalConsensusReducer | None = None
        self.partition_: VerticalPartition | None = None
        self.history_ = TrainingHistory()

    def fit(
        self,
        partition: VerticalPartition,
        *,
        eval_X=None,
        eval_y=None,
        health_monitor: "HealthMonitor | None" = None,
    ) -> "VerticalKernelSVM":
        """Train; ``eval_X/eval_y`` enable the Fig. 4(h) accuracy series."""
        self.partition_ = partition
        self.workers_ = [
            VerticalKernelWorker(block, kernel=self.kernel, rho=self.rho)
            for block in partition.blocks
        ]
        self.reducer_ = VerticalConsensusReducer(
            partition.y, C=self.C, rho=self.rho, n_learners=partition.n_learners
        )
        eval_blocks = None
        if eval_X is not None:
            eval_blocks = partition.split_features(check_matrix(eval_X, "eval_X"))
            eval_y = check_labels(eval_y, "eval_y", length=eval_blocks[0].shape[0])

        n = partition.n_samples
        correction = np.zeros(n)
        self.history_ = TrainingHistory()

        for iteration in range(self.max_iter):
            share_sum = np.zeros(n)
            for worker in self.workers_:
                share_sum += worker.step(correction)["share"]
            correction, z_change, primal = self.reducer_.step(share_sum)

            acc = float("nan")
            if eval_blocks is not None:
                scores = self._scores_from_blocks(eval_blocks)
                acc = accuracy(eval_y, np.where(scores >= 0, 1.0, -1.0))
            self.history_.append(
                IterationRecord(
                    iteration=iteration,
                    z_change_sq=z_change,
                    primal_residual=primal,
                    accuracy=acc,
                )
            )
            if health_monitor is not None:
                health_monitor.observe(
                    iteration,
                    z_change_sq=z_change,
                    primal_residual=primal,
                    residual_available=True,
                )
            if self.tol is not None and z_change <= self.tol:
                break
        return self

    def _scores_from_blocks(self, blocks: list[np.ndarray]) -> np.ndarray:
        scores = np.zeros(blocks[0].shape[0])
        for worker, block in zip(self.workers_, blocks):
            scores += worker.score_share(block)
        return scores + self.reducer_.bias

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Joint additive-kernel scores across all learners."""
        if self.partition_ is None or self.reducer_ is None:
            raise RuntimeError("model must be fit before use")
        blocks = self.partition_.split_features(check_matrix(X, "X"))
        return self._scores_from_blocks(blocks)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted -1/+1 labels."""
        return np.where(self.decision_function(X) >= 0, 1.0, -1.0)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on ``(X, y)``."""
        return accuracy(check_labels(y, "y"), self.predict(X))
