"""The full privacy-preserving training system (paper Fig. 1), end to end.

:class:`PrivacyPreservingSVM` assembles everything the paper describes:

* each learner becomes an **HDFS data node**; its partition is stored as
  a *private* block pinned to that node (data locality — raw data never
  moves, and the namenode refuses to move it);
* one long-lived **Mapper** per learner runs the ADMM local step
  (:mod:`repro.core.mapreduce_svm`), warm-starting its QP between
  iterations;
* the **Reducer** learns only the *sums* of the local results, delivered
  by the coalition-resistant **secure summation protocol** (Section V),
  and broadcasts the new consensus over the Twister feedback channel;
* iteration repeats until the consensus converges or the budget runs
  out.

The numerical trajectory is identical (up to fixed-point rounding, about
``2^-40`` per term) to the in-process trainers, because the same worker
classes execute the mathematics; what this class adds is the *system*:
placement, messaging, masking, and the accounting that backs the paper's
privacy and scalability claims.

Example
-------
>>> from repro.data import make_blobs, train_test_split
>>> from repro.core import PrivacyPreservingSVM, horizontal_partition
>>> train, test = train_test_split(make_blobs(200, seed=0), seed=0)
>>> parts = horizontal_partition(train, 4, seed=0)
>>> model = PrivacyPreservingSVM(max_iter=30, seed=0).fit(parts)
>>> model.score(test.X, test.y) > 0.9
True
>>> model.raw_data_bytes_moved()
0.0
"""

from __future__ import annotations

import json
import warnings
from typing import Any

import numpy as np

from repro.cluster.hdfs import SimulatedHdfs
from repro.cluster.network import Network
from repro.cluster.profiling import Profiler
from repro.cluster.tracing import cost_table
from repro.cluster.twister import (
    Aggregator,
    IterationResult,
    IterativeMapReduceDriver,
    PlaintextAggregator,
)
from repro.core.horizontal_kernel import sample_landmarks
from repro.core.mapreduce_svm import (
    HorizontalConsensusReducer,
    HorizontalSVMMapper,
    VerticalReducerAdapter,
    VerticalSVMMapper,
)
from repro.core.partitioning import VerticalPartition
from repro.core.results import TrainingHistory
from repro.crypto.fixed_point import FixedPointCodec
from repro.crypto.secure_sum import SecureSumAggregator
from repro.data.dataset import Dataset
from repro.obs.audit import ProtocolAuditLog
from repro.obs.health import HealthMonitor, HealthPolicyError
from repro.obs.ledger import (
    DEFAULT_LEDGER_DIR,
    RunLedger,
    RunRecord,
    dataset_fingerprint,
)
from repro.svm.kernels import Kernel
from repro.svm.model import accuracy
from repro.utils.validation import check_labels, check_matrix, check_positive

__all__ = ["PrivacyPreservingSVM"]

_TRAINING_FILE = "training-data"


class PrivacyPreservingSVM:
    """Privacy-preserving distributed SVM on the simulated cluster.

    Parameters
    ----------
    partitioning:
        ``"horizontal"`` or ``"vertical"`` — which of the paper's two
        schemes to run.  Must match the type passed to :meth:`fit`.
    kernel:
        ``None`` for the linear variants; a
        :class:`~repro.svm.kernels.Kernel` for the nonlinear ones.
    C, rho:
        Slack penalty and ADMM penalty (paper defaults 50 and 100).
    n_landmarks, landmark_scale:
        Reduced-consensus parameters for the horizontal kernel variant.
    max_iter, tol:
        Iteration budget and optional early-stop threshold on
        ``||z^{t+1} - z^t||^2``.
    secure:
        ``True`` (default) runs the paper's secure summation protocol;
        ``False`` installs the plaintext strawman aggregator — the
        benchmark harness uses this to price privacy.
    mask_mode:
        ``"fresh"`` (paper-faithful per-round mask exchange) or
        ``"prg"`` (pairwise-seed optimization); see
        :mod:`repro.crypto.secure_sum`.
    aggregator:
        Explicit :class:`~repro.cluster.twister.Aggregator` instance
        overriding ``secure``/``mask_mode`` — e.g. the dropout-robust
        :class:`~repro.crypto.threshold_sum.ThresholdSumAggregator`.
    fractional_bits:
        Fixed-point precision of the secure aggregation.
    eval_learner:
        Which learner's local model serves predictions for the
        horizontal kernel scheme (the paper reports learner 1 = index 0).
    seed:
        Seed for landmarks and mask randomness.
    n_map_workers:
        Thread count for the driver's map wave (see
        :class:`~repro.cluster.twister.IterativeMapReduceDriver`);
        any value yields bit-identical trajectories to sequential mode.
    on_health:
        Policy when a convergence-health detector fires during
        training: ``"warn"`` (default) issues a ``RuntimeWarning`` per
        signal, ``"raise"`` aborts with
        :class:`~repro.obs.health.HealthPolicyError`, ``"ignore"``
        records silently.  Signals are always recorded on
        ``health_monitor_`` and in the run record either way.
    health_monitor:
        Explicit :class:`~repro.obs.health.HealthMonitor` (e.g. with
        tuned detector windows); a default one is built per fit when
        omitted.
    """

    def __init__(
        self,
        partitioning: str = "horizontal",
        kernel: Kernel | None = None,
        C: float = 50.0,
        rho: float = 100.0,
        *,
        n_landmarks: int = 20,
        landmark_scale: float = 1.0,
        max_iter: int = 100,
        tol: float | None = None,
        secure: bool = True,
        mask_mode: str = "fresh",
        aggregator: Aggregator | None = None,
        fractional_bits: int = 40,
        eval_learner: int = 0,
        seed: int | np.random.Generator | None = 0,
        qp_tol: float = 1e-8,
        qp_max_sweeps: int = 500,
        n_map_workers: int = 1,
        on_health: str = "warn",
        health_monitor: HealthMonitor | None = None,
    ) -> None:
        if partitioning not in ("horizontal", "vertical"):
            raise ValueError(f"partitioning must be 'horizontal' or 'vertical', got {partitioning!r}")
        if on_health not in ("warn", "raise", "ignore"):
            raise ValueError(
                f"on_health must be 'warn', 'raise', or 'ignore', got {on_health!r}"
            )
        self.partitioning = partitioning
        self.kernel = kernel
        self.C = check_positive(C, "C")
        self.rho = check_positive(rho, "rho")
        self.n_landmarks = int(n_landmarks)
        self.landmark_scale = landmark_scale
        self.max_iter = int(max_iter)
        self.tol = tol
        self.secure = bool(secure)
        self.mask_mode = mask_mode
        self.aggregator_override = aggregator
        self.fractional_bits = int(fractional_bits)
        self.eval_learner = int(eval_learner)
        self.seed = seed
        self.qp_tol = qp_tol
        self.qp_max_sweeps = qp_max_sweeps
        if n_map_workers < 1:
            raise ValueError(f"n_map_workers must be >= 1, got {n_map_workers}")
        self.n_map_workers = int(n_map_workers)
        self.on_health = on_health
        self._health_monitor_override = health_monitor

        self.network_: Network | None = None
        self.profiler_: Profiler | None = None
        self.hdfs_: SimulatedHdfs | None = None
        self.driver_: IterativeMapReduceDriver | None = None
        self.history_: TrainingHistory = TrainingHistory()
        self.health_monitor_: HealthMonitor | None = None
        self.audit_log_: ProtocolAuditLog | None = None
        self.dataset_fingerprint_: dict[str, Any] | None = None
        self.landmarks_: np.ndarray | None = None
        self._reducer: HorizontalConsensusReducer | VerticalReducerAdapter | None = None
        self._partition: VerticalPartition | None = None
        self._n_learners = 0

    # -- training --------------------------------------------------------

    def fit(self, data: list[Dataset] | VerticalPartition) -> "PrivacyPreservingSVM":
        """Train on partitioned data matching the configured scheme."""
        if self.partitioning == "horizontal":
            if not isinstance(data, list):
                raise TypeError("horizontal training expects a list of Dataset partitions")
            payloads, reducer, n_consensus = self._prepare_horizontal(data)
            mapper_factory = HorizontalSVMMapper
        else:
            if not isinstance(data, VerticalPartition):
                raise TypeError("vertical training expects a VerticalPartition")
            payloads, reducer, n_consensus = self._prepare_vertical(data)
            mapper_factory = VerticalSVMMapper

        self._n_learners = len(payloads)
        self._reducer = reducer
        self.dataset_fingerprint_ = self._fingerprint(data)

        profiler = Profiler()
        network = Network(metrics=profiler)
        hdfs = SimulatedHdfs(network)
        learner_nodes = [f"learner-{m}" for m in range(self._n_learners)]
        for node in learner_nodes:
            hdfs.add_datanode(node)
        hdfs.put(_TRAINING_FILE, payloads, preferred_nodes=learner_nodes, private=True)

        audit = ProtocolAuditLog(metrics=profiler, tracer=profiler.tracer)
        health = self._health_monitor_override or HealthMonitor()
        health.metrics = profiler
        health.tracer = profiler.tracer
        aggregator = self._make_aggregator(audit)
        driver = IterativeMapReduceDriver(
            hdfs=hdfs,
            mapper_factory=mapper_factory,
            reducer=reducer,
            aggregator=aggregator,
            reducer_node="reducer",
            n_map_workers=self.n_map_workers,
            on_round=self._health_hook(reducer.history, health),
        )

        # Expose the run's observability handles before the driver loop
        # so an on_health="raise" abort still leaves the partial run
        # (history, trace, audit log) inspectable.
        self.network_ = network
        self.profiler_ = profiler
        self.hdfs_ = hdfs
        self.driver_ = driver
        self.history_ = reducer.history
        self.health_monitor_ = health
        self.audit_log_ = audit
        try:
            driver.run(_TRAINING_FILE, max_iterations=self.max_iter)
        finally:
            health.finalize()
        return self

    def _health_hook(self, history: TrainingHistory, health: HealthMonitor) -> Any:
        """Per-round driver callback streaming metrics into the monitor."""

        def on_round(result: IterationResult) -> None:
            record = history.records[-1]
            signals = health.observe(
                record.iteration,
                z_change_sq=record.z_change_sq,
                primal_residual=record.primal_residual,
                residual_available=record.residual_available,
                bytes_delta=result.bytes_delta,
            )
            if not signals or self.on_health == "ignore":
                return
            if self.on_health == "raise":
                raise HealthPolicyError(signals[0].message)
            for signal in signals:
                warnings.warn(signal.message, RuntimeWarning, stacklevel=2)

        return on_round

    def _fingerprint(self, data: list[Dataset] | VerticalPartition) -> dict[str, Any]:
        """Aggregate dataset identity for the run ledger (hash + shape only)."""
        if isinstance(data, list):
            X = np.vstack([p.X for p in data])
            y = np.concatenate([p.y for p in data])
        else:
            X = np.hstack(list(data.blocks))
            y = data.y
        return {
            "fingerprint": dataset_fingerprint(X, y),
            "n_samples": int(X.shape[0]),
            "n_features": int(X.shape[1]),
            "n_partitions": self._n_learners,
        }

    @property
    def config_(self) -> dict[str, Any]:
        """Hyperparameters as recorded in the run ledger."""
        return {
            "partitioning": self.partitioning,
            "kernel": type(self.kernel).__name__ if self.kernel else None,
            "C": self.C,
            "rho": self.rho,
            "n_landmarks": self.n_landmarks,
            "max_iter": self.max_iter,
            "tol": self.tol,
            "secure": self.secure,
            "mask_mode": self.mask_mode,
            "fractional_bits": self.fractional_bits,
            "n_map_workers": self.n_map_workers,
            "on_health": self.on_health,
        }

    def _make_aggregator(self, audit: ProtocolAuditLog | None = None) -> Aggregator:
        if self.aggregator_override is not None:
            # Wire the run's audit log into a caller-supplied aggregator
            # that supports it but has none of its own.
            if getattr(self.aggregator_override, "audit", False) is None:
                self.aggregator_override.audit = audit
            return self.aggregator_override
        if not self.secure:
            return PlaintextAggregator()
        codec = FixedPointCodec(
            fractional_bits=self.fractional_bits,
            max_terms=max(self._n_learners, 2),
        )
        return SecureSumAggregator(
            codec=codec, mode=self.mask_mode, seed=self.seed, audit=audit
        )

    def _prepare_horizontal(
        self, partitions: list[Dataset]
    ) -> tuple[list[dict[str, Any]], HorizontalConsensusReducer, int]:
        if len(partitions) < 2:
            raise ValueError("need at least 2 partitions")
        n_features = partitions[0].n_features
        if any(p.n_features != n_features for p in partitions):
            raise ValueError("all partitions must share the feature dimension")
        n_learners = len(partitions)

        common: dict[str, Any] = dict(
            C=self.C,
            rho=self.rho,
            n_learners=n_learners,
            qp_tol=self.qp_tol,
            qp_max_sweeps=self.qp_max_sweeps,
        )
        if self.kernel is not None:
            self.landmarks_ = sample_landmarks(
                self.n_landmarks, n_features, scale=self.landmark_scale, seed=self.seed
            )
            common.update(kernel=self.kernel, landmarks=self.landmarks_)
            n_consensus = self.n_landmarks
        else:
            n_consensus = n_features

        payloads = [dict(common, X=p.X, y=p.y) for p in partitions]
        reducer = HorizontalConsensusReducer(n_consensus, tol=self.tol)
        return payloads, reducer, n_consensus

    def _prepare_vertical(
        self, partition: VerticalPartition
    ) -> tuple[list[dict[str, Any]], VerticalReducerAdapter, int]:
        self._partition = partition
        payloads = [
            dict(X=block, rho=self.rho, kernel=self.kernel) for block in partition.blocks
        ]
        reducer = VerticalReducerAdapter(
            partition.y,
            C=self.C,
            rho=self.rho,
            n_learners=partition.n_learners,
            tol=self.tol,
        )
        return payloads, reducer, partition.n_samples

    # -- prediction --------------------------------------------------------

    def _workers(self) -> list[Any]:
        if self.driver_ is None:
            raise RuntimeError("model must be fit before use")
        return [m.worker for m in self.driver_.mappers()]

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Joint decision scores for new points ``X``.

        * horizontal linear: the consensus hyperplane ``(z, s)``;
        * horizontal kernel: the ``eval_learner``'s representer model;
        * vertical: the sum of every learner's score share plus the
          Reducer's bias (the deployment-faithful evaluation path).
        """
        self._require_fitted()
        X = check_matrix(X, "X")
        if self.partitioning == "horizontal":
            reducer = self._reducer
            if self.kernel is None:
                return X @ reducer.z + reducer.s
            worker = self._workers()[self.eval_learner]
            return worker.local_decision_function(X)
        blocks = self._partition.split_features(X)
        scores = np.zeros(X.shape[0])
        for worker, block in zip(self._workers(), blocks):
            scores += worker.score_share(block)
        return scores + self._reducer.logic.bias

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted -1/+1 labels."""
        return np.where(self.decision_function(X) >= 0, 1.0, -1.0)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on ``(X, y)``."""
        return accuracy(check_labels(y, "y"), self.predict(X))

    # -- accounting ----------------------------------------------------------

    def raw_data_bytes_moved(self) -> float:
        """Bytes of raw training data that crossed the network.

        This is the paper's data-locality/privacy headline; it must be
        0 for private files (replication and remote reads are the only
        ways raw data could move, and both are disabled for them).
        """
        self._require_fitted()
        metrics = self.network_.metrics
        return metrics.get("network.bytes.hdfs-replication") + metrics.get(
            "network.bytes.hdfs-remote-read"
        )

    def communication_summary(self) -> dict[str, float]:
        """Byte/message/crypto counters for the whole training run."""
        self._require_fitted()
        network = self.network_
        iterations = max(len(self.history_), 1)
        return {
            "iterations": float(len(self.history_)),
            "total_bytes": network.bytes_sent(),
            "total_messages": network.messages_sent(),
            "bytes_per_iteration": network.bytes_sent() / iterations,
            "broadcast_bytes": network.bytes_sent("broadcast"),
            "mask_bytes": network.bytes_sent("mask"),
            "masked_share_bytes": network.bytes_sent("masked-share"),
            "plaintext_consensus_bytes": network.bytes_sent("consensus"),
            "raw_data_bytes_moved": self.raw_data_bytes_moved(),
            "masks_generated": network.metrics.get("crypto.masks_generated"),
            "secure_sum_rounds": network.metrics.get("crypto.secure_sum_rounds"),
            "simulated_time_s": network.simulated_time_s,
        }

    def iteration_cost_table(self) -> tuple[list[str], list[list[Any]]]:
        """Per-iteration cost breakdown ``(headers, rows)`` from the trace.

        One row per training iteration (plus a leading ``setup`` row for
        pre-round traffic such as the HDFS load and PRG seed exchange);
        columns are bytes by message kind, totals, crypto op count, and
        wall/simulated time.  The column sums reconcile with the
        :class:`~repro.cluster.metrics.MetricRegistry` totals.
        """
        self._require_fitted()
        return cost_table(self.network_.tracer.iteration_costs())

    def export_trace(self, path: str | None = None, format: str = "chrome") -> str:
        """Serialize the training trace.

        Parameters
        ----------
        path:
            Optional output file; when given the trace is also written
            there.
        format:
            ``"chrome"`` for Chrome Trace Event JSON (load at
            ``chrome://tracing`` or in Perfetto) or ``"jsonl"`` for
            newline-delimited span/event/counter records.

        Returns the serialized trace as a string.
        """
        self._require_fitted()
        if format == "chrome":
            payload = json.dumps(self.network_.tracer.to_chrome_trace(), indent=1)
        elif format == "jsonl":
            payload = self.network_.tracer.to_jsonl()
        else:
            raise ValueError(f"format must be 'chrome' or 'jsonl', got {format!r}")
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(payload)
        return payload

    def run_record(self, *, kind: str = "train", label: str = "") -> RunRecord:
        """Build this run's ledger record (aggregates only — no raw data).

        Joins the training history with the trace-derived per-iteration
        costs, final counters, the health verdict, and the protocol
        audit summary; see :mod:`repro.obs.ledger` for the schema.
        """
        self._require_fitted()
        return RunRecord.from_model(self, kind=kind, label=label)

    def save_run(
        self,
        ledger_dir: str = DEFAULT_LEDGER_DIR,
        *,
        kind: str = "train",
        label: str = "",
    ) -> str:
        """Persist this run into the ledger; returns the new run id."""
        return RunLedger(ledger_dir).record(self.run_record(kind=kind, label=label))

    def _require_fitted(self) -> None:
        if self.network_ is None:
            raise RuntimeError("model must be fit before use")
