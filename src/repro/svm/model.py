"""Centralized SVM classifiers — the paper's benchmark (Section VI).

:class:`SVC` trains a kernel soft-margin SVM by running SMO on the full
Gram matrix (the role LIBSVM plays in the paper); :class:`LinearSVC` is
the linear special case that additionally exposes the explicit weight
vector ``w`` (needed to compare against the distributed consensus ``z``).
"""

from __future__ import annotations

import numpy as np

from repro.svm.kernels import Kernel, LinearKernel
from repro.svm.smo import solve_svm_dual
from repro.utils.validation import check_labels, check_matrix, check_positive

__all__ = ["LinearSVC", "SVC", "accuracy"]


def accuracy(y_true, y_pred) -> float:
    """Fraction of matching -1/+1 labels (the paper's "correct ratio")."""
    y_true = np.asarray(y_true, dtype=float).ravel()
    y_pred = np.asarray(y_pred, dtype=float).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    return float(np.mean(y_true == y_pred))


class SVC:
    """Kernel soft-margin SVM trained with SMO.

    Parameters
    ----------
    kernel:
        A :class:`~repro.svm.kernels.Kernel`; defaults to linear.
    C:
        Slack penalty (the paper uses C = 50 throughout Section VI).
    tol:
        SMO stopping tolerance (1e-3, the LIBSVM default).
    max_iter:
        SMO update budget.
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        C: float = 50.0,
        *,
        tol: float = 1e-3,
        max_iter: int = 200_000,
    ) -> None:
        self.kernel = kernel if kernel is not None else LinearKernel()
        self.C = check_positive(C, "C")
        self.tol = check_positive(tol, "tol")
        self.max_iter = int(max_iter)
        self.alpha_: np.ndarray | None = None
        self.bias_: float = 0.0
        self.X_: np.ndarray | None = None
        self.y_: np.ndarray | None = None
        self.converged_: bool = False
        self.n_iter_: int = 0

    def fit(self, X, y) -> "SVC":
        """Train on ``(X, y)``; returns ``self``."""
        X = check_matrix(X, "X")
        y = check_labels(y, "y", length=X.shape[0])
        K = self.kernel.gram(X)
        result = solve_svm_dual(K, y, self.C, tol=self.tol, max_iter=self.max_iter)
        self.alpha_ = result.alpha
        self.bias_ = result.bias
        self.X_ = X
        self.y_ = y
        self.converged_ = result.converged
        self.n_iter_ = result.iterations
        return self

    @property
    def support_indices_(self) -> np.ndarray:
        """Indices of the support vectors (alpha_i > 0)."""
        self._check_fitted()
        return np.flatnonzero(self.alpha_ > 1e-10)

    def decision_function(self, X) -> np.ndarray:
        """Signed margin ``f(x) = sum_i alpha_i y_i K(x_i, x) + b``."""
        self._check_fitted()
        X = check_matrix(X, "X")
        coef = self.alpha_ * self.y_
        return self.kernel(X, self.X_) @ coef + self.bias_

    def predict(self, X) -> np.ndarray:
        """Predicted -1/+1 labels (ties broken towards +1)."""
        scores = self.decision_function(X)
        out = np.sign(scores)
        out[out == 0] = 1.0
        return out

    def score(self, X, y) -> float:
        """Accuracy on ``(X, y)``."""
        return accuracy(check_labels(y, "y"), self.predict(X))

    def _check_fitted(self) -> None:
        if self.alpha_ is None:
            raise RuntimeError("SVC must be fit before use")


class LinearSVC(SVC):
    """Linear SVM that materializes the primal weight vector.

    After :meth:`fit`, ``coef_`` holds ``w = sum_i alpha_i y_i x_i`` and
    ``intercept_`` the bias, so predictions reduce to ``sign(Xw + b)``.
    """

    def __init__(self, C: float = 50.0, *, tol: float = 1e-3, max_iter: int = 200_000) -> None:
        super().__init__(kernel=LinearKernel(), C=C, tol=tol, max_iter=max_iter)
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "LinearSVC":
        """Train and materialize ``coef_``/``intercept_``."""
        super().fit(X, y)
        self.coef_ = (self.alpha_ * self.y_) @ self.X_
        self.intercept_ = self.bias_
        return self

    def decision_function(self, X) -> np.ndarray:
        """Signed margin ``Xw + b`` from the explicit weight vector."""
        self._check_fitted()
        X = check_matrix(X, "X")
        if X.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fit with {self.coef_.shape[0]}"
            )
        return X @ self.coef_ + self.intercept_
