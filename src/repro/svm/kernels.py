"""Kernel functions (Section III-B of the paper).

The paper lists the three most popular kernels — polynomial, radial basis
function, and sigmoid — in addition to the plain linear (inner-product)
kernel.  Each kernel object computes full Gram matrices ``K(A, B)``
vectorized over NumPy; the distributed algorithms only ever touch data
through these Gram matrices (the kernel trick of eqs. (20)–(25)).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.utils.validation import check_matrix, check_positive

__all__ = [
    "Kernel",
    "LinearKernel",
    "PolynomialKernel",
    "RBFKernel",
    "SigmoidKernel",
    "kernel_by_name",
]


class Kernel(abc.ABC):
    """Abstract kernel ``K : R^k x R^k -> R`` evaluated on row batches."""

    @abc.abstractmethod
    def __call__(self, A, B) -> np.ndarray:
        """Return the Gram matrix ``K(A, B)`` of shape ``(len(A), len(B))``."""

    def gram(self, X) -> np.ndarray:
        """Symmetric Gram matrix ``K(X, X)``."""
        X = check_matrix(X, "X")
        K = self(X, X)
        # Enforce exact symmetry against floating-point drift; downstream
        # solvers assume symmetric PSD matrices.
        return 0.5 * (K + K.T)

    def diagonal(self, X) -> np.ndarray:
        """The diagonal ``K(x_i, x_i)`` without forming the full Gram matrix."""
        X = check_matrix(X, "X")
        return np.array([float(self(X[i : i + 1], X[i : i + 1])[0, 0]) for i in range(len(X))])

    def _pair_check(self, A, B) -> tuple[np.ndarray, np.ndarray]:
        A = check_matrix(A, "A")
        B = check_matrix(B, "B")
        if A.shape[1] != B.shape[1]:
            raise ValueError(
                f"kernel operands must share feature dimension, got {A.shape[1]} and {B.shape[1]}"
            )
        return A, B


class LinearKernel(Kernel):
    """``K(x, x') = <x, x'>`` — recovers the linear SVM."""

    def __call__(self, A, B) -> np.ndarray:
        A, B = self._pair_check(A, B)
        return A @ B.T

    def __repr__(self) -> str:
        return "LinearKernel()"

    def __eq__(self, other) -> bool:
        return isinstance(other, LinearKernel)

    def __hash__(self) -> int:
        return hash("LinearKernel")


class PolynomialKernel(Kernel):
    """``K(x, x') = (a <x, x'> + b)^d`` (paper's polynomial kernel)."""

    def __init__(self, degree: int = 3, scale: float = 1.0, offset: float = 1.0) -> None:
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        self.degree = int(degree)
        self.scale = check_positive(scale, "scale")
        self.offset = float(offset)

    def __call__(self, A, B) -> np.ndarray:
        A, B = self._pair_check(A, B)
        return (self.scale * (A @ B.T) + self.offset) ** self.degree

    def __repr__(self) -> str:
        return f"PolynomialKernel(degree={self.degree}, scale={self.scale}, offset={self.offset})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, PolynomialKernel)
            and (self.degree, self.scale, self.offset)
            == (other.degree, other.scale, other.offset)
        )

    def __hash__(self) -> int:
        return hash(("PolynomialKernel", self.degree, self.scale, self.offset))


class RBFKernel(Kernel):
    """``K(x, x') = exp(-gamma ||x - x'||^2)``.

    The paper writes the RBF kernel as ``e^{||x_i - x_j||^2}`` — a typo
    (that kernel would be unbounded); we implement the standard Gaussian
    RBF with bandwidth parameter ``gamma > 0``.
    """

    def __init__(self, gamma: float = 0.5) -> None:
        self.gamma = check_positive(gamma, "gamma")

    def __call__(self, A, B) -> np.ndarray:
        A, B = self._pair_check(A, B)
        sq_a = np.sum(A * A, axis=1)[:, None]
        sq_b = np.sum(B * B, axis=1)[None, :]
        sq_dist = np.maximum(sq_a + sq_b - 2.0 * (A @ B.T), 0.0)
        return np.exp(-self.gamma * sq_dist)

    def diagonal(self, X) -> np.ndarray:
        """RBF self-similarity is identically 1."""
        X = check_matrix(X, "X")
        return np.ones(X.shape[0])

    def __repr__(self) -> str:
        return f"RBFKernel(gamma={self.gamma})"

    def __eq__(self, other) -> bool:
        return isinstance(other, RBFKernel) and self.gamma == other.gamma

    def __hash__(self) -> int:
        return hash(("RBFKernel", self.gamma))


class SigmoidKernel(Kernel):
    """``K(x, x') = tanh(a <x, x'> + c)`` (paper's sigmoid kernel).

    Note this kernel is not positive semidefinite for all parameter
    choices; it is included for completeness of the Section III-B list.
    """

    def __init__(self, scale: float = 1.0, offset: float = 0.0) -> None:
        self.scale = check_positive(scale, "scale")
        self.offset = float(offset)

    def __call__(self, A, B) -> np.ndarray:
        A, B = self._pair_check(A, B)
        return np.tanh(self.scale * (A @ B.T) + self.offset)

    def __repr__(self) -> str:
        return f"SigmoidKernel(scale={self.scale}, offset={self.offset})"

    def __eq__(self, other) -> bool:
        return isinstance(other, SigmoidKernel) and (self.scale, self.offset) == (
            other.scale,
            other.offset,
        )

    def __hash__(self) -> int:
        return hash(("SigmoidKernel", self.scale, self.offset))


def kernel_by_name(name: str, **params) -> Kernel:
    """Construct a kernel from its string name.

    Accepted names: ``"linear"``, ``"poly"``/``"polynomial"``, ``"rbf"``,
    ``"sigmoid"``.  Extra keyword arguments are forwarded to the kernel
    constructor.
    """
    key = name.strip().lower()
    if key == "linear":
        return LinearKernel()
    if key in ("poly", "polynomial"):
        return PolynomialKernel(**params)
    if key == "rbf":
        return RBFKernel(**params)
    if key == "sigmoid":
        return SigmoidKernel(**params)
    raise ValueError(f"unknown kernel name {name!r}")
