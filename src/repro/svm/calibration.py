"""Platt scaling: calibrated probabilities from SVM margins.

LIBSVM's ``-b 1`` feature, implemented from scratch: fit a sigmoid
``P(y=1|f) = 1 / (1 + exp(A f + B))`` to a classifier's decision values
by regularized maximum likelihood (Platt 1999, with the Lin-Weng-Keerthi
numerically-stable Newton iteration).  Works with any model exposing
``decision_function``; used by adopters who need probabilistic outputs
from the consensus SVMs.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_labels, check_vector

__all__ = ["PlattCalibrator"]


class PlattCalibrator:
    """Sigmoid calibration of decision values.

    Parameters
    ----------
    max_iter, tol:
        Newton iteration controls.
    """

    def __init__(self, *, max_iter: int = 100, tol: float = 1e-10) -> None:
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.A_: float | None = None
        self.B_: float | None = None

    def fit(self, scores, y) -> "PlattCalibrator":
        """Fit the sigmoid on held-out ``(decision value, label)`` pairs.

        Uses Platt's regularized targets ``t+ = (N+ + 1)/(N+ + 2)``,
        ``t- = 1/(N- + 2)`` to avoid overfitting separable score sets.
        """
        scores = check_vector(scores, "scores")
        y = check_labels(y, "y", length=scores.shape[0])
        n_pos = int(np.sum(y > 0))
        n_neg = y.shape[0] - n_pos
        if n_pos == 0 or n_neg == 0:
            raise ValueError("calibration needs both classes present")
        hi = (n_pos + 1.0) / (n_pos + 2.0)
        lo = 1.0 / (n_neg + 2.0)
        targets = np.where(y > 0, hi, lo)

        # Newton with backtracking on the cross-entropy in (A, B),
        # following Lin, Weng & Keerthi (2007).
        A, B = 0.0, float(np.log((n_neg + 1.0) / (n_pos + 1.0)))
        sigma = 1e-12  # Hessian ridge

        def objective(a, b):
            f_ab = a * scores + b
            # Cross-entropy with P(y=+1) = 1/(1+exp(F)):
            # -t log P - (1-t) log(1-P) = logaddexp(0, F) - (1-t) F.
            return float(np.sum(np.logaddexp(0.0, f_ab) - (1.0 - targets) * f_ab))

        obj = objective(A, B)
        for _ in range(self.max_iter):
            f_ab = A * scores + B
            p = 1.0 / (1.0 + np.exp(np.clip(f_ab, -500, 500)))  # P(y=+1)
            # dJ/dF = sigma(F) - (1 - t) = (1 - p) - (1 - t) = t - p.
            d1 = targets - p
            g_a = float(np.sum(d1 * scores))
            g_b = float(np.sum(d1))
            if max(abs(g_a), abs(g_b)) < self.tol:
                break
            w = p * (1.0 - p)
            h11 = float(np.sum(w * scores * scores)) + sigma
            h22 = float(np.sum(w)) + sigma
            h12 = float(np.sum(w * scores))
            det = h11 * h22 - h12 * h12
            dA = -(h22 * g_a - h12 * g_b) / det
            dB = -(h11 * g_b - h12 * g_a) / det
            step = 1.0
            while step >= 1e-10:
                new_obj = objective(A + step * dA, B + step * dB)
                if new_obj < obj + 1e-4 * step * (g_a * dA + g_b * dB):
                    break
                step /= 2.0
            A += step * dA
            B += step * dB
            obj = objective(A, B)

        self.A_, self.B_ = A, B
        return self

    def predict_proba(self, scores) -> np.ndarray:
        """``P(y = +1)`` for decision values ``scores``."""
        if self.A_ is None:
            raise RuntimeError("calibrator must be fit before use")
        scores = check_vector(scores, "scores")
        f_ab = self.A_ * scores + self.B_
        return 1.0 / (1.0 + np.exp(np.clip(f_ab, -500, 500)))

    def calibrate(self, model, X, y) -> "PlattCalibrator":
        """Convenience: fit on ``model.decision_function(X)`` vs ``y``."""
        return self.fit(model.decision_function(X), y)
