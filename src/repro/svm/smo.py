"""Sequential Minimal Optimization (SMO) for the SVM dual.

Solves the Wolfe dual of the (kernel) soft-margin SVM — problem (2) of the
paper —

    minimize    (1/2) a' Q a - 1' a
    subject to  y' a = 0,   0 <= a <= C,

where ``Q_ij = y_i y_j K(x_i, x_j)``, using Platt's SMO with the
maximal-violating-pair working-set selection and the two-variable
analytic update used by LIBSVM [Chang & Lin 2011].  This is the same
algorithm family the paper points at ("SMO used in LIBSVM") and serves as
our centralized benchmark solver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_labels, check_matrix, check_positive

__all__ = ["SMOResult", "solve_svm_dual"]

_TAU = 1e-12


@dataclass(frozen=True)
class SMOResult:
    """Solution of the SVM dual.

    Attributes
    ----------
    alpha:
        Dual variables (length n).
    bias:
        Intercept ``b`` recovered from the KKT conditions.
    iterations:
        Number of two-variable updates performed.
    converged:
        Whether the KKT violation dropped below ``tol``.
    kkt_violation:
        Final maximal-violating-pair gap.
    """

    alpha: np.ndarray
    bias: float
    iterations: int
    converged: bool
    kkt_violation: float

    @property
    def support_indices(self) -> np.ndarray:
        """Indices with ``alpha_i > 0`` (the support vectors)."""
        return np.flatnonzero(self.alpha > 1e-10)


def solve_svm_dual(
    K,
    y,
    C: float,
    *,
    tol: float = 1e-3,
    max_iter: int = 100_000,
) -> SMOResult:
    """Run SMO on the SVM dual defined by Gram matrix ``K`` and labels ``y``.

    Parameters
    ----------
    K:
        Symmetric PSD Gram matrix ``K(x_i, x_j)`` of shape ``(n, n)``
        (labels are applied internally: ``Q = y y' * K``).
    y:
        -1/+1 labels.
    C:
        Box constraint (the paper's outlier-tolerance parameter).
    tol:
        Stopping tolerance on the maximal KKT violation (the LIBSVM default).
    max_iter:
        Budget of two-variable updates.
    """
    K = check_matrix(K, "K")
    n = K.shape[0]
    if K.shape[1] != n:
        raise ValueError(f"K must be square, got {K.shape}")
    y = check_labels(y, "y", length=n)
    C = check_positive(C, "C")

    Q = (y[:, None] * y[None, :]) * K
    alpha = np.zeros(n)
    grad = -np.ones(n)  # Q @ alpha - 1 at alpha = 0

    diag_q = np.diag(Q).copy()
    iterations = 0
    violation = np.inf
    for iterations in range(1, max_iter + 1):
        # Second-order working-set selection (LIBSVM WSS2, Fan et al. 2005):
        # i is the maximal violator in I_up; j maximizes the guaranteed
        # decrease -b^2/a among violating candidates in I_low.  This is
        # essential at large C (the paper uses C = 50), where first-order
        # maximal-violating-pair selection stalls.
        neg_yg = -y * grad
        up_mask = ((y > 0) & (alpha < C - 1e-12)) | ((y < 0) & (alpha > 1e-12))
        low_mask = ((y > 0) & (alpha > 1e-12)) | ((y < 0) & (alpha < C - 1e-12))
        if not up_mask.any() or not low_mask.any():
            violation = 0.0
            break
        up_vals = np.where(up_mask, neg_yg, -np.inf)
        i = int(np.argmax(up_vals))
        g_max = float(up_vals[i])
        low_vals = np.where(low_mask, neg_yg, np.inf)
        violation = g_max - float(np.min(low_vals))
        if violation <= tol:
            break
        b_vec = g_max - neg_yg
        candidates = low_mask & (b_vec > 0.0)
        if not candidates.any():
            break
        a_vec = diag_q[i] + diag_q - 2.0 * y[i] * (y * Q[i, :])
        a_vec = np.maximum(a_vec, _TAU)
        gains = np.where(candidates, -(b_vec * b_vec) / a_vec, np.inf)
        j = int(np.argmin(gains))

        old_ai, old_aj = alpha[i], alpha[j]
        if y[i] != y[j]:
            quad = Q[i, i] + Q[j, j] + 2.0 * Q[i, j]
            quad = max(quad, _TAU)
            delta = (-grad[i] - grad[j]) / quad
            diff = old_ai - old_aj
            ai, aj = old_ai + delta, old_aj + delta
            if diff > 0.0:
                if aj < 0.0:
                    aj, ai = 0.0, diff
            else:
                if ai < 0.0:
                    ai, aj = 0.0, -diff
            if diff > 0.0:
                if ai > C:
                    ai, aj = C, C - diff
            else:
                if aj > C:
                    aj, ai = C, C + diff
        else:
            quad = Q[i, i] + Q[j, j] - 2.0 * Q[i, j]
            quad = max(quad, _TAU)
            delta = (grad[i] - grad[j]) / quad
            total = old_ai + old_aj
            ai, aj = old_ai - delta, old_aj + delta
            if total > C:
                if ai > C:
                    ai, aj = C, total - C
                if aj > C:
                    aj, ai = C, total - C
            else:
                if aj < 0.0:
                    aj, ai = 0.0, total
                if ai < 0.0:
                    ai, aj = 0.0, total

        alpha[i], alpha[j] = ai, aj
        grad += Q[:, i] * (ai - old_ai) + Q[:, j] * (aj - old_aj)

    bias = _recover_bias(alpha, grad, y, C)
    return SMOResult(
        alpha=alpha,
        bias=bias,
        iterations=iterations,
        converged=violation <= tol,
        kkt_violation=max(violation, 0.0),
    )


def _recover_bias(alpha: np.ndarray, grad: np.ndarray, y: np.ndarray, C: float) -> float:
    """Recover the intercept from KKT conditions.

    For free support vectors (0 < alpha_i < C), ``b = -y_i * grad_i``;
    we average over all free SVs (the paper cites both the average-over-SVs
    convention [Burges] and the single-SV convention [LIBSVM]; averaging is
    numerically safer).  With no free SVs, b is bracketed by the bound
    sets and we take the midpoint, as LIBSVM does.
    """
    free = (alpha > 1e-8) & (alpha < C - 1e-8)
    neg_yg = -y * grad
    if free.any():
        return float(np.mean(neg_yg[free]))
    up_mask = ((y > 0) & (alpha < C - 1e-12)) | ((y < 0) & (alpha > 1e-12))
    low_mask = ((y > 0) & (alpha > 1e-12)) | ((y < 0) & (alpha < C - 1e-12))
    ub = float(np.max(neg_yg[up_mask])) if up_mask.any() else 0.0
    lb = float(np.min(neg_yg[low_mask])) if low_mask.any() else 0.0
    return 0.5 * (ub + lb)
