"""SVM substrate: kernels, quadratic-program solvers, and centralized SVMs.

This package implements, from scratch, everything the paper's distributed
algorithms need from the SVM world:

* the kernel zoo of Section III-B (:mod:`repro.svm.kernels`);
* a box-constrained QP solver for the ADMM local duals
  (:mod:`repro.svm.qp`);
* an SMO solver (box + single equality constraint) equivalent to the
  LIBSVM solver the paper benchmarks against (:mod:`repro.svm.smo`);
* an exact continuous quadratic-knapsack solver for the vertical reducer
  step (:mod:`repro.svm.knapsack`);
* centralized linear and kernel SVMs — the paper's benchmark classifiers
  (:mod:`repro.svm.model`).
"""

from repro.svm.calibration import PlattCalibrator
from repro.svm.grid_search import GridSearch, GridSearchResult
from repro.svm.kernels import (
    Kernel,
    LinearKernel,
    PolynomialKernel,
    RBFKernel,
    SigmoidKernel,
    kernel_by_name,
)
from repro.svm.knapsack import solve_quadratic_knapsack
from repro.svm.model import SVC, LinearSVC
from repro.svm.multiclass import OneVsOneClassifier, OneVsRestClassifier
from repro.svm.qp import solve_box_qp
from repro.svm.smo import solve_svm_dual

__all__ = [
    "GridSearch",
    "GridSearchResult",
    "Kernel",
    "LinearKernel",
    "LinearSVC",
    "OneVsOneClassifier",
    "OneVsRestClassifier",
    "PlattCalibrator",
    "PolynomialKernel",
    "RBFKernel",
    "SVC",
    "SigmoidKernel",
    "kernel_by_name",
    "solve_box_qp",
    "solve_quadratic_knapsack",
    "solve_svm_dual",
]
