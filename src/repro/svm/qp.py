"""Box-constrained convex quadratic programming.

The ADMM local subproblems of the horizontally partitioned schemes reduce
to duals of the form

    minimize    (1/2) x' H x + d' x
    subject to  lo <= x <= hi   (elementwise)

with ``H`` symmetric positive semidefinite (eq. (12) of the paper, after
the bias penalty removes the equality constraint — see DESIGN.md §6).

We solve this with cyclic exact coordinate descent, safeguarded by a
projected-gradient optimality check: for box-constrained convex QPs,
coordinate descent with exact per-coordinate minimization converges to a
global minimizer, each coordinate update is a closed-form clip, and the
gradient can be maintained incrementally in O(n) per update.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_matrix, check_vector

__all__ = ["BoxQPResult", "solve_box_qp"]


@dataclass(frozen=True)
class BoxQPResult:
    """Solution of a box-constrained QP.

    Attributes
    ----------
    x:
        The minimizer found.
    iterations:
        Number of full coordinate sweeps performed.
    kkt_residual:
        Infinity norm of the projected gradient at ``x`` (0 at exact
        optimality).
    converged:
        Whether ``kkt_residual <= tol`` was reached within the sweep
        budget.
    objective:
        Final objective value ``(1/2) x'Hx + d'x``.
    """

    x: np.ndarray
    iterations: int
    kkt_residual: float
    converged: bool
    objective: float


def projected_gradient_residual(
    grad: np.ndarray, x: np.ndarray, lo: np.ndarray, hi: np.ndarray
) -> float:
    """Infinity norm of the projected gradient (first-order KKT residual).

    A coordinate contributes its gradient magnitude unless it sits at the
    bound the gradient is pushing it towards.
    """
    residual = grad.copy()
    residual[(x <= lo) & (grad > 0)] = 0.0
    residual[(x >= hi) & (grad < 0)] = 0.0
    return float(np.max(np.abs(residual))) if residual.size else 0.0


def solve_box_qp(
    H,
    d,
    lower=0.0,
    upper=np.inf,
    *,
    x0=None,
    tol: float = 1e-8,
    max_sweeps: int = 2000,
) -> BoxQPResult:
    """Minimize ``(1/2) x'Hx + d'x`` subject to ``lower <= x <= upper``.

    Parameters
    ----------
    H:
        Symmetric PSD matrix of shape ``(n, n)``.
    d:
        Linear term of length ``n``.
    lower, upper:
        Box bounds; scalars broadcast to all coordinates.
    x0:
        Optional warm start (projected onto the box).  Warm starting with
        the previous ADMM iterate cuts sweeps dramatically in the
        distributed trainers.
    tol:
        Convergence threshold on the projected-gradient infinity norm.
    max_sweeps:
        Budget of full coordinate sweeps.

    Returns
    -------
    BoxQPResult
    """
    H = check_matrix(H, "H")
    n = H.shape[0]
    if H.shape[1] != n:
        raise ValueError(f"H must be square, got {H.shape}")
    d = check_vector(d, "d", length=n)
    lo = np.broadcast_to(np.asarray(lower, dtype=float), (n,)).copy()
    hi = np.broadcast_to(np.asarray(upper, dtype=float), (n,)).copy()
    if np.any(lo > hi):
        raise ValueError("lower bound exceeds upper bound on some coordinate")

    if x0 is None:
        x = np.clip(np.zeros(n), lo, hi)
    else:
        x = np.clip(check_vector(x0, "x0", length=n), lo, hi)

    grad = H @ x + d
    diag = np.diag(H).copy()
    residual = projected_gradient_residual(grad, x, lo, hi)
    sweeps = 0

    while residual > tol and sweeps < max_sweeps:
        for i in range(n):
            g_i = grad[i]
            if diag[i] > 0.0:
                new_xi = np.clip(x[i] - g_i / diag[i], lo[i], hi[i])
            else:
                # Degenerate coordinate: objective is linear in x_i, so
                # the minimizer sits at a bound (or stays put if g_i = 0).
                if g_i > 0.0:
                    new_xi = lo[i]
                elif g_i < 0.0:
                    new_xi = hi[i]
                else:
                    new_xi = x[i]
            delta = new_xi - x[i]
            if delta != 0.0:
                grad += delta * H[:, i]
                x[i] = new_xi
        sweeps += 1
        residual = projected_gradient_residual(grad, x, lo, hi)

    objective = float(0.5 * x @ (grad - d) + d @ x)
    return BoxQPResult(
        x=x,
        iterations=sweeps,
        kkt_residual=residual,
        converged=residual <= tol,
        objective=objective,
    )
