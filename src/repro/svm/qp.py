"""Box-constrained convex quadratic programming.

The ADMM local subproblems of the horizontally partitioned schemes reduce
to duals of the form

    minimize    (1/2) x' H x + d' x
    subject to  lo <= x <= hi   (elementwise)

with ``H`` symmetric positive semidefinite (eq. (12) of the paper, after
the bias penalty removes the equality constraint — see DESIGN.md §6).

We solve this with cyclic exact coordinate descent, safeguarded by a
projected-gradient optimality check: for box-constrained convex QPs,
coordinate descent with exact per-coordinate minimization converges to a
global minimizer, each coordinate update is a closed-form clip, and the
gradient can be maintained incrementally in O(n) per update.

On ill-conditioned problems (nearly-parallel rows of ``H``, e.g. near-
duplicate training points) plain coordinate descent can stall far from
the tolerance: its linear rate degrades with the condition number of the
free-set block.  When the sweep loop stops making progress, a
projected-Newton polish takes over — solve the Newton system on the
free coordinates, backtrack along the projected path — which converges
in a handful of steps regardless of conditioning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_matrix, check_vector

__all__ = ["BoxQPResult", "solve_box_qp"]


@dataclass(frozen=True)
class BoxQPResult:
    """Solution of a box-constrained QP.

    Attributes
    ----------
    x:
        The minimizer found.
    iterations:
        Number of full coordinate sweeps performed.
    kkt_residual:
        Infinity norm of the projected gradient at ``x`` (0 at exact
        optimality).
    converged:
        Whether ``kkt_residual <= tol`` was reached within the sweep
        budget.
    objective:
        Final objective value ``(1/2) x'Hx + d'x``.
    """

    x: np.ndarray
    iterations: int
    kkt_residual: float
    converged: bool
    objective: float


def projected_gradient_residual(
    grad: np.ndarray, x: np.ndarray, lo: np.ndarray, hi: np.ndarray
) -> float:
    """Infinity norm of the projected gradient (first-order KKT residual).

    A coordinate contributes its gradient magnitude unless it sits at the
    bound the gradient is pushing it towards.
    """
    residual = grad.copy()
    residual[(x <= lo) & (grad > 0)] = 0.0
    residual[(x >= hi) & (grad < 0)] = 0.0
    return float(np.max(np.abs(residual))) if residual.size else 0.0


def _projected_newton_polish(
    H: np.ndarray,
    d: np.ndarray,
    x: np.ndarray,
    grad: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    tol: float,
    max_steps: int = 25,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Newton steps on the free coordinates, backtracking along the box.

    Rescues coordinate-descent stalls: with the active set fixed, one
    Newton solve on the free block lands on its unconstrained minimizer
    exactly, independent of conditioning.  Steps are accepted only when
    they decrease the objective or the projected-gradient residual, so
    the polish can never move away from the solution; it returns the
    best iterate reached.
    """
    n = x.shape[0]
    residual = projected_gradient_residual(grad, x, lo, hi)
    for _ in range(max_steps):
        if residual <= tol:
            break
        active = ((x <= lo) & (grad > 0)) | ((x >= hi) & (grad < 0))
        free = ~active
        if not np.any(free):
            break
        H_ff = H[np.ix_(free, free)]
        g_f = grad[free]
        try:
            p_f = np.linalg.solve(H_ff, -g_f)
        except np.linalg.LinAlgError:
            p_f = np.linalg.lstsq(H_ff, -g_f, rcond=None)[0]
        if not np.all(np.isfinite(p_f)):
            break
        p = np.zeros(n)
        p[free] = p_f
        objective = float(0.5 * x @ (grad - d) + d @ x)
        step = 1.0
        improved = False
        for _ in range(30):
            x_new = np.clip(x + step * p, lo, hi)
            grad_new = H @ x_new + d
            objective_new = float(0.5 * x_new @ (grad_new - d) + d @ x_new)
            residual_new = projected_gradient_residual(grad_new, x_new, lo, hi)
            if objective_new < objective or residual_new < residual:
                x, grad, residual = x_new, grad_new, residual_new
                improved = True
                break
            step *= 0.5
        if not improved:
            break
    return x, grad, residual


def solve_box_qp(
    H,
    d,
    lower=0.0,
    upper=np.inf,
    *,
    x0=None,
    tol: float = 1e-8,
    max_sweeps: int = 2000,
) -> BoxQPResult:
    """Minimize ``(1/2) x'Hx + d'x`` subject to ``lower <= x <= upper``.

    Parameters
    ----------
    H:
        Symmetric PSD matrix of shape ``(n, n)``.
    d:
        Linear term of length ``n``.
    lower, upper:
        Box bounds; scalars broadcast to all coordinates.
    x0:
        Optional warm start (projected onto the box).  Warm starting with
        the previous ADMM iterate cuts sweeps dramatically in the
        distributed trainers.
    tol:
        Convergence threshold on the projected-gradient infinity norm.
    max_sweeps:
        Budget of full coordinate sweeps.

    Returns
    -------
    BoxQPResult
    """
    H = check_matrix(H, "H")
    n = H.shape[0]
    if H.shape[1] != n:
        raise ValueError(f"H must be square, got {H.shape}")
    d = check_vector(d, "d", length=n)
    lo = np.broadcast_to(np.asarray(lower, dtype=float), (n,)).copy()
    hi = np.broadcast_to(np.asarray(upper, dtype=float), (n,)).copy()
    if np.any(lo > hi):
        raise ValueError("lower bound exceeds upper bound on some coordinate")

    if x0 is None:
        x = np.clip(np.zeros(n), lo, hi)
    else:
        x = np.clip(check_vector(x0, "x0", length=n), lo, hi)

    grad = H @ x + d
    diag = np.diag(H).copy()
    # A placeholder divisor where the diagonal is non-positive; those
    # coordinates take the degenerate branch, never the quotient.
    diag_safe = np.where(diag > 0.0, diag, 1.0)
    # Fortran order makes the per-update column axpy contiguous; the
    # values are identical to C-order columns, so results don't change.
    H_cols = np.asfortranarray(H)
    residual = projected_gradient_residual(grad, x, lo, hi)
    sweeps = 0
    stalled = 0

    while residual > tol and sweeps < max_sweeps:
        # One sweep in the exact cyclic order 0..n-1, vectorized: with
        # the current gradient, every coordinate's closed-form update is
        # computed in one block; a coordinate whose update is a no-op
        # (delta == 0 — pinned at a bound, or already at its coordinate
        # minimum) would not have changed ``grad`` or ``x`` in the
        # scalar loop either, so jumping straight to the first moving
        # coordinate is bit-identical.  Only that coordinate's update is
        # applied (the later candidates are stale once ``grad`` moves),
        # then the scan resumes after it.  Warm-started ADMM sweeps pin
        # most coordinates, so sweeps collapse to a few block scans
        # instead of n Python iterations.
        start = 0
        while start < n:
            tail = slice(start, n)
            g_tail = grad[tail]
            candidate = np.clip(
                x[tail] - g_tail / diag_safe[tail], lo[tail], hi[tail]
            )
            # Degenerate coordinates: objective is linear in x_i, so the
            # minimizer sits at a bound (or stays put if g_i = 0).
            degenerate = np.where(
                g_tail > 0.0, lo[tail], np.where(g_tail < 0.0, hi[tail], x[tail])
            )
            new_x = np.where(diag[tail] > 0.0, candidate, degenerate)
            deltas = new_x - x[tail]
            moved = np.nonzero(deltas)[0]
            if moved.size == 0:
                break
            first = int(moved[0])
            i = start + first
            delta = deltas[first]
            grad += delta * H_cols[:, i]
            x[i] = new_x[first]
            start = i + 1
        sweeps += 1
        new_residual = projected_gradient_residual(grad, x, lo, hi)
        # Stall detection: ill-conditioned free-set blocks degrade the
        # coordinate-descent rate arbitrarily close to 1; hand over to
        # the Newton polish instead of burning the sweep budget.
        stalled = stalled + 1 if new_residual >= residual * (1.0 - 1e-3) else 0
        residual = new_residual
        if stalled >= 10:
            break

    if residual > tol:
        x, grad, residual = _projected_newton_polish(H, d, x, grad, lo, hi, tol)

    objective = float(0.5 * x @ (grad - d) + d @ x)
    return BoxQPResult(
        x=x,
        iterations=sweeps,
        kkt_residual=residual,
        converged=residual <= tol,
        objective=objective,
    )
