"""Exact continuous quadratic-knapsack solver.

The Reducer step of the vertically partitioned scheme (paper eq. (29))
must solve a QP whose Hessian is **diagonal**, subject to a box and a
single linear equality constraint:

    minimize    sum_i (a_i/2) x_i^2 + d_i x_i
    subject to  sum_i c_i x_i = r,     lo_i <= x_i <= hi_i.

This is the classic continuous quadratic knapsack problem.  The KKT
conditions give, for a scalar multiplier ``nu``,

    x_i(nu) = clip((-d_i - nu * c_i) / a_i, lo_i, hi_i),

and ``phi(nu) = sum_i c_i x_i(nu)`` is continuous and nonincreasing in
``nu``, so the feasible multiplier is found by bracketing + bisection.
This solves the Reducer QP *exactly* in O(n log(1/eps)) — much faster than
a generic QP solver, and it is the step executed once per ADMM iteration
on the consensus node.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_vector

__all__ = ["KnapsackResult", "solve_quadratic_knapsack"]


@dataclass(frozen=True)
class KnapsackResult:
    """Solution of a continuous quadratic knapsack problem.

    Attributes
    ----------
    x:
        The minimizer.
    nu:
        The equality-constraint multiplier at the solution.
    constraint_residual:
        ``|sum_i c_i x_i - r|`` at the returned point.
    iterations:
        Bisection iterations used.
    """

    x: np.ndarray
    nu: float
    constraint_residual: float
    iterations: int


def solve_quadratic_knapsack(
    a,
    d,
    c,
    r: float = 0.0,
    lower=0.0,
    upper=np.inf,
    *,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> KnapsackResult:
    """Solve the diagonal QP with one equality constraint described above.

    Parameters
    ----------
    a:
        Strictly positive diagonal of the Hessian.
    d:
        Linear term.
    c:
        Equality-constraint coefficients (e.g. the labels ``y_i``); must
        not be all zero unless ``r`` is 0.
    r:
        Right-hand side of the equality constraint.
    lower, upper:
        Box bounds (scalars broadcast).
    tol:
        Bisection tolerance on the constraint residual.
    max_iter:
        Maximum bisection iterations.

    Raises
    ------
    ValueError
        If the problem is infeasible (no x in the box satisfies the
        equality constraint) or ``a`` is not strictly positive.
    """
    a = check_vector(a, "a")
    n = a.shape[0]
    if np.any(a <= 0.0):
        raise ValueError("diagonal Hessian entries must be strictly positive")
    d = check_vector(d, "d", length=n)
    c = check_vector(c, "c", length=n)
    lo = np.broadcast_to(np.asarray(lower, dtype=float), (n,)).copy()
    hi = np.broadcast_to(np.asarray(upper, dtype=float), (n,)).copy()
    if np.any(lo > hi):
        raise ValueError("lower bound exceeds upper bound on some coordinate")
    r = float(r)

    # Feasibility check: the range of sum c_i x_i over the box.
    max_sum = float(np.sum(np.where(c > 0, c * hi, c * lo)))
    min_sum = float(np.sum(np.where(c > 0, c * lo, c * hi)))
    if not (min_sum - 1e-9 <= r <= max_sum + 1e-9):
        raise ValueError(
            f"infeasible knapsack: r={r} outside achievable range [{min_sum}, {max_sum}]"
        )

    def x_of(nu: float) -> np.ndarray:
        return np.clip((-d - nu * c) / a, lo, hi)

    def phi(nu: float) -> float:
        return float(c @ x_of(nu)) - r

    # Bracket the root: phi is nonincreasing, phi(-inf) -> max_sum - r >= 0,
    # phi(+inf) -> min_sum - r <= 0.
    nu_lo, nu_hi = -1.0, 1.0
    for _ in range(200):
        if phi(nu_lo) >= 0.0:
            break
        nu_lo *= 2.0
    for _ in range(200):
        if phi(nu_hi) <= 0.0:
            break
        nu_hi *= 2.0

    iterations = 0
    nu = 0.0
    for iterations in range(1, max_iter + 1):
        nu = 0.5 * (nu_lo + nu_hi)
        value = phi(nu)
        if abs(value) <= tol:
            break
        if value > 0.0:
            nu_lo = nu
        else:
            nu_hi = nu

    x = x_of(nu)
    return KnapsackResult(
        x=x,
        nu=nu,
        constraint_residual=abs(float(c @ x) - r),
        iterations=iterations,
    )
