"""Multiclass reductions: one-vs-rest and one-vs-one.

The paper's OCR dataset is inherently 10-class; like the paper, the
core algorithms handle the binary case, and these reductions lift any
binary classifier with the ``fit(X, y) / decision_function(X)``
protocol (centralized SVC or a distributed consensus trainer via a
factory) to multiclass.  This is the standard LIBSVM approach (OvO) and
its cheaper cousin (OvR).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable

import numpy as np

from repro.utils.validation import check_matrix

__all__ = ["OneVsOneClassifier", "OneVsRestClassifier"]

BinaryFactory = Callable[[], object]


def _check_multiclass_labels(y) -> np.ndarray:
    y = np.asarray(y, dtype=float).ravel()
    classes = np.unique(y)
    if classes.size < 2:
        raise ValueError("need at least 2 classes")
    return y


class OneVsRestClassifier:
    """One-vs-rest reduction over any binary margin classifier.

    Parameters
    ----------
    factory:
        Zero-argument callable producing a fresh binary classifier with
        ``fit(X, y)`` (y in -1/+1) and ``decision_function(X)``.
    """

    def __init__(self, factory: BinaryFactory) -> None:
        self.factory = factory
        self.classes_: np.ndarray | None = None
        self.models_: list = []

    def fit(self, X, y) -> "OneVsRestClassifier":
        """Train one binary model per class (that class vs all others)."""
        X = check_matrix(X, "X")
        y = _check_multiclass_labels(y)
        self.classes_ = np.unique(y)
        self.models_ = []
        for cls in self.classes_:
            binary_y = np.where(y == cls, 1.0, -1.0)
            model = self.factory()
            model.fit(X, binary_y)
            self.models_.append(model)
        return self

    def decision_matrix(self, X) -> np.ndarray:
        """Per-class margins, shape ``(n_samples, n_classes)``."""
        if self.classes_ is None:
            raise RuntimeError("classifier must be fit before use")
        X = check_matrix(X, "X")
        return np.column_stack([m.decision_function(X) for m in self.models_])

    def predict(self, X) -> np.ndarray:
        """Class with the largest margin."""
        scores = self.decision_matrix(X)
        return self.classes_[np.argmax(scores, axis=1)]

    def score(self, X, y) -> float:
        """Multiclass accuracy."""
        y = _check_multiclass_labels(y)
        return float(np.mean(self.predict(X) == y))


class OneVsOneClassifier:
    """One-vs-one reduction with majority voting (LIBSVM's strategy).

    Trains ``k(k-1)/2`` pairwise models; prediction is by vote, with
    ties broken by the summed pairwise margins.
    """

    def __init__(self, factory: BinaryFactory) -> None:
        self.factory = factory
        self.classes_: np.ndarray | None = None
        self.models_: list[tuple[float, float, object]] = []

    def fit(self, X, y) -> "OneVsOneClassifier":
        """Train one binary model per unordered class pair."""
        X = check_matrix(X, "X")
        y = _check_multiclass_labels(y)
        self.classes_ = np.unique(y)
        self.models_ = []
        for i, a in enumerate(self.classes_):
            for b in self.classes_[i + 1 :]:
                mask = (y == a) | (y == b)
                binary_y = np.where(y[mask] == a, 1.0, -1.0)
                model = self.factory()
                model.fit(X[mask], binary_y)
                self.models_.append((float(a), float(b), model))
        return self

    def predict(self, X) -> np.ndarray:
        """Majority vote over pairwise classifiers."""
        if self.classes_ is None:
            raise RuntimeError("classifier must be fit before use")
        X = check_matrix(X, "X")
        n = X.shape[0]
        votes: dict[float, np.ndarray] = defaultdict(lambda: np.zeros(n))
        margins: dict[float, np.ndarray] = defaultdict(lambda: np.zeros(n))
        for a, b, model in self.models_:
            scores = model.decision_function(X)
            wins_a = scores >= 0
            votes[a] += wins_a
            votes[b] += ~wins_a
            margins[a] += scores
            margins[b] -= scores
        classes = self.classes_
        vote_matrix = np.column_stack([votes[float(c)] for c in classes])
        margin_matrix = np.column_stack([margins[float(c)] for c in classes])
        # argmax on votes; stable tie-break via margins scaled to < 1 vote.
        margin_span = np.abs(margin_matrix).max() + 1.0
        combined = vote_matrix + margin_matrix / (2.0 * margin_span)
        return classes[np.argmax(combined, axis=1)]

    def score(self, X, y) -> float:
        """Multiclass accuracy."""
        y = _check_multiclass_labels(y)
        return float(np.mean(self.predict(X) == y))
