"""Cross-validated hyperparameter search for the SVM models.

The paper fixes C = 50 and rho = 100 by hand; an adopter needs a
principled way to pick them.  :class:`GridSearch` runs k-fold
cross-validation (via :func:`repro.data.splits.kfold_indices`) over a
parameter grid for any estimator following the ``fit(X, y)/score(X, y)``
protocol constructed by a factory — centralized SVC out of the box, and
the consensus trainers through a partition-aware factory.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.data.splits import kfold_indices
from repro.utils.validation import check_labels, check_matrix

__all__ = ["GridSearch", "GridSearchResult"]

EstimatorFactory = Callable[..., Any]


@dataclass(frozen=True)
class GridSearchResult:
    """Outcome of one grid-search run.

    Attributes
    ----------
    best_params:
        Parameter dict with the highest mean CV accuracy.
    best_score:
        That mean accuracy.
    table:
        Every evaluated combination: ``(params, mean_score, std_score)``.
    """

    best_params: dict[str, Any]
    best_score: float
    table: list[tuple[dict[str, Any], float, float]] = field(default_factory=list)


class GridSearch:
    """Exhaustive k-fold CV over a parameter grid.

    Parameters
    ----------
    factory:
        ``factory(**params)`` builds a fresh unfitted estimator.
    grid:
        Mapping of parameter name to candidate values; the search covers
        the Cartesian product.
    n_folds:
        Cross-validation folds.
    seed:
        Fold-assignment seed.
    """

    def __init__(
        self,
        factory: EstimatorFactory,
        grid: dict[str, list],
        *,
        n_folds: int = 5,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if not grid:
            raise ValueError("grid must contain at least one parameter")
        if any(len(v) == 0 for v in grid.values()):
            raise ValueError("every grid entry needs at least one candidate value")
        self.factory = factory
        self.grid = {k: list(v) for k, v in grid.items()}
        self.n_folds = int(n_folds)
        self.seed = seed

    def _combinations(self):
        names = sorted(self.grid)
        for values in itertools.product(*(self.grid[n] for n in names)):
            yield dict(zip(names, values))

    def run(self, X, y) -> GridSearchResult:
        """Evaluate the full grid on ``(X, y)``; return the ranking."""
        X = check_matrix(X, "X")
        y = check_labels(y, "y", length=X.shape[0])
        folds = kfold_indices(X.shape[0], self.n_folds, seed=self.seed)

        table: list[tuple[dict[str, Any], float, float]] = []
        for params in self._combinations():
            scores = []
            for train_idx, test_idx in folds:
                # Degenerate folds (single-class train split) score 0 so
                # they never win; they only occur on tiny datasets.
                if np.unique(y[train_idx]).size < 2:
                    scores.append(0.0)
                    continue
                model = self.factory(**params)
                model.fit(X[train_idx], y[train_idx])
                scores.append(model.score(X[test_idx], y[test_idx]))
            table.append((params, float(np.mean(scores)), float(np.std(scores))))

        table.sort(key=lambda row: row[1], reverse=True)
        best_params, best_score, _ = table[0]
        return GridSearchResult(best_params=best_params, best_score=best_score, table=table)
