"""Differentially private logistic regression (Chaudhuri & Monteleoni [7]).

The perturbation-based comparator from the paper's related work: train
L2-regularized logistic regression centrally, then add noise to the
*output* weight vector so that the released classifier is
epsilon-differentially private (the sensitivity method of [7]).

Output perturbation: for n samples with ``||x_i|| <= 1`` and regularizer
``lam``, the L2 sensitivity of the minimizer is ``2 / (n lam)``; adding
a noise vector with density ``~ exp(-eps ||b|| / sensitivity)`` (i.e.
norm ~ Gamma(k, sensitivity/eps), uniform direction) yields
eps-differential privacy.  Features are scaled into the unit ball
internally so the guarantee applies to arbitrary inputs.

The optimizer itself (L-BFGS-free, plain gradient descent with
backtracking) is implemented from scratch — the objective is smooth and
strongly convex, so this is robust.
"""

from __future__ import annotations

import numpy as np

from repro.svm.model import accuracy
from repro.utils.rng import as_rng
from repro.utils.validation import check_labels, check_matrix, check_positive

__all__ = ["DPLogisticRegression"]


class DPLogisticRegression:
    """Output-perturbed, epsilon-DP L2-regularized logistic regression.

    Parameters
    ----------
    epsilon:
        Differential-privacy budget; ``np.inf`` disables the noise
        (plain regularized logistic regression).
    lam:
        L2 regularization strength (the lambda of [7]); larger lambda
        means lower sensitivity and less noise, but more bias.
    max_iter, tol:
        Gradient-descent controls.
    """

    def __init__(
        self,
        epsilon: float = 1.0,
        lam: float = 0.01,
        *,
        max_iter: int = 2000,
        tol: float = 1e-8,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if not (epsilon > 0):
            raise ValueError(f"epsilon must be > 0, got {epsilon}")
        self.epsilon = float(epsilon)
        self.lam = check_positive(lam, "lam")
        self.max_iter = int(max_iter)
        self.tol = tol
        self.seed = seed
        self.coef_: np.ndarray | None = None
        self.noiseless_coef_: np.ndarray | None = None
        self._radius: float = 1.0

    def fit(self, X, y) -> "DPLogisticRegression":
        """Train on ``(X, y)`` and perturb the released weights."""
        X = check_matrix(X, "X")
        y = check_labels(y, "y", length=X.shape[0])
        rng = as_rng(self.seed)
        n, k = X.shape

        # Scale into the unit ball (the sensitivity analysis requires it).
        self._radius = float(np.max(np.linalg.norm(X, axis=1)))
        if self._radius == 0.0:
            raise ValueError("X is identically zero")
        Xs = X / self._radius

        w = np.zeros(k)
        step = 1.0
        prev_obj = self._objective(w, Xs, y, n)
        for _ in range(self.max_iter):
            grad = self._gradient(w, Xs, y, n)
            if np.linalg.norm(grad) <= self.tol:
                break
            # Backtracking line search on the (convex, smooth) objective.
            step = min(step * 2.0, 1e4)
            while step > 1e-12:
                candidate = w - step * grad
                obj = self._objective(candidate, Xs, y, n)
                if obj <= prev_obj - 0.5 * step * float(grad @ grad):
                    break
                step *= 0.5
            w = w - step * grad
            prev_obj = self._objective(w, Xs, y, n)

        self.noiseless_coef_ = w.copy()
        if np.isfinite(self.epsilon):
            sensitivity = 2.0 / (n * self.lam)
            norm = rng.gamma(shape=k, scale=sensitivity / self.epsilon)
            direction = rng.standard_normal(k)
            direction /= np.linalg.norm(direction)
            w = w + norm * direction
        self.coef_ = w
        return self

    def _objective(self, w: np.ndarray, X: np.ndarray, y: np.ndarray, n: int) -> float:
        margins = y * (X @ w)
        # log(1 + exp(-m)) computed stably, plus the L2 regularizer.
        loss = np.logaddexp(0.0, -margins).mean()
        return float(loss + 0.5 * self.lam * float(w @ w))

    def _gradient(self, w: np.ndarray, X: np.ndarray, y: np.ndarray, n: int) -> np.ndarray:
        margins = y * (X @ w)
        sigma = 1.0 / (1.0 + np.exp(np.clip(margins, -500, 500)))
        return -(X.T @ (y * sigma)) / n + self.lam * w

    def decision_function(self, X) -> np.ndarray:
        """Signed scores of the (perturbed) released model."""
        if self.coef_ is None:
            raise RuntimeError("model must be fit before use")
        X = check_matrix(X, "X")
        return (X / self._radius) @ self.coef_

    def predict(self, X) -> np.ndarray:
        """Predicted -1/+1 labels."""
        return np.where(self.decision_function(X) >= 0, 1.0, -1.0)

    def score(self, X, y) -> float:
        """Accuracy on ``(X, y)``."""
        return accuracy(check_labels(y, "y"), self.predict(X))
