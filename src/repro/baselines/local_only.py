"""No-collaboration baseline: every learner trains alone.

This is the privacy-optimal strawman (nothing is ever communicated) and
the utility floor the consensus scheme must beat: with M learners each
holding 1/M of the data, local models are noticeably worse than the
consensus model whenever the per-learner sample size is limiting.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.svm.kernels import Kernel
from repro.svm.model import SVC, accuracy
from repro.utils.validation import check_labels, check_matrix

__all__ = ["LocalOnlySVM"]


class LocalOnlySVM:
    """Independent per-learner SVMs with no communication.

    Parameters mirror :class:`~repro.svm.model.SVC`.  ``predict`` uses
    the model of ``eval_learner`` (to compare against the paper's
    "results at learner 1" convention); ``score_all`` reports every
    learner's accuracy and their mean.
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        C: float = 50.0,
        *,
        eval_learner: int = 0,
        tol: float = 1e-3,
        max_iter: int = 200_000,
    ) -> None:
        self.kernel = kernel
        self.C = C
        self.eval_learner = int(eval_learner)
        self.tol = tol
        self.max_iter = max_iter
        self.models_: list[SVC] = []

    def fit(self, partitions: list[Dataset]) -> "LocalOnlySVM":
        """Train one independent SVM per partition."""
        if len(partitions) < 1:
            raise ValueError("need at least one partition")
        self.models_ = [
            SVC(kernel=self.kernel, C=self.C, tol=self.tol, max_iter=self.max_iter).fit(p.X, p.y)
            for p in partitions
        ]
        if not 0 <= self.eval_learner < len(self.models_):
            raise ValueError(f"eval_learner {self.eval_learner} out of range")
        return self

    def predict(self, X) -> np.ndarray:
        """Predictions of the ``eval_learner``'s local model."""
        if not self.models_:
            raise RuntimeError("model must be fit before use")
        return self.models_[self.eval_learner].predict(check_matrix(X, "X"))

    def score(self, X, y) -> float:
        """Accuracy of the ``eval_learner``'s local model."""
        return accuracy(check_labels(y, "y"), self.predict(X))

    def score_all(self, X, y) -> dict[str, float]:
        """Per-learner accuracies plus their mean."""
        if not self.models_:
            raise RuntimeError("model must be fit before use")
        X = check_matrix(X, "X")
        y = check_labels(y, "y", length=X.shape[0])
        scores = {f"learner{i}": model.score(X, y) for i, model in enumerate(self.models_)}
        scores["mean"] = float(np.mean(list(scores.values())))
        return scores
