"""Random-kernel baseline (Mangasarian & Wild [21], Mangasarian et al. [22]).

The randomization-based comparator from the paper's related work: the
learners agree on a secret random projection ``P`` (the "random
kernel"), publish their *projected* data ``X_m P`` to an untrusted
server, and the server trains an ordinary SVM on the projections.
Classification of a new point requires projecting it first — i.e. the
learners must keep ``P`` secret forever, and the scheme only fits the
client/server setting (exactly the drawbacks the paper lists).

Privacy here is heuristic: with ``n_components < k`` the map is not
invertible and restricted-isometry arguments say the geometry (hence the
margin) is approximately preserved, which is why accuracy stays close
to the full-data SVM while the server never sees raw features.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.svm.model import SVC, accuracy
from repro.utils.rng import as_rng
from repro.utils.validation import check_labels, check_matrix

__all__ = ["RandomKernelSVM"]


class RandomKernelSVM:
    """SVM trained on secretly random-projected, pooled data.

    Parameters
    ----------
    n_components:
        Projection dimension r (< k for non-invertibility).  Defaults to
        ``max(1, k // 2)`` at fit time.
    C:
        SVM slack penalty.
    seed:
        RNG seed for the shared secret projection.
    """

    def __init__(
        self,
        n_components: int | None = None,
        C: float = 50.0,
        *,
        seed: int | np.random.Generator | None = 0,
        tol: float = 1e-3,
        max_iter: int = 200_000,
    ) -> None:
        self.n_components = n_components
        self.C = C
        self.seed = seed
        self.tol = tol
        self.max_iter = max_iter
        self.projection_: np.ndarray | None = None
        self.model_: SVC | None = None

    def fit(self, partitions: list[Dataset]) -> "RandomKernelSVM":
        """Pool the learners' projected shares and train at the server."""
        if len(partitions) < 1:
            raise ValueError("need at least one partition")
        k = partitions[0].n_features
        if any(p.n_features != k for p in partitions):
            raise ValueError("all partitions must share the feature dimension")
        r = self.n_components if self.n_components is not None else max(1, k // 2)
        if r > k:
            raise ValueError(f"n_components ({r}) cannot exceed n_features ({k})")
        rng = as_rng(self.seed)
        # The shared secret: a Gaussian projection, scaled to preserve
        # expected norms (Johnson-Lindenstrauss convention).
        self.projection_ = rng.standard_normal((k, r)) / np.sqrt(r)

        projected = np.vstack([p.X @ self.projection_ for p in partitions])
        labels = np.concatenate([p.y for p in partitions])
        self.model_ = SVC(C=self.C, tol=self.tol, max_iter=self.max_iter).fit(projected, labels)
        return self

    def published_view(self, partitions: list[Dataset]) -> np.ndarray:
        """What the untrusted server actually receives (for leakage demos)."""
        if self.projection_ is None:
            raise RuntimeError("model must be fit before use")
        return np.vstack([check_matrix(p.X, "X") @ self.projection_ for p in partitions])

    def predict(self, X) -> np.ndarray:
        """Project with the shared secret, then classify at the server."""
        if self.model_ is None or self.projection_ is None:
            raise RuntimeError("model must be fit before use")
        X = check_matrix(X, "X")
        if X.shape[1] != self.projection_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, projection expects {self.projection_.shape[0]}"
            )
        return self.model_.predict(X @ self.projection_)

    def score(self, X, y) -> float:
        """Accuracy on ``(X, y)``."""
        return accuracy(check_labels(y, "y"), self.predict(X))
