"""Comparator schemes from the paper's related-work discussion (Section II).

* :class:`LocalOnlySVM` — no collaboration at all: each learner trains
  on its own share.  The gap to the consensus scheme is the value of
  collaborating.
* :class:`RandomKernelSVM` — the randomization-based approach of
  Mangasarian et al. [21][22]: learners publish randomly projected data;
  a server trains on the projections.  Cheap, but the projection matrix
  is a shared secret and privacy is only computational/heuristic (RIP
  argument) — the trade-offs the paper criticizes.
* :class:`DPLogisticRegression` — Chaudhuri & Monteleoni's output-
  perturbed, epsilon-differentially-private logistic regression [7]:
  strong formal privacy, pay in accuracy as epsilon shrinks.
"""

from repro.baselines.dp import DPLogisticRegression
from repro.baselines.local_only import LocalOnlySVM
from repro.baselines.random_kernel import RandomKernelSVM

__all__ = ["DPLogisticRegression", "LocalOnlySVM", "RandomKernelSVM"]
