"""Security analysis machinery (paper Section V).

The paper's threat model: semi-honest learners and a semi-honest
Reducer; per-iteration local results ``w_m`` are sensitive (an adversary
collecting them could reverse-engineer the private training set); the
scheme is secure iff local results are averaged without disclosing any
individual value, even against coalitions.

This package makes those claims *executable*:

* :mod:`repro.security.adversary` — reconstructs the exact views
  (wiretapped message sets) available to a semi-honest Reducer, a global
  eavesdropper, or a coalition of Reducer + corrupted Mappers, by
  replaying the simulated network's message log;
* :mod:`repro.security.analysis` — quantifies what each view reveals:
  recovery attempts against the masking protocol, statistical
  uniformity of masked shares, and the kernel-matrix linear-system
  attack ([8]/[29]) that breaks the secure-dot-product baselines the
  paper critiques.
"""

from repro.security.adversary import (
    AdversaryView,
    coalition_view,
    eavesdropper_view,
    reducer_view,
)
from repro.security.analysis import (
    coalition_recovery_attempt,
    kernel_linear_system_attack,
    plaintext_leak_check,
    share_uniformity_statistic,
)

__all__ = [
    "AdversaryView",
    "coalition_recovery_attempt",
    "coalition_view",
    "eavesdropper_view",
    "kernel_linear_system_attack",
    "plaintext_leak_check",
    "reducer_view",
    "share_uniformity_statistic",
]
