"""Leakage quantification: attacks executed against recorded views.

Three analyses back the paper's Section V arguments:

1. :func:`coalition_recovery_attempt` — the best possible inference a
   coalition (Reducer + corrupted Mappers) can make about one honest
   Mapper's local result from the masking protocol's transcript.  It
   recovers the target exactly **iff every other Mapper is corrupted**
   (in which case the sum itself already reveals it — no protocol can
   help); with >= 2 honest Mappers the residual is a one-time-padded
   value, i.e. garbage.
2. :func:`share_uniformity_statistic` — masked shares delivered to the
   Reducer should be indistinguishable from uniform group elements; we
   measure the empirical distribution of their high-order bits.
3. :func:`kernel_linear_system_attack` — the attack the paper cites
   against secure-dot-product kernel schemes ([8]/[29]): a learner that
   obtains kernel rows ``K(x_secret, x_j) = <x_secret, x_j>`` against
   >= k of its *own* samples solves a linear system and recovers
   ``x_secret`` exactly.  This motivates never materializing the joint
   kernel matrix, which the paper's scheme avoids by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto.fixed_point import FixedPointCodec
from repro.security.adversary import AdversaryView
from repro.utils.validation import check_matrix, check_vector

__all__ = [
    "CoalitionRecovery",
    "coalition_recovery_attempt",
    "kernel_linear_system_attack",
    "plaintext_leak_check",
    "share_uniformity_statistic",
]


@dataclass(frozen=True)
class CoalitionRecovery:
    """Outcome of a coalition's recovery attempt against one Mapper.

    Attributes
    ----------
    target:
        The honest Mapper attacked.
    estimate:
        The coalition's best estimate of the target's private vector
        (decoded to floats).
    residual_masks_unknown:
        Number of pairwise pads the coalition could not cancel.  Zero
        means exact recovery; positive means the estimate is one-time-
        padded noise.
    """

    target: str
    estimate: np.ndarray
    residual_masks_unknown: int


def coalition_recovery_attempt(
    view: AdversaryView,
    target: str,
    participants: list[str],
    codec: FixedPointCodec,
    *,
    round_index: int = 0,
) -> CoalitionRecovery:
    """Attempt to recover ``target``'s input to a ``"fresh"``-mode secure sum.

    The coalition starts from the target's masked share (visible to the
    corrupted Reducer) and cancels every pairwise mask any coalition
    member generated for, or received from, the target.  Masks exchanged
    between the target and *honest* Mappers cannot be cancelled — they
    are the coalition-resistance pads.

    ``round_index`` selects which secure-sum invocation to attack when
    the log spans multiple iterations.
    """
    if target in view.corrupted:
        raise ValueError("the target must be an honest participant")
    others = [p for p in participants if p != target]
    n_participants = len(participants)

    # Locate the target's masked share for the requested round.
    shares = [m for m in view.messages if m.kind == "masked-share" and m.src == target]
    if round_index >= len(shares):
        raise ValueError(
            f"view contains {len(shares)} shares from {target!r}, "
            f"round_index {round_index} out of range"
        )
    share = [int(v) for v in shares[round_index].payload]
    n = len(share)

    # Masks the coalition knows: sent by target to a corrupted Mapper
    # (cancel the +mask in Sed) or sent to target by a corrupted Mapper
    # (cancel the -mask in Rev).  Masks of round r are the r-th mask
    # message on each ordered pair's wire.
    estimate = list(share)
    unknown = 0
    for other in others:
        sent = [
            m for m in view.messages if m.kind == "mask" and m.src == target and m.dst == other
        ]
        if other in view.corrupted and round_index < len(sent):
            estimate = codec.subtract(estimate, [int(v) for v in sent[round_index].payload])
        else:
            unknown += 1
        received = [
            m for m in view.messages if m.kind == "mask" and m.src == other and m.dst == target
        ]
        if other in view.corrupted and round_index < len(received):
            estimate = codec.add(estimate, [int(v) for v in received[round_index].payload])
        else:
            unknown += 1

    del n_participants
    return CoalitionRecovery(
        target=target,
        estimate=codec.decode(estimate),
        residual_masks_unknown=unknown,
    )


def share_uniformity_statistic(view: AdversaryView, codec: FixedPointCodec) -> float:
    """Uniformity of the masked shares' top byte, as a chi-squared p-proxy.

    Collects every masked-share residue in the view, extracts the most
    significant byte, and returns the normalized chi-squared statistic
    against the uniform distribution (values near 1 are consistent with
    uniform; a plaintext leak would concentrate mass near byte 0 or 255
    because real encodings are tiny within the 2^128 group).
    """
    residues: list[int] = []
    for payload in view.payloads("masked-share"):
        residues.extend(int(v) for v in payload)
    if not residues:
        raise ValueError("view contains no masked shares")
    shift = codec.modulus_bits - 8
    top_bytes = np.array([r >> shift for r in residues])
    counts = np.bincount(top_bytes, minlength=256)
    expected = len(residues) / 256.0
    chi2 = float(np.sum((counts - expected) ** 2 / expected))
    # Normalize by the degrees of freedom so ~1 means "uniform-looking".
    return chi2 / 255.0


def plaintext_leak_check(view: AdversaryView, true_values: dict[str, np.ndarray]) -> dict[str, float]:
    """How close the view's per-mapper payloads are to the true locals.

    For the plaintext aggregator the Reducer sees each ``w_m`` exactly
    (distance 0); for the secure protocol the masked share decodes to an
    unrelated group element (astronomical distance).  Returns the
    infinity-norm error of the best matching payload per mapper.
    """
    errors: dict[str, float] = {}
    for node, value in true_values.items():
        value = np.asarray(value, dtype=float).ravel()
        best = np.inf
        for message in view.messages:
            if message.src != node or message.kind not in ("consensus", "masked-share"):
                continue
            payload = message.payload
            if isinstance(payload, dict):
                flat = np.concatenate(
                    [np.asarray(payload[k], dtype=float).ravel() for k in sorted(payload)]
                )
            else:
                flat = np.asarray(payload, dtype=float).ravel()
            if flat.shape == value.shape:
                best = min(best, float(np.max(np.abs(flat - value))))
        errors[node] = best
    return errors


def kernel_linear_system_attack(known_samples, kernel_row) -> np.ndarray:
    """Recover a private point from linear-kernel evaluations (Section V).

    Given ``known_samples`` (an ``(m, k)`` matrix of the attacker's own
    data, ``m >= k``) and ``kernel_row[j] = <x_secret, known_samples[j]>``
    (the kernel entries a secure-dot-product scheme hands the attacker),
    solve the least-squares system for ``x_secret``.  With ``m >= k``
    independent samples the recovery is exact — the leak the paper warns
    about in schemes that reveal the kernel matrix.
    """
    A = check_matrix(known_samples, "known_samples")
    b = check_vector(kernel_row, "kernel_row", length=A.shape[0])
    if A.shape[0] < A.shape[1]:
        raise ValueError(
            f"attack needs at least k={A.shape[1]} known samples, got {A.shape[0]}"
        )
    solution, *_ = np.linalg.lstsq(A, b, rcond=None)
    return solution
