"""Adversary views: what each semi-honest party actually observes.

Because every byte of the protocols flows through the simulated
:class:`~repro.cluster.network.Network`, an adversary's knowledge is
precisely a subset of the message log.  The three standard views:

* **Reducer view** — messages delivered *to* the Reducer (its inbox).
  Under the paper's protocol this is the masked shares only.
* **Eavesdropper view** — every message on the wire (a global passive
  network adversary).  Sees masks *and* masked shares, but each pairwise
  mask still pads the share of both its endpoints.
* **Coalition view** — the Reducer plus a set of corrupted Mappers pool
  everything they sent, received, or generated.  The paper's protocol
  resists any coalition that leaves >= 2 Mappers honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.network import Message, Network

__all__ = ["AdversaryView", "coalition_view", "eavesdropper_view", "reducer_view"]


@dataclass(frozen=True)
class AdversaryView:
    """A set of observed messages plus who is corrupted.

    Attributes
    ----------
    corrupted:
        Node ids whose internal state the adversary controls.
    messages:
        The wiretapped messages, in wire order.
    """

    corrupted: frozenset[str]
    messages: tuple[Message, ...] = field(default_factory=tuple)

    def of_kind(self, kind: str) -> list[Message]:
        """Messages with the given application tag."""
        return [m for m in self.messages if m.kind == kind]

    def payloads(self, kind: str) -> list:
        """Payloads of all messages with the given tag."""
        return [m.payload for m in self.messages if m.kind == kind]

    def received_by(self, node_id: str, kind: str | None = None) -> list[Message]:
        """Messages in the view delivered to ``node_id``."""
        return [
            m
            for m in self.messages
            if m.dst == node_id and (kind is None or m.kind == kind)
        ]

    def sent_by(self, node_id: str, kind: str | None = None) -> list[Message]:
        """Messages in the view originated by ``node_id``."""
        return [
            m
            for m in self.messages
            if m.src == node_id and (kind is None or m.kind == kind)
        ]


def _require_log(network: Network) -> list[Message]:
    if not network.keep_log:
        raise ValueError("network was created with keep_log=False; no view to replay")
    return network.message_log


def reducer_view(network: Network, reducer_id: str = "reducer") -> AdversaryView:
    """The semi-honest Reducer's view: exactly its incoming messages."""
    log = _require_log(network)
    return AdversaryView(
        corrupted=frozenset({reducer_id}),
        messages=tuple(m for m in log if m.dst == reducer_id),
    )


def eavesdropper_view(network: Network) -> AdversaryView:
    """A global passive eavesdropper: the entire wire."""
    log = _require_log(network)
    return AdversaryView(corrupted=frozenset(), messages=tuple(log))


def coalition_view(
    network: Network,
    corrupted_mappers: list[str],
    reducer_id: str = "reducer",
    *,
    include_reducer: bool = True,
) -> AdversaryView:
    """Pooled view of the Reducer (optionally) plus corrupted Mappers.

    A corrupted node contributes every message it sent or received —
    including the pairwise masks it exchanged, which is what a coalition
    attack tries to exploit.
    """
    log = _require_log(network)
    corrupted = set(corrupted_mappers)
    if include_reducer:
        corrupted.add(reducer_id)
    return AdversaryView(
        corrupted=frozenset(corrupted),
        messages=tuple(m for m in log if m.src in corrupted or m.dst in corrupted),
    )
