"""Static-analysis suite for the repro codebase (``repro lint``).

The privacy guarantees of the paper's protocols are easy to void with a
one-line change — send a raw block instead of a masked one, reuse a
pairwise pad, draw a mask from the stdlib RNG — and none of those
mistakes fail a unit test.  This package provides an AST-based lint
framework with six shipped checkers:

* :mod:`~repro.analysis.checkers.privacy` — intraprocedural taint-flow
  from raw data (``.X``/``.y``, dataset loaders, HDFS payloads) into
  network sends, storage, and serialization, unless routed through a
  sanctioned crypto sink;
* :mod:`~repro.analysis.interproc` — the interprocedural extension:
  function summaries propagated over the project call graph
  (:mod:`~repro.analysis.callgraph`), so leaks that cross function
  boundaries are reported with their full source→sink call path;
* :mod:`~repro.analysis.checkers.protocol` — static verification of the
  secure-summation invariants (mask balance, pad-seed provenance,
  participant floor);
* :mod:`~repro.analysis.checkers.crypto` — randomness and arithmetic
  misuse inside ``repro/crypto`` and the DP baseline;
* :mod:`~repro.analysis.checkers.determinism` — wall clocks, unseeded
  RNGs, unordered iteration, salted ``hash()``;
* :mod:`~repro.analysis.checkers.docs` — counter names emitted by the
  code but missing from ``docs/OBSERVABILITY.md``.

Entry points: :func:`~repro.analysis.engine.run_lint` (programmatic)
and ``repro lint`` (CLI).  Suppression: ``# repro-lint: disable=RULE``
pragmas, the ``.repro-lint.toml`` allowlist, and
:mod:`~repro.analysis.baseline` snapshots (``--baseline``) — see
``docs/STATIC_ANALYSIS.md`` for the rule registry.  CI hooks: SARIF
output (``--format sarif``) and the whole-run result cache
(:mod:`~repro.analysis.cache`).
"""

from repro.analysis.allowlist import Allowlist, AllowlistEntry, AllowlistError
from repro.analysis.base import Checker, ModuleChecker, Project
from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.cache import LintCache
from repro.analysis.engine import LintReport, all_rules, default_checkers, run_lint
from repro.analysis.findings import Finding, Rule, Severity
from repro.analysis.source import ModuleSource

__all__ = [
    "Allowlist",
    "AllowlistEntry",
    "AllowlistError",
    "Baseline",
    "BaselineError",
    "Checker",
    "Finding",
    "LintCache",
    "LintReport",
    "ModuleChecker",
    "ModuleSource",
    "Project",
    "Rule",
    "Severity",
    "all_rules",
    "default_checkers",
    "run_lint",
]
