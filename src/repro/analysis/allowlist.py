"""Audited-exception allowlist for the static-analysis suite.

Pragmas (see :mod:`repro.analysis.source`) silence a rule at one source
line and live next to the code; the **allowlist** is the centralized,
reviewable register of exceptions, kept in ``.repro-lint.toml`` at the
repo root::

    [[allow]]
    rule = "privacy.raw-data-to-network"
    path = "src/repro/cluster/hdfs.py"
    contains = "hdfs-remote-read"          # optional: substring of the line
    reason = "remote reads of private files are refused earlier"

Every entry **must** carry a non-empty ``reason`` — an allowlist entry
without a justification defeats the point of auditing.  ``contains``
pins the entry to lines containing a substring, so entries survive line
drift without going stale silently; entries that match no finding are
themselves reported (``lint.unused-allowlist-entry``) so dead
exceptions get cleaned up.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding

__all__ = ["Allowlist", "AllowlistEntry", "AllowlistError"]

DEFAULT_ALLOWLIST_NAME = ".repro-lint.toml"


class AllowlistError(ValueError):
    """Raised for malformed allowlist files (missing reason, bad keys)."""


@dataclass
class AllowlistEntry:
    """One audited exception.

    Attributes
    ----------
    rule:
        Rule id the entry suppresses.
    path:
        Repo-relative POSIX path the entry applies to.
    reason:
        Mandatory human justification.
    contains:
        Optional substring the offending source line must contain.
    """

    rule: str
    path: str
    reason: str
    contains: str = ""
    used: bool = field(default=False, compare=False)

    def matches(self, finding: Finding) -> bool:
        """Whether this entry covers ``finding``."""
        if finding.rule != self.rule or finding.path != self.path:
            return False
        if self.contains and self.contains not in finding.source:
            return False
        return True


@dataclass
class Allowlist:
    """The parsed allowlist plus its provenance."""

    entries: list[AllowlistEntry] = field(default_factory=list)
    path: str = ""

    @classmethod
    def load(cls, path: Path) -> "Allowlist":
        """Parse a ``.repro-lint.toml`` file, validating every entry."""
        try:
            data = tomllib.loads(path.read_text(encoding="utf-8"))
        except tomllib.TOMLDecodeError as exc:
            raise AllowlistError(f"{path}: invalid TOML: {exc}") from exc
        raw_entries = data.get("allow", [])
        if not isinstance(raw_entries, list):
            raise AllowlistError(f"{path}: [[allow]] must be an array of tables")
        entries: list[AllowlistEntry] = []
        for index, raw in enumerate(raw_entries):
            unknown = sorted(set(raw) - {"rule", "path", "reason", "contains"})
            if unknown:
                raise AllowlistError(
                    f"{path}: allow[{index}] has unknown keys {unknown}"
                )
            missing = sorted({"rule", "path", "reason"} - set(raw))
            if missing:
                raise AllowlistError(
                    f"{path}: allow[{index}] is missing required keys {missing}"
                )
            if not str(raw["reason"]).strip():
                raise AllowlistError(
                    f"{path}: allow[{index}] must give a non-empty reason — "
                    "unaudited exceptions are not allowed"
                )
            entries.append(
                AllowlistEntry(
                    rule=str(raw["rule"]),
                    path=str(raw["path"]),
                    reason=str(raw["reason"]).strip(),
                    contains=str(raw.get("contains", "")),
                )
            )
        return cls(entries=entries, path=str(path))

    def match(self, finding: Finding) -> AllowlistEntry | None:
        """First entry covering ``finding`` (marking it used), else None."""
        for entry in self.entries:
            if entry.matches(finding):
                entry.used = True
                return entry
        return None

    def unused_entries(self) -> list[AllowlistEntry]:
        """Entries that matched no finding in the last run."""
        return [entry for entry in self.entries if not entry.used]
