"""Interprocedural privacy taint engine (``privacy.interproc-*`` rules).

The intraprocedural checker proves "no raw data reaches a sink *within
one function*"; this engine closes the cross-function blind spot the
paper's privacy argument actually depends on.  It computes a **summary**
for every indexed function — does it return raw training data?  do any
of its parameters flow to its return value or to a privacy sink? — and
iterates those summaries to a fixpoint over the call graph
(:mod:`repro.analysis.callgraph`).  With summaries in hand, two new
leak shapes become visible:

* a sink payload that is only tainted *through a call* — e.g.
  ``network.send(node, r, collect(dataset))`` where ``collect`` returns
  ``dataset.X`` two hops down (rule ``privacy.interproc-leak``, reported
  at the sink with the full source→sink call path in the finding's
  ``trace``);
* a tainted argument handed to a function that forwards its parameter
  into a sink — e.g. ``ship(network, data.X)`` where ``ship`` does the
  ``send`` (also ``privacy.interproc-leak``, reported at the call site);
* the helper at the *origin* of a reported leak — the function whose
  ``return self.X`` / ``return dataset.X`` starts the chain — is
  additionally flagged with ``privacy.return-raw`` at the return
  statement, so the fix site is visible even when the sink lives in
  another file.

Findings the intraprocedural checker already reports are *not*
duplicated here: a site is only reported when plain single-function
taint deems it clean but summary-aware taint does not.  Sanitizer calls
(masking, sharing, encryption, secure aggregation) stop taint exactly as
in the intraprocedural analysis, so sanctioned flows stay silent.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Iterator

from repro.analysis.base import Checker, Project
from repro.analysis.callgraph import CallGraph, FunctionInfo
from repro.analysis.checkers.privacy import (
    SANITIZER_CALLS,
    SERIALIZERS,
    SOURCE_ATTRS,
    SOURCE_CALLS,
    SOURCE_KEYS,
    _call_name,
    _dotted_name,
    _keyword_is_true,
    _payload_argument,
    _scope_statements,
    _ScopeTaint,
)
from repro.analysis.findings import Finding, Rule, Severity
from repro.analysis.source import ModuleSource

__all__ = ["InterproceduralTaintChecker", "Step", "Summary"]

#: Parameters beyond this index are not summarized (fan-out bound).
MAX_SUMMARIZED_PARAMS = 8

#: Global summary-fixpoint rounds (bounds call-chain depth propagation).
MAX_SUMMARY_ROUNDS = 6

#: Depth bound for taint-origin explanation chains.
MAX_EXPLAIN_DEPTH = 6


@dataclass(frozen=True)
class Step:
    """One hop of a source→sink path.

    ``raw_return`` carries the display name of the function whose
    ``return`` statement originates the raw data (the
    ``privacy.return-raw`` anchor), ``None`` for intermediate hops.
    """

    path: str
    line: int
    desc: str
    raw_return: str | None = None

    def render(self) -> str:
        return f"{self.path}:{self.line} {self.desc}"


@dataclass
class Summary:
    """Taint summary of one function, iterated to a fixpoint.

    Attributes
    ----------
    returns_tainted:
        The function returns raw training data unconditionally (it reads
        a source itself, or calls something that does).
    return_origin:
        Path from the function's ``return`` down to the raw source.
    param_returns:
        Indices of parameters whose taint reaches the return value.
    param_sinks:
        Parameter index → path from the function's body into the sink
        that parameter reaches (directly or through further calls).
    """

    returns_tainted: bool = False
    return_origin: tuple[Step, ...] = ()
    param_returns: frozenset[int] = frozenset()
    param_sinks: dict[int, tuple[Step, ...]] = field(default_factory=dict)

    def state_key(self) -> tuple[bool, frozenset[int], frozenset[int]]:
        """Convergence key: origins are derived data, not fixpoint state."""
        return (self.returns_tainted, self.param_returns, frozenset(self.param_sinks))


class _SummaryTaint(_ScopeTaint):
    """Scope taint that additionally consults function summaries."""

    def __init__(
        self,
        engine: "InterproceduralTaintChecker",
        info: FunctionInfo,
        seeds: frozenset[str] = frozenset(),
    ) -> None:
        super().__init__(info.node)
        self.engine = engine
        self.info = info
        self.tainted |= set(seeds)

    def expr_tainted(self, node: ast.AST, extra: frozenset[str] = frozenset()) -> bool:
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name in SANITIZER_CALLS:
                return False
            if name in SOURCE_CALLS:
                return True
            for cand, summary in self.engine.call_summaries(node, self.info):
                if summary.returns_tainted:
                    return True
                for idx, arg in _map_args(cand, node):
                    if idx in summary.param_returns and self.expr_tainted(arg, extra):
                        return True
            # Intraprocedural fallback: tainted receiver or argument.
            parts: list[ast.AST] = list(node.args) + [kw.value for kw in node.keywords]
            if isinstance(node.func, ast.Attribute):
                parts.append(node.func.value)
            return any(self.expr_tainted(part, extra) for part in parts)
        return super().expr_tainted(node, extra)


def _map_args(info: FunctionInfo, call: ast.Call) -> Iterator[tuple[int, ast.AST]]:
    """Pair ``call``'s arguments with ``info``'s parameter indices."""
    offset = 0
    if info.cls is not None and info.params and info.params[0] in ("self", "cls"):
        offset = 1
    for position, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            continue
        index = position + offset
        if index < len(info.params):
            yield index, arg
    by_name = {param: i for i, param in enumerate(info.params)}
    for keyword in call.keywords:
        if keyword.arg is not None and keyword.arg in by_name:
            yield by_name[keyword.arg], keyword.value


def _direct_source(expr: ast.AST) -> ast.AST | None:
    """The first raw-data source expression syntactically inside ``expr``."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and node.attr in SOURCE_ATTRS:
            return node
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.slice, ast.Constant)
            and node.slice.value in SOURCE_KEYS
        ):
            return node
        if isinstance(node, ast.Call) and _call_name(node) in SOURCE_CALLS:
            return node
    return None


def _unparse(node: ast.AST, limit: int = 60) -> str:
    text = ast.unparse(node)
    return text if len(text) <= limit else text[: limit - 1] + "…"


@dataclass
class _SinkHit:
    """One taint arrival found by the sink scan."""

    node: ast.Call
    kind: str  # "network" | "storage" | "serialize" | "forward"
    label: str  # e.g. "network.send()" / "pickle.dumps()" / callee display
    payload: ast.AST
    chain: tuple[Step, ...]  # continuation inside a forwarded-to callee


class InterproceduralTaintChecker(Checker):
    """Whole-program taint propagation through the call graph."""

    name = "interproc"
    rules = (
        Rule(
            id="privacy.interproc-leak",
            severity=Severity.ERROR,
            summary="raw training data reaches a privacy sink through a call chain",
            hint="sanitize at the boundary: mask, share, or encrypt the value "
            "before it is returned to (or forwarded by) the sending function; "
            "the finding's trace lists every hop of the leak",
        ),
        Rule(
            id="privacy.return-raw",
            severity=Severity.ERROR,
            summary="function returns raw training data that a caller leaks",
            hint="return a sanctioned aggregate/masked value instead, or keep "
            "the raw accessor private to its node (callers currently route "
            "the return value into a privacy sink)",
        ),
    )

    def __init__(self) -> None:
        self.graph: CallGraph = CallGraph()
        self.summaries: dict[str, Summary] = {}
        self._resolution: dict[tuple[int, str], list[FunctionInfo]] = {}

    # -- call resolution (memoized per run) -----------------------------

    def call_summaries(
        self, call: ast.Call, caller: FunctionInfo
    ) -> list[tuple[FunctionInfo, Summary]]:
        key = (id(call), caller.qualname)
        candidates = self._resolution.get(key)
        if candidates is None:
            candidates = self.graph.resolve(call, caller)
            self._resolution[key] = candidates
        return [
            (cand, self.summaries[cand.qualname])
            for cand in candidates
            if cand.qualname in self.summaries
        ]

    # -- checker entry point --------------------------------------------

    def check(self, project: Project) -> Iterator[Finding]:
        self.graph = CallGraph.build(project)
        self.summaries = {info.qualname: Summary() for info in self.graph.functions}
        self._resolution = {}

        for _ in range(MAX_SUMMARY_ROUNDS):
            changed = False
            for info in self.graph.functions:
                updated = self._compute_summary(info)
                if updated.state_key() != self.summaries[info.qualname].state_key():
                    changed = True
                self.summaries[info.qualname] = updated
            if not changed:
                break

        modules_by_path = {m.relpath: m for m in project.modules}
        raw_return_leaves: dict[tuple[str, int], tuple[str, str, int]] = {}
        for info in self.graph.functions:
            yield from self._report_function(info, modules_by_path, raw_return_leaves)

        for (path, line), (display, sink_path, sink_line) in sorted(
            raw_return_leaves.items()
        ):
            module = modules_by_path.get(path)
            if module is None:
                continue
            yield self.finding(
                "privacy.return-raw",
                module,
                line,
                f"{display}() returns raw training data that reaches a privacy "
                f"sink (leak reported at {sink_path}:{sink_line})",
            )

    # -- summaries ------------------------------------------------------

    def _compute_summary(self, info: FunctionInfo) -> Summary:
        base = _SummaryTaint(self, info)
        base.run_fixpoint()
        returns = [
            node
            for node in _scope_statements(info.node)
            if isinstance(node, ast.Return) and node.value is not None
        ]
        returns.sort(key=lambda node: node.lineno)

        returns_tainted = any(base.expr_tainted(ret.value) for ret in returns)
        return_origin: tuple[Step, ...] = ()
        if returns_tainted:
            return_origin = self._return_origin(info, base, returns)

        base_hits = {hit.node for hit in self._sink_hits(info, base)}

        param_returns: set[int] = set()
        param_sinks: dict[int, tuple[Step, ...]] = {}
        for index, param in enumerate(info.params[:MAX_SUMMARIZED_PARAMS]):
            if index == 0 and param in ("self", "cls"):
                continue
            seeded = _SummaryTaint(self, info, seeds=frozenset({param}))
            seeded.run_fixpoint()
            if not returns_tainted and any(
                seeded.expr_tainted(ret.value) for ret in returns
            ):
                param_returns.add(index)
            for hit in self._sink_hits(info, seeded):
                if hit.node in base_hits or index in param_sinks:
                    continue
                head = Step(
                    info.relpath,
                    hit.node.lineno,
                    f"{info.display}() forwards parameter {param!r} into {hit.label}",
                )
                param_sinks[index] = (head, *hit.chain)
        return Summary(
            returns_tainted=returns_tainted,
            return_origin=return_origin,
            param_returns=frozenset(param_returns),
            param_sinks=param_sinks,
        )

    def _return_origin(
        self, info: FunctionInfo, state: _SummaryTaint, returns: list[ast.Return]
    ) -> tuple[Step, ...]:
        for ret in returns:
            assert ret.value is not None
            if not state.expr_tainted(ret.value):
                continue
            source = _direct_source(ret.value)
            if source is not None:
                return (
                    Step(
                        info.relpath,
                        ret.lineno,
                        f"{info.display}() returns raw {_unparse(source)}",
                        raw_return=info.display,
                    ),
                )
            for node in ast.walk(ret.value):
                if not isinstance(node, ast.Call):
                    continue
                for cand, summary in self.call_summaries(node, info):
                    if summary.returns_tainted:
                        return (
                            Step(
                                info.relpath,
                                ret.lineno,
                                f"{info.display}() returns {cand.display}()",
                            ),
                            *summary.return_origin,
                        )
            steps = self._explain(info, state, ret.value, set(), MAX_EXPLAIN_DEPTH)
            return (
                Step(
                    info.relpath,
                    ret.lineno,
                    f"{info.display}() returns a tainted value",
                ),
                *steps,
            )
        return ()

    # -- sink scanning --------------------------------------------------

    def _sink_hits(
        self, info: FunctionInfo, state: _SummaryTaint
    ) -> Iterator[_SinkHit]:
        for node in _scope_statements(info.node):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name in ("send", "broadcast"):
                payload = _payload_argument(node, 2, "payload")
                if payload is not None and state.expr_tainted(payload):
                    yield _SinkHit(node, "network", f"network.{name}()", payload, ())
            elif name == "put":
                parts = _payload_argument(node, 1, "parts")
                if (
                    parts is not None
                    and state.expr_tainted(parts)
                    and not _keyword_is_true(node, "private")
                ):
                    yield _SinkHit(node, "storage", "hdfs.put()", parts, ())
            else:
                dotted = _dotted_name(node.func) or ""
                if dotted in SERIALIZERS:
                    if node.args and state.expr_tainted(node.args[0]):
                        yield _SinkHit(
                            node, "serialize", f"{dotted}()", node.args[0], ()
                        )
                    continue
                if name in SANITIZER_CALLS:
                    # Sanctioned protocol entry points are the privacy
                    # boundary; what they do internally is analyzed at
                    # their own definition, not at every call site.
                    continue
                for cand, summary in self.call_summaries(node, info):
                    if not summary.param_sinks:
                        continue
                    for idx, arg in _map_args(cand, node):
                        if idx in summary.param_sinks and state.expr_tainted(arg):
                            yield _SinkHit(
                                node,
                                "forward",
                                f"{cand.display}()",
                                arg,
                                summary.param_sinks[idx],
                            )
                            break

    # -- reporting ------------------------------------------------------

    def _report_function(
        self,
        info: FunctionInfo,
        modules_by_path: dict[str, ModuleSource],
        raw_return_leaves: dict[tuple[str, int], tuple[str, str, int]],
    ) -> Iterator[Finding]:
        inter = _SummaryTaint(self, info)
        inter.run_fixpoint()
        intra = _ScopeTaint(info.node)
        intra.run_fixpoint()

        intra_lines = {
            hit.node.lineno for hit in self._intra_hits(info, intra)
        }
        seen: set[tuple[int, str]] = set()
        for hit in self._sink_hits(info, inter):
            if hit.node.lineno in intra_lines:
                continue  # the intraprocedural checker owns this site
            key = (hit.node.lineno, hit.label)
            if key in seen:
                continue
            seen.add(key)
            if hit.kind == "forward":
                head = Step(
                    info.relpath,
                    hit.node.lineno,
                    f"{info.display}() passes a tainted argument to {hit.label}",
                )
            else:
                head = Step(
                    info.relpath,
                    hit.node.lineno,
                    f"{info.display}() passes a tainted value to {hit.label}",
                )
            origin = self._explain(info, inter, hit.payload, set(), MAX_EXPLAIN_DEPTH)
            steps = (head, *hit.chain, *origin)
            for step in steps:
                if step.raw_return is not None:
                    raw_return_leaves.setdefault(
                        (step.path, step.line),
                        (step.raw_return, info.relpath, hit.node.lineno),
                    )
            message = (
                f"raw training data reaches {hit.label} through a "
                f"{len(steps) - 1}-hop call chain (see trace)"
            )
            module = modules_by_path[info.relpath]
            finding = self.finding(
                "privacy.interproc-leak", module, hit.node.lineno, message
            )
            yield replace(finding, trace=tuple(step.render() for step in steps))

    def _intra_hits(
        self, info: FunctionInfo, intra: _ScopeTaint
    ) -> Iterator[_SinkHit]:
        """Sites the plain intraprocedural checker would already flag."""
        for node in _scope_statements(info.node):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name in ("send", "broadcast"):
                payload = _payload_argument(node, 2, "payload")
                if payload is not None and intra.expr_tainted(payload):
                    yield _SinkHit(node, "network", name, payload, ())
            elif name == "put":
                parts = _payload_argument(node, 1, "parts")
                if (
                    parts is not None
                    and intra.expr_tainted(parts)
                    and not _keyword_is_true(node, "private")
                ):
                    yield _SinkHit(node, "storage", name, parts, ())
            else:
                dotted = _dotted_name(node.func) or ""
                if dotted in SERIALIZERS and node.args and intra.expr_tainted(
                    node.args[0]
                ):
                    yield _SinkHit(node, "serialize", dotted, node.args[0], ())

    # -- taint-origin explanation ---------------------------------------

    def _explain(
        self,
        info: FunctionInfo,
        state: _SummaryTaint,
        expr: ast.AST,
        visited: set[str],
        depth: int,
    ) -> tuple[Step, ...]:
        """Best-effort chain from ``expr`` back to the raw source."""
        if depth <= 0:
            return ()
        source = _direct_source(expr)
        if source is not None:
            return (
                Step(
                    info.relpath,
                    getattr(source, "lineno", getattr(expr, "lineno", 1)),
                    f"raw source {_unparse(source)}",
                ),
            )
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            if _call_name(node) in SANITIZER_CALLS:
                continue
            for cand, summary in self.call_summaries(node, info):
                if summary.returns_tainted:
                    return (
                        Step(
                            info.relpath,
                            node.lineno,
                            f"call to {cand.display}()",
                        ),
                        *summary.return_origin,
                    )
                for idx, arg in _map_args(cand, node):
                    if idx in summary.param_returns and state.expr_tainted(arg):
                        return (
                            Step(
                                info.relpath,
                                node.lineno,
                                f"call to {cand.display}() with tainted argument",
                            ),
                            *self._explain(info, state, arg, visited, depth - 1),
                        )
        for node in ast.walk(expr):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in state.tainted
                and node.id not in visited
            ):
                binding = self._binding_of(info, state, node.id)
                if binding is None:
                    continue
                assign_line, value = binding
                return (
                    Step(
                        info.relpath,
                        assign_line,
                        f"{node.id} = {_unparse(value)}",
                    ),
                    *self._explain(
                        info, state, value, visited | {node.id}, depth - 1
                    ),
                )
        return ()

    def _binding_of(
        self, info: FunctionInfo, state: _SummaryTaint, name: str
    ) -> tuple[int, ast.AST] | None:
        """Earliest statement binding ``name`` to a tainted value."""
        candidates: list[tuple[int, ast.AST]] = []
        for node in _scope_statements(info.node):
            targets: list[ast.AST] = []
            value: ast.AST | None = None
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets, value = [node.target], node.value
            elif isinstance(node, ast.NamedExpr):
                targets, value = [node.target], node.value
            if value is None or not state.expr_tainted(value):
                continue
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name) and sub.id == name:
                        candidates.append((node.lineno, value))
        return min(candidates, key=lambda item: item[0]) if candidates else None
