"""Protocol-invariant checker for the secure-summation mask algebra.

The privacy proof of the paper's Protocol 1 (Section V) rests on three
structural invariants of the implementation, none of which a unit test
on the *sum* can catch — a sign flip still produces a number, just not a
private one:

* **mask balance** — every pairwise mask must enter the aggregate once
  with ``+`` (at its generator) and once with ``-`` (at its receiver);
  an unbalanced mask either fails to cancel (corrupting the sum) or,
  worse, cancels locally and ships an unmasked share;
* **pad provenance** — PRG pad streams (``self._pair_rngs``) may only be
  created in the dedicated seed-exchange phase, derived from a seed that
  actually crossed the network (``kind="mask-seed"``): a pad seeded from
  local state is a pad the partner does not share, so it never cancels;
* **participant floor** — a "secure" summation over fewer than two
  participants hands the Reducer the single participant's input verbatim,
  so protocol classes that emit share traffic must reject ``< 2``
  participants at construction (the coalition-resistance shape check:
  no aggregation sink is reachable with fewer than two masked
  contributions).

The checker verifies these shapes statically over crypto-scope modules
(the same scope as :mod:`~repro.analysis.checkers.crypto`).  It is
deliberately syntactic: the real protocols
(:mod:`repro.crypto.secure_sum`, :mod:`repro.crypto.threshold_sum`)
pass clean, and the regression it guards against is an edit that changes
the algebra's *shape* — dropping a subtraction, reusing a local seed —
not a deep semantic property.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import ModuleChecker
from repro.analysis.checkers.crypto import MASK_GENERATORS, is_crypto_scope
from repro.analysis.checkers.privacy import _call_name, _scope_statements
from repro.analysis.findings import Finding, Rule, Severity
from repro.analysis.source import ModuleSource

__all__ = ["ProtocolInvariantChecker"]

#: The attribute holding pairwise PRG pad streams.
PAIR_RNG_ATTR = "_pair_rngs"

#: The only method allowed to create pairwise pad streams.
SEED_EXCHANGE_METHOD = "_exchange_pairwise_seeds"

#: Message kind carrying exchanged pad seeds.
SEED_KIND = "mask-seed"

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _call_kind(call: ast.Call) -> str | None:
    """Value of a literal ``kind=...`` keyword, if present."""
    for keyword in call.keywords:
        if keyword.arg == "kind" and isinstance(keyword.value, ast.Constant):
            value = keyword.value.value
            if isinstance(value, str):
                return value
    return None


def _is_mask_receive(call: ast.Call) -> bool:
    # receive() yields the payload directly; receive_message() yields a
    # Message envelope whose .payload is the mask (the audited paths use
    # the envelope form to learn the sender).
    return _call_name(call) in ("receive", "receive_message") and (
        _call_kind(call) == "mask"
    )


def _operand_name(node: ast.AST) -> str | None:
    """The mask-bearing name an arithmetic operand refers to.

    Either the bound name itself (``mask``) or the payload of a bound
    ``Message`` envelope (``message.payload``).
    """
    if isinstance(node, ast.Name):
        return node.id
    if (
        isinstance(node, ast.Attribute)
        and node.attr == "payload"
        and isinstance(node.value, ast.Name)
    ):
        return node.value.id
    return None


def _assigned_names(node: ast.Assign) -> list[str]:
    return [t.id for t in node.targets if isinstance(t, ast.Name)]


def _mentions(node: ast.AST, names: set[str]) -> bool:
    """Whether any ``Name`` in ``names`` is loaded anywhere under ``node``."""
    return any(
        isinstance(sub, ast.Name) and sub.id in names
        for sub in ast.walk(node)
    )


class ProtocolInvariantChecker(ModuleChecker):
    """Statically verifies the secure-summation protocol invariants."""

    name = "protocol"
    rules = (
        Rule(
            id="protocol.unbalanced-mask",
            severity=Severity.ERROR,
            summary="pairwise mask not applied once with + and once with -",
            hint="every mask must be added by its generator and subtracted "
            "by its receiver so the pads cancel telescopically at the "
            "Reducer; an unbalanced mask leaks or corrupts",
        ),
        Rule(
            id="protocol.pair-seed-provenance",
            severity=Severity.ERROR,
            summary="pairwise pad stream not derived from an exchanged seed",
            hint=f"create pad streams only in {SEED_EXCHANGE_METHOD}(), from "
            f'a seed sent and received with kind="{SEED_KIND}" — a locally '
            "seeded pad is one the partner does not share, so it never "
            "cancels",
        ),
        Rule(
            id="protocol.missing-participant-guard",
            severity=Severity.WARNING,
            summary="share-emitting protocol class accepts < 2 participants",
            hint="raise in __init__ when fewer than 2 participants are "
            "given; a single-participant 'secure' sum hands the Reducer "
            "that participant's input verbatim",
        ),
    )

    def check_module(self, module: ModuleSource) -> Iterator[Finding]:
        if not is_crypto_scope(module):
            return
        assert module.tree is not None
        tree = module.tree
        for node in ast.walk(tree):
            if isinstance(node, _FUNC_NODES):
                yield from self._check_mask_balance(module, node)
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_pair_seed_provenance(module, node)
                yield from self._check_participant_guard(module, node)

    # -- mask balance ---------------------------------------------------

    def _check_mask_balance(
        self, module: ModuleSource, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        """The mask-bound names must balance their + and - applications.

        Applies only to protocol rounds — functions that both bind masks
        (``random_vector(...)`` results or ``receive(kind="mask")``) and
        send traffic; helper functions that only generate or only apply
        are judged at their call sites' enclosing round.

        The ledger is aggregated across the round's mask bindings: the
        generated mask carries the ``+`` and the received one (possibly
        under a ``Message`` envelope name) carries the ``-``, so a round
        balances when total adds equal total subtracts.  A sign flip or
        a dropped subtraction still surfaces — the names that fail to
        balance individually are the ones reported.
        """
        bindings: dict[str, int] = {}  # name -> first binding line
        sends = False
        for stmt in _scope_statements(func):
            if isinstance(stmt, ast.Call) and _call_name(stmt) == "send":
                sends = True
            if not isinstance(stmt, ast.Assign) or not isinstance(
                stmt.value, ast.Call
            ):
                continue
            call = stmt.value
            if _call_name(call) in MASK_GENERATORS or _is_mask_receive(call):
                for name in _assigned_names(stmt):
                    bindings.setdefault(name, stmt.lineno)
                    bindings[name] = min(bindings[name], stmt.lineno)
        if not bindings or not sends:
            return

        adds: dict[str, int] = {name: 0 for name in bindings}
        subtracts: dict[str, int] = {name: 0 for name in bindings}
        for stmt in _scope_statements(func):
            if isinstance(stmt, ast.Call):
                op = _call_name(stmt)
                if op in ("add", "subtract"):
                    counter = adds if op == "add" else subtracts
                    for arg in stmt.args:
                        name = _operand_name(arg)
                        if name in bindings:
                            counter[name] += 1
            elif isinstance(stmt, ast.BinOp) and isinstance(
                stmt.op, (ast.Add, ast.Sub)
            ):
                for side, operand in (("left", stmt.left), ("right", stmt.right)):
                    name = _operand_name(operand)
                    if name not in bindings:
                        continue
                    # In ``a - mask`` the mask enters negatively; every
                    # other position is a positive application.
                    negative = isinstance(stmt.op, ast.Sub) and side == "right"
                    counter = subtracts if negative else adds
                    counter[name] += 1

        if sum(adds.values()) == sum(subtracts.values()):
            return
        for name in sorted(bindings):
            if adds[name] != subtracts[name]:
                yield self.finding(
                    "protocol.unbalanced-mask",
                    module,
                    bindings[name],
                    f"mask {name!r} is applied with + {adds[name]} time(s) "
                    f"but with - {subtracts[name]} time(s) in "
                    f"{func.name}() — the pads cannot cancel",
                )

    # -- pad provenance -------------------------------------------------

    def _check_pair_seed_provenance(
        self, module: ModuleSource, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        for method in cls.body:
            if not isinstance(method, _FUNC_NODES):
                continue
            writes = [
                stmt
                for stmt in _scope_statements(method)
                if isinstance(stmt, ast.Assign)
                and any(
                    isinstance(t, ast.Subscript)
                    and isinstance(t.value, ast.Attribute)
                    and t.value.attr == PAIR_RNG_ATTR
                    for t in stmt.targets
                )
            ]
            if not writes:
                continue
            if method.name != SEED_EXCHANGE_METHOD:
                for stmt in writes:
                    yield self.finding(
                        "protocol.pair-seed-provenance",
                        module,
                        stmt.lineno,
                        f"{cls.name}.{method.name}() creates a pairwise pad "
                        f"stream outside {SEED_EXCHANGE_METHOD}()",
                    )
                continue
            received = self._seed_receive_names(method)
            sends_seed = any(
                isinstance(stmt, ast.Call)
                and _call_name(stmt) == "send"
                and _call_kind(stmt) == SEED_KIND
                for stmt in _scope_statements(method)
            )
            for stmt in writes:
                if not sends_seed or not _mentions(stmt.value, received):
                    yield self.finding(
                        "protocol.pair-seed-provenance",
                        module,
                        stmt.lineno,
                        f"{cls.name}.{method.name}() seeds a pairwise pad "
                        "stream from local state that was never exchanged "
                        f'(kind="{SEED_KIND}")',
                    )

    @staticmethod
    def _seed_receive_names(
        method: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> set[str]:
        """Names bound from ``receive(..., kind="mask-seed")`` calls."""
        names: set[str] = set()
        for stmt in _scope_statements(method):
            if (
                isinstance(stmt, ast.Assign)
                and isinstance(stmt.value, ast.Call)
                and _call_name(stmt.value) == "receive"
                and _call_kind(stmt.value) == SEED_KIND
            ):
                names.update(_assigned_names(stmt))
        return names

    # -- participant floor ----------------------------------------------

    def _check_participant_guard(
        self, module: ModuleSource, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        if not self._emits_shares(cls):
            return
        init = next(
            (
                item
                for item in cls.body
                if isinstance(item, _FUNC_NODES) and item.name == "__init__"
            ),
            None,
        )
        if init is not None and self._has_floor_guard(init):
            return
        yield self.finding(
            "protocol.missing-participant-guard",
            module,
            cls.lineno,
            f"{cls.name} emits share traffic but never rejects fewer than "
            "2 participants at construction",
        )

    @staticmethod
    def _emits_shares(cls: ast.ClassDef) -> bool:
        """Whether any method sends a ``kind="...share..."`` payload."""
        for node in ast.walk(cls):
            if (
                isinstance(node, ast.Call)
                and _call_name(node) == "send"
                and "share" in (_call_kind(node) or "")
            ):
                return True
        return False

    @staticmethod
    def _has_floor_guard(init: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        """An ``if ... < n: raise`` with an integer floor of at least 2."""
        for stmt in _scope_statements(init):
            if not isinstance(stmt, ast.If):
                continue
            test = stmt.test
            if not (
                isinstance(test, ast.Compare)
                and len(test.ops) == 1
                and isinstance(test.ops[0], (ast.Lt, ast.LtE))
            ):
                continue
            comparator = test.comparators[0]
            floor_ok = (
                isinstance(comparator, ast.Constant)
                and isinstance(comparator.value, int)
                and (
                    comparator.value >= 2
                    if isinstance(test.ops[0], ast.Lt)
                    else comparator.value >= 1
                )
            )
            raises = any(isinstance(n, ast.Raise) for n in ast.walk(stmt))
            if floor_ok and raises:
                return True
        return False
