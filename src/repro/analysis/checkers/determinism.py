"""Simulation-determinism checker.

The whole experiment harness rests on runs being exactly reproducible
from a seed: the simulated cluster has its *own* clock (advanced by the
latency model), every RNG stream is derived from the experiment seed
via ``repro.utils.rng``, and iteration orders must not depend on
process-specific state.  This checker flags the ways that property is
typically lost:

* wall-clock reads (``time.time``, ``datetime.now``) leaking into
  simulated-time logic — ``time.perf_counter`` is allowed, it is the
  sanctioned *profiling* clock and never feeds simulated state;
* RNG streams that bypass ``repro.utils.rng`` (unseeded
  ``np.random.default_rng()``, legacy ``np.random.rand`` & co., the
  stdlib ``random`` module);
* iteration over unordered collections (set literals, ``set()`` calls)
  and unsorted filesystem walks, whose order varies run to run;
* ``hash()`` of strings, which is salted per process (PYTHONHASHSEED)
  and therefore changes partition assignments between runs.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import ModuleChecker
from repro.analysis.checkers.crypto import is_crypto_scope
from repro.analysis.checkers.privacy import _call_name, _dotted_name
from repro.analysis.findings import Finding, Rule, Severity
from repro.analysis.source import ModuleSource

__all__ = ["DeterminismChecker"]

#: Wall-clock calls (dotted suffixes) that must not appear in src/repro.
WALL_CLOCK_CALLS = frozenset(
    {"time.time", "time.time_ns", "datetime.now", "datetime.utcnow",
     "datetime.today", "date.today"}
)

#: Legacy/module-level numpy RNG entry points (implicit global state).
LEGACY_NP_RANDOM = frozenset(
    {"rand", "randn", "randint", "random", "random_sample", "choice",
     "shuffle", "permutation", "normal", "uniform", "seed"}
)

#: Filesystem enumeration calls whose order is platform-dependent.
FS_WALK_CALLS = frozenset({"glob", "rglob", "iterdir", "listdir", "scandir"})

#: Call wrappers that impose a deterministic order on their argument.
ORDERING_WRAPPERS = frozenset({"sorted", "min", "max", "len", "sum"})


def _is_rng_exempt(module: ModuleSource) -> bool:
    """utils/rng.py is the sanctioned seed-coercion point."""
    return module.relpath.endswith("utils/rng.py") or module.relpath.endswith(
        "/rng.py"
    )


class DeterminismChecker(ModuleChecker):
    """Flags nondeterminism that would break seeded reproducibility."""

    name = "determinism"
    rules = (
        Rule(
            id="determinism.wall-clock",
            severity=Severity.ERROR,
            summary="wall-clock read (time.time / datetime.now) in simulated code",
            hint="simulated time comes from the Network's latency model; for "
            "profiling durations use time.perf_counter",
        ),
        Rule(
            id="determinism.unseeded-rng",
            severity=Severity.ERROR,
            summary="RNG stream not derived from the experiment seed",
            hint="accept a seed argument and coerce it with "
            "repro.utils.rng.as_rng / spawn_rngs",
        ),
        Rule(
            id="determinism.stdlib-random",
            severity=Severity.ERROR,
            summary="stdlib random module used (global, platform-entangled state)",
            hint="use a numpy Generator from repro.utils.rng instead",
        ),
        Rule(
            id="determinism.set-iteration",
            severity=Severity.WARNING,
            summary="iteration over an unordered set",
            hint="wrap the set in sorted(...) so per-node work happens in a "
            "fixed order",
        ),
        Rule(
            id="determinism.unsorted-walk",
            severity=Severity.WARNING,
            summary="filesystem enumeration without sorted(...)",
            hint="directory order is platform-dependent; wrap the walk in "
            "sorted(...)",
        ),
        Rule(
            id="determinism.salted-hash",
            severity=Severity.ERROR,
            summary="builtin hash() used for placement/ordering",
            hint="str hashes are salted per process (PYTHONHASHSEED); use a "
            "stable digest such as zlib.crc32",
        ),
    )

    def check_module(self, module: ModuleSource) -> Iterator[Finding]:
        assert module.tree is not None
        rng_exempt = _is_rng_exempt(module)
        crypto = is_crypto_scope(module)
        # hash() inside a __hash__ method is the idiomatic delegation and
        # only ever feeds process-local dict lookups, never placement.
        in_dunder_hash = {
            id(sub)
            for node in ast.walk(module.tree)
            if isinstance(node, ast.FunctionDef) and node.name == "__hash__"
            for sub in ast.walk(node)
        }
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(
                    module, node, rng_exempt, allow_hash=id(node) in in_dunder_hash
                )
            elif isinstance(node, (ast.Import, ast.ImportFrom)) and not crypto:
                # In crypto scope the crypto checker owns this pattern.
                yield from self._check_random_import(module, node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iteration(module, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                                   ast.DictComp)):
                for comp in node.generators:
                    yield from self._check_iteration(module, comp.iter)

    # -- calls -----------------------------------------------------------

    def _check_call(
        self,
        module: ModuleSource,
        node: ast.Call,
        rng_exempt: bool,
        *,
        allow_hash: bool = False,
    ) -> Iterator[Finding]:
        dotted = _dotted_name(node.func) or ""
        name = _call_name(node)

        for clock in sorted(WALL_CLOCK_CALLS):
            if dotted == clock or dotted.endswith("." + clock):
                yield self.finding(
                    "determinism.wall-clock",
                    module,
                    node.lineno,
                    f"{dotted}() reads the wall clock",
                )
                return

        if not rng_exempt:
            if name in ("default_rng", "RandomState"):
                unseeded = not node.args or (
                    isinstance(node.args[0], ast.Constant)
                    and node.args[0].value is None
                )
                if unseeded:
                    yield self.finding(
                        "determinism.unseeded-rng",
                        module,
                        node.lineno,
                        f"{name}() constructed without a seed",
                    )
            elif name in LEGACY_NP_RANDOM and (
                dotted.startswith("np.random.") or dotted.startswith("numpy.random.")
            ):
                yield self.finding(
                    "determinism.unseeded-rng",
                    module,
                    node.lineno,
                    f"{dotted}() uses numpy's implicit global RNG",
                )

        if name == "hash" and isinstance(node.func, ast.Name) and not allow_hash:
            yield self.finding(
                "determinism.salted-hash",
                module,
                node.lineno,
                "builtin hash() output varies per process",
            )

        if dotted.startswith("random.") and not is_crypto_scope(module):
            yield self.finding(
                "determinism.stdlib-random",
                module,
                node.lineno,
                f"{dotted}() draws from the stdlib global RNG",
            )

    def _check_random_import(
        self, module: ModuleSource, node: ast.Import | ast.ImportFrom
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Import):
            if any(alias.name == "random" for alias in node.names):
                yield self.finding(
                    "determinism.stdlib-random",
                    module,
                    node.lineno,
                    "stdlib random imported",
                )
        elif node.module == "random":
            yield self.finding(
                "determinism.stdlib-random",
                module,
                node.lineno,
                "stdlib random imported",
            )

    # -- iteration order --------------------------------------------------

    def _check_iteration(self, module: ModuleSource, iterable: ast.AST) -> Iterator[Finding]:
        # Peel enumerate()/zip() — their argument order is what matters.
        while isinstance(iterable, ast.Call) and _call_name(iterable) in (
            "enumerate",
            "zip",
        ):
            if not iterable.args:
                return
            iterable = iterable.args[0]

        if isinstance(iterable, (ast.Set, ast.SetComp)):
            yield self.finding(
                "determinism.set-iteration",
                module,
                iterable.lineno,
                "iterating a set literal; order is undefined",
            )
            return
        if not isinstance(iterable, ast.Call):
            return
        name = _call_name(iterable)
        if name in ORDERING_WRAPPERS:
            return
        if name == "set" or name in ("frozenset",):
            yield self.finding(
                "determinism.set-iteration",
                module,
                iterable.lineno,
                f"iterating {name}(...); order is undefined",
            )
        elif name in FS_WALK_CALLS:
            yield self.finding(
                "determinism.unsorted-walk",
                module,
                iterable.lineno,
                f"iterating {name}(...) without sorted(...)",
            )
