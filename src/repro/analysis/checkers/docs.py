"""Counter/doc drift checker.

``docs/OBSERVABILITY.md`` is the registry of record for every counter
name the code emits (see PR 1); this checker — the successor of the
standalone ``tools/check_observability_docs.py`` lint — extracts every
``.increment(`` / ``.counter(`` call-site name (f-string placeholders
normalize to ``<name>``) and reports any name the document does not
mention, as a structured finding at the emitting line.  Folding it into
the framework means one driver (``repro lint``) runs the whole static
suite.
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.analysis.base import Checker, Project
from repro.analysis.findings import Finding, Rule, Severity
from repro.analysis.source import ModuleSource

__all__ = ["CounterDocsChecker", "extract_counter_names"]

_CALL = re.compile(r"\.(?:increment|counter)\(")
_LITERAL = re.compile(r"""(f?)(["'])([A-Za-z0-9_.{}-]+)\2""")

#: Repo-relative path of the registry of record.
DOC_RELPATH = "docs/OBSERVABILITY.md"


def extract_counter_names(module: ModuleSource) -> dict[str, int]:
    """Counter names emitted by ``module``, mapped to their first line.

    F-string placeholders are normalized (``f"network.bytes.{kind}"``
    matches the documented ``network.bytes.<kind>``); only dotted
    literals count — plain words near an ``increment(`` call are not
    counter names.
    """
    names: dict[str, int] = {}
    for lineno, line in enumerate(module.lines, start=1):
        if not _CALL.search(line):
            continue
        for _, _, text in _LITERAL.findall(line):
            if "." not in text:
                continue
            name = re.sub(r"\{([^}]*)\}", r"<\1>", text)
            names.setdefault(name, lineno)
    return names


class CounterDocsChecker(Checker):
    """Every emitted counter name must appear in docs/OBSERVABILITY.md."""

    name = "docs"
    rules = (
        Rule(
            id="docs.undocumented-counter",
            severity=Severity.ERROR,
            summary="counter name emitted but absent from docs/OBSERVABILITY.md",
            hint="add the counter (and its meaning) to the registry table in "
            "docs/OBSERVABILITY.md",
        ),
        Rule(
            id="docs.registry-missing",
            severity=Severity.ERROR,
            summary="counters are emitted but docs/OBSERVABILITY.md is absent",
            hint="restore the observability registry document",
        ),
    )

    def check(self, project: Project) -> Iterator[Finding]:
        emitting: list[tuple[ModuleSource, dict[str, int]]] = []
        for module in project.modules:
            names = extract_counter_names(module)
            if names:
                emitting.append((module, names))
        if not emitting:
            return

        doc = project.doc_text(DOC_RELPATH)
        if doc is None:
            module, names = emitting[0]
            first = sorted(names, key=lambda n: names[n])[0]
            yield self.finding(
                "docs.registry-missing",
                module,
                names[first],
                f"counters are emitted (first: {first!r}) but "
                f"{DOC_RELPATH} does not exist",
            )
            return

        for module, names in emitting:
            for name in sorted(names, key=lambda n: (names[n], n)):
                if name not in doc:
                    yield self.finding(
                        "docs.undocumented-counter",
                        module,
                        names[name],
                        f"counter {name!r} is not documented in {DOC_RELPATH}",
                    )
