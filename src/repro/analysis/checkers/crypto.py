"""Crypto-misuse checker.

The protocols under ``repro/crypto`` (and the DP baseline) are only as
good as their randomness and their arithmetic: a mask drawn from the
stdlib ``random`` module is not a one-time pad, a pairwise pad reused
across rounds breaks the masking argument, and float arithmetic on
fixed-point residues or Paillier ciphertexts silently corrupts the
algebra the privacy proof lives in.  This checker flags those misuse
patterns in crypto-scope files (any path containing a ``crypto``
segment, plus ``dp.py``, the DP baseline).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import ModuleChecker
from repro.analysis.checkers.privacy import _call_name, _dotted_name, _scope_statements
from repro.analysis.findings import Finding, Rule, Severity
from repro.analysis.source import ModuleSource

__all__ = ["CryptoMisuseChecker", "is_crypto_scope"]

#: Calls whose results live in the modular/ciphertext domain.
CIPHER_PRODUCERS = frozenset(
    {"encode", "encode_array", "random_vector", "random_vector_array",
     "zeros_array", "shamir_share", "additive_share",
     "encrypt", "encrypt_raw", "encrypt_vector"}
)

#: Modular-domain operations that *keep* values in the cipher domain.
CIPHER_PRESERVING = frozenset({"add", "subtract"})

#: Mask/pad generators (for the reuse-across-rounds rule).
MASK_GENERATORS = frozenset(
    {"random_vector", "random_vector_array", "_rand_field_element"}
)

_RNG_CONSTRUCTORS = frozenset({"default_rng", "RandomState", "Generator"})


def is_crypto_scope(module: ModuleSource) -> bool:
    """Whether crypto-misuse rules apply to ``module``."""
    return module.in_part("crypto") or module.relpath.endswith("/dp.py")


def _is_float_context(node: ast.AST) -> bool:
    """Whether ``node`` is a float-producing operation or coercion."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        return True
    if isinstance(node, ast.Call):
        name = _call_name(node)
        if name in ("float", "float64", "float32"):
            return True
        if name in ("asarray", "array"):
            for kw in node.keywords:
                if kw.arg == "dtype":
                    dotted = _dotted_name(kw.value) or ""
                    if isinstance(kw.value, ast.Name) and kw.value.id == "float":
                        return True
                    if dotted.endswith("float64") or dotted.endswith("float32"):
                        return True
    return False


class CryptoMisuseChecker(ModuleChecker):
    """Flags unsafe randomness and arithmetic in the crypto modules."""

    name = "crypto"
    rules = (
        Rule(
            id="crypto.stdlib-random",
            severity=Severity.ERROR,
            summary="stdlib random module used in crypto code",
            hint="masks and shares must come from a numpy Generator routed "
            "through repro.utils.rng (seedable, splittable, testable)",
        ),
        Rule(
            id="crypto.direct-rng-construction",
            severity=Severity.ERROR,
            summary="numpy Generator constructed directly in crypto code",
            hint="use repro.utils.rng.as_rng / spawn_rngs so every stream is "
            "derived from the experiment seed",
        ),
        Rule(
            id="crypto.float-on-ciphertext",
            severity=Severity.ERROR,
            summary="float arithmetic applied to a modular/ciphertext value",
            hint="residues and ciphertexts are exact integers; decode() first, "
            "or stay in modular arithmetic",
        ),
        Rule(
            id="crypto.mask-reuse",
            severity=Severity.ERROR,
            summary="mask generated once but consumed inside a loop (pad reuse)",
            hint="draw a fresh mask inside the round loop; a reused pad is not "
            "a one-time pad",
        ),
    )

    def check_module(self, module: ModuleSource) -> Iterator[Finding]:
        if not is_crypto_scope(module):
            return
        assert module.tree is not None
        tree = module.tree
        yield from self._check_stdlib_random(module, tree)
        yield from self._check_rng_construction(module, tree)
        yield from self._check_float_on_cipher(module, tree)
        yield from self._check_mask_reuse(module, tree)

    # -- randomness -----------------------------------------------------

    def _check_stdlib_random(
        self, module: ModuleSource, tree: ast.Module
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            "crypto.stdlib-random",
                            module,
                            node.lineno,
                            "the stdlib random module must not be imported in "
                            "crypto code",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        "crypto.stdlib-random",
                        module,
                        node.lineno,
                        "the stdlib random module must not be imported in crypto code",
                    )

    def _check_rng_construction(
        self, module: ModuleSource, tree: ast.Module
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name not in _RNG_CONSTRUCTORS:
                continue
            dotted = _dotted_name(node.func) or name
            yield self.finding(
                "crypto.direct-rng-construction",
                module,
                node.lineno,
                f"{dotted}() constructed directly; seed provenance is lost",
            )

    # -- arithmetic -----------------------------------------------------

    def _check_float_on_cipher(
        self, module: ModuleSource, tree: ast.Module
    ) -> Iterator[Finding]:
        for scope in self._scopes(tree):
            cipher_names = self._cipher_names(scope)
            if not cipher_names:
                continue
            for node in _scope_statements(scope):
                if not _is_float_context(node):
                    continue
                operands: list[ast.AST]
                if isinstance(node, ast.BinOp):
                    operands = [node.left, node.right]
                else:
                    operands = list(node.args)  # type: ignore[union-attr]
                for operand in operands:
                    if isinstance(operand, ast.Name) and operand.id in cipher_names:
                        yield self.finding(
                            "crypto.float-on-ciphertext",
                            module,
                            node.lineno,
                            f"float arithmetic on modular value {operand.id!r}",
                        )

    def _cipher_names(self, scope: ast.AST) -> set[str]:
        """Names bound (directly) to cipher-domain values in ``scope``."""
        names: set[str] = set()
        for _ in range(4):  # small fixpoint: cipher ops preserve the domain
            changed = False
            for node in _scope_statements(scope):
                if not isinstance(node, ast.Assign) or not isinstance(
                    node.value, ast.Call
                ):
                    continue
                call_name = _call_name(node.value)
                produces = call_name in CIPHER_PRODUCERS or (
                    call_name in CIPHER_PRESERVING
                    and any(
                        isinstance(arg, ast.Name) and arg.id in names
                        for arg in node.value.args
                    )
                )
                if not produces:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id not in names:
                        names.add(target.id)
                        changed = True
            if not changed:
                break
        return names

    # -- pad reuse ------------------------------------------------------

    def _check_mask_reuse(
        self, module: ModuleSource, tree: ast.Module
    ) -> Iterator[Finding]:
        for scope in self._scopes(tree):
            # Where is each mask-valued name (re)bound?
            bindings: dict[str, list[ast.AST]] = {}
            for node in _scope_statements(scope):
                if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                    if _call_name(node.value) in MASK_GENERATORS:
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                bindings.setdefault(target.id, []).append(node)
            if not bindings:
                continue
            loops = [
                node
                for node in _scope_statements(scope)
                if isinstance(node, (ast.For, ast.AsyncFor, ast.While))
            ]
            for name in sorted(bindings):
                for loop in loops:
                    if self._rebinds(loop, name):
                        continue
                    for node in ast.walk(loop):
                        if (
                            isinstance(node, ast.Name)
                            and node.id == name
                            and isinstance(node.ctx, ast.Load)
                        ):
                            yield self.finding(
                                "crypto.mask-reuse",
                                module,
                                node.lineno,
                                f"mask {name!r} is generated outside this loop "
                                "but consumed inside it — the pad repeats "
                                "across rounds",
                            )
                            break

    @staticmethod
    def _rebinds(loop: ast.AST, name: str) -> bool:
        """Whether ``name`` is (re)assigned anywhere inside ``loop``'s body."""
        for node in ast.walk(loop):
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign, ast.NamedExpr)):
                targets = [node.target]
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                targets = [node.target]
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name) and sub.id == name:
                        return True
        return False

    @staticmethod
    def _scopes(tree: ast.Module) -> list[ast.AST]:
        scopes: list[ast.AST] = [tree]
        scopes.extend(
            node
            for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        return scopes
