"""Shipped checkers for the ``repro lint`` static-analysis suite."""

from repro.analysis.checkers.crypto import CryptoMisuseChecker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.docs import CounterDocsChecker
from repro.analysis.checkers.privacy import PrivacyTaintChecker

__all__ = [
    "CryptoMisuseChecker",
    "DeterminismChecker",
    "CounterDocsChecker",
    "PrivacyTaintChecker",
]
