"""Privacy taint-flow checker.

The paper's structural guarantee is that raw local data ``X_m, y_m``
never leaves a learner's node — only masked sums, shares, ciphertexts,
or sanctioned aggregates ever cross the simulated network.  This checker
enforces that *statically* with a conservative, intraprocedural taint
analysis:

* **sources** — expressions that denote raw training data: ``.X`` /
  ``.y`` attributes (Dataset / partition payloads), ``["X"]`` / ``["y"]``
  subscripts, ``.payload`` of HDFS blocks/messages, and calls to the
  raw-data loaders (``load_csv``, ``read_block``, ``Dataset(...)``);
* **propagation** — assignments, tuple unpacking, loop targets,
  arithmetic, container literals/comprehensions, mutation calls
  (``x.append(tainted)`` taints ``x``), and calls (a call with a
  tainted argument or receiver returns tainted data) — iterated to a
  fixpoint per scope;
* **sanitizers** — the sanctioned privacy mechanisms stop taint:
  fixed-point masking (``encode`` / modular ``add``/``subtract``),
  secret sharing (``shamir_share``, ``additive_share``), Paillier
  (``encrypt*``), and the secure aggregation protocols themselves
  (``sum_vectors``, ``aggregate``), whose outputs are sums/aggregates
  by construction;
* **sinks** — ``Network.send`` / ``Network.broadcast`` payloads,
  ``SimulatedHdfs.put`` without ``private=True``, and direct
  serialization (``pickle.dumps`` & co.) of tainted values.

The analysis is deliberately conservative (it flags flows it cannot
prove safe); audited false positives are silenced with a pragma next to
the code or an allowlist entry with a written reason — making the
privacy argument auditable file-by-file.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import ModuleChecker
from repro.analysis.findings import Finding, Rule, Severity
from repro.analysis.source import ModuleSource

__all__ = ["PrivacyTaintChecker"]

#: Attributes whose access denotes raw training data.
SOURCE_ATTRS = frozenset({"X", "y", "payload"})

#: Subscript string keys denoting raw training data (HDFS partition dicts).
SOURCE_KEYS = frozenset({"X", "y"})

#: Call targets returning raw training data.
SOURCE_CALLS = frozenset({"load_csv", "read_block", "Dataset"})

#: Attribute accesses that *declassify*: metadata, never the data itself.
DECLASSIFIED_ATTRS = frozenset(
    {"shape", "ndim", "size", "dtype", "n_samples", "n_features", "name",
     "size_bytes", "block_id", "class_balance"}
)

#: Calls that transform private data into a sanctioned-to-transmit form:
#: fixed-point masking, secret sharing, Paillier encryption, and the
#: secure aggregation protocols (whose outputs are sums by construction).
SANITIZER_CALLS = frozenset(
    {"encode", "encode_array", "add", "subtract",
     "random_vector", "random_vector_array", "zeros_array",
     "shamir_share", "additive_share",
     "encrypt", "encrypt_raw", "encrypt_vector",
     "sum_vectors", "aggregate"}
)

#: Method names that mutate their receiver in place.
MUTATOR_CALLS = frozenset(
    {"append", "extend", "insert", "add", "update", "setdefault", "push"}
)

#: Calls that *declassify*: they return metadata/control values (sizes,
#: type tests), never the data itself — the call-level analogue of
#: :data:`DECLASSIFIED_ATTRS`.
DECLASSIFIER_CALLS = frozenset({"len", "range", "isinstance", "issubclass"})

#: Serialization entry points treated as sinks (``module.function``).
SERIALIZERS = frozenset(
    {"pickle.dumps", "pickle.dump", "json.dumps", "json.dump",
     "marshal.dumps", "np.save", "np.savez", "numpy.save", "numpy.savez"}
)

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _call_name(call: ast.Call) -> str:
    """Trailing identifier of the call target (``x.y.send`` -> ``send``)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _scope_statements(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested scopes or lambdas."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if isinstance(node, _SCOPE_NODES + (ast.Lambda,)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class _ScopeTaint:
    """Fixpoint taint state for one scope (module, class body, function)."""

    def __init__(self, scope: ast.AST) -> None:
        self.scope = scope
        self.tainted: set[str] = set()

    # -- expression taint ----------------------------------------------

    def expr_tainted(self, node: ast.AST, extra: frozenset[str] = frozenset()) -> bool:
        """Whether evaluating ``node`` can yield raw training data."""
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name in SANITIZER_CALLS:
                return False  # sanctioned transform: output is safe
            if name in DECLASSIFIER_CALLS:
                return False  # metadata, never the data itself
            if name in SOURCE_CALLS:
                return True
            # A call is tainted when its receiver or any argument is.
            parts: list[ast.AST] = list(node.args) + [kw.value for kw in node.keywords]
            if isinstance(node.func, ast.Attribute):
                parts.append(node.func.value)
            return any(self.expr_tainted(part, extra) for part in parts)
        if isinstance(node, ast.Attribute):
            if node.attr in DECLASSIFIED_ATTRS:
                return False
            dotted = _dotted_name(node)
            if dotted is not None and (dotted in self.tainted or dotted in extra):
                return True
            if node.attr in SOURCE_ATTRS:
                return True
            return self.expr_tainted(node.value, extra)
        if isinstance(node, ast.Subscript):
            if isinstance(node.slice, ast.Constant) and node.slice.value in SOURCE_KEYS:
                return True
            return self.expr_tainted(node.value, extra) or self.expr_tainted(
                node.slice, extra
            )
        if isinstance(node, ast.Name):
            return node.id in self.tainted or node.id in extra
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            return self._comprehension_tainted(node, extra)
        if isinstance(node, ast.Lambda):
            return False
        if isinstance(node, ast.AST):
            return any(
                self.expr_tainted(child, extra) for child in ast.iter_child_nodes(node)
            )
        return False

    def _comprehension_tainted(self, node: ast.AST, extra: frozenset[str]) -> bool:
        bound: set[str] = set(extra)
        for comp in node.generators:  # type: ignore[attr-defined]
            if self.expr_tainted(comp.iter, frozenset(bound)):
                for target in ast.walk(comp.target):
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
        overlay = frozenset(bound)
        if isinstance(node, ast.DictComp):
            return self.expr_tainted(node.key, overlay) or self.expr_tainted(
                node.value, overlay
            )
        return self.expr_tainted(node.elt, overlay)  # type: ignore[attr-defined]

    # -- statement effects ---------------------------------------------

    def _taint_target(self, target: ast.AST) -> bool:
        """Mark an assignment target tainted; True if the state changed."""
        changed = False
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                changed |= self._taint_target(element)
            return changed
        if isinstance(target, ast.Starred):
            return self._taint_target(target.value)
        if isinstance(target, ast.Subscript):
            # d[k] = tainted taints the container itself.
            return self._taint_target(target.value)
        name = _dotted_name(target)
        if name is not None and name not in self.tainted:
            self.tainted.add(name)
            return True
        return changed

    def run_fixpoint(self, max_rounds: int = 12) -> None:
        """Iterate assignment/mutation effects until the state is stable."""
        for _ in range(max_rounds):
            changed = False
            for node in _scope_statements(self.scope):
                if isinstance(node, ast.Assign):
                    if self.expr_tainted(node.value):
                        for target in node.targets:
                            changed |= self._taint_target(target)
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    if node.value is not None and self.expr_tainted(node.value):
                        changed |= self._taint_target(node.target)
                elif isinstance(node, ast.NamedExpr):
                    if self.expr_tainted(node.value):
                        changed |= self._taint_target(node.target)
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    if self.expr_tainted(node.iter):
                        changed |= self._taint_target(node.target)
                elif isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        if item.optional_vars is not None and self.expr_tainted(
                            item.context_expr
                        ):
                            changed |= self._taint_target(item.optional_vars)
                elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                    # x.append(tainted) and friends taint the receiver.
                    call = node.value
                    if (
                        isinstance(call.func, ast.Attribute)
                        and call.func.attr in MUTATOR_CALLS
                        and any(self.expr_tainted(arg) for arg in call.args)
                    ):
                        changed |= self._taint_target(call.func.value)
            if not changed:
                return


def _payload_argument(call: ast.Call, position: int, keyword: str) -> ast.AST | None:
    """The payload expression of a sink call, by position or keyword."""
    if len(call.args) > position:
        return call.args[position]
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    return None


def _keyword_is_true(call: ast.Call, keyword: str) -> bool:
    for kw in call.keywords:
        if kw.arg == keyword and isinstance(kw.value, ast.Constant):
            return kw.value.value is True
    return False


class PrivacyTaintChecker(ModuleChecker):
    """Flags raw training data flowing into network/storage/serialization."""

    name = "privacy"
    rules = (
        Rule(
            id="privacy.raw-data-to-network",
            severity=Severity.ERROR,
            summary="raw training data flows into a Network.send/broadcast payload",
            hint="route the value through a sanctioned mechanism (secure-sum "
            "masking, threshold shares, Paillier encryption, or an audited "
            "aggregate) before it touches the wire",
        ),
        Rule(
            id="privacy.raw-data-in-storage",
            severity=Severity.ERROR,
            summary="raw training data stored in HDFS without private=True",
            hint="pass private=True so the namenode pins the blocks to their "
            "owner with replication 1",
        ),
        Rule(
            id="privacy.raw-data-serialized",
            severity=Severity.ERROR,
            summary="raw training data serialized outside the simulated fabric",
            hint="serialize only aggregated or sanctioned-masked values; raw "
            "partitions must stay on their node",
        ),
    )

    def check_module(self, module: ModuleSource) -> Iterator[Finding]:
        assert module.tree is not None
        scopes: list[ast.AST] = [module.tree]
        scopes.extend(
            node for node in ast.walk(module.tree) if isinstance(node, _SCOPE_NODES)
        )
        for scope in scopes:
            state = _ScopeTaint(scope)
            state.run_fixpoint()
            yield from self._scan_sinks(module, scope, state)

    def _scan_sinks(
        self, module: ModuleSource, scope: ast.AST, state: _ScopeTaint
    ) -> Iterator[Finding]:
        for node in _scope_statements(scope):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name in ("send", "broadcast"):
                payload = _payload_argument(node, 2, "payload")
                if payload is not None and state.expr_tainted(payload):
                    yield self.finding(
                        "privacy.raw-data-to-network",
                        module,
                        node.lineno,
                        f"payload of .{name}() is derived from raw training data",
                    )
            elif name == "put":
                parts = _payload_argument(node, 1, "parts")
                if (
                    parts is not None
                    and state.expr_tainted(parts)
                    and not _keyword_is_true(node, "private")
                ):
                    yield self.finding(
                        "privacy.raw-data-in-storage",
                        module,
                        node.lineno,
                        "raw training data written to HDFS without private=True",
                    )
            else:
                dotted = _dotted_name(node.func) or ""
                if dotted in SERIALIZERS and node.args and state.expr_tainted(
                    node.args[0]
                ):
                    yield self.finding(
                        "privacy.raw-data-serialized",
                        module,
                        node.lineno,
                        f"raw training data passed to {dotted}()",
                    )
