"""Whole-program function index and conservative call resolution.

The intraprocedural privacy checker (:mod:`repro.analysis.checkers.privacy`)
stops at function boundaries: a helper that returns ``self.X`` and a
caller that ships the result to the network are each individually
invisible.  This module provides the *call graph* side of closing that
blind spot: it indexes every module-level function and class method in a
:class:`~repro.analysis.base.Project` and resolves call expressions to
candidate definitions so the interprocedural engine
(:mod:`repro.analysis.interproc`) can propagate taint through them.

Resolution is name-based and deliberately conservative:

* ``foo(...)`` resolves to every *module-level* function named ``foo``
  anywhere in the project (imports are not tracked; a name match is
  enough — over-approximating keeps the analysis sound for leaks);
* ``self.foo(...)`` resolves within the enclosing class and its
  project-defined bases (nearest definition wins);
* ``self.attr.foo(...)`` where some method of the enclosing class
  assigns ``self.attr = KnownClass(...)`` resolves inside ``KnownClass``
  only (method dispatch on known classes — this is what keeps one
  generic method name like ``step`` from cross-contaminating every
  class that defines it);
* ``obj.foo(...)`` resolves to every method named ``foo`` on any indexed
  class plus every free function named ``foo`` — *unless* the name is so
  common that the candidate set exceeds :data:`MAX_DISPATCH_CANDIDATES`
  (unbounded fan-out would turn one noisy summary into project-wide
  false positives, so such calls fall back to the intraprocedural
  argument rule).

Known sink methods (``send`` / ``broadcast`` / ``put``) and container
mutators are never resolved: sinks are handled at the call site by the
sink scan, and resolving e.g. ``list.append`` to an unrelated project
method would be meaningless.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.base import Project
from repro.analysis.checkers.privacy import MUTATOR_CALLS, _call_name
from repro.analysis.source import ModuleSource

__all__ = ["CallGraph", "FunctionInfo", "MAX_DISPATCH_CANDIDATES"]

#: Attribute calls with more candidates than this stay unresolved.
MAX_DISPATCH_CANDIDATES = 6

#: Call names the resolver refuses to resolve (sinks + container mutators).
UNRESOLVED_NAMES = frozenset({"send", "broadcast", "put", "receive"}) | MUTATOR_CALLS

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass
class FunctionInfo:
    """One indexed function or method definition.

    Attributes
    ----------
    qualname:
        Stable identifier, ``<relpath>::<Class>.<name>`` or
        ``<relpath>::<name>``.
    name:
        Bare function name (the resolution key).
    cls:
        Enclosing class name, or ``None`` for module-level functions.
    module:
        The module the definition lives in.
    node:
        The ``def`` AST node.
    params:
        Positional parameter names in order (including ``self``).
    """

    qualname: str
    name: str
    cls: str | None
    module: ModuleSource
    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: list[str] = field(default_factory=list)

    @property
    def display(self) -> str:
        """Short human name: ``Class.method`` or ``func``."""
        return f"{self.cls}.{self.name}" if self.cls else self.name

    @property
    def relpath(self) -> str:
        return self.module.relpath


def _positional_params(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = node.args
    return [a.arg for a in [*args.posonlyargs, *args.args]]


class CallGraph:
    """Function index + call resolution over one project."""

    def __init__(self) -> None:
        self.functions: list[FunctionInfo] = []
        self._by_name: dict[str, list[FunctionInfo]] = {}
        self._methods: dict[tuple[str, str], FunctionInfo] = {}
        self._bases: dict[str, list[str]] = {}
        #: (class, attribute) -> class name of the value consistently
        #: assigned to ``self.<attribute>``; ambiguous attrs are dropped.
        self._attr_types: dict[tuple[str, str], str | None] = {}

    @classmethod
    def build(cls, project: Project) -> "CallGraph":
        """Index every module-level function and class method."""
        graph = cls()
        class_nodes: list[tuple[ast.ClassDef, ModuleSource]] = []
        for module in project.modules:
            if module.tree is None:
                continue
            for node in module.tree.body:
                if isinstance(node, _FUNC_NODES):
                    graph._add(module, node, cls_name=None)
                elif isinstance(node, ast.ClassDef):
                    class_nodes.append((node, module))
                    graph._bases.setdefault(
                        node.name,
                        [
                            base.id
                            for base in node.bases
                            if isinstance(base, ast.Name)
                        ],
                    )
                    for item in node.body:
                        if isinstance(item, _FUNC_NODES):
                            graph._add(module, item, cls_name=node.name)
        for node, _ in class_nodes:
            graph._index_attr_types(node)
        return graph

    def _index_attr_types(self, cls_node: ast.ClassDef) -> None:
        """Record ``self.attr = KnownClass(...)`` assignments for dispatch."""
        for item in cls_node.body:
            if not isinstance(item, _FUNC_NODES):
                continue
            for node in ast.walk(item):
                if not isinstance(node, ast.Assign) or not isinstance(
                    node.value, ast.Call
                ):
                    continue
                func = node.value.func
                if not (isinstance(func, ast.Name) and func.id in self._bases):
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        key = (cls_node.name, target.attr)
                        previous = self._attr_types.get(key, func.id)
                        self._attr_types[key] = (
                            func.id if previous == func.id else None
                        )

    def _add(
        self,
        module: ModuleSource,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls_name: str | None,
    ) -> None:
        prefix = f"{cls_name}." if cls_name else ""
        info = FunctionInfo(
            qualname=f"{module.relpath}::{prefix}{node.name}",
            name=node.name,
            cls=cls_name,
            module=module,
            node=node,
            params=_positional_params(node),
        )
        self.functions.append(info)
        self._by_name.setdefault(node.name, []).append(info)
        if cls_name is not None:
            self._methods.setdefault((cls_name, node.name), info)

    # -- resolution -----------------------------------------------------

    def _method_in_hierarchy(self, cls_name: str, name: str) -> FunctionInfo | None:
        """Nearest definition of ``name`` in ``cls_name``'s project MRO."""
        seen: set[str] = set()
        queue = [cls_name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self._methods.get((current, name))
            if info is not None:
                return info
            queue.extend(self._bases.get(current, []))
        return None

    def resolve(
        self, call: ast.Call, caller: FunctionInfo | None = None
    ) -> list[FunctionInfo]:
        """Candidate definitions for ``call``, possibly empty.

        Deterministic: candidates come back sorted by ``qualname``.
        """
        name = _call_name(call)
        if not name or name in UNRESOLVED_NAMES or name.startswith("__"):
            return []
        func = call.func
        if isinstance(func, ast.Name):
            candidates = [f for f in self._by_name.get(name, []) if f.cls is None]
            return sorted(candidates, key=lambda f: f.qualname)
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if (
                isinstance(receiver, ast.Name)
                and receiver.id in ("self", "cls")
                and caller is not None
                and caller.cls is not None
            ):
                info = self._method_in_hierarchy(caller.cls, name)
                return [info] if info is not None else []
            if (
                isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"
                and caller is not None
                and caller.cls is not None
            ):
                # self.attr.method(): dispatch on the attribute's known
                # class when every assignment agrees on one.
                attr_cls = self._attr_types.get((caller.cls, receiver.attr))
                if attr_cls is not None:
                    info = self._method_in_hierarchy(attr_cls, name)
                    return [info] if info is not None else []
            candidates = sorted(
                self._by_name.get(name, []), key=lambda f: f.qualname
            )
            if len(candidates) > MAX_DISPATCH_CANDIDATES:
                return []
            return candidates
        return []
