"""Parsed source files and ``# repro-lint:`` pragma extraction.

A :class:`ModuleSource` bundles everything a checker needs about one
file: its repo-relative path, raw text, split lines, parsed AST, and the
per-line suppression pragmas.  Pragma syntax::

    x = risky()  # repro-lint: disable=privacy.raw-data-to-network
    # repro-lint: disable=crypto.stdlib-random -- justification text
    y = also_risky()

A pragma suppresses matching findings on its own line; a pragma on a
*comment-only* line additionally suppresses findings on the next line.
``disable=all`` suppresses every rule.  Multiple rules are
comma-separated.  Text after ``--`` is a free-form justification
(required by convention, not enforced — the allowlist is the place for
audited, reasoned exceptions).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["ModuleSource", "parse_pragmas"]

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_.\-]+(?:\s*,\s*[A-Za-z0-9_.\-]+)*)"
)


def parse_pragmas(lines: list[str]) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the rule ids disabled on that line.

    The special id ``"all"`` disables every rule.  A pragma on a line
    whose only content is the comment also applies to the line after it
    (so a justification comment can sit above the flagged statement).
    """
    pragmas: dict[int, set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _PRAGMA.search(line)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
        pragmas.setdefault(lineno, set()).update(rules)
        if line.lstrip().startswith("#"):  # comment-only: cover the next line
            pragmas.setdefault(lineno + 1, set()).update(rules)
    return {lineno: frozenset(rules) for lineno, rules in pragmas.items()}


@dataclass
class ModuleSource:
    """One parsed Python file, as seen by checkers.

    Attributes
    ----------
    path:
        Absolute filesystem path.
    relpath:
        POSIX path relative to the lint root (what findings report).
    text:
        Raw file contents.
    lines:
        ``text.splitlines()`` (1-based access via :meth:`line`).
    tree:
        Parsed ``ast.Module``, or ``None`` when the file has a syntax
        error (the engine reports ``lint.syntax-error`` instead of
        running checkers on it).
    pragmas:
        Per-line disabled rule ids (see :func:`parse_pragmas`).
    """

    path: Path
    relpath: str
    text: str
    lines: list[str] = field(default_factory=list)
    tree: ast.Module | None = None
    pragmas: dict[int, frozenset[str]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path, root: Path) -> "ModuleSource":
        """Read and parse ``path``; syntax errors leave ``tree`` as None."""
        text = path.read_text(encoding="utf-8")
        try:
            relpath = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:  # outside the root (explicit file argument)
            relpath = path.as_posix()
        lines = text.splitlines()
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError:
            tree = None
        return cls(
            path=path,
            relpath=relpath,
            text=text,
            lines=lines,
            tree=tree,
            pragmas=parse_pragmas(lines),
        )

    def line(self, lineno: int) -> str:
        """The 1-based source line (empty string when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def is_suppressed(self, rule_id: str, lineno: int) -> bool:
        """Whether a pragma disables ``rule_id`` at ``lineno``."""
        disabled = self.pragmas.get(lineno)
        if not disabled:
            return False
        return "all" in disabled or rule_id in disabled

    def in_part(self, *segments: str) -> bool:
        """Whether any path segment of ``relpath`` equals one of ``segments``."""
        parts = set(self.relpath.split("/"))
        return any(segment in parts for segment in segments)
