"""Lint driver: collect files, run checkers, apply suppressions, report.

:func:`run_lint` is the single entry point used by the ``repro lint``
CLI, the test suite, and CI.  It

1. collects ``.py`` files under the requested paths (sorted, so runs
   are deterministic),
2. parses each into a :class:`~repro.analysis.source.ModuleSource`
   (syntax errors become ``lint.syntax-error`` findings instead of
   crashing the run),
3. runs every checker over the :class:`~repro.analysis.base.Project`,
4. suppresses findings covered by a ``# repro-lint: disable=...``
   pragma, an allowlist entry, or a baseline snapshot (suppressed
   findings are kept, marked, for auditing), and
5. reports allowlist entries that matched nothing
   (``lint.unused-allowlist-entry``) so dead exceptions are cleaned up.

With a :class:`~repro.analysis.cache.LintCache`, the whole run is
keyed on its observable inputs and served from the previous result
when nothing changed.

Exit-code policy lives in :meth:`LintReport.exit_code`: ERROR findings
always fail; WARNING findings fail only under ``--strict``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.analysis.allowlist import (
    DEFAULT_ALLOWLIST_NAME,
    Allowlist,
)
from repro.analysis.base import Checker, Project
from repro.analysis.baseline import Baseline
from repro.analysis.cache import LintCache
from repro.analysis.findings import Finding, Rule, Severity
from repro.analysis.source import ModuleSource

__all__ = ["LintReport", "run_lint", "default_checkers", "all_rules"]

#: Framework-level rules (not owned by any checker).
ENGINE_RULES = (
    Rule(
        id="lint.syntax-error",
        severity=Severity.ERROR,
        summary="file does not parse",
        hint="fix the syntax error; unparsable files cannot be analyzed",
    ),
    Rule(
        id="lint.unused-allowlist-entry",
        severity=Severity.WARNING,
        summary="allowlist entry matched no finding",
        hint="delete the stale entry from .repro-lint.toml",
    ),
)


def default_checkers() -> list[Checker]:
    """Fresh instances of the six shipped checkers, in reporting order."""
    from repro.analysis.checkers.crypto import CryptoMisuseChecker
    from repro.analysis.checkers.determinism import DeterminismChecker
    from repro.analysis.checkers.docs import CounterDocsChecker
    from repro.analysis.checkers.privacy import PrivacyTaintChecker
    from repro.analysis.checkers.protocol import ProtocolInvariantChecker
    from repro.analysis.interproc import InterproceduralTaintChecker

    return [
        PrivacyTaintChecker(),
        InterproceduralTaintChecker(),
        ProtocolInvariantChecker(),
        CryptoMisuseChecker(),
        DeterminismChecker(),
        CounterDocsChecker(),
    ]


def all_rules(checkers: list[Checker] | None = None) -> list[Rule]:
    """Every rule the suite can emit, engine rules included, sorted by id."""
    checkers = checkers if checkers is not None else default_checkers()
    rules = list(ENGINE_RULES)
    for checker in checkers:
        rules.extend(checker.rules)
    return sorted(rules, key=lambda rule: rule.id)


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: int = 0
    #: Every rule the run could have emitted (drives SARIF metadata).
    rules: list[Rule] = field(default_factory=list)
    #: "hit" when served from the result cache, "miss" after a cached
    #: run, "" when no cache was in play.
    cache_status: str = ""

    def errors(self) -> list[Finding]:
        """Active findings with ERROR severity."""
        return [f for f in self.findings if f.severity is Severity.ERROR]

    def warnings(self) -> list[Finding]:
        """Active findings with WARNING severity."""
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def exit_code(self, *, strict: bool = False) -> int:
        """0 when acceptable, 1 when findings fail the run."""
        if self.errors():
            return 1
        if strict and self.warnings():
            return 1
        return 0

    # -- output formats -------------------------------------------------

    def format_text(self, *, show_suppressed: bool = False) -> str:
        """Human-readable report (the default CLI output)."""
        lines: list[str] = []
        for finding in self.findings:
            lines.append(
                f"{finding.path}:{finding.line}: {finding.severity.value} "
                f"[{finding.rule}] {finding.message}"
            )
            if finding.source:
                lines.append(f"    {finding.source}")
            if finding.hint:
                lines.append(f"    hint: {finding.hint}")
        if show_suppressed:
            for finding in self.suppressed:
                lines.append(
                    f"{finding.path}:{finding.line}: suppressed "
                    f"({finding.suppressed_by}) [{finding.rule}] {finding.message}"
                )
        summary = (
            f"{len(self.errors())} error(s), {len(self.warnings())} warning(s), "
            f"{len(self.suppressed)} suppressed, {self.files_checked} file(s) "
            f"checked, {self.rules_run} rule(s)"
        )
        if self.cache_status:
            summary += f" [cache {self.cache_status}]"
        lines.append(summary)
        return "\n".join(lines)

    def format_json(self) -> str:
        """Machine-readable report (``--format json``)."""
        return json.dumps(
            {
                "findings": [f.as_dict() for f in self.findings],
                "suppressed": [f.as_dict() for f in self.suppressed],
                "files_checked": self.files_checked,
                "rules_run": self.rules_run,
                "errors": len(self.errors()),
                "warnings": len(self.warnings()),
            },
            indent=2,
        )

    def format_github(self) -> str:
        """GitHub Actions workflow commands (``--format github``) so CI
        annotates the offending lines directly on the pull request."""
        lines = []
        for finding in self.findings:
            level = "error" if finding.severity is Severity.ERROR else "warning"
            message = f"[{finding.rule}] {finding.message}"
            if finding.hint:
                message += f" — {finding.hint}"
            # Workflow-command data must stay on one line.
            message = message.replace("%", "%25").replace("\n", "%0A")
            lines.append(
                f"::{level} file={finding.path},line={finding.line},"
                f"title={finding.rule}::{message}"
            )
        return "\n".join(lines)

    def format_sarif(self) -> str:
        """SARIF 2.1.0 document (``--format sarif``) for code-scanning UIs.

        Active findings become ``results``; pragma/allowlist/baseline
        suppressed findings are included with a ``suppressions`` entry so
        scanners show them as reviewed rather than silently dropping
        them.  Interprocedural traces map onto ``codeFlows``.
        """
        rules = sorted(self.rules, key=lambda rule: rule.id)
        rule_index = {rule.id: i for i, rule in enumerate(rules)}

        def location(path: str, line: int, text: str = "") -> dict:
            entry: dict = {
                "physicalLocation": {
                    "artifactLocation": {"uri": path},
                    "region": {"startLine": max(line, 1)},
                }
            }
            if text:
                entry["message"] = {"text": text}
            return entry

        def result(finding: Finding) -> dict:
            entry: dict = {
                "ruleId": finding.rule,
                "level": finding.severity.value,
                "message": {"text": finding.message},
                "locations": [location(finding.path, finding.line)],
            }
            if finding.rule in rule_index:
                entry["ruleIndex"] = rule_index[finding.rule]
            if finding.trace:
                flow_locations = []
                for step in finding.trace:
                    site, _, description = step.partition(" ")
                    path, _, line_text = site.rpartition(":")
                    line = int(line_text) if line_text.isdigit() else 1
                    flow_locations.append(
                        {"location": location(path, line, description)}
                    )
                entry["codeFlows"] = [
                    {"threadFlows": [{"locations": flow_locations}]}
                ]
            if finding.suppressed_by is not None:
                kind = "inSource" if finding.suppressed_by == "pragma" else "external"
                entry["suppressions"] = [
                    {"kind": kind, "justification": finding.suppressed_by}
                ]
            return entry

        document = {
            "$schema": (
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json"
            ),
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-lint",
                            "informationUri": "docs/STATIC_ANALYSIS.md",
                            "rules": [
                                {
                                    "id": rule.id,
                                    "shortDescription": {"text": rule.summary},
                                    "help": {"text": rule.hint},
                                    "defaultConfiguration": {
                                        "level": rule.severity.value
                                    },
                                }
                                for rule in rules
                            ],
                        }
                    },
                    "results": [
                        result(f) for f in [*self.findings, *self.suppressed]
                    ],
                }
            ],
        }
        return json.dumps(document, indent=2)


def _collect_files(paths: list[Path]) -> list[Path]:
    """All .py files under ``paths`` (files kept as-is), sorted, deduped."""
    seen: dict[Path, None] = {}
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                seen.setdefault(candidate.resolve(), None)
        elif path.suffix == ".py":
            seen.setdefault(path.resolve(), None)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    return sorted(seen)


def run_lint(
    root: Path,
    paths: list[Path] | None = None,
    *,
    checkers: list[Checker] | None = None,
    allowlist: Allowlist | None = None,
    use_default_allowlist: bool = True,
    baseline: Baseline | None = None,
    cache: LintCache | None = None,
) -> LintReport:
    """Lint ``paths`` (default: ``root/src``) and return the report.

    Parameters
    ----------
    root:
        Repo root; finding paths are reported relative to it, and the
        default allowlist (``.repro-lint.toml``) and the observability
        registry are resolved against it.
    paths:
        Files or directories to lint.
    checkers:
        Checker instances to run (defaults to the six shipped ones).
    allowlist:
        Pre-loaded allowlist; overrides the default lookup.
    use_default_allowlist:
        When True and ``allowlist`` is None, load
        ``root/.repro-lint.toml`` if it exists.
    baseline:
        Known findings to suppress (diff mode, ``--baseline``);
        suppressed occurrences carry ``suppressed_by="baseline"``.
    cache:
        Whole-run result cache (``--cache``).  A hit skips the run
        entirely; any change to the linted files, the rule set, the
        allowlist, the baseline, or the checker-read docs misses.
    """
    root = root.resolve()
    if paths is None:
        paths = [root / "src"]
    if checkers is None:
        checkers = default_checkers()
    if allowlist is None and use_default_allowlist:
        default_path = root / DEFAULT_ALLOWLIST_NAME
        if default_path.is_file():
            allowlist = Allowlist.load(default_path)
    if baseline is not None:
        baseline = baseline.fresh()

    collected = _collect_files(list(paths))
    run_rules = all_rules(checkers)

    cache_key: str | None = None
    if cache is not None:
        cache_key = cache.key_for(
            root=root,
            files=collected,
            rule_ids=[rule.id for rule in run_rules],
            extra_paths=[
                Path(allowlist.path) if allowlist is not None else None,
                Path(baseline.path) if baseline is not None and baseline.path else None,
            ],
        )
        payload = cache.lookup(cache_key)
        if payload is not None:
            return LintReport(
                findings=LintCache.decode_findings(payload, "findings"),
                suppressed=LintCache.decode_findings(payload, "suppressed"),
                files_checked=int(payload["files_checked"]),  # type: ignore[arg-type]
                rules_run=int(payload["rules_run"]),  # type: ignore[arg-type]
                rules=run_rules,
                cache_status="hit",
            )

    engine_rules = {rule.id: rule for rule in ENGINE_RULES}
    project = Project(root=root)
    raw_findings: list[Finding] = []

    for file_path in collected:
        module = ModuleSource.load(file_path, root)
        project.modules.append(module)
        if module.tree is None:
            rule = engine_rules["lint.syntax-error"]
            raw_findings.append(
                Finding(
                    rule=rule.id,
                    severity=rule.severity,
                    path=module.relpath,
                    line=1,
                    message="file does not parse as Python",
                    hint=rule.hint,
                )
            )

    for checker in checkers:
        raw_findings.extend(checker.check(project))

    modules_by_path = {module.relpath: module for module in project.modules}
    active: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in raw_findings:
        module = modules_by_path.get(finding.path)
        if module is not None and module.is_suppressed(finding.rule, finding.line):
            suppressed.append(replace(finding, suppressed_by="pragma"))
            continue
        if allowlist is not None and allowlist.match(finding) is not None:
            suppressed.append(replace(finding, suppressed_by="allowlist"))
            continue
        if baseline is not None and baseline.consume(finding):
            suppressed.append(replace(finding, suppressed_by="baseline"))
            continue
        active.append(finding)

    if allowlist is not None:
        rule = engine_rules["lint.unused-allowlist-entry"]
        for entry in allowlist.unused_entries():
            active.append(
                Finding(
                    rule=rule.id,
                    severity=rule.severity,
                    path=allowlist.path,
                    line=1,
                    message=(
                        f"entry (rule={entry.rule!r}, path={entry.path!r}) "
                        "matched no finding"
                    ),
                    hint=rule.hint,
                )
            )

    n_rules = len(ENGINE_RULES) + sum(len(checker.rules) for checker in checkers)
    report = LintReport(
        findings=sorted(active, key=Finding.sort_key),
        suppressed=sorted(suppressed, key=Finding.sort_key),
        files_checked=len(project.modules),
        rules_run=n_rules,
        rules=run_rules,
        cache_status="miss" if cache is not None else "",
    )
    if cache is not None and cache_key is not None:
        cache.store(cache_key, LintCache.encode_report(report))
    return report
