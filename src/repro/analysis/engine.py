"""Lint driver: collect files, run checkers, apply suppressions, report.

:func:`run_lint` is the single entry point used by the ``repro lint``
CLI, the test suite, and CI.  It

1. collects ``.py`` files under the requested paths (sorted, so runs
   are deterministic),
2. parses each into a :class:`~repro.analysis.source.ModuleSource`
   (syntax errors become ``lint.syntax-error`` findings instead of
   crashing the run),
3. runs every checker over the :class:`~repro.analysis.base.Project`,
4. suppresses findings covered by a ``# repro-lint: disable=...``
   pragma or an allowlist entry (suppressed findings are kept, marked,
   for auditing), and
5. reports allowlist entries that matched nothing
   (``lint.unused-allowlist-entry``) so dead exceptions are cleaned up.

Exit-code policy lives in :meth:`LintReport.exit_code`: ERROR findings
always fail; WARNING findings fail only under ``--strict``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.analysis.allowlist import (
    DEFAULT_ALLOWLIST_NAME,
    Allowlist,
)
from repro.analysis.base import Checker, Project
from repro.analysis.findings import Finding, Rule, Severity
from repro.analysis.source import ModuleSource

__all__ = ["LintReport", "run_lint", "default_checkers", "all_rules"]

#: Framework-level rules (not owned by any checker).
ENGINE_RULES = (
    Rule(
        id="lint.syntax-error",
        severity=Severity.ERROR,
        summary="file does not parse",
        hint="fix the syntax error; unparsable files cannot be analyzed",
    ),
    Rule(
        id="lint.unused-allowlist-entry",
        severity=Severity.WARNING,
        summary="allowlist entry matched no finding",
        hint="delete the stale entry from .repro-lint.toml",
    ),
)


def default_checkers() -> list[Checker]:
    """Fresh instances of the four shipped checkers, in reporting order."""
    from repro.analysis.checkers.crypto import CryptoMisuseChecker
    from repro.analysis.checkers.determinism import DeterminismChecker
    from repro.analysis.checkers.docs import CounterDocsChecker
    from repro.analysis.checkers.privacy import PrivacyTaintChecker

    return [
        PrivacyTaintChecker(),
        CryptoMisuseChecker(),
        DeterminismChecker(),
        CounterDocsChecker(),
    ]


def all_rules(checkers: list[Checker] | None = None) -> list[Rule]:
    """Every rule the suite can emit, engine rules included, sorted by id."""
    checkers = checkers if checkers is not None else default_checkers()
    rules = list(ENGINE_RULES)
    for checker in checkers:
        rules.extend(checker.rules)
    return sorted(rules, key=lambda rule: rule.id)


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: int = 0

    def errors(self) -> list[Finding]:
        """Active findings with ERROR severity."""
        return [f for f in self.findings if f.severity is Severity.ERROR]

    def warnings(self) -> list[Finding]:
        """Active findings with WARNING severity."""
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def exit_code(self, *, strict: bool = False) -> int:
        """0 when acceptable, 1 when findings fail the run."""
        if self.errors():
            return 1
        if strict and self.warnings():
            return 1
        return 0

    # -- output formats -------------------------------------------------

    def format_text(self, *, show_suppressed: bool = False) -> str:
        """Human-readable report (the default CLI output)."""
        lines: list[str] = []
        for finding in self.findings:
            lines.append(
                f"{finding.path}:{finding.line}: {finding.severity.value} "
                f"[{finding.rule}] {finding.message}"
            )
            if finding.source:
                lines.append(f"    {finding.source}")
            if finding.hint:
                lines.append(f"    hint: {finding.hint}")
        if show_suppressed:
            for finding in self.suppressed:
                lines.append(
                    f"{finding.path}:{finding.line}: suppressed "
                    f"({finding.suppressed_by}) [{finding.rule}] {finding.message}"
                )
        lines.append(
            f"{len(self.errors())} error(s), {len(self.warnings())} warning(s), "
            f"{len(self.suppressed)} suppressed, {self.files_checked} file(s) "
            f"checked, {self.rules_run} rule(s)"
        )
        return "\n".join(lines)

    def format_json(self) -> str:
        """Machine-readable report (``--format json``)."""
        return json.dumps(
            {
                "findings": [f.as_dict() for f in self.findings],
                "suppressed": [f.as_dict() for f in self.suppressed],
                "files_checked": self.files_checked,
                "rules_run": self.rules_run,
                "errors": len(self.errors()),
                "warnings": len(self.warnings()),
            },
            indent=2,
        )

    def format_github(self) -> str:
        """GitHub Actions workflow commands (``--format github``) so CI
        annotates the offending lines directly on the pull request."""
        lines = []
        for finding in self.findings:
            level = "error" if finding.severity is Severity.ERROR else "warning"
            message = f"[{finding.rule}] {finding.message}"
            if finding.hint:
                message += f" — {finding.hint}"
            # Workflow-command data must stay on one line.
            message = message.replace("%", "%25").replace("\n", "%0A")
            lines.append(
                f"::{level} file={finding.path},line={finding.line},"
                f"title={finding.rule}::{message}"
            )
        return "\n".join(lines)


def _collect_files(paths: list[Path]) -> list[Path]:
    """All .py files under ``paths`` (files kept as-is), sorted, deduped."""
    seen: dict[Path, None] = {}
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                seen.setdefault(candidate.resolve(), None)
        elif path.suffix == ".py":
            seen.setdefault(path.resolve(), None)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    return sorted(seen)


def run_lint(
    root: Path,
    paths: list[Path] | None = None,
    *,
    checkers: list[Checker] | None = None,
    allowlist: Allowlist | None = None,
    use_default_allowlist: bool = True,
) -> LintReport:
    """Lint ``paths`` (default: ``root/src``) and return the report.

    Parameters
    ----------
    root:
        Repo root; finding paths are reported relative to it, and the
        default allowlist (``.repro-lint.toml``) and the observability
        registry are resolved against it.
    paths:
        Files or directories to lint.
    checkers:
        Checker instances to run (defaults to the four shipped ones).
    allowlist:
        Pre-loaded allowlist; overrides the default lookup.
    use_default_allowlist:
        When True and ``allowlist`` is None, load
        ``root/.repro-lint.toml`` if it exists.
    """
    root = root.resolve()
    if paths is None:
        paths = [root / "src"]
    if checkers is None:
        checkers = default_checkers()
    if allowlist is None and use_default_allowlist:
        default_path = root / DEFAULT_ALLOWLIST_NAME
        if default_path.is_file():
            allowlist = Allowlist.load(default_path)

    engine_rules = {rule.id: rule for rule in ENGINE_RULES}
    project = Project(root=root)
    raw_findings: list[Finding] = []

    for file_path in _collect_files(list(paths)):
        module = ModuleSource.load(file_path, root)
        project.modules.append(module)
        if module.tree is None:
            rule = engine_rules["lint.syntax-error"]
            raw_findings.append(
                Finding(
                    rule=rule.id,
                    severity=rule.severity,
                    path=module.relpath,
                    line=1,
                    message="file does not parse as Python",
                    hint=rule.hint,
                )
            )

    for checker in checkers:
        raw_findings.extend(checker.check(project))

    modules_by_path = {module.relpath: module for module in project.modules}
    active: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in raw_findings:
        module = modules_by_path.get(finding.path)
        if module is not None and module.is_suppressed(finding.rule, finding.line):
            suppressed.append(replace(finding, suppressed_by="pragma"))
            continue
        if allowlist is not None and allowlist.match(finding) is not None:
            suppressed.append(replace(finding, suppressed_by="allowlist"))
            continue
        active.append(finding)

    if allowlist is not None:
        rule = engine_rules["lint.unused-allowlist-entry"]
        for entry in allowlist.unused_entries():
            active.append(
                Finding(
                    rule=rule.id,
                    severity=rule.severity,
                    path=allowlist.path,
                    line=1,
                    message=(
                        f"entry (rule={entry.rule!r}, path={entry.path!r}) "
                        "matched no finding"
                    ),
                    hint=rule.hint,
                )
            )

    n_rules = len(ENGINE_RULES) + sum(len(checker.rules) for checker in checkers)
    return LintReport(
        findings=sorted(active, key=Finding.sort_key),
        suppressed=sorted(suppressed, key=Finding.sort_key),
        files_checked=len(project.modules),
        rules_run=n_rules,
    )
