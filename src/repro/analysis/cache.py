"""Whole-run result cache for ``repro lint`` (``--cache``).

Linting the tree costs a few seconds of AST walking and interprocedural
fixpointing; in a pre-commit hook or a tight edit loop that latency is
paid on every invocation even when nothing changed.  This module caches
the *entire* :class:`~repro.analysis.engine.LintReport` keyed by a
fingerprint of everything the run can observe:

* the lint inputs — every collected file's path, ``mtime_ns`` and size
  (content hashing would defeat the point; mtime+size is the same
  staleness contract ``make`` uses);
* the rule set — rule ids of the checkers in play, so adding or removing
  a checker invalidates;
* out-of-band dependencies — the allowlist file, any baseline file, and
  the docs the doc-drift checker reads (:data:`EXTRA_DEPENDENCIES`).

Touching any input produces a different key, which misses and falls
through to a real run; the new result then replaces the stored entry
(the cache holds exactly one run — the common warm case is "re-lint the
same tree", not an LRU workload).  :attr:`LintCache.hits` /
:attr:`LintCache.misses` count lookups for tests and the CLI footer.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.analysis.findings import Finding

__all__ = ["EXTRA_DEPENDENCIES", "LintCache"]

CACHE_VERSION = 1

DEFAULT_CACHE_NAME = ".repro-lint-cache.json"

#: Repo-relative files that checkers read besides the linted sources.
EXTRA_DEPENDENCIES = ("docs/OBSERVABILITY.md",)


def _stat_token(path: Path) -> str:
    """``mtime_ns:size`` for an existing file, ``absent`` otherwise."""
    try:
        stat = path.stat()
    except OSError:
        return "absent"
    return f"{stat.st_mtime_ns}:{stat.st_size}"


class LintCache:
    """Single-entry report cache persisted as JSON at ``path``."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self.hits = 0
        self.misses = 0

    def key_for(
        self,
        *,
        root: Path,
        files: list[Path],
        rule_ids: list[str],
        extra_paths: list[Path | None] = (),  # type: ignore[assignment]
    ) -> str:
        """Deterministic fingerprint of one run's observable inputs."""
        digest = hashlib.sha256()
        digest.update(f"version={CACHE_VERSION}\n".encode())
        digest.update(("rules=" + ",".join(sorted(rule_ids)) + "\n").encode())
        for relpath in EXTRA_DEPENDENCIES:
            dep = root / relpath
            digest.update(f"dep={relpath}={_stat_token(dep)}\n".encode())
        for extra in extra_paths:
            if extra is not None:
                digest.update(f"extra={extra}={_stat_token(extra)}\n".encode())
        for file_path in sorted(files):
            digest.update(
                f"file={file_path}={_stat_token(file_path)}\n".encode()
            )
        return digest.hexdigest()

    # -- persistence ----------------------------------------------------

    def lookup(self, key: str) -> "dict[str, object] | None":
        """The stored report payload for ``key``, counting hit/miss."""
        entry = self._read()
        if entry is not None and entry.get("key") == key:
            self.hits += 1
            return entry["report"]  # type: ignore[return-value]
        self.misses += 1
        return None

    def store(self, key: str, report_payload: dict[str, object]) -> None:
        """Replace the cache with ``key``'s result (atomic rename)."""
        document = {
            "version": CACHE_VERSION,
            "key": key,
            "report": report_payload,
        }
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(document), encoding="utf-8")
        tmp.replace(self.path)

    def _read(self) -> "dict[str, object] | None":
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if (
            not isinstance(data, dict)
            or data.get("version") != CACHE_VERSION
            or not isinstance(data.get("report"), dict)
        ):
            return None
        return data

    # -- report payload round-trip --------------------------------------

    @staticmethod
    def encode_report(report: "object") -> dict[str, object]:
        """JSON payload for a :class:`LintReport` (rules are re-derived)."""
        return {
            "findings": [f.as_dict() for f in report.findings],  # type: ignore[attr-defined]
            "suppressed": [f.as_dict() for f in report.suppressed],  # type: ignore[attr-defined]
            "files_checked": report.files_checked,  # type: ignore[attr-defined]
            "rules_run": report.rules_run,  # type: ignore[attr-defined]
        }

    @staticmethod
    def decode_findings(payload: dict[str, object], key: str) -> list[Finding]:
        raw = payload.get(key, [])
        return [Finding.from_dict(item) for item in raw]  # type: ignore[union-attr]
