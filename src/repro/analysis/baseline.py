"""Finding baselines: adopt the suite incrementally (``--baseline``).

A baseline is a snapshot of the findings a tree *currently* produces.
Diff mode (``repro lint --baseline lint-baseline.json``) suppresses any
finding already present in the snapshot and reports only what is *new*
— the standard ratchet for introducing a strict linter into a codebase
(or a strict new rule into this one) without first fixing every
historical occurrence.

Findings are matched by **fingerprint** — rule id, file path, and the
*stripped source line* — deliberately excluding the line number, so an
edit elsewhere in the file (which shifts line numbers but not the
offending code) does not resurrect baselined findings.  Identical lines
are disambiguated by count: a baseline recording two occurrences of a
fingerprint suppresses at most two, so adding a third copy of a known-bad
line is still reported.

Format on disk is a small JSON document (sorted keys, so baselines diff
cleanly in review)::

    {"version": 1, "fingerprints": {"<rule>::<path>::<line>": 2, ...}}

Write one with ``repro lint --write-baseline lint-baseline.json``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.analysis.findings import Finding

__all__ = ["Baseline", "BaselineError", "fingerprint"]

BASELINE_VERSION = 1


class BaselineError(ValueError):
    """Raised for malformed baseline files."""


def fingerprint(finding: Finding) -> str:
    """Line-number-independent identity of a finding."""
    return f"{finding.rule}::{finding.path}::{finding.source.strip()}"


@dataclass
class Baseline:
    """A set of known findings, matched by fingerprint with multiplicity."""

    counts: dict[str, int] = field(default_factory=dict)
    path: str = ""
    #: Remaining unconsumed occurrences (reset per run via :meth:`fresh`).
    _remaining: dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._remaining = dict(self.counts)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        """Snapshot ``findings`` (normally a report's active findings)."""
        counts: dict[str, int] = {}
        for finding in findings:
            key = fingerprint(finding)
            counts[key] = counts.get(key, 0) + 1
        return cls(counts=counts)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file, validating shape and version."""
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise BaselineError(f"{path}: cannot read baseline: {exc}") from exc
        if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
            raise BaselineError(
                f"{path}: expected a baseline document with version "
                f"{BASELINE_VERSION}"
            )
        raw = data.get("fingerprints", {})
        if not isinstance(raw, dict) or not all(
            isinstance(k, str) and isinstance(v, int) and v > 0
            for k, v in raw.items()
        ):
            raise BaselineError(
                f"{path}: 'fingerprints' must map strings to positive counts"
            )
        return cls(counts=dict(raw), path=str(path))

    def write(self, path: Path) -> None:
        """Serialize to ``path`` (sorted, so baselines diff cleanly)."""
        document = {
            "version": BASELINE_VERSION,
            "fingerprints": dict(sorted(self.counts.items())),
        }
        path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")

    def fresh(self) -> "Baseline":
        """A copy with the per-run consumption state reset."""
        return Baseline(counts=dict(self.counts), path=self.path)

    def consume(self, finding: Finding) -> bool:
        """Whether ``finding`` is covered (uses up one occurrence)."""
        key = fingerprint(finding)
        remaining = self._remaining.get(key, 0)
        if remaining <= 0:
            return False
        self._remaining[key] = remaining - 1
        return True
