"""Pluggable checker API for the static-analysis suite.

A checker declares the :class:`~repro.analysis.findings.Rule` objects it
can emit and produces :class:`~repro.analysis.findings.Finding` objects
when run over a :class:`Project` (the collection of parsed modules plus
the repo root).  Most checkers examine one file at a time — subclass
:class:`ModuleChecker` and implement ``check_module``; checkers that
need a *global* view (e.g. the counter/doc drift checker, which compares
every call site against one document) subclass :class:`Checker` directly
and implement ``check``.

Checkers must be deterministic: same project state, same findings, in
the same order — the suite lints itself, so nondeterminism here would
be self-refuting.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.analysis.findings import Finding, Rule
from repro.analysis.source import ModuleSource

__all__ = ["Checker", "ModuleChecker", "Project"]


@dataclass
class Project:
    """Everything a lint run looks at.

    Attributes
    ----------
    root:
        Repo root; relative finding paths and doc lookups resolve
        against it.
    modules:
        Parsed source files, in deterministic (sorted-path) order.
    """

    root: Path
    modules: list[ModuleSource] = field(default_factory=list)

    def doc_text(self, relpath: str) -> str | None:
        """Contents of a doc file under the root, or None if absent."""
        path = self.root / relpath
        if not path.is_file():
            return None
        return path.read_text(encoding="utf-8")


class Checker(abc.ABC):
    """Base class for all checkers.

    Subclasses set ``name`` (the rule-id prefix) and ``rules`` (every
    rule they may emit; the engine uses this for ``--list-rules`` and to
    reject pragmas referencing unknown rules in tests).
    """

    name: str = ""
    rules: tuple[Rule, ...] = ()

    @abc.abstractmethod
    def check(self, project: Project) -> Iterator[Finding]:
        """Yield findings for the whole project."""

    def rule(self, rule_id: str) -> Rule:
        """Look up one of this checker's rules by id."""
        for rule in self.rules:
            if rule.id == rule_id:
                return rule
        raise KeyError(f"checker {self.name!r} declares no rule {rule_id!r}")

    def finding(
        self,
        rule_id: str,
        module: ModuleSource,
        lineno: int,
        message: str,
        *,
        hint: str | None = None,
    ) -> Finding:
        """Build a :class:`Finding` for ``rule_id`` at ``module:lineno``."""
        rule = self.rule(rule_id)
        return Finding(
            rule=rule.id,
            severity=rule.severity,
            path=module.relpath,
            line=lineno,
            message=message,
            hint=hint if hint is not None else rule.hint,
            source=module.line(lineno),
        )


class ModuleChecker(Checker):
    """A checker that inspects one module at a time."""

    @abc.abstractmethod
    def check_module(self, module: ModuleSource) -> Iterator[Finding]:
        """Yield findings for one parsed module."""

    def check(self, project: Project) -> Iterator[Finding]:
        """Run ``check_module`` over every parsable module, in order."""
        for module in project.modules:
            if module.tree is None:
                continue  # the engine reports the syntax error itself
            yield from self.check_module(module)
